"""Procedural video streams: determinism, byte stability, delta bounds.

The streaming subsystem (docs/streaming.md) rests on two promises made
by :class:`repro.data.video.VideoStream`:

* frames and offsets are pure functions of ``(seed, frame index)`` —
  random access never depends on iteration history, and the stream
  digest is byte-stable across runs;
* consecutive frames' offset fields differ by at most ``frame_delta``
  in max-abs, and the delta at frame stride ``s`` grows monotonically
  with ``s`` — the property the delta-keyed plan cache's hit-rate
  curve is gated on (benchmarks/bench_streaming.py).
"""

import numpy as np
import pytest

from repro.data.video import (DEFAULT_OFFSET_SHAPE, VideoFrame, VideoStream,
                              make_video)

pytestmark = pytest.mark.streaming


def _stride_delta(stream, stride, frames=24):
    """Max-abs offset delta across consecutive stride-``s`` samples."""
    deltas = []
    for t in range(0, frames - stride, stride):
        d = np.max(np.abs(stream.offsets(t + stride) - stream.offsets(t)))
        deltas.append(float(d))
    return deltas


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        a = VideoStream(seed=7, num_frames=6)
        b = VideoStream(seed=7, num_frames=6)
        for t in range(6):
            fa, fb = a.frame(t), b.frame(t)
            assert fa.image.tobytes() == fb.image.tobytes()
            assert fa.offset.tobytes() == fb.offset.tobytes()
            assert [i.label for i in fa.instances] == \
                [i.label for i in fb.instances]

    def test_random_access_matches_iteration(self):
        stream = VideoStream(seed=3, num_frames=5)
        iterated = list(stream)
        for t in range(5):
            direct = stream.frame(t)
            assert direct.image.tobytes() == iterated[t].image.tobytes()
            assert direct.offset.tobytes() == iterated[t].offset.tobytes()

    def test_digest_stable_and_seed_sensitive(self):
        d1 = VideoStream(seed=11, num_frames=4).digest()
        d2 = VideoStream(seed=11, num_frames=4).digest()
        d3 = VideoStream(seed=12, num_frames=4).digest()
        assert d1 == d2
        assert d1 != d3

    def test_digest_param_sensitive(self):
        base = VideoStream(seed=1, num_frames=4).digest()
        other = VideoStream(seed=1, num_frames=4, frame_delta=0.5).digest()
        assert base != other

    def test_session_id_stable(self):
        assert VideoStream(seed=5).session == VideoStream(seed=5).session
        assert VideoStream(seed=5).session != VideoStream(seed=6).session


class TestFrames:
    def test_frame_contents(self):
        fr = VideoStream(seed=0, num_frames=4).frame(2)
        assert isinstance(fr, VideoFrame)
        assert fr.index == 2
        assert fr.image.shape == (3, 64, 64)
        assert fr.image.dtype == np.float32
        assert float(fr.image.min()) >= 0.0
        assert float(fr.image.max()) <= 1.0
        assert fr.offset.shape == DEFAULT_OFFSET_SHAPE
        assert fr.offset.dtype == np.float32
        assert fr.instances  # objects sized well above the skip threshold

    def test_objects_actually_move(self):
        stream = VideoStream(seed=0, num_frames=32, num_objects=1)
        boxes = [stream.frame(t).instances[0].box for t in (0, 16)]
        assert boxes[0] != boxes[1]

    def test_bounds_and_len(self):
        stream = VideoStream(seed=0, num_frames=3)
        assert len(stream) == 3
        with pytest.raises(IndexError):
            stream.frame(3)
        with pytest.raises(ValueError):
            stream.frame(-1)
        with pytest.raises(TypeError):
            len(VideoStream(seed=0, num_frames=None))

    def test_make_video(self):
        clip = make_video(num_frames=4, seed=2)
        assert len(clip) == 4
        assert [f.index for f in clip] == [0, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoStream(size=8)
        with pytest.raises(ValueError):
            VideoStream(frame_delta=0.0)
        with pytest.raises(ValueError):
            VideoStream(offset_shape=(18, 32, 32))


class TestOffsetCoherence:
    """The analytic per-frame bound and the monotone stride growth."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_frame_delta_is_a_hard_bound(self, seed):
        stream = VideoStream(seed=seed, num_frames=None, frame_delta=0.25)
        deltas = _stride_delta(stream, stride=1, frames=48)
        assert max(deltas) <= 0.25 + 1e-6

    def test_stride_deltas_grow_monotonically(self):
        stream = VideoStream(seed=0, num_frames=None, frame_delta=0.25)
        means = [float(np.mean(_stride_delta(stream, s, frames=48)))
                 for s in (1, 2, 4, 8)]
        assert means == sorted(means)
        # stride-8 walks far outside any per-frame bound
        assert means[-1] > 2 * means[0]

    def test_temporal_excursion_bounded_by_sigma(self):
        stream = VideoStream(seed=0, offset_sigma=2.0)
        # the walk around the smooth base field stays inside the circle of
        # radius sigma on unit fields: |a*U1 + b*U2| <= sqrt(2) * sigma
        worst = max(float(np.max(np.abs(stream.offsets(t) - stream._base)))
                    for t in range(16))
        assert worst <= np.sqrt(2.0) * 2.0 + 1e-5
