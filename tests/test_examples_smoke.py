"""Smoke tests: the fast example scripts run end to end.

The two training-heavy examples (interval_search_demo,
train_shapes_segmentation) are exercised through their underlying APIs in
test_integration.py; running them verbatim takes minutes and belongs to
the benchmarks tier.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "forward:" in out
    assert "tex2D vs software bilinear" in out
    for backend in ("pytorch", "tex2d", "tex2dpp"):
        assert backend in out


def test_autotune_tiles_runs():
    out = _run("autotune_tiles.py")
    assert "exhaustive oracle" in out
    assert "BO convergence" in out


def test_texture_inference_runs():
    out = _run("texture_inference.py")
    assert "layered texture" in out
    assert "tex2D++ speedup" in out
    assert "speedup" in out.splitlines()[-5].lower() or "x" in out
