"""Offset policies (§III-A-c) and the lightweight offset head (Eq. 9)."""

import numpy as np
import pytest

from repro.deform import (DEFAULT_BOUND, LightweightOffsetHead, OffsetPolicy,
                          RegularOffsetHead, bound_offsets, eq9_reduction,
                          mac_reduction, offset_channels,
                          offset_regularization, round_offsets)
from repro.deform.macs import (breakdown, lightweight_offset_macs,
                               main_conv_macs, regular_offset_macs,
                               software_interp_flops)
from repro.tensor import Tensor

from helpers import check_gradients, rng


class TestBoundPolicy:
    def test_symmetric_clamp(self):
        off = Tensor(np.array([-10.0, -3.0, 0.0, 3.0, 10.0]))
        out = bound_offsets(off, 7.0)
        assert np.allclose(out.data, [-7.0, -3.0, 0.0, 3.0, 7.0])

    def test_nonnegative_variant(self):
        off = Tensor(np.array([-2.0, 3.0, 9.0]))
        out = bound_offsets(off, 7.0, symmetric=False)
        assert np.allclose(out.data, [0.0, 3.0, 7.0])

    def test_gradient_zero_outside_bound(self):
        off = Tensor(np.array([-10.0, 1.0, 10.0]), requires_grad=True)
        bound_offsets(off, 7.0).sum().backward()
        assert np.allclose(off.grad, [0.0, 1.0, 0.0])

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            bound_offsets(Tensor([1.0]), -1.0)

    def test_default_bound_is_seven(self):
        assert DEFAULT_BOUND == 7.0


class TestRoundPolicy:
    def test_rounding_values(self):
        off = Tensor(np.array([0.4, 0.6, -1.5, 2.5]))
        out = round_offsets(off)
        assert np.allclose(out.data, np.rint(off.data))

    def test_straight_through_gradient(self):
        off = Tensor(np.array([0.4, -1.7]), requires_grad=True)
        round_offsets(off).sum().backward()
        assert np.allclose(off.grad, [1.0, 1.0])


class TestRegularization:
    def test_zero_inside_bound(self):
        off = Tensor(np.array([1.0, -6.9]))
        assert offset_regularization(off, 7.0).item() == pytest.approx(0.0)

    def test_quadratic_outside(self):
        off = Tensor(np.array([9.0]))
        assert offset_regularization(off, 7.0).item() == pytest.approx(4.0)

    def test_gradient_flows(self):
        off = Tensor(rng(0).uniform(-12, 12, size=(8,)), requires_grad=True)
        check_gradients(lambda: offset_regularization(off, 7.0), [off])


class TestOffsetPolicy:
    def test_combined_bound_then_round(self):
        policy = OffsetPolicy(bound=2.0, rounded=True)
        off = Tensor(np.array([3.7, -0.4]))
        out = policy(off)
        assert np.allclose(out.data, [2.0, 0.0])

    def test_noop_policy(self):
        policy = OffsetPolicy()
        off = Tensor(np.array([3.7]))
        assert policy(off) is off

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            OffsetPolicy(bound=0.0)

    def test_repr(self):
        assert "bound=7.0" in repr(OffsetPolicy(bound=7.0))


class TestOffsetHeads:
    def test_offset_channels(self):
        assert offset_channels(3) == 18
        assert offset_channels(3, deformable_groups=4) == 72

    def test_regular_head_zero_init_outputs_zero(self):
        head = RegularOffsetHead(6, rng=rng(1))
        x = Tensor(rng(2).normal(size=(1, 6, 8, 8)))
        assert np.allclose(head(x).data, 0.0)

    def test_lightweight_head_zero_init_outputs_zero(self):
        head = LightweightOffsetHead(6, rng=rng(3))
        x = Tensor(rng(4).normal(size=(1, 6, 8, 8)))
        assert np.allclose(head(x).data, 0.0)

    def test_head_output_shapes(self):
        for head_cls in (RegularOffsetHead, LightweightOffsetHead):
            head = head_cls(6, stride=2, deformable_groups=2, rng=rng(5))
            x = Tensor(rng(6).normal(size=(2, 6, 8, 8)))
            assert head(x).shape == (2, 36, 4, 4)

    def test_lightweight_fewer_macs(self):
        reg = RegularOffsetHead(32, rng=rng(7))
        light = LightweightOffsetHead(32, rng=rng(7))
        assert light.macs(16, 16) < reg.macs(16, 16)


class TestEq9:
    def test_closed_form_value(self):
        assert eq9_reduction(3) == pytest.approx(1.0 - 27.0 / 162.0)
        assert eq9_reduction(3) == pytest.approx(0.8333, abs=1e-4)

    @pytest.mark.parametrize("channels,h", [(16, 8), (64, 32), (128, 16)])
    def test_measured_matches_closed_form(self, channels, h):
        assert mac_reduction(channels, h, h) == pytest.approx(
            eq9_reduction(3), abs=1e-9)

    def test_mac_formulas_consistent_with_layers(self):
        c, oh, ow = 16, 8, 8
        reg = RegularOffsetHead(c, rng=rng(8))
        light = LightweightOffsetHead(c, rng=rng(8))
        assert reg.macs(oh, ow) == regular_offset_macs(c, oh, ow, 3)
        assert light.macs(oh, ow) == lightweight_offset_macs(c, oh, ow, 3)


class TestBreakdown:
    def test_texture_interp_removes_flops(self):
        soft = breakdown(64, 64, 32, 32, texture_interp=False)
        hard = breakdown(64, 64, 32, 32, texture_interp=True)
        assert soft.interp_flops > 0
        assert hard.interp_flops == 0
        assert soft.total_flops > hard.total_flops

    def test_lightweight_reduces_offset_macs(self):
        reg = breakdown(64, 64, 32, 32, lightweight=False)
        light = breakdown(64, 64, 32, 32, lightweight=True)
        assert light.offset_macs < reg.offset_macs
        assert light.main_macs == reg.main_macs

    def test_boundary_fraction_discount(self):
        full = software_interp_flops(8, 16, 16, 3, boundary_fraction=0.0)
        some = software_interp_flops(8, 16, 16, 3, boundary_fraction=0.25)
        assert some == pytest.approx(0.75 * full, rel=1e-6)

    def test_total_macs(self):
        b = breakdown(8, 16, 4, 4)
        assert b.total_macs == b.offset_macs + b.main_macs
        assert b.main_macs == main_conv_macs(8, 16, 4, 4, 3)
