"""Unit tests for the tensor arithmetic / reduction / shape primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor
from repro.tensor.autograd import unbroadcast
from repro.tensor.tensor import concat, stack

from helpers import check_gradients, rng


class TestArithmetic:
    def test_add_values(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_broadcast_gradients(self):
        a = Tensor(rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng(1).normal(size=(4,)), requires_grad=True)
        check_gradients(lambda: a + b, [a, b])

    def test_scalar_radd_rmul(self):
        a = Tensor([2.0])
        assert (1.0 + a).data[0] == pytest.approx(3.0)
        assert (3.0 * a).data[0] == pytest.approx(6.0)

    def test_sub_and_rsub(self):
        a = Tensor([5.0])
        assert (a - 2.0).data[0] == pytest.approx(3.0)
        assert (2.0 - a).data[0] == pytest.approx(-3.0)

    def test_mul_gradients(self):
        a = Tensor(rng(2).normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng(3).normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: a * b, [a, b])

    def test_div_gradients(self):
        a = Tensor(rng(4).normal(size=(5,)), requires_grad=True)
        b = Tensor(rng(5).uniform(0.5, 2.0, size=(5,)), requires_grad=True)
        check_gradients(lambda: a / b, [a, b])

    def test_pow_gradient(self):
        a = Tensor(rng(6).uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: a ** 3, [a])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_matmul_2d(self):
        a = Tensor(rng(7).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng(8).normal(size=(4, 5)), requires_grad=True)
        out = a @ b
        assert np.allclose(out.data, a.data @ b.data, atol=1e-5)
        check_gradients(lambda: a @ b, [a, b])

    def test_matmul_batched(self):
        a = Tensor(rng(9).normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng(10).normal(size=(2, 4, 5)), requires_grad=True)
        check_gradients(lambda: a @ b, [a, b])

    def test_comparisons_detached(self):
        a = Tensor([1.0, 3.0], requires_grad=True)
        m = a > 2.0
        assert m.data.dtype == np.bool_
        assert not m.requires_grad


class TestElementwise:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid",
                                    "abs", "relu"])
    def test_unary_gradients(self, op):
        data = rng(11).uniform(0.3, 2.0, size=(6,))
        if op == "relu" or op == "abs" or op == "tanh" or op == "sigmoid":
            data = rng(11).uniform(-2.0, 2.0, size=(6,)) + 0.05
        a = Tensor(data, requires_grad=True)
        check_gradients(lambda: getattr(a, op)(), [a])

    def test_relu_zeroes_negatives(self):
        a = Tensor([-1.0, 0.5])
        assert np.allclose(a.relu().data, [0.0, 0.5])

    def test_clamp_values_and_gradient(self):
        a = Tensor([-3.0, 0.0, 5.0], requires_grad=True)
        out = a.clamp(-1.0, 2.0)
        assert np.allclose(out.data, [-1.0, 0.0, 2.0])
        out.sum().backward()
        # gradient zero outside the clamp range (bounded-deformation rule)
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_clamp_one_sided(self):
        a = Tensor([-3.0, 3.0])
        assert np.allclose(a.clamp(lo=0.0).data, [0.0, 3.0])
        assert np.allclose(a.clamp(hi=1.0).data, [-3.0, 1.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(rng(12).normal(size=(2, 3, 4)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        check_gradients(lambda: a.sum(axis=1, keepdims=True), [a])

    def test_sum_all(self):
        a = Tensor(rng(13).normal(size=(3, 3)), requires_grad=True)
        check_gradients(lambda: a.sum(), [a])

    def test_mean_matches_numpy(self):
        a = Tensor(rng(14).normal(size=(4, 5)))
        assert a.mean(axis=0).data == pytest.approx(
            a.data.mean(axis=0), abs=1e-6)

    def test_var(self):
        a = Tensor(rng(15).normal(size=(64,)))
        assert a.var().item() == pytest.approx(float(a.data.var()), abs=1e-5)

    def test_max_gradient_splits_ties(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_max_axis_gradient(self):
        a = Tensor(rng(16).normal(size=(3, 7)), requires_grad=True)
        check_gradients(lambda: a.max(axis=1), [a], tol=5e-2)


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        a = Tensor(rng(17).normal(size=(2, 6)), requires_grad=True)
        check_gradients(lambda: a.reshape(3, 4), [a])

    def test_transpose(self):
        a = Tensor(rng(18).normal(size=(2, 3, 4)), requires_grad=True)
        assert a.transpose(2, 0, 1).shape == (4, 2, 3)
        check_gradients(lambda: a.transpose(2, 0, 1), [a])

    def test_t_property(self):
        a = Tensor(rng(19).normal(size=(2, 5)))
        assert a.T.shape == (5, 2)

    def test_getitem_gradient_accumulates_duplicates(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        idx = np.array([0, 0, 2])
        a[idx].sum().backward()
        assert np.allclose(a.grad, [2.0, 0.0, 1.0])

    def test_pad2d(self):
        a = Tensor(rng(20).normal(size=(1, 1, 3, 3)), requires_grad=True)
        out = a.pad2d(2)
        assert out.shape == (1, 1, 7, 7)
        assert np.allclose(out.data[0, 0, :2], 0.0)
        check_gradients(lambda: a.pad2d(2), [a])

    def test_stack_and_concat(self):
        a = Tensor(rng(21).normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng(22).normal(size=(2, 3)), requires_grad=True)
        assert stack([a, b], axis=0).shape == (2, 2, 3)
        assert concat([a, b], axis=1).shape == (2, 6)
        check_gradients(lambda: stack([a, b], axis=1), [a, b])
        check_gradients(lambda: concat([a, b], axis=0), [a, b])


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        a = Tensor(rng(23).normal(size=(4, 7)))
        assert np.allclose(a.softmax(axis=1).data.sum(axis=1), 1.0,
                           atol=1e-5)

    def test_softmax_gradient(self):
        a = Tensor(rng(24).normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda: (a.softmax(axis=1)
                                 * Tensor(rng(25).normal(size=(3, 5)))),
                        [a])

    def test_log_softmax_stability(self):
        a = Tensor(np.array([[1000.0, 0.0]]))
        out = a.log_softmax(axis=1)
        assert np.isfinite(out.data).all()

    def test_log_softmax_gradient(self):
        a = Tensor(rng(26).normal(size=(2, 4)), requires_grad=True)
        check_gradients(
            lambda: (a.log_softmax(axis=1)
                     * Tensor(rng(27).normal(size=(2, 4)))), [a])


class TestUnbroadcast:
    @given(st.sampled_from([(3, 4), (1, 4), (3, 1), (1, 1), (4,), (1,)]))
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_restores_shape(self, shape):
        grad = np.ones((3, 4))
        out = unbroadcast(grad, shape)
        assert out.shape == tuple(shape)

    def test_unbroadcast_sums(self):
        grad = np.ones((2, 3))
        assert np.allclose(unbroadcast(grad, (3,)), [2.0, 2.0, 2.0])
        assert np.allclose(unbroadcast(grad, (1, 3)), [[2.0, 2.0, 2.0]])
