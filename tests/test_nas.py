"""Interval-search tests: Gumbel sampling, penalty (Eq. 6/8), Algorithm 1."""

import numpy as np
import pytest

from repro.nas import (DEFORM, REGULAR, DualPathLayer, IntervalSearch,
                       LatencyTable, SearchConfig, anneal_tau,
                       conv_latency_ms, deform_latency_ms,
                       estimated_deform_latency, gumbel_softmax,
                       latency_penalty, latency_penalty_gradient,
                       manual_interval_placement, sample_noise)
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig
from repro.nn.module import Parameter
from repro.tensor import Tensor

from helpers import rng


class TestGumbel:
    def test_weights_sum_to_one(self):
        alpha = Tensor(np.array([0.3, -0.7], dtype=np.float32))
        w = gumbel_softmax(alpha, tau=1.0, rng=rng(0))
        assert w.data.sum() == pytest.approx(1.0, abs=1e-5)
        assert (w.data >= 0).all()

    def test_low_temperature_sharpens(self):
        alpha = Tensor(np.array([2.0, 0.0], dtype=np.float32))
        eps = np.zeros(2, dtype=np.float32)
        soft = gumbel_softmax(alpha, tau=5.0, rng=rng(0), eps=eps)
        sharp = gumbel_softmax(alpha, tau=0.1, rng=rng(0), eps=eps)
        assert sharp.data[0] > soft.data[0]
        assert sharp.data[0] > 0.99

    def test_gradient_flows_to_alpha(self):
        alpha = Parameter(np.zeros(2, dtype=np.float32))
        w = gumbel_softmax(alpha, tau=1.0, rng=rng(1))
        (w * Tensor(np.array([1.0, -1.0]))).sum().backward()
        assert alpha.grad is not None and np.abs(alpha.grad).sum() > 0

    def test_hard_mode_one_hot_forward(self):
        alpha = Parameter(np.array([0.0, 3.0], dtype=np.float32))
        w = gumbel_softmax(alpha, tau=1.0, rng=rng(2),
                           eps=np.zeros(2, dtype=np.float32), hard=True)
        assert np.allclose(sorted(w.data), [0.0, 1.0])

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            gumbel_softmax(Tensor(np.zeros(2)), tau=0.0, rng=rng(0))

    def test_noise_variants(self):
        u = sample_noise((1000,), rng(3), "uniform")
        assert 0.0 <= u.min() and u.max() <= 1.0
        g = sample_noise((1000,), rng(3), "gumbel")
        assert g.mean() == pytest.approx(0.577, abs=0.15)  # Euler–Mascheroni
        with pytest.raises(ValueError):
            sample_noise((2,), rng(3), "gaussian")

    def test_anneal_tau_endpoints(self):
        assert anneal_tau(0, 100, 5.0, 0.5) == pytest.approx(5.0)
        assert anneal_tau(99, 100, 5.0, 0.5) == pytest.approx(0.5)
        assert anneal_tau(50, 100, 5.0, 0.5) < 5.0


class TestLatencyPenalty:
    def _alphas(self, values):
        return [Parameter(np.array(v, dtype=np.float32)) for v in values]

    def test_zero_when_no_deform_selected(self):
        alphas = self._alphas([[1.0, 0.0], [2.0, -1.0]])
        pen = latency_penalty(alphas, [5.0, 3.0], target_ms=0.0)
        assert pen.item() == pytest.approx(0.0)

    def test_value_matches_eq6(self):
        alphas = self._alphas([[0.0, 0.5], [1.0, 0.2]])
        # only site 0 has alpha1 > alpha0: sum = sigma(0.5)·4.0; T = 1.0
        pen = latency_penalty(alphas, [4.0, 10.0], target_ms=1.0)
        from repro.nas.penalty import SELECTION_SHARPNESS

        sel = 4.0 / (1.0 + np.exp(-SELECTION_SHARPNESS * 0.5))
        assert pen.item() == pytest.approx((sel - 1.0) ** 2, rel=1e-4)

    def test_autograd_gradient_matches_eq8_closed_form(self):
        values = [[0.1, 0.8], [0.9, 0.3], [-0.2, 0.4]]
        lat = [2.0, 5.0, 3.0]
        target = 1.5
        alphas = self._alphas(values)
        pen = latency_penalty(alphas, lat, target)
        pen.backward()
        closed = latency_penalty_gradient(
            [np.array(v) for v in values], lat, target)
        for a, want in zip(alphas, closed):
            got = a.grad[1] if a.grad is not None else 0.0
            assert got == pytest.approx(want, rel=1e-4, abs=1e-6)

    def test_no_gradient_to_regular_alpha(self):
        alphas = self._alphas([[0.0, 0.5]])
        latency_penalty(alphas, [4.0], 0.0).backward()
        assert alphas[0].grad[0] == pytest.approx(0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            latency_penalty(self._alphas([[0, 1]]), [1.0, 2.0], 0.0)

    def test_estimated_latency_counts_selected(self):
        alphas = [np.array([0.0, 1.0]), np.array([1.0, 0.0]),
                  np.array([0.2, 0.3])]
        assert estimated_deform_latency(alphas, [5.0, 7.0, 2.0]) == 7.0


class TestDualPathLayer:
    def test_search_forward_blends(self):
        layer = DualPathLayer(4, 4, rng=rng(4))
        layer.set_search_state(1.0, rng(5))
        x = Tensor(rng(6).normal(size=(1, 4, 6, 6)))
        out = layer(x)
        assert out.shape == (1, 4, 6, 6)

    def test_frozen_choice_uses_single_branch(self):
        layer = DualPathLayer(4, 4, rng=rng(7))
        layer.freeze_choice(REGULAR)
        x = Tensor(rng(8).normal(size=(1, 4, 6, 6)))
        out = layer(x)
        want = layer.regular(Tensor(x.data))
        assert np.allclose(out.data, want.data, atol=1e-6)
        assert not layer.uses_deform

    def test_freeze_defaults_to_argmax(self):
        layer = DualPathLayer(4, 4, rng=rng(9))
        layer.alpha.data[:] = [0.1, 0.9]
        assert layer.freeze_choice() == DEFORM
        assert layer.uses_deform

    def test_invalid_choice(self):
        layer = DualPathLayer(4, 4, rng=rng(10))
        with pytest.raises(ValueError):
            layer.freeze_choice(2)

    def test_alpha_receives_gradient_in_search(self):
        layer = DualPathLayer(2, 2, rng=rng(11))
        layer.set_search_state(1.0, rng(12))
        x = Tensor(rng(13).normal(size=(1, 2, 5, 5)))
        (layer(x) ** 2).mean().backward()
        assert layer.alpha.grad is not None

    def test_stride_two(self):
        layer = DualPathLayer(2, 4, stride=2, rng=rng(14))
        layer.set_search_state(1.0, rng(15))
        x = Tensor(rng(16).normal(size=(1, 2, 8, 8)))
        assert layer(x).shape == (1, 4, 4, 4)


class TestManualPlacement:
    def test_interval_three_pattern(self):
        p = manual_interval_placement(9, 3)
        assert sum(p) == 3
        assert p[-1]  # the final block is deformable (YOLACT++ policy)
        idx = [i for i, v in enumerate(p) if v]
        assert all(b - a == 3 for a, b in zip(idx, idx[1:]))

    def test_interval_one_is_all(self):
        assert all(manual_interval_placement(5, 1))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            manual_interval_placement(5, 0)

    def test_explicit_offset(self):
        p = manual_interval_placement(6, 2, offset=0)
        assert p == [True, False, True, False, True, False]


class TestLatencyTable:
    def test_lookup_caches(self):
        table = LatencyTable(XAVIER)
        cfg = LayerConfig(8, 8, 10, 10)
        first = table.lookup(cfg)
        assert table.lookup(cfg) is first
        assert len(table) == 1

    def test_deform_slower_than_regular(self):
        table = LatencyTable(XAVIER)
        lat = table.lookup(LayerConfig(32, 32, 24, 24))
        assert lat.deform_ms > lat.regular_ms
        assert lat.extra_ms > 0

    def test_build_and_items(self):
        table = LatencyTable(XAVIER)
        layers = [LayerConfig(8, 8, 10, 10), LayerConfig(16, 16, 10, 10)]
        table.build(layers)
        assert len(list(table.items())) == 2

    def test_conv_latency_positive_and_monotone(self):
        small = conv_latency_ms(LayerConfig(8, 8, 10, 10), XAVIER)
        large = conv_latency_ms(LayerConfig(64, 64, 40, 40), XAVIER)
        assert 0 < small < large

    def test_deform_latency_backends(self):
        cfg = LayerConfig(8, 8, 10, 10)
        ref = deform_latency_ms(cfg, XAVIER, backend="pytorch")
        tex = deform_latency_ms(cfg, XAVIER, backend="tex2d")
        assert ref > 0 and tex > 0


class TestIntervalSearchDriver:
    """A miniature synthetic search: 3 sites, a separable toy objective."""

    def _toy(self, beta, target, epochs=2):
        g = rng(20)
        supernet_sites = [DualPathLayer(2, 2, rng=rng(30 + i))
                          for i in range(3)]

        class Supernet:
            training = True

            def parameters(self):
                for s in supernet_sites:
                    yield from s.parameters()

            def train(self, mode=True):
                return self

        xs = [g.normal(size=(2, 2, 6, 6)).astype(np.float32)
              for _ in range(2)]

        def batches():
            return iter(xs)

        def loss_fn(model, batch):
            out = Tensor(np.zeros(1, dtype=np.float32))
            h = Tensor(batch)
            for s in supernet_sites:
                h = s(h)
            return (h * h).mean()

        cfg = SearchConfig(search_epochs=epochs, finetune_epochs=1,
                           beta=beta, target_latency_ms=target, seed=0)
        search = IntervalSearch(Supernet(), supernet_sites,
                                [1.0, 1.0, 1.0], cfg)
        return search.run(batches, loss_fn)

    def test_runs_and_reports(self):
        result = self._toy(beta=0.1, target=1.0)
        assert len(result.placement) == 3
        assert len(result.search_losses) == 4   # 2 epochs × 2 batches
        assert len(result.finetune_losses) == 2
        assert result.num_dcn == sum(result.placement)
        assert len(result.placement_string()) == 3

    def test_beta_pressure_reduces_selected_latency(self):
        """A large β with T = 0 cannot *increase* the selected deformable
        budget relative to an unconstrained search (Eq. 6 only ever pushes
        α¹ of selected sites down; α⁰ carries no latency gradient, Eq. 7)."""
        free = self._toy(beta=0.0, target=0.0, epochs=4)
        constrained = self._toy(beta=1e4, target=0.0, epochs=4)
        assert (constrained.estimated_latency_ms
                <= free.estimated_latency_ms + 1e-9)

    def test_penalty_pushes_selected_alpha_down(self):
        """Directly: one gated site, huge β — its α¹ must decrease."""
        site = DualPathLayer(2, 2, rng=rng(40))
        site.alpha.data[:] = [0.0, 0.5]   # deform selected
        before = float(site.alpha.data[1])
        pen = latency_penalty([site.alpha], [3.0], target_ms=0.0)
        pen.backward()
        assert site.alpha.grad[1] > 0     # gradient points up → SGD down

    def test_site_latency_length_check(self):
        with pytest.raises(ValueError):
            IntervalSearch(object(), [DualPathLayer(2, 2)], [1.0, 2.0])

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            IntervalSearch(object(), [], [])
