"""Test configuration: make tests/ importable as a helper namespace."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
