"""Kernel backend tests: numerics, nvprof-counter structure, speedup bands."""

import numpy as np
import pytest

from repro.gpusim import RTX_2080TI, XAVIER
from repro.kernels import (BACKENDS, DEFAULT_TILE, LayerConfig,
                           TABLE2_LAYERS, enumerate_tiles, heuristic_tile,
                           run_deform_op, run_layer_all_backends,
                           synth_offsets, tile_footprint_bytes)

from helpers import rng

SMALL = LayerConfig(8, 8, 14, 14)


@pytest.fixture(scope="module")
def small_results():
    return run_layer_all_backends(SMALL, XAVIER, bound=7.0,
                                  compute_output=True, seed=3)


class TestFunctionalOutputs:
    def test_all_backends_produce_output(self, small_results):
        for backend in BACKENDS:
            out = small_results[backend].output
            assert out is not None
            assert out.shape == (1, 8, 14, 14)
            assert np.isfinite(out).all()

    def test_tex2d_matches_reference_within_fixed_point(self, small_results):
        ref = small_results["pytorch"].output
        tex = small_results["tex2d"].output
        scale = np.abs(ref).max()
        assert np.abs(tex - ref).max() < 0.02 * scale

    def test_tex2dpp_close_to_tex2d(self, small_results):
        """fp16 offsets lose nothing beyond fixed-point noise — the paper's
        'no negative impact on accuracy' claim."""
        t2 = small_results["tex2d"].output
        tp = small_results["tex2dpp"].output
        assert np.abs(tp - t2).max() < 0.03 * np.abs(t2).max()


class TestCounters:
    def test_reference_uses_no_texture(self, small_results):
        s = small_results["pytorch"].sample_kernel
        assert s.tex_cache_requests == 0

    def test_tex_backends_use_texture(self, small_results):
        for backend in ("tex2d", "tex2dpp"):
            s = small_results[backend].sample_kernel
            assert s.tex_cache_requests > 0

    def test_tex_gld_efficiency_is_100(self, small_results):
        """The texture kernels' only global loads are coalesced offsets —
        GLD efficiency 100 % (paper Fig. 10)."""
        for backend in ("tex2d", "tex2dpp"):
            s = small_results[backend].sample_kernel
            assert s.gld_efficiency > 99.0  # only the tail warp is partial

    def test_reference_gld_efficiency_low(self, small_results):
        s = small_results["pytorch"].sample_kernel
        assert s.gld_efficiency < 80.0

    def test_mflop_ratio_about_four(self, small_results):
        """Hardware interpolation removes ~4× of the sampling FLOPs."""
        ref = small_results["pytorch"].sample_kernel.flop_count_sp
        tex = small_results["tex2d"].sample_kernel.flop_count_sp
        assert 3.5 < ref / tex < 5.5

    def test_transactions_per_request_lower_for_tex(self, small_results):
        ref = small_results["pytorch"].sample_kernel
        tex = small_results["tex2d"].sample_kernel
        assert (tex.gld_transactions_per_request
                < ref.gld_transactions_per_request)

    def test_tex2dpp_fewer_offset_bytes(self):
        res = run_layer_all_backends(LayerConfig(16, 16, 20, 20), XAVIER,
                                     bound=7.0, compute_output=False)
        b2 = res["tex2d"].sample_kernel.gld_bytes_requested
        bp = res["tex2dpp"].sample_kernel.gld_bytes_requested
        assert bp == pytest.approx(b2 / 2)


class TestSpeedupBands:
    """The headline reproduction targets of Table II / Table IV / Fig. 7."""

    @pytest.fixture(scope="class")
    def table_results(self):
        out = {}
        for spec in (XAVIER, RTX_2080TI):
            rows = []
            for cfg in TABLE2_LAYERS:
                res = run_layer_all_backends(cfg, spec, bound=7.0,
                                             compute_output=False)
                bl = res["pytorch"].sample_kernel.duration_ms
                rows.append((bl / res["tex2d"].sample_kernel.duration_ms,
                             bl / res["tex2dpp"].sample_kernel.duration_ms))
            out[spec.name] = np.array(rows)
        return out

    def test_texture_always_wins_on_xavier(self, table_results):
        assert (table_results["jetson-agx-xavier"] > 1.0).all()

    def test_xavier_speedups_in_band(self, table_results):
        sp = table_results["jetson-agx-xavier"]
        assert 1.15 < sp[:, 0].mean() < 1.55   # paper tex2D avg 1.27
        assert 1.2 < sp[:, 1].mean() < 1.6     # paper tex2D++ avg 1.39

    def test_2080ti_speedups_in_band(self, table_results):
        sp = table_results["rtx-2080ti"]
        assert 1.0 < sp[:, 0].mean() < 1.45    # paper avg ≈ 1.2
        assert (sp > 0.95).all()

    def test_tex2dpp_at_least_tex2d(self, table_results):
        for name, sp in table_results.items():
            assert (sp[:, 1] >= sp[:, 0] - 1e-6).all()

    def test_xavier_gains_exceed_2080ti(self, table_results):
        """The memory-starved edge GPU benefits more (paper §IV-C)."""
        xavier = table_results["jetson-agx-xavier"][:, 1].mean()
        ti = table_results["rtx-2080ti"][:, 1].mean()
        assert xavier > ti


class TestTiling:
    def test_enumerate_tiles_legal(self):
        tiles = enumerate_tiles(LayerConfig(64, 64, 32, 32), XAVIER)
        assert tiles
        for ty, tx in tiles:
            assert 32 <= ty * tx <= XAVIER.max_threads_per_block

    def test_heuristic_tile_reasonable(self):
        tile = heuristic_tile(LayerConfig(64, 64, 32, 32), XAVIER)
        assert tile[0] * tile[1] >= 64

    def test_tile_footprint_grows_with_tile(self):
        cfg = LayerConfig(64, 64, 32, 32)
        assert tile_footprint_bytes(cfg, (32, 32)) > \
            tile_footprint_bytes(cfg, (8, 8))

    def test_tile_size_affects_latency(self):
        cfg = LayerConfig(64, 64, 48, 48)
        g = rng(0)
        x = g.normal(size=cfg.input_shape()).astype(np.float32)
        w = g.normal(size=cfg.weight_shape()).astype(np.float32)
        off = synth_offsets(cfg, bound=7.0)
        times = []
        for tile in ((2, 16), (16, 16), (32, 32)):
            res = run_deform_op("tex2d", x, off, w, None, cfg, XAVIER,
                                tile=tile, compute_output=False)
            times.append(res.sample_kernel.duration_ms)
        assert max(times) / min(times) > 1.05

    def test_invalid_tile_rejected(self):
        cfg = LayerConfig(8, 8, 8, 8)
        g = rng(1)
        x = g.normal(size=cfg.input_shape()).astype(np.float32)
        w = g.normal(size=cfg.weight_shape()).astype(np.float32)
        off = synth_offsets(cfg)
        with pytest.raises(ValueError):
            run_deform_op("tex2d", x, off, w, None, cfg, XAVIER,
                          tile=(64, 64), compute_output=False)


class TestDispatch:
    def test_unknown_backend(self):
        cfg = SMALL
        g = rng(2)
        x = g.normal(size=cfg.input_shape()).astype(np.float32)
        w = g.normal(size=cfg.weight_shape()).astype(np.float32)
        off = synth_offsets(cfg)
        with pytest.raises(ValueError):
            run_deform_op("cudnn", x, off, w, None, cfg, XAVIER)

    def test_latency_is_sum_of_kernels(self, small_results):
        r = small_results["pytorch"]
        assert r.latency_ms == pytest.approx(
            sum(k.duration_ms for k in r.kernels))

    def test_merged_stats(self, small_results):
        r = small_results["tex2d"]
        merged = r.merged_stats()
        assert merged.flop_count_sp == pytest.approx(
            sum(k.flop_count_sp for k in r.kernels))


class TestSynthOffsets:
    def test_deterministic(self):
        cfg = SMALL
        a = synth_offsets(cfg, seed=5)
        b = synth_offsets(cfg, seed=5)
        assert np.array_equal(a, b)

    def test_bound_respected(self):
        off = synth_offsets(SMALL, sigma=5.0, bound=3.0)
        assert np.abs(off).max() <= 3.0

    def test_sigma_controls_spread(self):
        small = synth_offsets(SMALL, sigma=0.5)
        large = synth_offsets(SMALL, sigma=4.0)
        assert large.std() > 3 * small.std()

    def test_spatial_smoothness(self):
        """Correlated fields: neighbouring offsets should be similar."""
        cfg = LayerConfig(4, 4, 32, 32)
        off = synth_offsets(cfg, sigma=2.0, correlation=4.0)
        diff = np.abs(np.diff(off, axis=-1)).mean()
        assert diff < 0.5 * off.std()

    def test_layer_config_properties(self):
        cfg = LayerConfig(16, 32, 20, 20, stride=2)
        assert cfg.out_height == 10 and cfg.out_pixels == 100
        assert cfg.offset_channels == 18
        assert cfg.offset_shape() == (1, 18, 10, 10)
        assert cfg.weight_shape() == (32, 16, 3, 3)
        assert "16x32x20x20" == cfg.label()
