"""Mipmapped arrays (the rejected storage) and texture upsampling (the
future-work extension)."""

import numpy as np
import pytest

from repro.gpusim import XAVIER, MipmappedTexture2D, downsample_2x2
from repro.kernels import run_upsample_reference, run_upsample_tex2d

from helpers import rng


class TestDownsample:
    def test_box_filter_values(self):
        img = np.arange(16, dtype=np.float32).reshape(4, 4)
        half = downsample_2x2(img)
        assert half.shape == (2, 2)
        assert half[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_odd_extent_trimmed(self):
        img = np.ones((5, 7), dtype=np.float32)
        assert downsample_2x2(img).shape == (2, 3)

    def test_preserves_mean(self):
        img = rng(0).normal(size=(8, 8)).astype(np.float32)
        assert downsample_2x2(img).mean() == pytest.approx(
            img.mean(), abs=1e-5)


class TestMipmap:
    def test_pyramid_shapes(self):
        mip = MipmappedTexture2D(np.zeros((16, 16), dtype=np.float32))
        assert mip.num_levels == 5
        assert mip.extent(0) == (16, 16)
        assert mip.extent(4) == (1, 1)

    def test_level0_matches_layered_texture(self):
        img = rng(1).normal(size=(12, 12)).astype(np.float32)
        mip = MipmappedTexture2D(img)
        py = rng(2).uniform(0, 11, size=(50,)).astype(np.float32)
        px = rng(3).uniform(0, 11, size=(50,)).astype(np.float32)
        from repro.gpusim import LayeredTexture2D

        tex = LayeredTexture2D(img[None])
        a = mip.fetch_level(0, py, px)
        b = tex.fetch_at_pixel_coords(np.zeros(50, dtype=np.int64), py, px)
        assert np.allclose(a, b, atol=1e-6)

    def test_higher_levels_lose_high_frequency(self):
        """The paper's reason to reject mipmaps for DCN: any level above 0
        returns low-passed values — resolution the offsets need is gone."""
        ys, xs = np.mgrid[0:32, 0:32]
        checker = ((ys + xs) % 2).astype(np.float32)   # highest frequency
        mip = MipmappedTexture2D(checker)
        py = np.array([1, 1, 2, 2, 9, 9], dtype=np.float32)
        px = np.array([1, 2, 1, 2, 9, 10], dtype=np.float32)
        v0 = mip.fetch_level(0, py, px)
        v2 = mip.fetch_level(2, py, px)
        # level 0 sees the alternation; level 2 has averaged it flat
        # (border blending shifts absolute values near the image edge)
        assert v0.std() > 0.2
        assert v2.std() < 0.06
        assert abs(v2[-1] - 0.5) < 0.05   # interior point sits at the mean

    def test_build_cost_counted(self):
        mip = MipmappedTexture2D(np.zeros((64, 64), dtype=np.float32))
        # the pyramid build reads/computes every level from the previous one
        assert mip.build_flops > 4 * (32 * 32)

    def test_trilinear_blends_levels(self):
        img = rng(4).normal(size=(16, 16)).astype(np.float32)
        mip = MipmappedTexture2D(img)
        py = np.array([5.3], dtype=np.float32)
        px = np.array([7.8], dtype=np.float32)
        v0 = mip.fetch_level(0, py, px)
        v1 = mip.fetch_level(1, py, px)
        vt = mip.fetch_trilinear(py, px, lod=0.5)
        assert vt[0] == pytest.approx(0.5 * v0[0] + 0.5 * v1[0], abs=1e-5)

    def test_level_bounds_checked(self):
        mip = MipmappedTexture2D(np.zeros((8, 8), dtype=np.float32))
        with pytest.raises(ValueError):
            mip.fetch_level(99, np.zeros(1), np.zeros(1))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            MipmappedTexture2D(np.zeros((2, 4, 4), dtype=np.float32))


class TestTextureUpsample:
    def test_outputs_match_between_backends(self):
        x = rng(5).normal(size=(1, 3, 8, 8)).astype(np.float32)
        ref = run_upsample_reference(x, 2, XAVIER)
        tex = run_upsample_tex2d(x, 2, XAVIER)
        assert ref.output.shape == (1, 3, 16, 16)
        # clamp-vs-zero edge handling differs in the border half-pixel ring;
        # compare the interior
        a = ref.output[..., 1:-1, 1:-1]
        b = tex.output[..., 1:-1, 1:-1]
        assert np.abs(a - b).max() < 0.02 * np.abs(a).max()

    def test_upsample_preserves_constant(self):
        x = np.full((1, 1, 6, 6), 3.5, dtype=np.float32)
        tex = run_upsample_tex2d(x, 2, XAVIER)
        assert np.allclose(tex.output, 3.5, atol=0.02)

    def test_texture_backend_faster(self):
        """The future-work claim: texture hardware also accelerates regular
        bilinear upsampling (hardware lerp + fewer FLOPs)."""
        x = rng(6).normal(size=(1, 64, 56, 56)).astype(np.float32)
        ref = run_upsample_reference(x, 2, XAVIER, compute_output=False)
        tex = run_upsample_tex2d(x, 2, XAVIER, compute_output=False)
        assert tex.latency_ms < ref.latency_ms

    def test_flop_reduction(self):
        x = rng(7).normal(size=(1, 16, 20, 20)).astype(np.float32)
        ref = run_upsample_reference(x, 2, XAVIER, compute_output=False)
        tex = run_upsample_tex2d(x, 2, XAVIER, compute_output=False)
        assert ref.kernels[0].flop_count_sp > 3 * tex.kernels[0].flop_count_sp
        assert tex.kernels[0].tex_cache_requests > 0
        assert ref.kernels[0].tex_cache_requests == 0
