"""Graph-mechanics tests: accumulation, reuse, grad mode, topology."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad
from repro.tensor.autograd import topo_sort

from helpers import rng


class TestBackwardMechanics:
    def test_leaf_accumulates_across_backwards(self):
        x = Tensor([2.0], requires_grad=True)
        (x * x).sum().backward()
        (x * x).sum().backward()
        assert np.allclose(x.grad, [8.0])  # 4 + 4

    def test_variable_used_twice_in_one_graph(self):
        x = Tensor([3.0], requires_grad=True)
        (x * x + x).sum().backward()
        assert np.allclose(x.grad, [7.0])  # 2x + 1

    def test_diamond_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        (a * b).sum().backward()
        # d/dx (2x(x+1)) = 4x + 2
        assert np.allclose(x.grad, [6.0, 10.0])

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):  # beyond default recursion limit
            y = y + 0.001
        y.sum().backward()
        assert np.allclose(x.grad, [1.0])

    def test_backward_grad_shape_check(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError):
            y.backward(np.ones(3))

    def test_explicit_upstream_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert y._backward is None and y._prev == ()

    def test_no_grad_nests(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * x).detach()
        (y * 3.0).sum().backward()
        assert x.grad is None

    def test_non_required_parent_gets_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0], requires_grad=False)
        (x * c).sum().backward()
        assert np.allclose(x.grad, [5.0])
        assert c.grad is None

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestTopoSort:
    def test_root_first(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        z = y + 1.0
        order = topo_sort(z)
        assert order[0] is z
        assert order.index(y) < order.index(x)

    def test_shared_subgraph_visited_once(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        z = y + y
        order = topo_sort(z)
        assert sum(1 for node in order if node is y) == 1


class TestConstruction:
    def test_float64_demoted_to_float32(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_integer_preserved(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.integer)

    def test_repr_and_basic_props(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True)
        assert "requires_grad" in repr(t)
        assert t.ndim == 2 and t.size == 6 and len(t) == 2

    def test_item_and_numpy(self):
        t = Tensor([4.5])
        assert t.item() == pytest.approx(4.5)
        assert t.numpy() is t.data

    def test_copy_is_independent(self):
        t = Tensor([1.0])
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == pytest.approx(1.0)
