"""Unit tests for the observability building blocks (repro.obs).

Covers the bounded reservoir's exact-totals contract, the labeled metrics
registry, and the span tracer's Chrome-trace export under a fake clock
(deterministic, schema-valid output).
"""

import json
import threading

import numpy as np
import pytest

from repro.gpusim.profiler import KernelStats
from repro.obs import (BoundedReservoir, Counter, Gauge, Histogram,
                       MetricsRegistry, SpanTracer)
from repro.obs.tracer import SIM_PID, WALL_PID


# ----------------------------------------------------------------------
# BoundedReservoir
# ----------------------------------------------------------------------
def test_reservoir_exact_totals_bounded_sample():
    res = BoundedReservoir(capacity=32, seed=0)
    values = list(range(1, 1001))
    for v in values:
        res.add(v)
    # exact aggregates survive arbitrarily many observations
    assert res.count == 1000
    assert res.total == pytest.approx(sum(values))
    assert res.min == 1.0 and res.max == 1000.0
    assert res.mean == pytest.approx(np.mean(values))
    # ... while the sample stays capped
    assert len(res.values()) == 32
    snap = res.snapshot()
    assert snap["count"] == 1000 and snap["sample_size"] == 32
    # reservoir percentiles are approximate but in-range
    assert 1.0 <= snap["p50"] <= 1000.0


def test_reservoir_deterministic_under_seed():
    a, b = BoundedReservoir(8, seed=7), BoundedReservoir(8, seed=7)
    for v in range(200):
        a.add(v)
        b.add(v)
    assert a.values() == b.values()
    assert a.percentile(95) == b.percentile(95)


def test_reservoir_small_counts_are_exact():
    res = BoundedReservoir(capacity=100, seed=0)
    for v in (3.0, 1.0, 2.0):
        res.add(v)
    assert res.values() == [3.0, 1.0, 2.0]
    assert res.percentile(50) == pytest.approx(2.0)


def test_reservoir_rejects_bad_capacity():
    with pytest.raises(ValueError):
        BoundedReservoir(capacity=0)


def test_reservoir_empty_percentile_is_zero():
    res = BoundedReservoir(capacity=4, seed=0)
    assert res.percentile(50) == 0.0
    snap = res.snapshot()
    assert snap["count"] == 0 and snap["sample_size"] == 0
    assert snap["min"] == 0.0 and snap["max"] == 0.0
    assert snap["mean"] == 0.0 and snap["p99"] == 0.0


def test_reservoir_single_observation():
    res = BoundedReservoir(capacity=4, seed=0)
    res.add(7.5)
    assert res.count == 1 and res.values() == [7.5]
    assert res.min == 7.5 and res.max == 7.5 and res.mean == 7.5
    for q in (0, 50, 100):
        assert res.percentile(q) == 7.5


def test_reservoir_exactly_at_capacity_keeps_everything():
    res = BoundedReservoir(capacity=5, seed=0)
    values = [9.0, 2.0, 4.0, 8.0, 6.0]
    for v in values:
        res.add(v)
    # at exactly capacity nothing has been sampled out yet
    assert res.values() == values
    assert res.percentile(50) == pytest.approx(6.0)
    # the very next add may displace, but never grows the sample
    res.add(1.0)
    assert len(res.values()) == 5
    assert res.count == 6 and res.min == 1.0


def test_reservoir_multithreaded_adds_stay_exact_and_bounded():
    # interleaved add() under the histogram's lock: aggregates stay
    # exact, the seeded sample stays bounded and drawn from real values
    h = Histogram("lat", reservoir_size=8, seed=3)
    per_thread = 400

    def work(tid):
        for i in range(per_thread):
            h.observe(tid * per_thread + i)

    threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    res = h.reservoir()
    assert res.count == 4 * per_thread
    assert res.total == pytest.approx(sum(range(4 * per_thread)))
    assert res.min == 0.0 and res.max == 4 * per_thread - 1
    sample = res.values()
    assert len(sample) == 8
    assert all(0.0 <= v < 4 * per_thread for v in sample)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_counter_labels_and_monotonicity():
    c = Counter("requests")
    c.inc()
    c.inc(2, backend="tex2d")
    c.inc(3, backend="tex2d")
    assert c.value() == 1.0
    assert c.value(backend="tex2d") == 5.0
    with pytest.raises(ValueError):
        c.inc(-1)
    snap = c.snapshot()
    assert snap["kind"] == "counter"
    assert {tuple(s["labels"].items()): s["value"]
            for s in snap["series"]} == {(): 1.0, (("backend", "tex2d"),): 5.0}


def test_gauge_set_max():
    g = Gauge("depth")
    g.inc(4)
    g.dec()
    assert g.value() == 3.0
    g.set_max(10)
    g.set_max(5)          # lower value must not win
    assert g.value() == 10.0


def test_histogram_exact_totals_per_label_set():
    h = Histogram("wait", reservoir_size=4, seed=0)
    for v in range(100):
        h.observe(v, task="classify")
    h.observe(5.0, task="detect")
    assert h.count(task="classify") == 100
    assert h.sum(task="classify") == pytest.approx(sum(range(100)))
    assert h.count(task="detect") == 1
    assert len(h.reservoir(task="classify").values()) == 4


def test_registry_idempotent_and_kind_checked():
    reg = MetricsRegistry()
    c1 = reg.counter("hits", help="tile cache hits")
    c2 = reg.counter("hits")
    assert c1 is c2
    with pytest.raises(ValueError):
        reg.gauge("hits")
    assert reg.names() == ["hits"]
    assert reg.get("hits") is c1
    assert reg.get("missing") is None


def test_registry_snapshot_and_json(tmp_path):
    reg = MetricsRegistry()
    reg.counter("a").inc(2)
    reg.gauge("b").set(7)
    reg.histogram("c").observe(1.5)
    snap = reg.snapshot()
    assert set(snap) == {"a", "b", "c"}
    assert snap["a"]["series"][0]["value"] == 2.0
    assert snap["c"]["series"][0]["count"] == 1
    # to_json round-trips and write() produces the same payload
    assert json.loads(reg.to_json()) == json.loads(json.dumps(snap))
    path = tmp_path / "metrics.json"
    reg.write(path)
    assert json.loads(path.read_text()) == json.loads(reg.to_json())


def test_snapshot_json_is_byte_stable_across_insertion_order():
    def build(order):
        reg = MetricsRegistry()
        for kind, name in order:
            getattr(reg, kind)(name)
        reg.get("hits").inc(3, backend="tex2d")
        reg.get("hits").inc(1, backend="pytorch")
        reg.get("depth").set(2)
        reg.get("wait").observe(1.5, task="detect")
        reg.get("wait").observe(0.5, task="classify")
        return reg

    a = build([("counter", "hits"), ("gauge", "depth"),
               ("histogram", "wait")])
    b = build([("histogram", "wait"), ("counter", "hits"),
               ("gauge", "depth")])
    # documented sort order (metric name, then label-key tuples) makes
    # the serialised snapshot byte-identical regardless of creation or
    # observation order
    assert a.to_json() == b.to_json()
    assert a.to_prometheus() == b.to_prometheus()


def test_prometheus_exposition_basics():
    reg = MetricsRegistry()
    reg.counter("hits", help="tile cache hits").inc(5, backend="tex2d")
    reg.gauge("depth").set(3)
    reg.histogram("wait_ms").observe(2.0)
    text = reg.to_prometheus()
    assert "# HELP hits tile cache hits" in text
    assert "# TYPE hits counter" in text
    assert 'hits{backend="tex2d"} 5' in text
    assert "# TYPE depth gauge" in text
    assert "depth 3" in text
    assert "# TYPE wait_ms summary" in text
    assert "wait_ms_count 1" in text
    assert text.endswith("\n")


def test_metrics_thread_safety():
    reg = MetricsRegistry()
    c = reg.counter("n")
    h = reg.histogram("h", reservoir_size=16)

    def work():
        for _ in range(500):
            c.inc()
            h.observe(1.0)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value() == 8 * 500
    assert h.count() == 8 * 500
    assert h.sum() == pytest.approx(8 * 500)


# ----------------------------------------------------------------------
# SpanTracer
# ----------------------------------------------------------------------
class FakeClock:
    """Monotonic fake clock advancing a fixed step per call."""

    def __init__(self, step_s: float = 0.001):
        self.t = 0.0
        self.step = step_s

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def _wall_events(trace):
    return [e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == WALL_PID]


def _sim_events(trace):
    return [e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == SIM_PID]


def _make_trace():
    tracer = SpanTracer(clock=FakeClock())
    with tracer.span("serve.session", cat="serve", requests=2):
        with tracer.span("serve.batch", cat="serve", size=2):
            tracer.record_kernel(KernelStats(
                name="tex2dpp_deform", layer="backbone.stage0",
                geometry="64x64x16x16", duration_ms=1.5, flop_count_sp=2e6))
            tracer.record_kernel(KernelStats(
                name="offset_head", layer="backbone.stage1",
                duration_ms=0.5))
    return tracer


def test_chrome_trace_schema():
    trace = _make_trace().chrome_trace()
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    # metadata names both processes
    meta = [e for e in events if e["ph"] == "M"]
    assert {(e["name"], e["pid"]) for e in meta} >= {
        ("process_name", WALL_PID), ("process_name", SIM_PID)}
    # every complete event carries the required Chrome trace fields
    for e in events:
        assert {"name", "ph", "pid", "tid"} <= set(e)
        if e["ph"] == "X":
            assert isinstance(e["ts"], float) and e["ts"] >= 0.0
            assert isinstance(e["dur"], float) and e["dur"] >= 0.0
    # the whole trace must be JSON-serialisable (Perfetto-loadable)
    json.dumps(trace)


def test_trace_wall_nesting_and_sim_layout():
    tracer = _make_trace()
    trace = tracer.chrome_trace()
    wall = _wall_events(trace)
    assert [e["name"] for e in wall] == ["serve.session", "serve.batch"]
    outer, inner = wall
    # the child span nests inside the parent on the same track
    assert outer["tid"] == inner["tid"]
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    # sim kernels are laid back-to-back, tagged with their layer
    sim = _sim_events(trace)
    assert [e["name"] for e in sim] == ["tex2dpp_deform", "offset_head"]
    assert sim[0]["ts"] == 0.0 and sim[0]["dur"] == pytest.approx(1500.0)
    assert sim[1]["ts"] == pytest.approx(sim[0]["dur"])
    assert sim[0]["args"]["layer"] == "backbone.stage0"
    assert sim[0]["args"]["geometry"] == "64x64x16x16"
    assert tracer.sim_time_us == pytest.approx(2000.0)


def test_trace_export_deterministic():
    a = json.dumps(_make_trace().chrome_trace(), sort_keys=True)
    b = json.dumps(_make_trace().chrome_trace(), sort_keys=True)
    assert a == b


def test_trace_write_and_flame(tmp_path):
    tracer = _make_trace()
    path = tmp_path / "trace.json"
    tracer.write(path)
    trace = json.loads(path.read_text())
    assert len(_sim_events(trace)) == 2
    flame = tracer.flame_summary()
    assert "serve.session" in flame
    assert "tex2dpp_deform" in flame
    # min_us filter drops the short kernel but keeps the long one
    filtered = tracer.flame_summary(min_us=1000.0)
    assert "tex2dpp_deform" in filtered and "offset_head" not in filtered


def test_flame_top_and_deterministic_tiebreak():
    tracer = SpanTracer(clock=FakeClock())
    # three equal-duration kernels: only the path tie-break orders them
    for name in ("zeta", "alpha", "midway"):
        tracer.record_kernel(KernelStats(name=name, layer="l0",
                                         duration_ms=1.0))
    tracer.record_kernel(KernelStats(name="big", layer="l0",
                                     duration_ms=9.0))
    full = tracer.flame_summary()
    order = [ln.split()[-1] for ln in full.splitlines()[1:]]
    assert order == ["big", "alpha", "midway", "zeta"]
    # --top keeps the N largest rows after sorting
    top2 = tracer.flame_summary(top=2)
    rows = top2.splitlines()[1:]
    assert len(rows) == 2
    assert [ln.split()[-1] for ln in rows] == ["big", "alpha"]
    assert tracer.flame_summary(top=0).splitlines()[1:] == []


def test_tracer_attach_to_profile_log():
    from repro.gpusim.profiler import ProfileLog

    tracer = SpanTracer(clock=FakeClock())
    log = ProfileLog()
    tracer.attach(log)
    log.add(KernelStats(name="k", layer="l0", duration_ms=2.0))
    assert tracer.sim_time_us == pytest.approx(2000.0)
    assert tracer.num_events == 1


def test_tracer_threads_get_distinct_tracks():
    tracer = SpanTracer(clock=FakeClock())
    barrier = threading.Barrier(3)   # keep all threads alive at once so
                                     # the OS cannot recycle thread idents

    def work(i):
        with tracer.span(f"job{i}"):
            barrier.wait()

    threads = [threading.Thread(target=work, args=(i,)) for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    tids = {e["tid"] for e in _wall_events(tracer.chrome_trace())}
    assert len(tids) == 3
