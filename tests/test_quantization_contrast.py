"""The paper's tex2D++ vs quantisation contrast, made executable.

Paper (Section IV-C): "the tex2D++ technique is not the same as applying
quantization, which results in an information loss from input feature
maps.  The bit-reduced computation in tex2D++ is only used to perform
bilinear interpolation using the offsets ... Thus, tex2D++ does not
result in any negative impact on accuracy."

These tests demonstrate both halves on the functional texture model:

* fp16 *offsets* (tex2D++) deviate from the fp32 path by at most the 1.8
  fixed-point filtering noise the hardware already has;
* fp16 *texels* (true quantisation) introduce an error proportional to the
  feature map's dynamic range — real information loss.
"""

import numpy as np
import pytest

from repro.gpusim import LayeredTexture2D, TextureDescriptor

from helpers import rng


def _fetch_all(img, desc):
    tex = LayeredTexture2D(img[None], desc=desc)
    g = rng(1)
    py = g.uniform(0.5, img.shape[0] - 1.5, size=(400,)).astype(np.float32)
    px = g.uniform(0.5, img.shape[1] - 1.5, size=(400,)).astype(np.float32)
    return tex.fetch_at_pixel_coords(np.zeros(400, dtype=np.int64), py, px)


class TestQuantizationContrast:
    def _image(self, scale=1.0):
        # large dynamic range makes fp16 texel quantisation visible
        return (scale * rng(0).normal(size=(24, 24))).astype(np.float32)

    def test_fp16_offsets_error_at_fixed_point_scale(self):
        img = self._image(scale=100.0)
        base = _fetch_all(img, TextureDescriptor())
        pp = _fetch_all(img, TextureDescriptor(fp16_coords=True))
        # bounded by a few fixed-point LSBs of the local texel differences
        assert np.abs(pp - base).max() < 0.12 * np.abs(img).max() * 2**-4

    def test_fp16_texels_lose_information(self):
        img = self._image(scale=100.0)
        base = _fetch_all(img, TextureDescriptor())
        quant = _fetch_all(img, TextureDescriptor(fp16_texels=True))
        offs = _fetch_all(img, TextureDescriptor(fp16_coords=True))
        q_err = np.abs(quant - base).max()
        o_err = np.abs(offs - base).max()
        assert q_err > 0.0           # quantisation is lossy...
        # fp16 has ~11 bits of mantissa: at scale 100 the texel error is
        # ~100·2^-11 ≈ 0.05 — small but real, and distinct from zero.
        assert q_err == pytest.approx(100 * 2**-11, rel=3.0)
        # the paper's point: the offset path's deviation is not *worse*
        # than the texel-quantisation path's information loss mechanism —
        # both are tiny here, but only texel quantisation corrupts the
        # stored feature map itself:
        tex_q = LayeredTexture2D(img[None],
                                 desc=TextureDescriptor(fp16_texels=True))
        tex_o = LayeredTexture2D(img[None],
                                 desc=TextureDescriptor(fp16_coords=True))
        assert not np.array_equal(tex_q.data[0], img)
        assert np.array_equal(tex_o.data[0], img)

    def test_fp16_texels_roundtrip_small_values_exactly(self):
        img = np.array([[0.5, 0.25], [1.0, 2.0]], dtype=np.float32)
        tex = LayeredTexture2D(img[None],
                               desc=TextureDescriptor(fp16_texels=True))
        assert np.array_equal(tex.data[0], img)  # exactly representable
