"""Elastic-autoscaler invariants (docs/fleet.md, "Elastic autoscaling").

The autoscaler rides the fleet's synchronous simulation, so every
invariant here is exact: zero lost futures across scale-down of a busy
worker, no dispatch before a provisioned worker's warm-up elapses,
min/max bounds held under flash crowds, and cold-tune vs tile-store
warm start producing different ready times.
"""

import numpy as np
import pytest

from repro.fleet import (AutoscalePolicy, BurstEpisode, ElasticAutoscaler,
                         FleetScheduler, FleetWorker, LoadSpec,
                         RequestClass, parse_autoscale, sim_worker_provider)
from repro.gpusim.device import get_device

pytestmark = pytest.mark.fleet

IMG = np.zeros((3, 8, 8), dtype=np.float32)


class FakeEngine:
    """Deterministic classify stub; returns the batch index per image."""

    def classify(self, images):
        return np.arange(images.shape[0], dtype=np.int64)


def fake_worker(name, ms=1.0, device=None, **kw):
    """Fake worker whose predicted latency is ``ms`` per image."""
    w = FleetWorker(name, FakeEngine(),
                    predictor=lambda shape, batch, ms=ms: ms * batch, **kw)
    if device is not None:
        w.spec = get_device(device)
    return w


def fake_provider(ms=1.0):
    def provider(name, spec):
        spec = get_device(spec) if isinstance(spec, str) else spec
        return fake_worker(name, ms=ms, device=spec.name)
    return provider


def make_autoscaled(policy, *, base_ms=1.0, provider_ms=1.0,
                    base_device=None):
    sched = FleetScheduler(
        [fake_worker("w0-base", ms=base_ms, device=base_device)],
        router="cost")
    auto = ElasticAutoscaler(policy, fake_provider(provider_ms)
                             ).attach(sched)
    return sched, auto


# ----------------------------------------------------------------------
# warm-up gating
# ----------------------------------------------------------------------
class TestWarmup:
    def test_worker_not_routable_before_ready(self):
        w = fake_worker("a0", ms=1.0)
        w.ready_at_ms = 5.0
        assert not w.routable(0.0)
        assert not w.routable(4.999)
        assert w.routable(5.0)

    def test_no_dispatch_before_warmup_elapses(self, monkeypatch):
        """A scaling-up worker's timeline accepts no batch before its
        ready delay: every recorded batch start and every routing
        decision naming it sits at or after ready_at_ms."""
        starts = {}
        orig = FleetWorker.serve_batch

        def recording(self, batch, now_ms, shard_ctx=None):
            starts.setdefault(self.name, []).append(now_ms)
            return orig(self, batch, now_ms, shard_ctx=shard_ctx)

        monkeypatch.setattr(FleetWorker, "serve_batch", recording)
        policy = AutoscalePolicy(min_workers=1, max_workers=3,
                                 catalogue=("2080ti",), depth_up=2.0,
                                 cold_ms=3.0, warm_ms=1.0,
                                 interval_ms=1.0, up_cooldown_ms=2.0)
        spec = LoadSpec(requests=150, duration_ms=15.0, seed=3,
                        classes=(RequestClass("c", 1.0, 8, None, 0),))
        sched = FleetScheduler([fake_provider(0.5)("w0-base", "xavier")],
                               router="cost")
        auto = ElasticAutoscaler(policy, fake_provider(0.5)).attach(sched)
        sched.run_load(spec.events(), autoscaler=auto)
        ups = [e for e in auto.events if e["action"] == "scale-up"]
        assert ups, "overload must trigger at least one scale-up"
        for up in ups:
            assert up["ready_ms"] > up["sim_ms"], "warm-up is never free"
            served = starts.get(up["worker"], [])
            assert served, "the autoscaled worker must end up serving"
            assert min(served) >= up["ready_ms"]
            routed = [d["sim_ms"] for d in sched.decisions
                      if d["worker"] == up["worker"]]
            assert routed and min(routed) >= up["ready_ms"]

    def test_cold_tune_vs_warm_start_ready_times(self):
        """First provision of a device class pays the cold autotune; the
        next provision of the same class warm-starts from its tiles."""
        policy = AutoscalePolicy(min_workers=1, max_workers=3,
                                 catalogue=("2080ti",), depth_up=1.0,
                                 warm_ms=1.0, cold_ms=6.0,
                                 up_cooldown_ms=2.0)
        sched, auto = make_autoscaled(policy)
        for _ in range(30):
            sched.submit(IMG)
        auto.evaluate(0.0)
        auto.evaluate(2.0)              # past the up-cooldown
        ups = [e for e in auto.events if e["action"] == "scale-up"]
        assert len(ups) == 2
        assert ups[0]["warm"] is False and ups[0]["ready_ms"] == 6.0
        assert ups[1]["warm"] is True and ups[1]["ready_ms"] == 3.0
        sched.drain()
        sched.close()

    def test_initial_fleet_devices_count_as_warm(self):
        """attach() seeds the warm set from the standing fleet — its tile
        stores are already tuned."""
        policy = AutoscalePolicy(min_workers=1, max_workers=2,
                                 catalogue=("xavier",), depth_up=1.0,
                                 warm_ms=1.0, cold_ms=6.0)
        sched, auto = make_autoscaled(policy, base_device="xavier")
        for _ in range(10):
            sched.submit(IMG)
        auto.evaluate(0.0)
        (up,) = [e for e in auto.events if e["action"] == "scale-up"]
        assert up["warm"] is True and up["ready_ms"] == 1.0
        sched.drain()


# ----------------------------------------------------------------------
# scale-down drains, never kills
# ----------------------------------------------------------------------
class TestScaleDown:
    def quiet_policy(self, **kw):
        defaults = dict(min_workers=1, max_workers=4,
                        catalogue=("xavier",), down_intervals=3,
                        down_cooldown_ms=0.0, depth_down=1.0)
        defaults.update(kw)
        return AutoscalePolicy(**defaults)

    def test_zero_lost_futures_across_busy_scale_down(self):
        """Scaling down a worker that still holds queued requests must
        resolve every future — drain, not kill."""
        sched = FleetScheduler([fake_worker("w0-base", ms=1.0),
                                fake_worker("w1-extra", ms=1.0)],
                               router="round-robin")
        auto = ElasticAutoscaler(self.quiet_policy(),
                                 fake_provider()).attach(sched)
        auto.ledger["w1-extra"]["added_ms"] = 0.5   # youngest → victim
        futures = [sched.submit(IMG) for _ in range(2)]
        victim = next(w for w in sched.workers if w.name == "w1-extra")
        assert len(victim.queue) == 1               # round-robin split
        for t in (0.0, 0.25, 0.5):                  # three quiet evals
            auto.evaluate(t)
        assert victim.draining
        assert len(victim.queue) == 1, "draining must not drop the queue"
        sched.drain()
        assert all(f.done() for f in futures)
        assert [f.result() is not None for f in futures] == [True, True]
        assert sched.unresolved() == []
        # the drained worker actually served its queued request
        snap = sched.snapshot()
        assert snap["completed_by_worker"].get("w1-extra") == 1
        # ... and is retired once idle
        auto.evaluate(5.0)
        assert "w1-extra" not in [w.name for w in sched.workers]
        assert auto.ledger["w1-extra"]["removed_ms"] is not None

    def test_draining_worker_attracts_no_new_routing(self):
        sched = FleetScheduler([fake_worker("w0-base", ms=1.0),
                                fake_worker("w1-extra", ms=0.1)],
                               router="cost")
        w1 = sched.workers[1]
        w1.draining = True
        for _ in range(4):
            sched.submit(IMG)
        assert len(w1.queue) == 0
        assert all(d["worker"] == "w0-base" for d in sched.decisions)

    def test_remove_worker_refuses_non_empty_queue(self):
        sched = FleetScheduler([fake_worker("a", ms=1.0),
                                fake_worker("b", ms=1.0)], router="cost")
        sched.submit(IMG)
        holder = next(w for w in sched.workers if len(w.queue))
        with pytest.raises(RuntimeError, match="zero lost futures"):
            sched.remove_worker(holder.name)
        sched.drain()
        sched.remove_worker(holder.name)
        assert [w.name for w in sched.workers] != []
        with pytest.raises(KeyError):
            sched.remove_worker(holder.name)

    def test_scale_down_respects_min_workers(self):
        sched, auto = make_autoscaled(self.quiet_policy(min_workers=1))
        for t in range(10):                 # endless quiet
            auto.evaluate(float(t))
        assert len(sched.workers) == 1      # never below min


# ----------------------------------------------------------------------
# bounds under open-loop flash crowds
# ----------------------------------------------------------------------
class TestBoundsUnderLoad:
    SPEC = LoadSpec(requests=300, duration_ms=30.0,
                    bursts=(BurstEpisode(8.0, 12.0, 6.0),),
                    classes=(RequestClass("c", 1.0, 8, None, 0),), seed=5)

    def run(self, policy):
        sched = FleetScheduler([fake_provider(0.5)("w0-base", "xavier")],
                               router="cost")
        auto = ElasticAutoscaler(policy, fake_provider(0.5)).attach(sched)
        futures = sched.run_load(self.SPEC.events(), autoscaler=auto)
        assert sched.unresolved() == []
        assert all(f.done() for f in futures)
        return sched, auto

    def test_min_max_bounds_respected_under_flash_crowd(self):
        policy = AutoscalePolicy(min_workers=1, max_workers=3,
                                 catalogue=("xavier", "2080ti"),
                                 depth_up=2.0, burn_up=1.0,
                                 up_cooldown_ms=1.0, warm_ms=0.5,
                                 cold_ms=2.0, down_cooldown_ms=2.0,
                                 down_intervals=2)
        sched, auto = self.run(policy)
        # replay the event log: the *active* member count must stay
        # inside [min, max] at every action boundary
        active = 1
        for e in auto.events:
            if e["action"] == "scale-up":
                active += 1
                assert active <= policy.max_workers
            elif e["action"] == "scale-down":
                active -= 1
                assert active >= policy.min_workers
        assert auto.scale_ups() >= 1, "the flash crowd must trigger growth"
        lo, hi = auto.concurrency_bounds()
        assert hi <= policy.max_workers + auto.scale_downs()
        assert lo >= 1

    def test_autoscaled_run_is_deterministic(self):
        policy = AutoscalePolicy(min_workers=1, max_workers=3,
                                 catalogue=("xavier", "2080ti"),
                                 depth_up=2.0, warm_ms=0.5, cold_ms=2.0)
        snaps = []
        for _ in range(2):
            sched, auto = self.run(policy)
            snaps.append((sched.snapshot(), auto.snapshot()))
        assert snaps[0] == snaps[1]

    def test_sim_worker_provider_prices_devices_differently(self):
        provider = sim_worker_provider()
        xavier = provider("a", "xavier")
        ti = provider("b", "2080ti")
        shape = (3, 32, 32)
        assert xavier.predict_ms(shape, 1) > ti.predict_ms(shape, 1)
        # pixel scaling: a 16px request costs a quarter of a 32px one
        assert xavier.predict_ms((3, 16, 16), 1) == pytest.approx(
            xavier.predict_ms(shape, 1) / 4.0)


# ----------------------------------------------------------------------
# policy grammar
# ----------------------------------------------------------------------
class TestPolicyGrammar:
    def test_parse_full_policy(self):
        p = parse_autoscale("min=2,max=6,catalogue=xavier|2080ti,p99=0.4,"
                            "burn=1.5,burn-down=0.2,depth=3,depth-down=1,"
                            "interval=0.5,up-cooldown=1,down-cooldown=8,"
                            "settle=4,warm=0.5,cold=9")
        assert p.min_workers == 2 and p.max_workers == 6
        assert p.catalogue == ("xavier", "2080ti")
        assert p.p99_ms == 0.4
        assert p.burn_up == 1.5 and p.burn_down == 0.2
        assert p.depth_up == 3.0 and p.depth_down == 1.0
        assert p.interval_ms == 0.5
        assert p.up_cooldown_ms == 1.0 and p.down_cooldown_ms == 8.0
        assert p.down_intervals == 4
        assert p.warm_ms == 0.5 and p.cold_ms == 9.0

    @pytest.mark.parametrize("bad", [
        "nope", "min=0", "min=3,max=2", "catalogue=", "interval=0",
        "warm=-1", "what=1",
    ])
    def test_bad_policies_raise(self, bad):
        with pytest.raises(ValueError):
            parse_autoscale(bad)

    def test_policy_slo_matches_p99(self):
        p = parse_autoscale("p99=0.7")
        assert p.slo.metric == "fleet_request_latency_ms"
        assert p.slo.threshold_ms == 0.7
        assert p.slo.quantile == 99.0
