"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor import Tensor


def numerical_gradient(f: Callable[[], float], var: Tensor,
                       eps: float = 1e-3) -> np.ndarray:
    """Central finite differences of scalar ``f()`` w.r.t. ``var.data``."""
    grad = np.zeros_like(var.data, dtype=np.float64)
    it = np.nditer(var.data, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        old = var.data[idx]
        var.data[idx] = old + eps
        fp = f()
        var.data[idx] = old - eps
        fm = f()
        var.data[idx] = old
        grad[idx] = (fp - fm) / (2 * eps)
    return grad


def check_gradients(make_output: Callable[[], Tensor],
                    variables: Sequence[Tensor], tol: float = 3e-2,
                    eps: float = 1e-3) -> None:
    """Assert analytic gradients of ``sum(make_output())`` match numerics.

    ``make_output`` must rebuild the graph from the ``variables`` (reading
    their current ``.data``) on every call.
    """
    for v in variables:
        v.grad = None
    out = make_output()
    out.sum().backward()
    analytic = {id(v): (v.grad.copy() if v.grad is not None else None)
                for v in variables}
    for v in variables:
        assert analytic[id(v)] is not None, "missing analytic gradient"
        num = numerical_gradient(lambda: float(make_output().data.sum()),
                                 v, eps=eps)
        scale = max(1.0, np.abs(num).max())
        err = np.abs(num - analytic[id(v)]).max() / scale
        assert err < tol, f"gradient mismatch: rel err {err:.4g} > {tol}"


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
