"""Texture unit model: fixed-point filtering, addressing modes, limits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deform.bilinear import bilinear_sample
from repro.gpusim import (FIXED_POINT_FRACTION_BITS, LayeredTexture2D,
                          TextureDescriptor, XAVIER, fits_texture_limits,
                          quantize_fraction, texture_footprint_bytes)

from helpers import rng


class TestQuantizeFraction:
    def test_exact_on_grid(self):
        assert quantize_fraction(np.array(0.5)) == 0.5
        assert quantize_fraction(np.array(0.25)) == 0.25

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_error_bounded_by_half_lsb(self, f):
        q = float(quantize_fraction(np.array(f)))
        assert abs(q - f) <= 0.5 / (1 << FIXED_POINT_FRACTION_BITS) + 1e-12

    def test_bits_constant(self):
        assert FIXED_POINT_FRACTION_BITS == 8  # CUDA 1.8 fixed point


class TestDescriptor:
    def test_invalid_address_mode(self):
        with pytest.raises(ValueError):
            TextureDescriptor(address_mode="weird")

    def test_invalid_filter_mode(self):
        with pytest.raises(ValueError):
            TextureDescriptor(filter_mode="cubic")

    def test_wrap_requires_normalized(self):
        with pytest.raises(ValueError):
            TextureDescriptor(address_mode="wrap", normalized_coords=False)


class TestLayeredTexture:
    def test_from_feature_map_layer_indexing(self):
        fm = rng(0).normal(size=(2, 3, 4, 4)).astype(np.float32)
        tex = LayeredTexture2D.from_feature_map(fm)
        assert tex.num_layers == 6
        # layer n*C + c convention (paper: batch folded into layers)
        assert np.allclose(tex.data[1 * 3 + 2], fm[1, 2])

    def test_extent_limit_enforced(self):
        # N*C > 2048 exceeds the Xavier layered-texture limit (paper §III-B)
        fm = np.zeros((1, 3000, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            LayeredTexture2D.from_feature_map(fm, spec=XAVIER)

    def test_fits_texture_limits_helper(self):
        assert fits_texture_limits((1, 2048, 10, 10), XAVIER)
        assert not fits_texture_limits((2, 2000, 10, 10), XAVIER)

    def test_footprint_bytes(self):
        assert texture_footprint_bytes((2, 3, 4, 5)) == 2 * 3 * 4 * 5 * 4

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            LayeredTexture2D(np.zeros((4, 4), dtype=np.float32))


class TestLinearFiltering:
    def test_matches_software_within_fixed_point(self):
        img = rng(1).normal(size=(9, 11)).astype(np.float32)
        tex = LayeredTexture2D(img[None])
        py = rng(2).uniform(-1.0, 9.5, size=(200,)).astype(np.float32)
        px = rng(3).uniform(-1.0, 11.5, size=(200,)).astype(np.float32)
        hw = tex.fetch_at_pixel_coords(np.zeros(200, dtype=np.int64), py, px)
        sw = bilinear_sample(img, py, px)
        # two coordinates, each quantised to 2^-8, against |img| ~ 3
        tol = 4.0 * 2 ** -FIXED_POINT_FRACTION_BITS * np.abs(img).max() * 2
        assert np.abs(hw - sw).max() < tol

    def test_exact_at_texel_centres(self):
        img = rng(4).normal(size=(5, 5)).astype(np.float32)
        tex = LayeredTexture2D(img[None])
        ys, xs = np.mgrid[0:5, 0:5]
        vals = tex.fetch_at_pixel_coords(
            np.zeros(25, dtype=np.int64),
            ys.ravel().astype(np.float32), xs.ravel().astype(np.float32))
        assert np.allclose(vals, img.ravel(), atol=1e-6)

    def test_border_mode_zero_outside(self):
        img = np.ones((4, 4), dtype=np.float32)
        tex = LayeredTexture2D(img[None])
        v = tex.fetch_at_pixel_coords(np.array([0]),
                                      np.array([-3.0], dtype=np.float32),
                                      np.array([1.0], dtype=np.float32))
        assert np.allclose(v, 0.0)

    def test_clamp_mode_replicates_edge(self):
        img = np.arange(16, dtype=np.float32).reshape(4, 4)
        tex = LayeredTexture2D(
            img[None], desc=TextureDescriptor(address_mode="clamp"))
        v = tex.fetch_at_pixel_coords(np.array([0]),
                                      np.array([-5.0], dtype=np.float32),
                                      np.array([0.0], dtype=np.float32))
        assert np.allclose(v, img[0, 0], atol=1e-5)

    def test_point_filtering_nearest(self):
        img = np.arange(9, dtype=np.float32).reshape(3, 3)
        tex = LayeredTexture2D(
            img[None], desc=TextureDescriptor(filter_mode="point"))
        v = tex.fetch(np.array([0]), np.array([1.7], dtype=np.float32),
                      np.array([2.2], dtype=np.float32))
        assert np.allclose(v, img[1, 2])

    def test_wrap_mode_periodic(self):
        img = np.arange(4, dtype=np.float32).reshape(1, 4)
        tex = LayeredTexture2D(
            img[None],
            desc=TextureDescriptor(address_mode="wrap",
                                   filter_mode="point",
                                   normalized_coords=True))
        # x = 1.25 normalised wraps to 0.25 -> texel 1
        v = tex.fetch(np.array([0]), np.array([0.1], dtype=np.float32),
                      np.array([1.25], dtype=np.float32))
        assert np.allclose(v, img[0, 1])

    def test_mirror_mode_reflects(self):
        img = np.arange(4, dtype=np.float32).reshape(1, 4)
        tex = LayeredTexture2D(
            img[None],
            desc=TextureDescriptor(address_mode="mirror",
                                   filter_mode="point",
                                   normalized_coords=True))
        # floor(1.25)=1 odd -> coordinate 1 - 0.25 = 0.75 -> texel 3
        v = tex.fetch(np.array([0]), np.array([0.1], dtype=np.float32),
                      np.array([1.25], dtype=np.float32))
        assert np.allclose(v, img[0, 3])

    def test_fp16_coords_close_to_fp32(self):
        """tex2D++ numerics: fp16 coordinates keep 10 mantissa bits > the 8
        the filter uses, so the deviation stays at fixed-point scale."""
        img = rng(5).normal(size=(16, 16)).astype(np.float32)
        tex32 = LayeredTexture2D(img[None])
        tex16 = LayeredTexture2D(
            img[None], desc=TextureDescriptor(fp16_coords=True))
        py = rng(6).uniform(0, 15, size=(300,)).astype(np.float32)
        px = rng(7).uniform(0, 15, size=(300,)).astype(np.float32)
        layer = np.zeros(300, dtype=np.int64)
        v32 = tex32.fetch_at_pixel_coords(layer, py, px)
        v16 = tex16.fetch_at_pixel_coords(layer, py, px)
        assert np.abs(v32 - v16).max() < 0.12 * np.abs(img).max()

    def test_per_layer_isolation(self):
        """Interpolation never mixes neighbouring channels (the reason the
        paper picks layered textures over flat 2-D storage)."""
        data = np.zeros((2, 4, 4), dtype=np.float32)
        data[1] = 100.0
        tex = LayeredTexture2D(data)
        v = tex.fetch_at_pixel_coords(np.array([0]),
                                      np.array([3.0], dtype=np.float32),
                                      np.array([3.0], dtype=np.float32))
        assert np.allclose(v, 0.0)
