"""DefconEngine: trained models on the simulated texture backends."""

import numpy as np
import pytest

from repro.gpusim import RTX_2080TI, XAVIER
from repro.models import build_classifier, build_yolact
from repro.nas import manual_interval_placement
from repro.pipeline import DefconEngine

from helpers import rng

PLACEMENT = manual_interval_placement(9, 3)


@pytest.fixture(scope="module")
def yolact():
    return build_yolact("r50s", placement=PLACEMENT, bound=7.0, seed=0)


@pytest.fixture(scope="module")
def images():
    return rng(0).uniform(0, 1, size=(2, 3, 64, 64)).astype(np.float32)


class TestEngineBasics:
    def test_counts_deformable_layers(self, yolact):
        eng = DefconEngine(yolact, XAVIER)
        assert eng.num_deformable_layers == sum(PLACEMENT)

    def test_context_installs_and_removes_runtime(self, yolact):
        from repro.deform.layers import DeformConv2d

        eng = DefconEngine(yolact, XAVIER)
        layers = [m for m in yolact.modules()
                  if isinstance(m, DeformConv2d)]
        with eng:
            assert all(l.texture_runtime is not None for l in layers)
        assert all(l.texture_runtime is None for l in layers)

    def test_detect_accumulates_kernel_log(self, yolact, images):
        eng = DefconEngine(yolact, XAVIER, backend="tex2dpp")
        eng.detect(images, score_threshold=0.05)
        # 2 kernels per deformable layer per forward
        assert len(eng.log.records) == 2 * sum(PLACEMENT)
        assert eng.deformable_latency_ms() > 0
        names = {r["kernel"] for r in eng.nvprof_rows()}
        assert "deformable_tex2dpp" in names

    def test_autotune_binds_tiles(self, yolact):
        eng = DefconEngine(yolact, XAVIER, backend="tex2d", autotune=True,
                           tune_budget=6)
        assert len(eng.tiles) == sum(PLACEMENT)
        for (c, h, w, s), (ty, tx) in eng.tiles.items():
            assert ty * tx <= XAVIER.max_threads_per_block


class TestTileCacheKeyUnification:
    """Regression: runtime lookups must see the tuned tiles (ISSUE 1)."""

    @pytest.fixture(scope="class")
    def tuned_engine(self):
        model = build_classifier("r50s", placement=PLACEMENT, bound=7.0,
                                 seed=0)
        return DefconEngine(model, XAVIER, backend="tex2d", autotune=True,
                            tune_budget=3)

    def test_nominal_input_hits_every_lookup(self, tuned_engine):
        xs = rng(2).uniform(0, 1, size=(2, 3, 64, 64)).astype(np.float32)
        tuned_engine.classify(xs)
        stats = tuned_engine.tile_cache_stats
        assert stats.hits > 0
        assert stats.misses == 0

    def test_non_nominal_input_uses_tuned_tiles(self):
        """Resized inputs must run with tuned tiles, not DEFAULT_TILE —
        the silent fallback this PR fixes."""
        model = build_classifier("r50s", placement=PLACEMENT, bound=7.0,
                                 seed=0)
        eng = DefconEngine(model, XAVIER, backend="tex2d", autotune=True,
                           tune_budget=3)
        xs = rng(3).uniform(0, 1, size=(1, 3, 48, 48)).astype(np.float32)
        eng.classify(xs)
        stats = eng.tile_cache_stats
        assert stats.misses == 0, "non-nominal shapes fell back silently"
        assert stats.near_hits > 0
        # every substituted tile comes from the tuned set
        tuned = set(eng.tiles.values())
        assert set(eng._runtime.resolved.values()) <= tuned

    def test_untuned_engine_counts_misses(self, yolact, images):
        eng = DefconEngine(yolact, XAVIER, backend="tex2d")
        eng.detect(images, score_threshold=0.05)
        stats = eng.tile_cache_stats
        assert stats.hits == 0 and stats.near_hits == 0
        assert stats.misses == sum(PLACEMENT)

    def test_bad_backend_rejected_at_construction(self, yolact):
        with pytest.raises(ValueError, match="unknown backend 'cuda'"):
            DefconEngine(yolact, XAVIER, backend="cuda")


class TestTileStoreWarmStart:
    def test_second_engine_performs_zero_tuner_evaluations(self, tmp_path):
        from repro.autotune import TileStore

        path = tmp_path / "tiles.json"
        model = build_classifier("r50s", placement=PLACEMENT, bound=7.0,
                                 seed=0)
        cold = DefconEngine(model, XAVIER, backend="tex2d", autotune=True,
                            tune_budget=3, tile_store=TileStore(path))
        assert cold.tune_evaluations > 0
        assert len(cold.tiles) == 3   # one per distinct site geometry

        warm = DefconEngine(model, XAVIER, backend="tex2d", autotune=True,
                            tune_budget=3, tile_store=TileStore(path))
        assert warm.tune_evaluations == 0
        assert warm.tiles == cold.tiles

        # the warm engine also *uses* the tiles at a non-nominal size
        xs = rng(4).uniform(0, 1, size=(1, 3, 48, 48)).astype(np.float32)
        warm.classify(xs)
        assert warm.tile_cache_stats.misses == 0
        assert warm.tile_cache_stats.near_hits > 0


class TestNumericalParity:
    def test_texture_detections_match_software(self, yolact, images):
        """The accuracy claim on a real trained stack: identical inputs
        through the tex2D++ path yield the same detections (fixed-point
        filtering is below decision thresholds)."""
        sw = yolact.detect(images, score_threshold=0.05)
        eng = DefconEngine(yolact, XAVIER, backend="tex2dpp")
        hw = eng.detect(images, score_threshold=0.05)
        assert len(sw) == len(hw)
        for a, b in zip(sorted(sw, key=lambda d: -d.score),
                        sorted(hw, key=lambda d: -d.score)):
            assert a.label == b.label
            assert a.score == pytest.approx(b.score, abs=0.02)
            assert np.abs(a.box - b.box).max() < 2.0

    def test_classifier_predictions_match(self):
        model = build_classifier("r50s", placement=PLACEMENT, bound=7.0,
                                 seed=0)
        xs = rng(1).uniform(0, 1, size=(6, 3, 64, 64)).astype(np.float32)
        sw = model.predict(xs)
        eng = DefconEngine(model, XAVIER, backend="tex2d")
        hw = eng.classify(xs)
        assert (sw == hw).mean() >= 5 / 6   # fixed-point flips at most one


class TestBackendsAndDevices:
    def test_pytorch_backend_no_texture_requests(self, yolact, images):
        eng = DefconEngine(yolact, XAVIER, backend="pytorch")
        eng.detect(images, score_threshold=0.05)
        sample = eng.log.by_name()["deformable_im2col"]
        assert sample.tex_cache_requests == 0

    def test_2080ti_deformable_time_lower(self, yolact, images):
        xa = DefconEngine(yolact, XAVIER, backend="tex2d")
        xa.detect(images, score_threshold=0.05)
        ti = DefconEngine(yolact, RTX_2080TI, backend="tex2d")
        ti.detect(images, score_threshold=0.05)
        assert ti.deformable_latency_ms() < xa.deformable_latency_ms()

    def test_modulated_layers_rejected(self, images):
        from repro.tensor import Tensor, no_grad

        model = build_yolact("r50s", placement=PLACEMENT, seed=0)
        from repro.deform.layers import DeformConv2d

        for m in model.modules():
            if isinstance(m, DeformConv2d):
                # retrofit a modulated head to trip the guard
                import numpy as _np

                from repro.nn import Conv2d

                m.mask_head = Conv2d(m.in_channels,
                                     m.deformable_groups * 9, 3, padding=1)
                m.modulated = True
        eng = DefconEngine(model, XAVIER)
        with pytest.raises(NotImplementedError):
            with eng, no_grad():
                model(Tensor(images))
