"""Hot-path perf-model invariants: plan cache, one-pass re-tiling,
process-parallel sweep.

The optimisations in docs/performance.md are pure wall-time wins — every
test here pins the *bit-identical* contract: cached, re-tiled and parallel
paths must reproduce the uncached simulation exactly, not approximately.
"""

import numpy as np
import pytest

from repro.gpusim import XAVIER
from repro.gpusim.cache import TextureCacheModel
from repro.gpusim.trace import (SamplePlan, cta_ids_for_tile,
                                texture_fetch_trace)
from repro.autotune import TileTuner
from repro.deform.deform_conv import sampling_positions
from repro.kernels import LayerConfig, PlanCache, offsets_digest, synth_offsets
from repro.kernels.tex2d import run_tex2d
from repro.obs import MetricsRegistry, SpanTracer

from helpers import rng

GEOMETRIES = [
    LayerConfig(8, 8, 20, 20),
    LayerConfig(4, 4, 17, 23, stride=2),
    LayerConfig(8, 8, 14, 14, dilation=2, padding=2),
    LayerConfig(8, 8, 16, 16, deformable_groups=2),
]
TILES = [(4, 4), (8, 8), (16, 16), (8, 32), (2, 2)]


def _positions(cfg, seed=0, sigma=2.0):
    off = synth_offsets(cfg, sigma=sigma, seed=seed)
    py, px = sampling_positions(off, (cfg.height, cfg.width),
                                cfg.kernel_size, cfg.stride, cfg.padding,
                                cfg.dilation, cfg.deformable_groups)
    return off, py[0, 0], px[0, 0]


def _inputs(cfg, seed=0):
    g = rng(seed)
    x = g.normal(size=cfg.input_shape()).astype(np.float32)
    w = g.normal(size=cfg.weight_shape()).astype(np.float32)
    off = synth_offsets(cfg, seed=seed)
    return x, off, w


# ----------------------------------------------------------------------
# one-pass re-tiling == fresh simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cfg", GEOMETRIES, ids=lambda c: c.label())
def test_retiled_simulation_bit_identical(cfg):
    """precompute + simulate_retiled replays simulate() exactly, for every
    tile, on random (smooth) offsets."""
    _, py, px = _positions(cfg)
    model = TextureCacheModel(XAVIER)
    y0 = np.floor(py).ravel().astype(np.int64)
    x0 = np.floor(px).ravel().astype(np.int64)
    k, l = py.shape
    pixel = np.broadcast_to(np.arange(l), (k, l)).ravel()
    trace = model.precompute(y0, x0, pixel, cfg.height, cfg.width)
    for tile in TILES:
        ty0, tx0, cta, scale = texture_fetch_trace(py, px, cfg.out_width,
                                                   tile, SamplePlan())
        assert scale == 1.0
        fresh = model.simulate(ty0, tx0, cta, cfg.height, cfg.width)
        retiled = model.simulate_retiled(
            trace, cta_ids_for_tile(cfg.out_height, cfg.out_width, tile))
        assert retiled == fresh          # bit-identical, not approx


def test_retiled_simulation_all_corners_out_of_bounds():
    cfg = LayerConfig(4, 4, 8, 8)
    model = TextureCacheModel(XAVIER)
    y0 = np.full(cfg.taps * cfg.out_pixels, -10, dtype=np.int64)
    x0 = np.full_like(y0, -10)
    pixel = np.broadcast_to(np.arange(cfg.out_pixels),
                            (cfg.taps, cfg.out_pixels)).ravel()
    trace = model.precompute(y0, x0, pixel, cfg.height, cfg.width)
    st = model.simulate_retiled(
        trace, cta_ids_for_tile(cfg.out_height, cfg.out_width, (4, 4)))
    assert st.texel_reads == 0 and st.misses == 0 and st.hits == 0


# ----------------------------------------------------------------------
# plan cache == uncached run_tex2d
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fp16", [False, True], ids=["tex2d", "tex2dpp"])
@pytest.mark.parametrize("cfg", GEOMETRIES[:2], ids=lambda c: c.label())
def test_plan_cache_stats_bit_identical(cfg, fp16):
    x, off, w = _inputs(cfg)
    cache = PlanCache()
    for tile in TILES[:3]:
        ref = run_tex2d(x, off, w, None, cfg, XAVIER, tile=tile,
                        fp16_offsets=fp16, compute_output=False)
        for _ in range(2):               # miss then hit: both identical
            got = run_tex2d(x, off, w, None, cfg, XAVIER, tile=tile,
                            fp16_offsets=fp16, compute_output=False,
                            plan_cache=cache)
            assert got.sample_kernel == ref.sample_kernel
            assert got.kernels[1] == ref.kernels[1]
    # 3 tiles × 2 runs: one trace build, misses on first sight of each
    # (tile, layers) combo, hits after
    assert cache.stats.trace_builds == 1
    assert cache.stats.misses == 3
    assert cache.stats.hits == 3


def test_plan_cache_distinguishes_offsets():
    cfg = GEOMETRIES[0]
    x, off_a, w = _inputs(cfg, seed=0)
    off_b = synth_offsets(cfg, seed=99)
    assert offsets_digest(off_a) != offsets_digest(off_b)
    cache = PlanCache()
    for off in (off_a, off_b):
        ref = run_tex2d(x, off, w, None, cfg, XAVIER,
                        compute_output=False)
        got = run_tex2d(x, off, w, None, cfg, XAVIER,
                        compute_output=False, plan_cache=cache)
        assert got.sample_kernel == ref.sample_kernel
    assert cache.stats.trace_builds == 2


def test_plan_cache_lru_eviction_stays_correct():
    cfg = GEOMETRIES[0]
    x, _, w = _inputs(cfg)
    cache = PlanCache(max_entries=1)
    offs = [synth_offsets(cfg, seed=s) for s in range(3)]
    refs = [run_tex2d(x, off, w, None, cfg, XAVIER, compute_output=False)
            for off in offs]
    # cycle twice through 3 offset tensors with capacity 1: every lookup
    # misses and rebuilds, but results never drift
    for _ in range(2):
        for off, ref in zip(offs, refs):
            got = run_tex2d(x, off, w, None, cfg, XAVIER,
                            compute_output=False, plan_cache=cache)
            assert got.sample_kernel == ref.sample_kernel
    assert len(cache) == 1
    assert cache.stats.trace_builds == 6   # evicted every time
    assert cache.stats.hits == 0


def test_plan_cache_sampled_trace_fallback_bit_identical():
    """Beyond plan.max_fetches the trace is CTA-sampled (tile-dependent);
    the cache must replay that sampling exactly per tile."""
    cfg = LayerConfig(4, 4, 40, 40)
    x, off, w = _inputs(cfg)
    plan = SamplePlan(max_fetches=cfg.taps * cfg.out_pixels // 4)
    cache = PlanCache()
    for tile in ((8, 8), (4, 16), (16, 16)):
        ref = run_tex2d(x, off, w, None, cfg, XAVIER, tile=tile, plan=plan,
                        compute_output=False)
        got = run_tex2d(x, off, w, None, cfg, XAVIER, tile=tile, plan=plan,
                        compute_output=False, plan_cache=cache)
        assert got.sample_kernel == ref.sample_kernel
    assert cache.stats.trace_builds == 1


def test_plan_cache_functional_output_unchanged():
    cfg = GEOMETRIES[0]
    x, off, w = _inputs(cfg)
    ref = run_tex2d(x, off, w, None, cfg, XAVIER)
    got = run_tex2d(x, off, w, None, cfg, XAVIER, plan_cache=PlanCache())
    np.testing.assert_array_equal(got.output, ref.output)
    assert got.sample_kernel == ref.sample_kernel


def test_plan_cache_observability():
    cfg = GEOMETRIES[0]
    x, off, w = _inputs(cfg)
    registry = MetricsRegistry()
    tracer = SpanTracer()
    cache = PlanCache(registry=registry, tracer=tracer)
    for _ in range(3):
        run_tex2d(x, off, w, None, cfg, XAVIER, compute_output=False,
                  plan_cache=cache)
    snap = registry.snapshot()
    lookups = {tuple(sorted(s["labels"].items())): s["value"]
               for s in snap["plan_cache_lookups"]["series"]}
    assert lookups[(("result", "hit"),)] == 2.0
    assert lookups[(("result", "miss"),)] == 1.0
    assert snap["plan_cache_trace_builds"]["series"][0]["value"] == 1.0
    names = {e["name"] for e in tracer.chrome_trace()["traceEvents"]
             if e.get("cat") == "plancache"}
    assert names == {"plancache.build_trace", "plancache.retile"}
    assert cache.stats.hit_rate == pytest.approx(100.0 * 2 / 3)


def test_shared_plan_cache_keeps_first_registry():
    """An engine receiving an already-bound shared cache must not re-bind
    its counters onto its own registry (which would hijack subsequent
    increments away from the registry ``--metrics-out`` writes)."""
    from repro.models import build_classifier
    from repro.nas import manual_interval_placement
    from repro.pipeline import DefconEngine

    model = build_classifier("r50s",
                             placement=manual_interval_placement(9, 3),
                             bound=7.0, seed=0)
    imgs = rng(0).uniform(0, 1, size=(1, 3, 64, 64)).astype(np.float32)
    first = DefconEngine(model, XAVIER, backend="tex2dpp")
    first.classify(imgs)
    second = DefconEngine(model, XAVIER, backend="tex2dpp",
                          plan_cache=first.plan_cache)
    second.classify(imgs)
    assert second.plan_cache is first.plan_cache
    snap = first.registry.snapshot()
    total = sum(s["value"] for s in snap["plan_cache_lookups"]["series"])
    assert total == float(first.plan_cache.stats.lookups)
    assert "plan_cache_lookups" not in second.registry.snapshot()


def test_plan_cache_bind_registry_republishes_history():
    cfg = GEOMETRIES[0]
    x, off, w = _inputs(cfg)
    cache = PlanCache()
    for _ in range(2):
        run_tex2d(x, off, w, None, cfg, XAVIER, compute_output=False,
                  plan_cache=cache)
    registry = MetricsRegistry()      # bound *after* the activity
    cache.bind_registry(registry)
    snap = registry.snapshot()
    total = sum(s["value"] for s in snap["plan_cache_lookups"]["series"])
    assert total == 2.0


# ----------------------------------------------------------------------
# tuner: re-tiled sweep and process-parallel sweep
# ----------------------------------------------------------------------
def test_sweep_matches_legacy_grid_exactly():
    cfg = LayerConfig(16, 16, 28, 28)
    fast = TileTuner(XAVIER, seed=0).tune(cfg, "sweep")
    legacy = TileTuner(XAVIER, seed=0, plan_cache=False).tune(cfg, "grid")
    assert fast.best_point == legacy.best_point
    assert fast.best_value == legacy.best_value
    assert dict(fast.history) == dict(legacy.history)


def test_parallel_sweep_identical_to_serial():
    cfg = LayerConfig(16, 16, 28, 28)
    serial = TileTuner(XAVIER, seed=0).tune(cfg, "sweep")
    parallel = TileTuner(XAVIER, seed=0, workers=2).tune(cfg, "sweep")
    assert parallel.best_point == serial.best_point
    assert parallel.history == serial.history


def test_parallel_sweep_falls_back_to_serial(monkeypatch):
    """A dead pool (sandbox, pickling failure...) degrades to the serial
    sweep with identical results instead of erroring out."""
    import repro.autotune.tuner as tuner_mod

    cfg = LayerConfig(8, 8, 20, 20)
    serial = TileTuner(XAVIER, seed=0).tune(cfg, "sweep")
    monkeypatch.setattr(tuner_mod.TileTuner, "_sweep_parallel",
                        lambda self, cfg, tiles: None)
    broken = TileTuner(XAVIER, seed=0, workers=4).tune(cfg, "sweep")
    assert broken.history == serial.history


def test_parallel_pool_persists_across_sweeps():
    cfgs = [LayerConfig(8, 8, 20, 20), LayerConfig(8, 8, 16, 16)]
    with TileTuner(XAVIER, seed=0, workers=2) as tuner:
        tuner.tune(cfgs[0], "sweep")
        pool = tuner._pool
        assert pool is not None          # spawned lazily on first sweep
        tuner.tune(cfgs[1], "sweep")
        assert tuner._pool is pool       # ... and reused, not respawned
    assert tuner._pool is None           # context exit shuts it down


def test_sweep_shares_plan_cache_instance():
    cfg = LayerConfig(8, 8, 20, 20)
    cache = PlanCache()
    tuner = TileTuner(XAVIER, seed=0, plan_cache=cache)
    result = tuner.tune(cfg, "sweep")
    assert cache.stats.trace_builds == 1          # one trace for the sweep
    assert cache.stats.misses == len(result.history)
    # a second search over the same layer reuses every tile's stats
    tuner2 = TileTuner(XAVIER, seed=0, plan_cache=cache)
    tuner2.tune(cfg, "sweep")
    assert cache.stats.trace_builds == 1
    assert cache.stats.hits == len(result.history)
