"""Property-based tests on the deformable-convolution operator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn.functional as F
from repro.deform import deform_conv2d
from repro.tensor import Tensor

from helpers import rng


def run_op(x, off, w, stride=1, padding=1, k=3):
    return deform_conv2d(Tensor(x), Tensor(off), Tensor(w), stride=stride,
                         padding=padding).data


class TestAlgebraicProperties:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_linear_in_weights(self, seed):
        g = rng(seed)
        x = g.normal(size=(1, 2, 7, 7)).astype(np.float32)
        off = (0.8 * g.normal(size=(1, 18, 7, 7))).astype(np.float32)
        w1 = g.normal(size=(3, 2, 3, 3)).astype(np.float32)
        w2 = g.normal(size=(3, 2, 3, 3)).astype(np.float32)
        lhs = run_op(x, off, w1 + w2)
        rhs = run_op(x, off, w1) + run_op(x, off, w2)
        assert np.allclose(lhs, rhs, atol=1e-3)

    @given(seed=st.integers(0, 100), scale=st.floats(-2.0, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_linear_in_input(self, seed, scale):
        g = rng(seed)
        x = g.normal(size=(1, 2, 6, 6)).astype(np.float32)
        off = (0.8 * g.normal(size=(1, 18, 6, 6))).astype(np.float32)
        w = g.normal(size=(2, 2, 3, 3)).astype(np.float32)
        lhs = run_op(np.float32(scale) * x, off, w)
        rhs = np.float32(scale) * run_op(x, off, w)
        assert np.allclose(lhs, rhs, atol=1e-3)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_batch_independence(self, seed):
        """Each batch element is processed independently."""
        g = rng(seed)
        x = g.normal(size=(2, 2, 6, 6)).astype(np.float32)
        off = (0.7 * g.normal(size=(2, 18, 6, 6))).astype(np.float32)
        w = g.normal(size=(3, 2, 3, 3)).astype(np.float32)
        both = run_op(x, off, w)
        first = run_op(x[:1], off[:1], w)
        assert np.allclose(both[:1], first, atol=1e-4)

    def test_output_bounded_by_input_and_weight_norms(self):
        g = rng(0)
        x = g.normal(size=(1, 3, 8, 8)).astype(np.float32)
        off = (1.5 * g.normal(size=(1, 18, 8, 8))).astype(np.float32)
        w = g.normal(size=(4, 3, 3, 3)).astype(np.float32)
        out = run_op(x, off, w)
        # each output is a sum of ≤ C·K bilinear values, each a convex
        # combination of inputs — a crude but real bound
        bound = np.abs(w).sum(axis=(1, 2, 3)).max() * np.abs(x).max()
        assert np.abs(out).max() <= bound + 1e-4


class TestKernelSizes:
    @pytest.mark.parametrize("k", [1, 5])
    def test_non_3x3_kernels(self, k):
        """The operator supports any square kernel, not just 3×3."""
        g = rng(k)
        pad = k // 2
        x = Tensor(g.normal(size=(1, 2, 9, 9)), requires_grad=True)
        w = Tensor(g.normal(size=(3, 2, k, k)), requires_grad=True)
        off = Tensor(np.zeros((1, 2 * k * k, 9, 9), dtype=np.float32))
        out_d = deform_conv2d(x, off, w, stride=1, padding=pad)
        out_r = F.conv2d(Tensor(x.data), Tensor(w.data), stride=1,
                         padding=pad)
        assert np.abs(out_d.data - out_r.data).max() < 1e-4
        out_d.sum().backward()
        assert x.grad is not None and w.grad is not None

    def test_dilation_positions(self):
        """Dilated deformable conv matches dilated regular conv at Δ=0."""
        g = rng(9)
        x = Tensor(g.normal(size=(1, 2, 11, 11)))
        w = Tensor(g.normal(size=(2, 2, 3, 3)))
        off = Tensor(np.zeros((1, 18, 11, 11), dtype=np.float32))
        out_d = deform_conv2d(x, off, w, stride=1, padding=2, dilation=2)
        out_r = F.conv2d(x, w, stride=1, padding=2, dilation=2)
        assert np.abs(out_d.data - out_r.data).max() < 1e-4
