"""Dataset generator, IoU primitives, and the COCO-style mAP evaluator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (CLASS_NAMES, NUM_CLASSES, Detection, GroundTruth,
                        ShapesDataset, box_from_mask, box_iou,
                        classification_arrays, evaluate_map, make_sample,
                        mask_iou, render_instance)
from repro.data.coco_map import COCO_IOU_THRESHOLDS, average_precision

from helpers import rng


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = ShapesDataset.generate(5, seed=7)
        b = ShapesDataset.generate(5, seed=7)
        for sa, sb in zip(a.samples, b.samples):
            assert np.array_equal(sa.image, sb.image)
            assert len(sa.instances) == len(sb.instances)

    def test_different_seeds_differ(self):
        a = ShapesDataset.generate(3, seed=1)
        b = ShapesDataset.generate(3, seed=2)
        assert not np.array_equal(a.samples[0].image, b.samples[0].image)

    def test_image_range_and_dtype(self):
        ds = ShapesDataset.generate(4, size=48, seed=0)
        for s in ds.samples:
            assert s.image.shape == (3, 48, 48)
            assert s.image.dtype == np.float32
            assert 0.0 <= s.image.min() and s.image.max() <= 1.0

    def test_instances_have_consistent_annotations(self):
        ds = ShapesDataset.generate(8, seed=3)
        for s in ds.samples:
            for inst in s.instances:
                assert 0 <= inst.label < NUM_CLASSES
                assert inst.mask.dtype == np.bool_
                assert inst.mask.sum() >= 12
                x1, y1, x2, y2 = inst.box
                assert x1 < x2 and y1 < y2
                # box is the tight bound of the mask
                want = box_from_mask(inst.mask)
                assert np.allclose([x1, y1, x2, y2], want)

    def test_single_object_mode(self):
        ds = ShapesDataset.generate(6, seed=4, num_objects=1)
        assert all(len(s.instances) == 1 for s in ds.samples)

    def test_zero_deformation_still_valid(self):
        s = make_sample(size=48, rng=rng(5), deformation=0.0)
        assert all(i.mask.any() for i in s.instances)

    def test_all_classes_renderable(self):
        for label in range(NUM_CLASSES):
            mask = render_instance(label, 48, (24.0, 24.0), 9.0, rng(label))
            assert mask.sum() > 20, CLASS_NAMES[label]

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            render_instance(99, 32, (16.0, 16.0), 6.0, rng(0))

    def test_batches_cover_dataset(self):
        ds = ShapesDataset.generate(10, seed=6)
        seen = 0
        for images, samples in ds.batches(4):
            assert images.shape[0] == len(samples)
            seen += len(samples)
        assert seen == 10

    def test_batches_shuffled_by_seed(self):
        ds = ShapesDataset.generate(10, seed=6)
        first_a = next(ds.batches(4, seed=1))[0]
        first_b = next(ds.batches(4, seed=2))[0]
        assert not np.array_equal(first_a, first_b)

    def test_classification_arrays_single_instance_only(self):
        ds = ShapesDataset.generate(20, seed=8)
        xs, ys = classification_arrays(ds)
        assert len(xs) == len(ys)
        assert len(xs) == sum(1 for s in ds.samples
                              if len(s.instances) == 1)

    def test_deformation_increases_shape_variability(self):
        """Deformed instances of the same class vary more."""
        def spread(deform):
            areas = []
            for i in range(12):
                mask = render_instance(1, 48, (24.0, 24.0), 9.0,
                                       rng(100 + i), deformation=deform)
                areas.append(mask.sum())
            return np.std(areas)

        assert spread(1.5) > spread(0.0)


class TestIoU:
    def test_identical_boxes(self):
        b = np.array([[0, 0, 10, 10]])
        assert box_iou(b, b)[0, 0] == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = np.array([[0, 0, 5, 5]])
        b = np.array([[10, 10, 20, 20]])
        assert box_iou(a, b)[0, 0] == 0.0

    def test_known_overlap(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[5, 0, 15, 10]])
        # inter 50, union 150
        assert box_iou(a, b)[0, 0] == pytest.approx(1 / 3)

    def test_empty_inputs(self):
        assert box_iou(np.zeros((0, 4)), np.zeros((2, 4))).shape == (0, 2)

    @given(x1=st.floats(0, 20), y1=st.floats(0, 20),
           w=st.floats(1, 10), h=st.floats(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_iou_bounds_and_symmetry(self, x1, y1, w, h):
        a = np.array([[x1, y1, x1 + w, y1 + h]])
        b = np.array([[x1 + w / 2, y1, x1 + w * 1.5, y1 + h]])
        iou_ab = box_iou(a, b)[0, 0]
        iou_ba = box_iou(b, a)[0, 0]
        assert 0.0 <= iou_ab <= 1.0
        assert iou_ab == pytest.approx(iou_ba)

    def test_mask_iou_values(self):
        a = np.zeros((8, 8), dtype=bool)
        b = np.zeros((8, 8), dtype=bool)
        a[:4] = True
        b[2:6] = True
        # inter 16, union 48
        assert mask_iou(a[None], b[None])[0, 0] == pytest.approx(1 / 3)

    def test_mask_iou_empty(self):
        empty = np.zeros((4, 4), dtype=bool)
        full = np.ones((4, 4), dtype=bool)
        assert mask_iou(empty[None], full[None])[0, 0] == 0.0

    def test_box_from_mask_empty(self):
        assert np.allclose(box_from_mask(np.zeros((4, 4), dtype=bool)), 0.0)


def _make_pairs(n_images=6, seed=0):
    """Perfect GT + detections on a synthetic dataset."""
    ds = ShapesDataset.generate(n_images, seed=seed)
    dets, gts = [], []
    for i, s in enumerate(ds.samples):
        for inst in s.instances:
            gts.append(GroundTruth(image_id=i, label=inst.label,
                                   box=np.array(inst.box), mask=inst.mask))
            dets.append(Detection(image_id=i, label=inst.label, score=0.9,
                                  box=np.array(inst.box), mask=inst.mask))
    return dets, gts


class TestMAP:
    def test_perfect_detections_score_one(self):
        dets, gts = _make_pairs()
        r = evaluate_map(dets, gts)
        assert r.box_map == pytest.approx(1.0)
        assert r.mask_map == pytest.approx(1.0)
        assert r.mask_ap50 == pytest.approx(1.0)

    def test_no_detections_score_zero(self):
        _, gts = _make_pairs()
        r = evaluate_map([], gts)
        assert r.box_map == 0.0 and r.mask_map == 0.0

    def test_no_ground_truth_rejected(self):
        with pytest.raises(ValueError):
            evaluate_map([], [])

    def test_wrong_labels_score_zero(self):
        dets, gts = _make_pairs()
        for d in dets:
            d.label = (d.label + 1) % NUM_CLASSES
        r = evaluate_map(dets, gts)
        assert r.box_map == pytest.approx(0.0)

    def test_shifted_boxes_hurt_high_iou_thresholds_first(self):
        dets, gts = _make_pairs()
        for d in dets:
            d.box = d.box + 3.0   # a few pixels off
        ap50 = average_precision(dets, gts, 0.5, use_mask=False)
        ap90 = average_precision(dets, gts, 0.9, use_mask=False)
        assert np.nanmean(list(ap50.values())) > \
            np.nanmean(list(ap90.values()))

    def test_duplicates_counted_as_false_positives(self):
        """A second detection of an already-matched object is an FP that,
        when it outranks another object's TP, dents the precision curve."""
        box_a = np.array([0.0, 0.0, 10.0, 10.0])
        box_b = np.array([30.0, 30.0, 40.0, 40.0])
        gts = [GroundTruth(0, 0, box_a), GroundTruth(0, 0, box_b)]
        clean = [Detection(0, 0, 0.9, box_a), Detection(0, 0, 0.7, box_b)]
        dup = Detection(0, 0, 0.8, box_a.copy())   # between the two TPs
        r_clean = evaluate_map(clean, gts, iou_thresholds=[0.5])
        r_dup = evaluate_map(clean + [dup], gts, iou_thresholds=[0.5])
        assert r_clean.box_map == pytest.approx(1.0)
        assert r_dup.box_map < r_clean.box_map

    def test_low_scoring_false_positives_rank_below(self):
        """FPs with lower score than all TPs leave AP at 1 for the covered
        recall range (precision envelope)."""
        dets, gts = _make_pairs()
        junk = [Detection(d.image_id, d.label, 0.01,
                          d.box + 30.0, None) for d in dets]
        r = evaluate_map(dets + junk, gts,
                         iou_thresholds=[0.5])
        assert r.box_map == pytest.approx(1.0, abs=1e-6)

    def test_half_coverage_scores_about_half(self):
        dets, gts = _make_pairs(n_images=8)
        r = evaluate_map(dets[::2], gts)
        assert 0.2 < r.box_map < 0.8

    def test_image_id_isolation(self):
        """A detection on the wrong image must not match."""
        _, gts = _make_pairs(n_images=2)
        wrong = [Detection(image_id=(g.image_id + 1) % 2, label=g.label,
                           score=0.9, box=g.box.copy(), mask=g.mask)
                 for g in gts]
        r = evaluate_map(wrong, gts)
        assert r.box_map < 0.5

    def test_coco_thresholds(self):
        assert len(COCO_IOU_THRESHOLDS) == 10
        assert COCO_IOU_THRESHOLDS[0] == 0.5
        assert COCO_IOU_THRESHOLDS[-1] == pytest.approx(0.95)

    def test_row_formatting(self):
        dets, gts = _make_pairs()
        row = evaluate_map(dets, gts).row()
        assert row["box_map"] == 100.0
        assert set(row) == {"box_map", "mask_map", "mask_ap50"}
