"""Fused execution == eager execution, bit for bit.

The fused mode (docs/performance.md) is a pure wall-time optimisation of
the texture backends' functional path: a compiled
:class:`~repro.kernels.fused.FusedPlan` replays the exact gather/blend/
contract sequence of the eager path into preallocated buffers.  Every
test here pins the bit-identical contract — outputs AND KernelStats —
plus the plan-cache mechanics the mode rides on: shared LRU lifetime
with the trace entry, clean rebuild after eviction, coalesced concurrent
builds, and digest-on-quantised-offsets keying for tex2D++.
"""

import threading

import numpy as np
import pytest

from repro.gpusim import XAVIER
from repro.gpusim.trace import SamplePlan
from repro.kernels import (LayerConfig, PlanCache, run_deform_op,
                           synth_offsets, validate_execution)
from repro.kernels.fused import build_fused_plan
from repro.kernels.tex2d import run_tex2d

from helpers import rng

GEOMETRIES = [
    LayerConfig(8, 8, 20, 20),
    LayerConfig(4, 4, 17, 23, stride=2),
    LayerConfig(8, 8, 14, 14, dilation=2, padding=2),
    LayerConfig(8, 8, 16, 16, deformable_groups=2),
    LayerConfig(8, 6, 12, 18, batch=2, deformable_groups=4, stride=2),
]
TILES = [(4, 4), (8, 8), (8, 32)]


def _inputs(cfg, seed=0, sigma=2.0):
    g = rng(seed)
    x = g.normal(size=cfg.input_shape()).astype(np.float32)
    w = g.normal(size=cfg.weight_shape()).astype(np.float32)
    b = g.normal(size=(cfg.out_channels,)).astype(np.float32)
    off = synth_offsets(cfg, sigma=sigma, seed=seed)
    return x, off, w, b


def _stats_dicts(res):
    return [k.__dict__ for k in res.kernels]


# ----------------------------------------------------------------------
# fuzz: fused == eager over geometries × backends × tiles × offsets
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cfg", GEOMETRIES, ids=lambda c: c.label())
@pytest.mark.parametrize("backend", ["tex2d", "tex2dpp"])
def test_fused_bit_identical_random_offsets(cfg, backend):
    """Random offsets, several seeds and tiles: outputs and every kernel
    stat match eager exactly (fp32 and fp16-offset variants)."""
    for seed in range(3):
        # wild offsets too — border-clipped taps exercise the folded mask
        sigma = 2.0 if seed < 2 else 25.0
        x, off, w, b = _inputs(cfg, seed=seed, sigma=sigma)
        for tile in TILES:
            pc = PlanCache()
            eager = run_deform_op(backend, x, off, w, b, cfg, XAVIER,
                                  tile=tile, plan_cache=pc)
            fused = run_deform_op(backend, x, off, w, b, cfg, XAVIER,
                                  tile=tile, plan_cache=pc,
                                  execution="fused")
            assert np.array_equal(fused.output, eager.output)
            assert _stats_dicts(fused) == _stats_dicts(eager)


def test_fused_bias_free_and_fresh_output():
    """No-bias path matches too, and repeated fused calls hand out
    independent arrays (the internal buffers must never leak out)."""
    cfg = GEOMETRIES[0]
    x, off, w, _ = _inputs(cfg)
    pc = PlanCache()
    eager = run_tex2d(x, off, w, None, cfg, XAVIER, plan_cache=pc)
    first = run_tex2d(x, off, w, None, cfg, XAVIER, plan_cache=pc,
                      execution="fused").output
    assert np.array_equal(first, eager.output)
    snapshot = first.copy()
    second = run_tex2d(x, off, w, None, cfg, XAVIER, plan_cache=pc,
                       execution="fused").output
    second += 1.0  # mutating one result must not corrupt the other
    assert np.array_equal(first, snapshot)


def test_fused_requires_plan_cache():
    cfg = GEOMETRIES[0]
    x, off, w, b = _inputs(cfg)
    with pytest.raises(ValueError, match="plan_cache"):
        run_tex2d(x, off, w, b, cfg, XAVIER, execution="fused")
    with pytest.raises(ValueError, match="execution mode"):
        run_tex2d(x, off, w, b, cfg, XAVIER, plan_cache=PlanCache(),
                  execution="lazy")
    validate_execution("eager", None)  # eager never needs the cache


# ----------------------------------------------------------------------
# plan-cache mechanics: shared lifetime, eviction, reuse accounting
# ----------------------------------------------------------------------
def test_fused_plan_reused_across_calls():
    cfg = GEOMETRIES[0]
    x, off, w, b = _inputs(cfg)
    pc = PlanCache()
    for _ in range(4):
        run_tex2d(x, off, w, b, cfg, XAVIER, plan_cache=pc,
                  execution="fused")
    assert pc.stats.fused_builds == 1
    assert pc.stats.trace_builds == 1


def test_fused_plan_evicted_mid_stream_rebuilds_cleanly():
    """LRU eviction of the shared trace entry drops the FusedPlan with
    it; the next fused call rebuilds and stays bit-identical."""
    cfg = GEOMETRIES[0]
    x, off, w, b = _inputs(cfg)
    pc = PlanCache(max_entries=1)
    expected = run_tex2d(x, off, w, b, cfg, XAVIER,
                         plan_cache=PlanCache(), execution="fused").output
    run_tex2d(x, off, w, b, cfg, XAVIER, plan_cache=pc, execution="fused")
    # a different offset tensor claims the only slot → eviction
    other = synth_offsets(cfg, seed=99)
    run_tex2d(x, other, w, b, cfg, XAVIER, plan_cache=pc, execution="fused")
    assert len(pc) == 1
    out = run_tex2d(x, off, w, b, cfg, XAVIER, plan_cache=pc,
                    execution="fused").output
    assert np.array_equal(out, expected)
    assert pc.stats.fused_builds == 3  # original + other + rebuild


def test_fused_plans_per_channel_shape_share_entry():
    """Same offsets, different in/out channels: one trace entry carries
    one FusedPlan per (in_channels, out_channels)."""
    base = LayerConfig(8, 8, 20, 20)
    wide = LayerConfig(8, 12, 20, 20)
    x, off, w, b = _inputs(base)
    g = rng(7)
    w2 = g.normal(size=wide.weight_shape()).astype(np.float32)
    b2 = g.normal(size=(wide.out_channels,)).astype(np.float32)
    pc = PlanCache()
    run_tex2d(x, off, w, b, base, XAVIER, plan_cache=pc, execution="fused")
    run_tex2d(x, off, w2, b2, wide, XAVIER, plan_cache=pc,
              execution="fused")
    assert pc.stats.fused_builds == 2
    assert pc.stats.trace_builds == 1    # the trace itself is shared
    assert len(pc) == 1


def test_build_fused_plan_rejects_oversize_texture():
    cfg = LayerConfig(8, 8, 20, 20, batch=XAVIER.max_texture_extent[2])
    off = synth_offsets(cfg, seed=0)
    from repro.deform.deform_conv import sampling_positions
    with pytest.raises(ValueError, match="texture extent"):
        build_fused_plan(cfg, XAVIER, False, lambda: sampling_positions(
            off, (cfg.height, cfg.width), cfg.kernel_size, cfg.stride,
            cfg.padding, cfg.dilation, cfg.deformable_groups))


# ----------------------------------------------------------------------
# satellite 1 regression: tex2D++ keys on *quantised* offsets
# ----------------------------------------------------------------------
def test_fp16_digest_dedupes_quantisation_equivalent_offsets():
    """Two distinct fp32 offset tensors that quantise to the same fp16
    values are the same tex2D++ launch — one entry, one trace build."""
    cfg = GEOMETRIES[0]
    x, off, w, b = _inputs(cfg)
    # perturb far below fp16 resolution, then revert the rare elements
    # that sat exactly on a rounding boundary — off2 differs in fp32 but
    # quantises identically by construction
    off2 = off + np.float32(1e-6)
    boundary = off.astype(np.float16) != off2.astype(np.float16)
    off2[boundary] = off[boundary]
    assert not np.array_equal(off, off2)
    assert np.array_equal(off.astype(np.float16), off2.astype(np.float16))
    pc = PlanCache()
    r1 = run_deform_op("tex2dpp", x, off, w, b, cfg, XAVIER, plan_cache=pc)
    r2 = run_deform_op("tex2dpp", x, off2, w, b, cfg, XAVIER, plan_cache=pc)
    assert pc.stats.trace_builds == 1
    assert len(pc) == 1
    assert pc.stats.hits == 1
    assert np.array_equal(r1.output, r2.output)
    # plain tex2d must still see them as distinct offset tensors
    pc32 = PlanCache()
    run_deform_op("tex2d", x, off, w, b, cfg, XAVIER, plan_cache=pc32)
    run_deform_op("tex2d", x, off2, w, b, cfg, XAVIER, plan_cache=pc32)
    assert pc32.stats.trace_builds == 2


# ----------------------------------------------------------------------
# satellite 3 regression: concurrent misses coalesce onto one build
# ----------------------------------------------------------------------
def _hammer(n_threads, fn):
    start = threading.Barrier(n_threads)
    errors = []

    def work():
        start.wait()
        try:
            fn()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


def test_concurrent_misses_build_trace_exactly_once():
    """The double-build race: N threads missing the same key must
    coalesce onto one ``_build_entry`` — ``trace_builds`` stays exact."""
    cfg = GEOMETRIES[0]
    x, off, w, b = _inputs(cfg)
    for trial in range(5):
        pc = PlanCache()
        _hammer(8, lambda: run_tex2d(x, off, w, b, cfg, XAVIER,
                                     compute_output=False, plan_cache=pc))
        assert pc.stats.trace_builds == 1, f"trial {trial}"
        assert len(pc) == 1


def test_concurrent_fused_calls_compile_once_and_agree():
    cfg = GEOMETRIES[0]
    x, off, w, b = _inputs(cfg)
    expected = run_tex2d(x, off, w, b, cfg, XAVIER, plan_cache=PlanCache(),
                         execution="fused").output
    for trial in range(3):
        pc = PlanCache()
        outs = []

        def call():
            res = run_tex2d(x, off, w, b, cfg, XAVIER, plan_cache=pc,
                            execution="fused")
            outs.append(res.output)

        _hammer(6, call)
        assert pc.stats.fused_builds == 1, f"trial {trial}"
        assert pc.stats.trace_builds == 1
        for out in outs:
            assert np.array_equal(out, expected)


def test_concurrent_distinct_keys_still_build_each():
    """Coalescing must be per key — distinct offsets build separately."""
    cfg = GEOMETRIES[0]
    x, _, w, b = _inputs(cfg)
    offsets = [synth_offsets(cfg, seed=s) for s in range(4)]
    pc = PlanCache()
    idx = {"i": 0}
    lock = threading.Lock()

    def call():
        with lock:
            off = offsets[idx["i"] % len(offsets)]
            idx["i"] += 1
        run_tex2d(x, off, w, b, cfg, XAVIER, compute_output=False,
                  plan_cache=pc)

    _hammer(8, call)
    assert pc.stats.trace_builds == len(offsets)
    assert len(pc) == len(offsets)


# ----------------------------------------------------------------------
# sample-plan interaction: fused path works with a sampled trace too
# ----------------------------------------------------------------------
def test_fused_with_sampling_plan_bit_identical():
    cfg = LayerConfig(8, 8, 24, 24)
    x, off, w, b = _inputs(cfg)
    plan = SamplePlan(max_fetches=64, max_warps=8)
    pc = PlanCache()
    eager = run_tex2d(x, off, w, b, cfg, XAVIER, plan=plan, plan_cache=pc)
    fused = run_tex2d(x, off, w, b, cfg, XAVIER, plan=plan, plan_cache=pc,
                      execution="fused")
    assert np.array_equal(fused.output, eager.output)
    assert _stats_dicts(fused) == _stats_dicts(eager)
