"""Trace-generation tests: warp shaping, sampling plans, CTA tagging."""

import numpy as np
import pytest

from repro.deform import sampling_positions
from repro.gpusim import XAVIER, SamplePlan, deform_input_coalescing
from repro.gpusim.trace import texture_fetch_trace, warp_addresses_for_corner

from helpers import rng


def make_positions(k=9, out_h=12, out_w=12, sigma=1.5, seed=0):
    off = (sigma * rng(seed).normal(size=(1, 2 * k, out_h, out_w))
           ).astype(np.float32)
    py, px = sampling_positions(off, (out_h, out_w), 3, 1, 1, 1, 1)
    return py[0, 0], px[0, 0]


class TestWarpAddresses:
    def test_shapes_and_padding(self):
        py, px = make_positions(out_h=5, out_w=5)   # L = 25, pads to 32
        addr, (y, x), scale = warp_addresses_for_corner(
            py, px, (0, 0), width=5, dtype_bytes=4, spec=XAVIER)
        assert addr.shape[1] == 32
        assert addr.shape[0] == 9      # one warp per tap after padding
        assert scale == 1.0

    def test_corner_offsets_applied(self):
        py, px = make_positions()
        a00, (y00, _), _ = warp_addresses_for_corner(
            py, px, (0, 0), 12, 4, XAVIER)
        a10, (y10, _), _ = warp_addresses_for_corner(
            py, px, (1, 0), 12, 4, XAVIER)
        assert np.array_equal(y10, y00 + 1)

    def test_sampling_reduces_warps_and_scales(self):
        py, px = make_positions(out_h=40, out_w=40)
        plan = SamplePlan(max_warps=10, seed=0)
        addr, _, scale = warp_addresses_for_corner(
            py, px, (0, 0), 40, 4, XAVIER, plan)
        assert addr.shape[0] == 10
        full_warps = 9 * ((40 * 40 + 31) // 32)
        assert scale == pytest.approx(full_warps / 10)

    def test_sampling_deterministic(self):
        py, px = make_positions(out_h=40, out_w=40)
        plan = SamplePlan(max_warps=8, seed=3)
        a1, _, _ = warp_addresses_for_corner(py, px, (0, 0), 40, 4, XAVIER,
                                             plan)
        a2, _, _ = warp_addresses_for_corner(py, px, (0, 0), 40, 4, XAVIER,
                                             plan)
        assert np.array_equal(a1, a2)


class TestDeformInputCoalescing:
    def test_channel_scaling_linear(self):
        py, px = make_positions()
        one = deform_input_coalescing(py, px, 12, 12, channels=1,
                                      dtype_bytes=4, spec=XAVIER)
        four = deform_input_coalescing(py, px, 12, 12, channels=4,
                                       dtype_bytes=4, spec=XAVIER)
        assert four.transactions == 4 * one.transactions
        assert four.bytes_requested == pytest.approx(
            4 * one.bytes_requested)

    def test_smoother_offsets_coalesce_better(self):
        k, oh, ow = 9, 24, 24
        zero_off = np.zeros((1, 2 * k, oh, ow), dtype=np.float32)
        py0, px0 = sampling_positions(zero_off, (oh, ow), 3, 1, 1, 1, 1)
        wild = (5.0 * rng(1).normal(size=(1, 2 * k, oh, ow))
                ).astype(np.float32)
        pyw, pxw = sampling_positions(wild, (oh, ow), 3, 1, 1, 1, 1)
        smooth = deform_input_coalescing(py0[0, 0], px0[0, 0], oh, ow, 1, 4,
                                         XAVIER)
        rough = deform_input_coalescing(pyw[0, 0], pxw[0, 0], oh, ow, 1, 4,
                                        XAVIER)
        assert smooth.efficiency > rough.efficiency

    def test_out_of_bounds_corners_suppressed(self):
        """All positions far outside the image: no active lanes at all."""
        k, oh, ow = 9, 8, 8
        off = np.full((1, 2 * k, oh, ow), 100.0, dtype=np.float32)
        py, px = sampling_positions(off, (oh, ow), 3, 1, 1, 1, 1)
        stats = deform_input_coalescing(py[0, 0], px[0, 0], oh, ow, 1, 4,
                                        XAVIER)
        assert stats.bytes_requested == 0.0


class TestTextureFetchTrace:
    def test_cta_tagging_matches_tiles(self):
        py, px = make_positions(out_h=8, out_w=8, sigma=0.0)
        y0, x0, cta, scale = texture_fetch_trace(py, px, out_w=8,
                                                 tile=(4, 4))
        assert scale == 1.0
        # 8x8 output with 4x4 tiles -> 4 CTAs
        assert set(np.unique(cta)) == {0, 1, 2, 3}
        # the centre tap of output pixel (0,0) belongs to CTA 0
        assert cta[4 * 64] == 0

    def test_fetch_sampling_keeps_whole_ctas(self):
        py, px = make_positions(out_h=32, out_w=32)
        plan = SamplePlan(max_fetches=2000, seed=0)
        y0, x0, cta, scale = texture_fetch_trace(py, px, out_w=32,
                                                 tile=(8, 8), plan=plan)
        assert scale > 1.0
        # every surviving CTA keeps its full fetch set (16 CTAs × 64 px × 9)
        _, counts = np.unique(cta, return_counts=True)
        assert (counts == counts[0]).all()
