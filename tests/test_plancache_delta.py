"""Delta-keyed plan cache: the streaming-session reuse semantics.

These tests pin the contract of docs/streaming.md:

* a delta hit (exact-digest miss within ``delta_bound`` of the session's
  anchor) reuses the anchor's memoised trace simulation and the
  session-owned fused buffers, but outputs stay **bit-identical** to a
  cold, uncached run of the same offsets;
* a delta probe only fires on an exact-digest miss — a known digest
  with an unseen tile is a plain miss against its own trace;
* deltas over the bound are rejected (and counted);
* session state is bounded: ``end_session`` drops the anchors, LRU
  eviction under multi-stream pressure drops them implicitly, and the
  stream re-anchors exactly afterwards.
"""

import threading

import numpy as np
import pytest

from repro.gpusim import XAVIER
from repro.kernels import LayerConfig, PlanCache, synth_offsets
from repro.kernels.tex2d import run_tex2d, run_tex2dpp
from repro.models import build_classifier
from repro.obs import MetricsRegistry
from repro.pipeline.engine import DefconEngine

from helpers import rng

pytestmark = pytest.mark.streaming

CFG = LayerConfig(8, 8, 20, 20)


def _inputs(cfg=CFG, seed=0):
    g = rng(seed)
    x = g.normal(size=cfg.input_shape()).astype(np.float32)
    w = g.normal(size=cfg.weight_shape()).astype(np.float32)
    b = g.normal(size=(cfg.out_channels,)).astype(np.float32)
    off = synth_offsets(cfg, sigma=2.0, seed=seed)
    return x, off, w, b


def _perturb(off, eps, seed=1):
    g = rng(seed)
    return (off + g.uniform(-eps, eps, size=off.shape)
            .astype(np.float32)).astype(np.float32)


def _rows(res):
    return [k.__dict__ for k in res.kernels]


class TestDeltaHit:
    @pytest.mark.parametrize("runner", [run_tex2d, run_tex2dpp],
                             ids=["tex2d", "tex2dpp"])
    def test_eager_delta_hit_bit_identical(self, runner):
        x, off0, w, b = _inputs()
        off1 = _perturb(off0, 0.2)
        pc = PlanCache(delta_bound=0.3)
        anchor = runner(x, off0, w, b, CFG, XAVIER, plan_cache=pc,
                        session="s0")
        hit = runner(x, off1, w, b, CFG, XAVIER, plan_cache=pc,
                     session="s0")
        cold = runner(x, off1, w, b, CFG, XAVIER)
        assert pc.stats.delta_hits == 1
        assert pc.stats.trace_builds == 1      # frame 1 never rebuilt
        # outputs are exact (recomputed from frame-1 offsets) ...
        assert np.array_equal(hit.output, cold.output)
        # ... while the perf counters are the anchor's memoised simulation
        assert _rows(hit) == _rows(anchor)

    @pytest.mark.parametrize("runner", [run_tex2d, run_tex2dpp],
                             ids=["tex2d", "tex2dpp"])
    def test_fused_delta_hit_bit_identical(self, runner):
        x, off0, w, b = _inputs()
        pc = PlanCache(delta_bound=0.3)
        runner(x, off0, w, b, CFG, XAVIER, plan_cache=pc,
               execution="fused", session="s0")
        builds = pc.stats.fused_builds
        for t in range(1, 4):      # several frames reuse one fused plan
            off_t = _perturb(off0, 0.2, seed=t)
            hit = runner(x, off_t, w, b, CFG, XAVIER, plan_cache=pc,
                         execution="fused", session="s0")
            cold = runner(x, off_t, w, b, CFG, XAVIER,
                          plan_cache=PlanCache(), execution="fused")
            assert np.array_equal(hit.output, cold.output), f"frame {t}"
        assert pc.stats.delta_hits >= 3
        assert pc.stats.fused_builds == builds   # no new compiles

    def test_delta_reject_over_bound(self):
        x, off0, w, b = _inputs()
        pc = PlanCache(delta_bound=0.3)
        run_tex2d(x, off0, w, b, CFG, XAVIER, plan_cache=pc, session="s0")
        far = _perturb(off0, 2.0)
        assert float(np.max(np.abs(far - off0))) > 0.3
        run_tex2d(x, far, w, b, CFG, XAVIER, plan_cache=pc, session="s0")
        assert pc.stats.delta_rejects == 1
        assert pc.stats.delta_hits == 0
        assert pc.stats.trace_builds == 2      # rejected frame rebuilt

    def test_known_digest_unseen_tile_is_plain_miss(self):
        """The delta probe applies only on an exact-digest *miss* — the
        same offsets at a new tile simulate against their own trace."""
        x, off0, w, b = _inputs()
        pc = PlanCache(delta_bound=0.3)
        run_tex2d(x, off0, w, b, CFG, XAVIER, tile=(8, 8), plan_cache=pc,
                  session="s0")
        run_tex2d(x, off0, w, b, CFG, XAVIER, tile=(4, 4), plan_cache=pc,
                  session="s0")
        assert pc.stats.delta_hits == 0
        assert pc.stats.trace_builds == 1      # same trace, new tile sim

    def test_sessionless_and_unbounded_caches_never_probe(self):
        x, off0, w, b = _inputs()
        off1 = _perturb(off0, 0.1)
        # no session on the call
        pc = PlanCache(delta_bound=0.3)
        run_tex2d(x, off0, w, b, CFG, XAVIER, plan_cache=pc)
        run_tex2d(x, off1, w, b, CFG, XAVIER, plan_cache=pc)
        assert pc.stats.delta_hits == 0 and pc.session_count == 0
        # no delta_bound on the cache
        pc2 = PlanCache()
        run_tex2d(x, off0, w, b, CFG, XAVIER, plan_cache=pc2, session="s")
        run_tex2d(x, off1, w, b, CFG, XAVIER, plan_cache=pc2, session="s")
        assert pc2.stats.delta_hits == 0 and pc2.session_count == 0

    def test_delta_bound_validation(self):
        with pytest.raises(ValueError):
            PlanCache(delta_bound=0.0)
        with pytest.raises(ValueError):
            PlanCache(delta_bound=-1.0)


class TestSessionLifecycle:
    def test_end_session_drops_anchors_and_rebuilds_exactly(self):
        x, off0, w, b = _inputs()
        pc = PlanCache(delta_bound=0.3)
        run_tex2d(x, off0, w, b, CFG, XAVIER, plan_cache=pc, session="s0")
        assert pc.session_count == 1
        assert pc.end_session("s0") == 1
        assert pc.session_count == 0
        assert pc.end_session("s0") == 0       # idempotent
        # next frame is a plain miss again (no stale anchor to probe)
        off1 = _perturb(off0, 0.1)
        res = run_tex2d(x, off1, w, b, CFG, XAVIER, plan_cache=pc,
                        session="s0")
        cold = run_tex2d(x, off1, w, b, CFG, XAVIER)
        assert pc.stats.delta_hits == 0
        assert np.array_equal(res.output, cold.output)
        # the trace entries survive (exact-keyed lookups still hit them)
        assert len(pc) == 2

    def test_clear_drops_sessions(self):
        x, off0, w, b = _inputs()
        pc = PlanCache(delta_bound=0.3)
        run_tex2d(x, off0, w, b, CFG, XAVIER, plan_cache=pc, session="s0")
        pc.clear()
        assert pc.session_count == 0 and len(pc) == 0


class TestMultiStreamPressure:
    """Satellite: K concurrent sessions against max_entries < K."""

    K = 4

    def _session_inputs(self):
        x, _, w, b = _inputs()
        offs = [synth_offsets(CFG, sigma=2.0, seed=10 + s)
                for s in range(self.K)]
        return x, offs, w, b

    def test_evictions_counted_and_outputs_exact(self):
        x, offs, w, b = self._session_inputs()
        reg = MetricsRegistry()
        pc = PlanCache(max_entries=2, registry=reg, delta_bound=0.3)
        outs = {}
        for frame in range(2):
            for s in range(self.K):
                off = offs[s] if frame == 0 \
                    else _perturb(offs[s], 0.1, seed=100 + s)
                res = run_tex2d(x, off, w, b, CFG, XAVIER, plan_cache=pc,
                                session=f"s{s}")
                outs[(s, frame)] = (off, res.output)
        # 2 live entries vs 4+ distinct digests: the LRU must have evicted
        assert len(pc) == 2
        assert pc.stats.evictions > 0
        assert reg.counter("plan_cache_evictions").value() == \
            pc.stats.evictions
        # registry mirrors the delta counters too (satellite: metrics)
        assert reg.counter("plan_cache_delta_hits").value() == \
            pc.stats.delta_hits
        assert reg.counter("plan_cache_delta_rejects").value() == \
            pc.stats.delta_rejects
        # every output — delta hit, re-anchor or plain miss — is exact
        for (s, frame), (off, out) in outs.items():
            cold = run_tex2d(x, off, w, b, CFG, XAVIER)
            assert np.array_equal(out, cold.output), (s, frame)

    def test_anchor_eviction_forces_exact_rebuild_then_reanchors(self):
        x, offs, w, b = self._session_inputs()
        pc = PlanCache(max_entries=1, delta_bound=0.3)
        run_tex2d(x, offs[0], w, b, CFG, XAVIER, plan_cache=pc,
                  session="s0")
        # a competing stream evicts s0's single-entry trace
        run_tex2d(x, offs[1], w, b, CFG, XAVIER, plan_cache=pc,
                  session="s1")
        assert pc.stats.evictions == 1
        # s0's next in-bound frame cannot delta-hit a dead entry: the
        # anchor is dropped and the frame rebuilds exactly ...
        off1 = _perturb(offs[0], 0.1)
        res = run_tex2d(x, off1, w, b, CFG, XAVIER, plan_cache=pc,
                        session="s0")
        assert pc.stats.delta_hits == 0
        assert np.array_equal(
            res.output, run_tex2d(x, off1, w, b, CFG, XAVIER).output)
        # ... and re-anchors: the following frame delta-hits again
        off2 = _perturb(off1, 0.1, seed=2)
        res2 = run_tex2d(x, off2, w, b, CFG, XAVIER, plan_cache=pc,
                         session="s0")
        assert pc.stats.delta_hits == 1
        assert np.array_equal(
            res2.output, run_tex2d(x, off2, w, b, CFG, XAVIER).output)

    def test_concurrent_sessions_coalesce_shared_builds(self):
        """K sessions racing the same digest still build the trace once
        (the ``_acquire_entry`` in-flight guard is session-agnostic)."""
        x, off0, w, b = _inputs()
        for trial in range(3):
            pc = PlanCache(max_entries=2, delta_bound=0.3)
            start = threading.Barrier(self.K)
            errors = []

            def work(s):
                start.wait()
                try:
                    run_tex2d(x, off0, w, b, CFG, XAVIER, plan_cache=pc,
                              session=f"s{s}")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=work, args=(s,))
                       for s in range(self.K)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            assert pc.stats.trace_builds == 1, f"trial {trial}"
            assert pc.session_count == self.K


class TestEngineSessions:
    def _engine(self, **kw):
        model = build_classifier(lightweight=True, input_size=32)
        return DefconEngine(model, XAVIER, **kw)

    def test_delta_bound_requires_plan_cache(self):
        with pytest.raises(ValueError):
            self._engine(plan_cache=False, delta_bound=0.3)

    def test_shared_cache_bound_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self._engine(plan_cache=PlanCache(), delta_bound=0.3)

    def test_set_and_end_session_roundtrip(self):
        eng = self._engine(delta_bound=0.3)
        assert eng.plan_cache.delta_bound == 0.3
        eng.set_session("vid-0")
        assert eng._runtime.session == "vid-0"
        assert eng.end_session("vid-0") == 0   # nothing anchored yet
        assert eng._runtime.session is None    # active session cleared
