"""Exact LRU cache tests + cross-validation of the analytic cache model."""

import numpy as np
import pytest

from repro.deform import sampling_positions
from repro.gpusim import XAVIER, TextureCacheModel
from repro.gpusim.lru import ExactLRUCache, LRUCacheConfig

from helpers import rng


def small_cache(capacity_lines=8, ways=2):
    return ExactLRUCache(LRUCacheConfig(
        capacity_bytes=capacity_lines * 64, line_bytes=64, ways=ways,
        line_tile=(4, 4)))


class TestExactLRU:
    def test_compulsory_misses(self):
        cache = small_cache()
        cache.access_lines(np.array([0, 1, 2, 3]))
        assert cache.misses == 4 and cache.hits == 0

    def test_reuse_hits(self):
        cache = small_cache()
        cache.access_lines(np.array([0, 1, 0, 1, 0]))
        assert cache.misses == 2 and cache.hits == 3

    def test_lru_eviction_order(self):
        # 1 set, 2 ways: access 0,1 then 2 evicts the LRU (0)
        cache = ExactLRUCache(LRUCacheConfig(
            capacity_bytes=2 * 64, line_bytes=64, ways=2))
        assert cache.config.num_sets == 1
        cache.access_lines(np.array([0, 1, 2]))
        cache.access_lines(np.array([1]))      # still resident
        assert cache.hits == 1
        cache.access_lines(np.array([0]))      # was evicted
        assert cache.misses == 4

    def test_mru_protected(self):
        cache = ExactLRUCache(LRUCacheConfig(
            capacity_bytes=2 * 64, line_bytes=64, ways=2))
        cache.access_lines(np.array([0, 1, 0, 2]))   # evicts 1, not 0
        cache.access_lines(np.array([0]))
        assert cache.hits == 2   # the re-access of 0 mid-stream + final 0

    def test_thrash_when_working_set_exceeds_capacity(self):
        cache = small_cache(capacity_lines=4, ways=4)
        stream = np.tile(np.arange(8), 10)   # 8 lines > 4-line capacity
        cache.access_lines(stream)
        assert cache.hits == 0   # cyclic pattern + LRU = pathological

    def test_reset(self):
        cache = small_cache()
        cache.access_lines(np.array([0, 0]))
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0

    def test_simulate_texels_drops_out_of_bounds(self):
        cache = small_cache()
        stats = cache.simulate_texels(np.array([-5]), np.array([-5]), 8, 8)
        assert stats.texel_reads == 0 and stats.misses == 0

    def test_from_device(self):
        cfg = LRUCacheConfig.from_device(XAVIER, concurrent_layers=4)
        assert cfg.capacity_bytes == XAVIER.tex_cache_kb_per_sm * 1024 // 4
        assert cfg.line_tile == tuple(XAVIER.tex_line_tile)


class TestAnalyticModelValidation:
    """The analytic CTA-granular model must track the exact LRU simulation
    on deformable fetch traces — the agreement that justifies using the
    fast model inside the Fig. 8 tile search."""

    def _trace(self, out_hw=20, sigma=1.5, seed=0):
        k = 9
        off = (sigma * rng(seed).normal(size=(1, 2 * k, out_hw, out_hw))
               ).astype(np.float32)
        off = np.clip(off, -7, 7)
        py, px = sampling_positions(off, (out_hw, out_hw), 3, 1, 1, 1, 1)
        return (np.floor(py[0, 0]).astype(np.int64).ravel(),
                np.floor(px[0, 0]).astype(np.int64).ravel(), out_hw)

    @pytest.mark.parametrize("tile", [(4, 4), (10, 10), (20, 20)])
    def test_hit_rates_track_exact_lru(self, tile):
        y0, x0, hw = self._trace()
        k, l = 9, hw * hw
        ty, tx = tile
        oy = np.repeat(np.arange(hw), hw) // ty
        ox = np.tile(np.arange(hw), hw) // tx
        cta_of_pixel = oy * (-(-hw // tx)) + ox
        cta = np.tile(cta_of_pixel, k)

        analytic = TextureCacheModel(XAVIER, concurrent_layers=1).simulate(
            y0, x0, cta, hw, hw)

        exact = ExactLRUCache(LRUCacheConfig.from_device(XAVIER))
        # replay CTA by CTA (the hardware interleaves, but per-CTA replay
        # matches the analytic model's locality assumption)
        order = np.argsort(cta, kind="stable")
        stats = exact.simulate_texels(y0[order], x0[order], hw, hw)

        assert analytic.texel_reads == stats.texel_reads
        assert abs(analytic.hit_rate - stats.hit_rate) < 12.0

    def test_miss_ordering_tracks_capacity(self):
        """Shrinking the cache hurts both models in the same direction."""
        y0, x0, hw = self._trace(out_hw=24)
        cta = np.zeros(y0.size, dtype=np.int64)
        big_exact = ExactLRUCache(LRUCacheConfig(
            capacity_bytes=64 * 1024)).simulate_texels(y0, x0, hw, hw)
        small_exact = ExactLRUCache(LRUCacheConfig(
            capacity_bytes=1024)).simulate_texels(y0, x0, hw, hw)
        assert small_exact.misses >= big_exact.misses

        big_a = TextureCacheModel(
            XAVIER.with_overrides(tex_cache_kb_per_sm=64),
            concurrent_layers=1).simulate(y0, x0, cta, hw, hw)
        small_a = TextureCacheModel(
            XAVIER.with_overrides(tex_cache_kb_per_sm=1),
            concurrent_layers=1).simulate(y0, x0, cta, hw, hw)
        assert small_a.misses >= big_a.misses
