"""Pipeline tests: losses, configs, paper-scale geometry, latency model,
reporting."""

import numpy as np
import pytest

from repro.data import ShapesDataset
from repro.gpusim import RTX_2080TI, XAVIER
from repro.models import build_yolact
from repro.nas import manual_interval_placement
from repro.pipeline import (DCN_SAMPLE_SCALE, ENGINE_SPEEDUP, TABLE3_ROWS,
                            TABLE5_ROWS, DefconConfig, build_targets,
                            candidate_site_configs, conv_ms, deform_op_ms,
                            detection_loss, fixed_conv_configs,
                            format_placement_diagram, format_speedup_bars,
                            format_table, markdown_table, network_latency_ms,
                            offset_head_ms, paper_scale_geometry)
from repro.pipeline.losses import _downsample_mask
from repro.tensor import Tensor

from helpers import rng


class TestDefconConfig:
    def test_labels(self):
        assert DefconConfig().label() == "baseline"
        cfg = DefconConfig(search=True, boundary=True, lightweight=True,
                           tex="tex2dpp")
        assert cfg.label() == "search+boundary+light+tex2dpp"

    def test_bound_property(self):
        assert DefconConfig(boundary=True).bound == 7.0
        assert DefconConfig().bound is None

    def test_backend_property(self):
        assert DefconConfig().backend == "pytorch"
        assert DefconConfig(tex="tex2d").backend == "tex2d"

    def test_table3_structure(self):
        assert len(TABLE3_ROWS) == 6
        assert TABLE3_ROWS[0] == DefconConfig()
        assert all(r.search for r in TABLE3_ROWS[1:])

    def test_table5_structure(self):
        assert len(TABLE5_ROWS) == 3
        assert TABLE5_ROWS[1].regularization and TABLE5_ROWS[2].rounded


class TestLosses:
    @pytest.fixture(scope="class")
    def batch(self):
        ds = ShapesDataset.generate(4, size=64, seed=0)
        model = build_yolact("r50s", seed=0)
        images = np.stack([s.image for s in ds.samples])
        out = model(Tensor(images))
        return model, out, ds.samples

    def test_build_targets_assigns_centres(self):
        ds = ShapesDataset.generate(4, size=64, seed=1)
        (b, gy, gx, labels, boxes, masks, obj,
         cls_dense) = build_targets(ds.samples, grid=16, size=64)
        assert len(b) == len(labels) == len(masks)
        assert obj.shape == (4, 16, 16)
        assert obj.sum() == len(b)
        assert (boxes >= 0).all() and (boxes <= 1).all()
        # dense cls labels cover at least the centre cells
        assert (cls_dense[b, gy, gx] == labels).all()
        assert (cls_dense >= -1).all() and (cls_dense < 4).all()

    def test_detection_loss_finite_and_positive(self, batch):
        _, out, samples = batch
        loss = detection_loss(out, samples, 64)
        assert np.isfinite(loss.item()) and loss.item() > 0

    def test_detection_loss_backward(self, batch):
        model, out, samples = batch
        loss = detection_loss(out, samples, 64)
        loss.backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert sum(grads) > 0.9 * len(grads)

    def test_empty_instances_only_objectness(self):
        from repro.data.shapes import Sample

        model = build_yolact("r50s", seed=0)
        images = rng(2).uniform(0, 1, size=(1, 3, 64, 64)).astype(np.float32)
        out = model(Tensor(images))
        empty = [Sample(image=images[0], instances=[])]
        loss = detection_loss(out, empty, 64)
        assert np.isfinite(loss.item())

    def test_downsample_mask(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[:4, :4] = True
        small = _downsample_mask(mask, 2)
        assert small.shape == (4, 4)
        assert small[:2, :2].all() and not small[2:, 2:].any()


class TestGeometry:
    def test_candidate_sites_match_arch(self):
        sites = candidate_site_configs("r101s")
        assert len(sites) == 14
        # channels per stage: 128 ×3, 256 ×8, 512 ×3
        assert [c.in_channels for c in sites] == \
            [128] * 3 + [256] * 8 + [512] * 3

    def test_stage_entry_sites_are_stride2_full_size(self):
        sites = candidate_site_configs("r101s")
        assert sites[0].stride == 2 and sites[0].height == 138
        assert sites[1].stride == 1 and sites[1].height == 69
        assert sites[3].stride == 2 and sites[3].height == 69

    def test_deformable_groups_per_channel_group(self):
        sites = candidate_site_configs("r101s")
        assert sites[0].deformable_groups == 128 // 4
        flat = candidate_site_configs("r101s",
                                      deformable_groups_per_site=False)
        assert all(c.deformable_groups == 1 for c in flat)

    def test_fixed_convs_nonempty(self):
        convs = fixed_conv_configs("r101s")
        assert len(convs) > 30
        assert convs[0].kernel_size == 7   # the stem

    def test_geometry_bundle(self):
        geo = paper_scale_geometry("r50s")
        assert geo.num_sites == 9
        assert geo.fixed_convs


class TestLatencyModel:
    @pytest.fixture(scope="class")
    def geo(self):
        return paper_scale_geometry("r101s")

    def test_placement_length_validated(self, geo):
        with pytest.raises(ValueError):
            network_latency_ms(geo, [True], XAVIER)

    def test_more_dcns_cost_more(self, geo):
        none = network_latency_ms(geo, [False] * geo.num_sites, XAVIER)
        five = network_latency_ms(geo, manual_interval_placement(
            geo.num_sites, 3), XAVIER)
        assert five.total_ms > none.total_ms

    def test_lightweight_head_cheaper(self):
        site = candidate_site_configs("r101s")[5]
        reg = offset_head_ms(site, XAVIER, lightweight=False)
        light = offset_head_ms(site, XAVIER, lightweight=True)
        assert light < 0.5 * reg

    def test_tex_backend_cheaper_deform_op(self):
        site = candidate_site_configs("r101s")[5]
        ref = deform_op_ms(site, XAVIER, "pytorch", bound=7.0)
        tex = deform_op_ms(site, XAVIER, "tex2dpp", bound=7.0)
        assert tex < ref

    def test_table3_trajectory_shape(self, geo):
        """The headline: end-to-end speedups ordered and ≈(1.2, 1.35, 2.7)."""
        manual = manual_interval_placement(geo.num_sites, 3)
        searched = list(manual)
        on = [i for i, v in enumerate(searched) if v]
        searched[on[1]] = False
        bl = network_latency_ms(geo, manual, XAVIER).total_ms
        s = network_latency_ms(geo, searched, XAVIER).total_ms
        s_tex = network_latency_ms(geo, searched, XAVIER,
                                   backend="tex2d").total_ms
        s_all = network_latency_ms(geo, searched, XAVIER, backend="tex2dpp",
                                   lightweight=True, bound=7.0).total_ms
        assert 1.1 < bl / s < 1.35          # paper: 1.25×
        assert bl / s < bl / s_tex < 1.6    # paper: 1.44×
        assert 2.2 < bl / s_all < 3.3       # paper: 2.80×

    def test_breakdown_components_sum(self, geo):
        bd = network_latency_ms(geo, manual_interval_placement(
            geo.num_sites, 3), XAVIER)
        assert bd.total_ms == pytest.approx(
            bd.fixed_ms + bd.regular_site_ms + bd.offset_head_ms
            + bd.deform_op_ms)
        assert len(bd.per_site) == 5

    def test_constants_exposed(self):
        assert DCN_SAMPLE_SCALE > 1.0 and ENGINE_SPEEDUP > 1.0

    def test_2080ti_faster_than_xavier(self, geo):
        placement = manual_interval_placement(geo.num_sites, 3)
        xa = network_latency_ms(geo, placement, XAVIER).total_ms
        ti = network_latency_ms(geo, placement, RTX_2080TI).total_ms
        assert ti < xa


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.5], ["bb", 20.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text and "20.25" in text

    def test_format_table_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text

    def test_speedup_bars(self):
        text = format_speedup_bars(["a", "b"], [1.0, 2.0], title="S")
        assert text.splitlines()[0] == "S"
        assert text.count("#") > 0
        assert "2.00x" in text

    def test_placement_diagram(self):
        text = format_placement_diagram([True, False, False, True],
                                        [2, 2], label="ours")
        assert text.startswith("ours: ")
        assert "[D][.]" in text and "(2 DCNs)" in text
        assert "|" in text

    def test_markdown_table(self):
        text = markdown_table(["a"], [[1.0]])
        assert text.splitlines()[1] == "|---|"
