"""Cache keys must be identical no matter which process computes them.

The parallel tile sweep (`TileTuner(workers=N)`) fans work out over a
``ProcessPoolExecutor``; if `PlanCache` digests or `TileStore` keys ever
depended on process state (hash randomisation, id(), dict order, ...),
workers would silently split the caches and every lookup would miss —
exactly the failure mode PR 1 fixed for tile keys.  These tests compute
each key in the parent AND in a pool worker and require equality.
"""

import numpy as np
import pytest

from repro.autotune.store import TUNER_VERSION, entry_key, geometry_key
from repro.kernels.config import LayerConfig
from repro.kernels.plancache import offsets_digest
from repro.kernels.tiling import tile_key

CFG = LayerConfig(8, 4, 12, 10, stride=2, padding=2, dilation=2,
                  deformable_groups=2, batch=2)


def _offsets() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.normal(0.0, 2.0, size=CFG.offset_shape()).astype(np.float32)


# Pool entry points must be module-level so they pickle.
def _worker_offsets_digest(_=None) -> str:
    return offsets_digest(_offsets())


def _worker_entry_key(_=None) -> str:
    return entry_key(CFG, "jetson-agx-xavier", "tex2d", TUNER_VERSION)


def _worker_tile_key(_=None):
    return tile_key(CFG)


def _in_worker(fn):
    """Run ``fn`` in a single pool worker; skip if pools are unavailable."""
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(fn).result(timeout=60)
    except Exception as exc:  # sandboxed CI without fork/spawn support
        pytest.skip(f"process pool unavailable: {exc}")


class TestCrossProcessKeyStability:
    def test_offsets_digest_stable_across_processes(self):
        assert _worker_offsets_digest() == _in_worker(_worker_offsets_digest)

    def test_offsets_digest_sensitivity(self):
        """Sanity: the digest actually depends on content, dtype, shape."""
        off = _offsets()
        assert offsets_digest(off) == offsets_digest(off.copy())
        bumped = off.copy()
        bumped.flat[0] += 1e-3
        assert offsets_digest(off) != offsets_digest(bumped)
        assert offsets_digest(off) != offsets_digest(
            off.astype(np.float64))
        assert offsets_digest(off) != offsets_digest(
            off.reshape(off.shape[0], -1))

    def test_tile_store_entry_key_stable_across_processes(self):
        assert _worker_entry_key() == _in_worker(_worker_entry_key)

    def test_tile_key_stable_across_processes(self):
        assert _worker_tile_key() == _in_worker(_worker_tile_key)

    def test_geometry_key_covers_all_tile_relevant_fields(self):
        """Every geometry field except batch must change the key."""
        base = geometry_key(CFG)
        for field, bump in [("in_channels", 16), ("out_channels", 8),
                            ("height", 13), ("width", 11),
                            ("kernel_size", 5), ("stride", 1),
                            ("padding", 1), ("dilation", 1),
                            ("deformable_groups", 1)]:
            cfg = LayerConfig(**{**CFG.__dict__, field: bump})
            assert geometry_key(cfg) != base, field
        assert geometry_key(LayerConfig(**{**CFG.__dict__, "batch": 1})) \
            == base
