"""Deformable convolution core tests (paper Eq. 2/3)."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.deform import (DeformConv2d, deform_conv2d, deform_im2col_arrays,
                          sampling_positions)
from repro.tensor import Tensor

from helpers import check_gradients, rng


def make_inputs(seed=0, n=1, c_in=2, c_out=3, h=5, w=5, k=3, stride=1,
                padding=1, dg=1, offset_scale=1.0):
    g = rng(seed)
    oh = (h + 2 * padding - k) // stride + 1
    ow = (w + 2 * padding - k) // stride + 1
    x = Tensor(g.normal(size=(n, c_in, h, w)), requires_grad=True)
    wgt = Tensor(g.normal(size=(c_out, c_in, k, k)), requires_grad=True)
    # Keep fractional parts well inside (0, 1): bilinear interpolation has
    # kinks at integer coordinates where finite differences are invalid.
    shape = (n, 2 * dg * k * k, oh, ow)
    if offset_scale == 0.0:
        off_np = np.zeros(shape, dtype=np.float32)
    else:
        frac = g.uniform(0.25, 0.75, size=shape)
        whole = g.integers(-1, 2, size=shape)
        off_np = (whole + frac).astype(np.float32)
    off = Tensor(off_np, requires_grad=True)
    b = Tensor(g.normal(size=(c_out,)), requires_grad=True)
    return x, off, wgt, b


class TestEquivalences:
    def test_zero_offsets_equal_regular_conv(self):
        x, off, w, b = make_inputs(seed=1, h=9, w=9, offset_scale=0.0)
        out_d = deform_conv2d(x, off, w, b, stride=1, padding=1)
        out_r = F.conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data),
                         stride=1, padding=1)
        assert np.abs(out_d.data - out_r.data).max() < 1e-4

    def test_zero_offsets_stride2(self):
        x, off, w, b = make_inputs(seed=2, h=8, w=8, stride=2,
                                   offset_scale=0.0)
        out_d = deform_conv2d(x, off, w, b, stride=2, padding=1)
        out_r = F.conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data),
                         stride=2, padding=1)
        assert np.abs(out_d.data - out_r.data).max() < 1e-4

    def test_integer_offset_equals_shifted_input(self):
        """A constant integer offset samples a translated image."""
        g = rng(3)
        x_np = g.normal(size=(1, 1, 8, 8)).astype(np.float32)
        w = Tensor(g.normal(size=(1, 1, 3, 3)))
        # shift sampling one pixel right (Δx = 1)
        off_np = np.zeros((1, 18, 8, 8), dtype=np.float32)
        off_np[:, 1::2] = 1.0
        out = deform_conv2d(Tensor(x_np), Tensor(off_np), w, padding=1)
        shifted = np.zeros_like(x_np)
        shifted[..., :, :-1] = x_np[..., :, 1:]
        want = F.conv2d(Tensor(shifted), w, padding=1)
        # Interior matches exactly.  The first output column differs: the
        # deformable op still sees x[:, 0] through its shifted left tap,
        # while the translated image has lost that column.
        assert np.abs(out.data[..., :, 1:]
                      - want.data[..., :, 1:]).max() < 1e-4

    def test_unit_weight_center_tap_is_bilinear_sampling(self):
        """With a centre-only kernel, the op reduces to pure sampling."""
        from repro.deform.bilinear import bilinear_sample

        g = rng(4)
        x_np = g.normal(size=(1, 1, 7, 7)).astype(np.float32)
        w_np = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w_np[0, 0, 1, 1] = 1.0
        off_np = (0.5 * g.normal(size=(1, 18, 7, 7))).astype(np.float32)
        out = deform_conv2d(Tensor(x_np), Tensor(off_np), Tensor(w_np),
                            padding=1)
        py, px = sampling_positions(off_np, (7, 7), 3, 1, 1, 1, 1)
        vals = bilinear_sample(x_np[0, 0], py[0, 0, 4], px[0, 0, 4])
        assert np.abs(out.data[0, 0].ravel() - vals).max() < 1e-4


class TestGradients:
    def test_all_input_gradients(self):
        x, off, w, b = make_inputs(seed=5, offset_scale=0.7)

        def run():
            return deform_conv2d(x, off, w, b, stride=1, padding=1)

        check_gradients(run, [x, off, w, b])

    def test_stride2_gradients(self):
        x, off, w, b = make_inputs(seed=6, h=6, w=6, stride=2,
                                   offset_scale=0.7)
        check_gradients(
            lambda: deform_conv2d(x, off, w, b, stride=2, padding=1),
            [x, off, w])

    def test_deformable_groups_gradients(self):
        x, off, w, b = make_inputs(seed=7, c_in=4, dg=2, offset_scale=0.7)
        check_gradients(
            lambda: deform_conv2d(x, off, w, b, padding=1,
                                  deformable_groups=2),
            [x, off, w])

    def test_modulated_gradients(self):
        x, off, w, b = make_inputs(seed=8, offset_scale=0.7)
        g = rng(9)
        mask = Tensor(g.uniform(0.2, 0.9, size=(1, 9, 5, 5)),
                      requires_grad=True)
        check_gradients(
            lambda: deform_conv2d(x, off, w, b, padding=1, mask=mask),
            [x, off, mask])


class TestValidation:
    def test_offset_shape_check(self):
        x, off, w, b = make_inputs(seed=10)
        bad = Tensor(np.zeros((1, 18, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            deform_conv2d(x, bad, w, padding=1)

    def test_rectangular_kernel_rejected(self):
        x = Tensor(np.zeros((1, 2, 5, 5)))
        w = Tensor(np.zeros((3, 2, 3, 5)))
        off = Tensor(np.zeros((1, 18, 5, 5)))
        with pytest.raises(ValueError):
            deform_conv2d(x, off, w, padding=1)

    def test_channel_mismatch_rejected(self):
        x = Tensor(np.zeros((1, 2, 5, 5)))
        w = Tensor(np.zeros((3, 4, 3, 3)))
        off = Tensor(np.zeros((1, 18, 5, 5)))
        with pytest.raises(ValueError):
            deform_conv2d(x, off, w, padding=1)

    def test_indivisible_deformable_groups(self):
        x = Tensor(np.zeros((1, 3, 5, 5)))
        w = Tensor(np.zeros((3, 3, 3, 3)))
        off = Tensor(np.zeros((1, 36, 5, 5)))
        with pytest.raises(ValueError):
            deform_conv2d(x, off, w, padding=1, deformable_groups=2)


class TestSamplingPositions:
    def test_zero_offset_positions_match_grid(self):
        off = np.zeros((1, 18, 4, 4), dtype=np.float32)
        py, px = sampling_positions(off, (4, 4), 3, 1, 1, 1, 1)
        # centre tap (index 4) at output pixel (0, 0) samples input (0, 0)
        assert py[0, 0, 4, 0] == 0.0 and px[0, 0, 4, 0] == 0.0
        # top-left tap samples the padding region
        assert py[0, 0, 0, 0] == -1.0 and px[0, 0, 0, 0] == -1.0

    def test_offsets_shift_positions(self):
        off = np.zeros((1, 18, 4, 4), dtype=np.float32)
        off[0, 8] = 2.5   # tap 4 Δy
        off[0, 9] = -1.5  # tap 4 Δx
        py, px = sampling_positions(off, (4, 4), 3, 1, 1, 1, 1)
        assert py[0, 0, 4, 0] == pytest.approx(2.5)
        assert px[0, 0, 4, 0] == pytest.approx(-1.5)


class TestDeformConvModule:
    def test_forward_shapes(self):
        layer = DeformConv2d(4, 6, stride=2, rng=rng(11))
        x = Tensor(rng(12).normal(size=(2, 4, 8, 8)))
        assert layer(x).shape == (2, 6, 4, 4)

    def test_zero_init_head_behaves_as_regular_conv(self):
        layer = DeformConv2d(3, 5, rng=rng(13))
        x = Tensor(rng(14).normal(size=(1, 3, 6, 6)))
        out = layer(x)
        want = F.conv2d(x, layer.weight, layer.bias, stride=1, padding=1)
        assert np.abs(out.data - want.data).max() < 1e-5

    def test_bound_policy_applied(self):
        layer = DeformConv2d(3, 5, bound=2.0, rng=rng(15))
        # force large raw offsets through the head bias
        layer.offset_head.conv.bias.data[:] = 10.0
        x = Tensor(rng(16).normal(size=(1, 3, 6, 6)))
        layer(x)
        assert np.abs(layer.last_offsets.data).max() <= 2.0 + 1e-6

    def test_rounded_policy_applied(self):
        layer = DeformConv2d(3, 5, rounded=True, rng=rng(17))
        layer.offset_head.conv.bias.data[:] = 0.4
        x = Tensor(rng(18).normal(size=(1, 3, 6, 6)))
        layer(x)
        off = layer.last_offsets.data
        assert np.allclose(off, np.rint(off))

    def test_lightweight_flag_builds_light_head(self):
        from repro.deform.lightweight import LightweightOffsetHead

        layer = DeformConv2d(4, 4, lightweight=True, rng=rng(19))
        assert isinstance(layer.offset_head, LightweightOffsetHead)

    def test_macs_accounting(self):
        layer = DeformConv2d(4, 8, rng=rng(20))
        light = DeformConv2d(4, 8, lightweight=True, rng=rng(20))
        assert light.macs(16, 16) < layer.macs(16, 16)

    def test_modulated_forward_and_params(self):
        layer = DeformConv2d(4, 4, modulated=True, rng=rng(21))
        x = Tensor(rng(22).normal(size=(1, 4, 6, 6)), requires_grad=True)
        out = layer(x)
        (out * out).mean().backward()
        assert x.grad is not None
        assert layer.mask_head.weight.grad is not None

    def test_offset_grad_scale_slows_offset_learning(self):
        layer = DeformConv2d(3, 3, offset_grad_scale=0.1, rng=rng(23))
        x = Tensor(rng(24).normal(size=(1, 3, 6, 6)))
        layer(x).sum().backward()
        g_scaled = layer.offset_head.conv.bias.grad.copy()
        layer.zero_grad()
        layer.offset_grad_scale = 1.0
        layer(x).sum().backward()
        g_full = layer.offset_head.conv.bias.grad
        assert np.allclose(g_scaled, 0.1 * g_full, atol=1e-6)

    def test_repr_mentions_options(self):
        layer = DeformConv2d(3, 3, lightweight=True, bound=7.0, rounded=True,
                             modulated=True, rng=rng(25))
        text = repr(layer)
        for word in ("light", "bound=7.0", "rounded", "modulated"):
            assert word in text
