"""Coalescing model tests — the GLD counters of paper Fig. 10."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (XAVIER, CoalescingStats, coalescing_stats,
                          dram_time_ms, strided_stats)

from helpers import rng


class TestStridedStats:
    def test_unit_stride_fully_coalesced(self):
        s = strided_stats(1024, 4, XAVIER)
        assert s.efficiency == pytest.approx(100.0)
        assert s.transactions_per_request == pytest.approx(4.0)

    def test_large_stride_one_sector_per_lane(self):
        s = strided_stats(320, 4, XAVIER, stride_elements=64)
        assert s.transactions_per_request == pytest.approx(32.0)
        assert s.efficiency == pytest.approx(100.0 * 4 / 32)

    def test_half_precision_stream(self):
        s4 = strided_stats(4096, 4, XAVIER)
        s2 = strided_stats(4096, 2, XAVIER)
        # fp16 stream moves half the bytes (the tex2D++ saving)
        assert s2.bytes_transferred == pytest.approx(
            s4.bytes_transferred / 2)

    def test_zero_elements(self):
        s = strided_stats(0, 4, XAVIER)
        assert s.requests == 0 and s.transactions == 0

    def test_request_count(self):
        s = strided_stats(100, 4, XAVIER)
        assert s.requests == 4  # ceil(100/32)


class TestCoalescingStats:
    def test_sequential_addresses(self):
        addr = (np.arange(64) * 4).reshape(2, 32)
        s = coalescing_stats(addr, 4, XAVIER)
        assert s.requests == 2
        assert s.transactions == 8  # 4 sectors per warp
        assert s.efficiency == pytest.approx(100.0)

    def test_single_sector_broadcast(self):
        addr = np.zeros((1, 32), dtype=np.int64)
        s = coalescing_stats(addr, 4, XAVIER)
        assert s.transactions == 1
        # 32 lanes wanted 128 bytes; one 32-byte sector moved
        assert s.efficiency == pytest.approx(100.0)

    def test_fully_scattered(self):
        addr = (np.arange(32) * 1000).reshape(1, 32)
        s = coalescing_stats(addr, 4, XAVIER)
        assert s.transactions == 32
        assert s.transactions_per_request == 32
        assert s.efficiency == pytest.approx(100.0 * 4 / 32)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            coalescing_stats(np.zeros((4, 16)), 4, XAVIER)

    def test_active_mask_suppresses_traffic(self):
        addr = (np.arange(32) * 1000).reshape(1, 32)
        mask = np.zeros((1, 32), dtype=bool)
        mask[0, :4] = True
        s = coalescing_stats(addr, 4, XAVIER, active_mask=mask)
        assert s.transactions == 4
        assert s.bytes_requested == 16.0

    def test_all_inactive_warp_makes_no_request(self):
        addr = np.zeros((1, 32), dtype=np.int64)
        mask = np.zeros((1, 32), dtype=bool)
        s = coalescing_stats(addr, 4, XAVIER, active_mask=mask)
        assert s.requests == 0 and s.transactions == 0

    @given(st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_single_warp_bounds(self, base):
        addr = (base + rng(base % 97).integers(0, 4096, size=(1, 32))) * 4
        s = coalescing_stats(addr, 4, XAVIER)
        assert 1 <= s.transactions <= 32
        assert 0 < s.efficiency <= 100.0

    def test_scaled(self):
        addr = (np.arange(32) * 4).reshape(1, 32)
        s = coalescing_stats(addr, 4, XAVIER).scaled(10)
        assert s.requests == 10 and s.transactions == 40

    def test_merged(self):
        a = CoalescingStats(1, 4, 128.0, 128.0)
        b = CoalescingStats(2, 8, 256.0, 256.0)
        m = a.merged(b)
        assert m.requests == 3 and m.transactions == 12
        assert m.bytes_requested == 384.0


class TestDramTime:
    def test_linear_in_bytes(self):
        t1 = dram_time_ms(1e9, XAVIER)
        t2 = dram_time_ms(2e9, XAVIER)
        assert t2 == pytest.approx(2 * t1)

    def test_matches_effective_bandwidth(self):
        t = dram_time_ms(XAVIER.effective_dram_gbps * 1e9, XAVIER)
        assert t == pytest.approx(1000.0)
