"""What-if device presets (Orin / 3090 extrapolations)."""

import numpy as np
import pytest

from repro.gpusim import DEVICES, ORIN, RTX_2080TI, RTX_3090, XAVIER, get_device
from repro.kernels import LayerConfig, run_layer_all_backends


class TestWhatIfPresets:
    def test_registered_with_aliases(self):
        assert get_device("orin") is ORIN
        assert get_device("3090") is RTX_3090
        assert len(DEVICES) == 4

    def test_orin_is_a_faster_xavier(self):
        assert ORIN.peak_gflops > 2 * XAVIER.peak_gflops
        assert ORIN.dram_bandwidth_gbps > XAVIER.dram_bandwidth_gbps
        # inherits the Jetson framework-overhead character
        assert ORIN.framework_extra_launches == \
            XAVIER.framework_extra_launches

    def test_3090_extends_2080ti(self):
        assert RTX_3090.peak_gflops > RTX_2080TI.peak_gflops
        assert RTX_3090.offset_channel_block == \
            RTX_2080TI.offset_channel_block

    @pytest.mark.parametrize("spec", [ORIN, RTX_3090])
    def test_texture_path_still_wins(self, spec):
        """The DEFCON mechanism projects onto newer parts of each family."""
        res = run_layer_all_backends(LayerConfig(128, 128, 69, 69), spec,
                                     bound=7.0, compute_output=False)
        bl = res["pytorch"].sample_kernel.duration_ms
        tp = res["tex2dpp"].sample_kernel.duration_ms
        assert bl / tp > 1.0

    def test_newer_devices_faster_in_absolute_terms(self):
        cfg = LayerConfig(256, 256, 69, 69)
        times = {}
        for spec in (XAVIER, ORIN, RTX_2080TI, RTX_3090):
            res = run_layer_all_backends(cfg, spec, bound=7.0,
                                         compute_output=False)
            times[spec.name] = res["tex2dpp"].sample_kernel.duration_ms
        assert times["jetson-agx-orin"] < times["jetson-agx-xavier"]
        assert times["rtx-3090"] < times["rtx-2080ti"]
