"""Fuzzed gradient checks: random composite expressions through the engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor

from helpers import check_gradients, rng

# Unary ops that are smooth on the chosen input range (0.3, 2.0).
UNARY = ["exp", "log", "sqrt", "tanh", "sigmoid", "relu"]
BINARY = ["add", "mul", "div"]


def apply_unary(t: Tensor, name: str) -> Tensor:
    return getattr(t, name)()


def apply_binary(a: Tensor, b: Tensor, name: str) -> Tensor:
    if name == "add":
        return a + b
    if name == "mul":
        return a * b
    return a / (b + 3.0)   # keep the denominator away from zero


@given(ops=st.lists(st.sampled_from(UNARY + BINARY), min_size=1,
                    max_size=5),
       seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_random_expression_gradients(ops, seed):
    g = rng(seed)
    x = Tensor(g.uniform(0.3, 2.0, size=(3, 4)), requires_grad=True)
    y = Tensor(g.uniform(0.3, 2.0, size=(3, 4)), requires_grad=True)

    def build():
        a, b = x, y
        for name in ops:
            if name in UNARY:
                a = apply_unary(a, name)
            else:
                a = apply_binary(a, b, name)
        return (a * a).mean()

    out = build()
    if not np.isfinite(out.data).all():
        return  # expression overflowed — not a gradient question
    variables = [x]
    if any(name in BINARY for name in ops):
        variables.append(y)   # y only enters through binary ops
    check_gradients(build, variables, tol=5e-2)


@given(seed=st.integers(0, 500), axis=st.sampled_from([0, 1, None]))
@settings(max_examples=30, deadline=None)
def test_reduction_then_broadcast_gradients(seed, axis):
    g = rng(seed)
    x = Tensor(g.uniform(0.5, 1.5, size=(4, 5)), requires_grad=True)

    def build():
        m = x.mean(axis=axis, keepdims=axis is not None)
        return ((x - m) ** 2).sum()

    check_gradients(build, [x], tol=5e-2)


@given(seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_matmul_chain_gradients(seed):
    g = rng(seed)
    a = Tensor(g.normal(size=(3, 4)) * 0.5, requires_grad=True)
    b = Tensor(g.normal(size=(4, 2)) * 0.5, requires_grad=True)
    c = Tensor(g.normal(size=(2, 3)) * 0.5, requires_grad=True)

    def build():
        return ((a @ b @ c).tanh() ** 2).mean()

    check_gradients(build, [a, b, c], tol=5e-2)
