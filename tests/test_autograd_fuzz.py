"""Fuzzed gradient checks: random composite expressions through the engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor

from helpers import check_gradients, rng

# Unary ops that are smooth on the chosen input range (0.3, 2.0).
UNARY = ["exp", "log", "sqrt", "tanh", "sigmoid", "relu"]
BINARY = ["add", "mul", "div"]


def apply_unary(t: Tensor, name: str) -> Tensor:
    return getattr(t, name)()


def apply_binary(a: Tensor, b: Tensor, name: str) -> Tensor:
    if name == "add":
        return a + b
    if name == "mul":
        return a * b
    return a / (b + 3.0)   # keep the denominator away from zero


@given(ops=st.lists(st.sampled_from(UNARY + BINARY), min_size=1,
                    max_size=5),
       seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_random_expression_gradients(ops, seed):
    g = rng(seed)
    x = Tensor(g.uniform(0.3, 2.0, size=(3, 4)), requires_grad=True)
    y = Tensor(g.uniform(0.3, 2.0, size=(3, 4)), requires_grad=True)

    def build():
        a, b = x, y
        for name in ops:
            if name in UNARY:
                a = apply_unary(a, name)
            else:
                a = apply_binary(a, b, name)
        return (a * a).mean()

    out = build()
    if not np.isfinite(out.data).all():
        return  # expression overflowed — not a gradient question
    variables = [x]
    if any(name in BINARY for name in ops):
        variables.append(y)   # y only enters through binary ops
    out.sum().backward()
    if any(v.grad is None or not np.isfinite(v.grad).all()
           for v in variables):
        return  # derivative singularity (e.g. sqrt at an exact zero)
    for v in variables:
        v.grad = None
    check_gradients(build, variables, tol=5e-2)


@given(seed=st.integers(0, 500), axis=st.sampled_from([0, 1, None]))
@settings(max_examples=30, deadline=None)
def test_reduction_then_broadcast_gradients(seed, axis):
    g = rng(seed)
    x = Tensor(g.uniform(0.5, 1.5, size=(4, 5)), requires_grad=True)

    def build():
        m = x.mean(axis=axis, keepdims=axis is not None)
        return ((x - m) ** 2).sum()

    check_gradients(build, [x], tol=5e-2)


@given(seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_matmul_chain_gradients(seed):
    g = rng(seed)
    a = Tensor(g.normal(size=(3, 4)) * 0.5, requires_grad=True)
    b = Tensor(g.normal(size=(4, 2)) * 0.5, requires_grad=True)
    c = Tensor(g.normal(size=(2, 3)) * 0.5, requires_grad=True)

    def build():
        return ((a @ b @ c).tanh() ** 2).mean()

    check_gradients(build, [a, b, c], tol=5e-2)


# ----------------------------------------------------------------------
# deformable conv backward fuzz (grouped / strided / dilated geometries)
# ----------------------------------------------------------------------
#: (deformable_groups, stride, padding, dilation, kernel) corners.
DEFORM_CONFIGS = [
    (1, 1, 1, 1, 3),
    (2, 1, 1, 1, 3),   # grouped
    (2, 2, 1, 1, 3),   # grouped + strided
    (1, 2, 2, 2, 3),   # strided + dilated
    (4, 1, 0, 1, 1),   # many groups, 1x1 kernel
]


def _deform_case(seed: int, idx: int):
    """Tiny deformable-conv problem with kink-free sampling positions.

    Offsets are integer + fraction in [0.15, 0.85], so no sampling
    position sits within the finite-difference eps of the bilinear kinks
    at integer coordinates — the gradient check is then deterministic.
    """
    from repro.nn.im2col import conv_output_size

    dg, stride, padding, dilation, kernel = DEFORM_CONFIGS[idx]
    g = rng(seed)
    c_in, c_out, h, w = 2 * dg, 3, 5, 5
    oh = conv_output_size(h, kernel, stride, padding, dilation)
    ow = conv_output_size(w, kernel, stride, padding, dilation)
    k = kernel * kernel
    whole = g.integers(-1, 2, size=(1, 2 * dg * k, oh, ow))
    frac = g.uniform(0.15, 0.85, size=whole.shape)
    x = Tensor(g.normal(size=(1, c_in, h, w)) * 0.8, requires_grad=True)
    off = Tensor((whole + frac).astype(np.float64), requires_grad=True)
    wt = Tensor(g.normal(size=(c_out, c_in, kernel, kernel)) * 0.4,
                requires_grad=True)
    b = Tensor(g.normal(size=(c_out,)) * 0.2, requires_grad=True)
    kwargs = dict(stride=stride, padding=padding, dilation=dilation,
                  deformable_groups=dg)
    mask = Tensor(g.uniform(0.2, 0.9, size=(1, dg * k, oh, ow)),
                  requires_grad=True)
    return x, off, wt, b, mask, kwargs


@given(seed=st.integers(0, 500),
       idx=st.integers(0, len(DEFORM_CONFIGS) - 1),
       with_mask=st.booleans())
@settings(max_examples=12, deadline=None)
def test_deform_conv_backward_fuzz(seed, idx, with_mask):
    """Grouped/strided/dilated DeformConv2d backward vs numerical grads."""
    from repro.deform import deform_conv2d

    x, off, wt, b, mask, kwargs = _deform_case(seed, idx)
    variables = [x, off, wt, b] + ([mask] if with_mask else [])

    def build():
        return deform_conv2d(x, off, wt, b,
                             mask=mask if with_mask else None, **kwargs)

    check_gradients(build, variables, tol=4e-2)
