"""Integration tests: small end-to-end flows across subsystems.

Kept deliberately tiny (seconds each) — the full-size experiment flows live
in benchmarks/.
"""

import numpy as np
import pytest

from repro.autotune import TileTuner
from repro.data import ShapesDataset
from repro.gpusim import XAVIER
from repro.models import build_classifier, build_yolact, dual_path_sites
from repro.nas import IntervalSearch, SearchConfig
from repro.pipeline import (AccuracyExperiment, DefconConfig,
                            ExperimentSettings, TrainConfig,
                            evaluate_detector, train_detector)
from repro.pipeline.losses import classification_loss
from repro.tensor import Tensor

from helpers import rng

TINY_TRAIN = TrainConfig(epochs=2, batch_size=8, lr=1e-2, seed=0)


@pytest.fixture(scope="module")
def tiny_data():
    return (ShapesDataset.generate(32, size=64, seed=0),
            ShapesDataset.generate(16, size=64, seed=100))


class TestDetectionTraining:
    def test_loss_decreases(self, tiny_data):
        train_set, _ = tiny_data
        model = build_yolact("r50s", seed=0)
        log = train_detector(model, train_set, TINY_TRAIN)
        first = np.mean(log.losses[:3])
        last = np.mean(log.losses[-3:])
        assert last < first

    def test_evaluate_detector_returns_result(self, tiny_data):
        train_set, val_set = tiny_data
        model = build_yolact("r50s", seed=0)
        train_detector(model, train_set, TINY_TRAIN)
        result = evaluate_detector(model, val_set)
        assert 0.0 <= result.mask_map <= 1.0
        assert 0.0 <= result.box_map <= 1.0

    def test_dcn_detector_trains(self, tiny_data):
        train_set, _ = tiny_data
        model = build_yolact("r50s", placement=[True] * 9, lightweight=True,
                             bound=7.0, seed=0)
        log = train_detector(model, train_set, TINY_TRAIN)
        assert np.isfinite(log.losses).all()

    def test_regularized_training_runs(self, tiny_data):
        train_set, _ = tiny_data
        settings = ExperimentSettings(
            task="detection", train_samples=16, val_samples=8,
            train=TrainConfig(epochs=1, batch_size=8))
        exp = AccuracyExperiment(settings)
        row = exp.run_fixed("reg", [True] * 9,
                            DefconConfig(boundary=True, lightweight=True,
                                         regularization=True))
        assert np.isfinite(row.mask_map)


class TestSearchIntegration:
    def test_classification_search_end_to_end(self):
        settings = ExperimentSettings(
            task="classification", train_samples=24, val_samples=8,
            train=TrainConfig(epochs=1, batch_size=8, lr=1e-2),
            search=SearchConfig(search_epochs=1, finetune_epochs=1,
                                beta=0.01))
        exp = AccuracyExperiment(settings)
        result = exp.run_search()
        assert len(result.placement) == settings.num_sites
        assert result.search_losses and result.finetune_losses
        row = exp.evaluate_searched(result)
        assert row.accuracy is not None

    def test_supernet_detection_search_step(self):
        """One search step over the detection supernet wires losses,
        penalty, and both optimizers together."""
        supernet = build_yolact("r50s", supernet=True, bound=7.0, seed=0)
        sites = dual_path_sites(supernet)
        assert len(sites) == 9
        ds = ShapesDataset.generate(8, size=64, seed=0)

        from repro.pipeline.losses import detection_loss

        def batches():
            return ds.batches(8)

        def loss_fn(model, batch):
            images, samples = batch
            return detection_loss(model(Tensor(images)), samples, 64)

        cfg = SearchConfig(search_epochs=1, finetune_epochs=0, beta=0.01,
                           target_latency_ms=10.0)
        result = IntervalSearch(supernet, sites, [1.0] * 9, cfg).run(
            batches, loss_fn)
        assert len(result.search_losses) == 1

    def test_site_latencies_paper_scale(self):
        settings = ExperimentSettings(train_samples=4, val_samples=4)
        exp = AccuracyExperiment(settings)
        lats = exp.site_latencies_ms()
        assert len(lats) == settings.num_sites
        assert all(l > 0 for l in lats)


class TestTunerIntegration:
    def test_tuned_tile_not_worse_than_default(self):
        from repro.kernels import DEFAULT_TILE, LayerConfig, run_deform_op
        from repro.kernels import synth_offsets

        cfg = LayerConfig(32, 32, 34, 34)
        tuner = TileTuner(XAVIER, budget=10, seed=0)
        best = tuner.best_tile(cfg)
        g = rng(0)
        x = g.normal(size=cfg.input_shape()).astype(np.float32)
        w = g.normal(size=cfg.weight_shape()).astype(np.float32)
        off = synth_offsets(cfg, bound=7.0, seed=0)
        t_best = run_deform_op("tex2d", x, off, w, None, cfg, XAVIER,
                               tile=best, compute_output=False
                               ).sample_kernel.duration_ms
        t_default = run_deform_op("tex2d", x, off, w, None, cfg, XAVIER,
                                  tile=DEFAULT_TILE, compute_output=False
                                  ).sample_kernel.duration_ms
        assert t_best <= t_default * 1.001


class TestTextureInferenceEquivalence:
    def test_trained_dcn_layer_through_texture_path(self):
        """Run a trained DeformConv2d's offsets through the tex2D kernel —
        outputs must agree to fixed-point tolerance (the 'no accuracy
        impact' claim on real, non-synthetic offsets)."""
        from repro.deform.layers import DeformConv2d
        from repro.kernels import LayerConfig, run_deform_op

        layer = DeformConv2d(8, 8, bound=7.0, bias=False, rng=rng(1))
        # give it non-trivial offsets
        layer.offset_head.conv.weight.data[:] = \
            0.05 * rng(2).normal(size=layer.offset_head.conv.weight.shape)
        x = rng(3).normal(size=(1, 8, 12, 12)).astype(np.float32)
        out_soft = layer(Tensor(x))
        off = layer.last_offsets.data
        cfg = LayerConfig(8, 8, 12, 12)
        res = run_deform_op("tex2d", x, off, layer.weight.data, None, cfg,
                            XAVIER, compute_output=True)
        err = np.abs(res.output - out_soft.data).max()
        assert err < 0.02 * np.abs(out_soft.data).max()
