"""Sharded execution tests (docs/fleet.md): halo helper, interconnect,
planner math, shard-aware routing, bit-identity and scheduler integration.

The interconnect / band-math / tie-break tests are exact unit tests over
the planner's own arithmetic; the integration slice runs real
DefconEngines on the Xavier/2080Ti presets through ``build_fleet`` so the
shard decision table, metrics and end-to-end results are pinned against
the unsharded fleet.
"""

import numpy as np
import pytest

from repro.fleet import (EngineCostModel, Interconnect, LinkSpec,
                         ShardAwareCostRouter, ShardPlan, ShardPlanner,
                         build_fleet, default_interconnect, make_router)
from repro.fleet.shard import DEFAULT_LINK, _FRACTION_DEN, \
    ShardAssignment, _fractions, _stage_bounds
from repro.gpusim import RTX_2080TI, XAVIER
from repro.kernels import LayerConfig, PlanCache, run_deform_op, \
    synth_offsets, tile_footprint_bytes
from repro.kernels.shards import (SHARD_KINDS, ShardSpec, band_bounds,
                                  enumerate_shards, run_shard,
                                  stitch_columns)
from repro.kernels.tiling import deformation_halo

pytestmark = pytest.mark.fleet

SMALL = LayerConfig(8, 8, 14, 14)


@pytest.fixture(scope="module")
def small_model():
    from repro.models import build_classifier
    from repro.nas import manual_interval_placement

    return build_classifier("r50s", input_size=32,
                            placement=manual_interval_placement(9, 3),
                            bound=7.0, seed=0)


# ----------------------------------------------------------------------
# the one deformation-halo formula, pinned at both callers
# ----------------------------------------------------------------------
class TestDeformationHalo:
    def test_formula(self):
        # int(bound) reachable texels + half the kernel footprint + one
        # texel of bilinear support
        assert deformation_halo(3, 7.0) == 7 + 1 + 1
        assert deformation_halo(5, 7.0) == 7 + 2 + 1
        assert deformation_halo(3, 0.0) == 0 + 1 + 1

    def test_tile_footprint_caller(self):
        # tuner working set: (tile * stride + 2 * halo)^2 texels
        for bound in (0.0, 7.0):
            halo = deformation_halo(SMALL.kernel_size, bound)
            span = 8 * SMALL.stride + 2 * halo
            assert tile_footprint_bytes(SMALL, (8, 8), bound=bound) \
                == span * span * 4

    @pytest.mark.parametrize("bound", [0.0, 7.0])
    def test_shard_planner_caller(self, bound):
        # solve the halo back out of the planner's row-shard input bytes:
        # it must be the very same helper value, for every bound
        cfg = LayerConfig(8, 8, 64, 64)
        planner = ShardPlanner(Interconnect(), bound=bound)
        frac, offb = 0.25, 2
        band_h = frac * cfg.out_height
        off_bytes = (cfg.batch * cfg.deformable_groups * 2 * cfg.taps
                     * band_h * cfg.out_width * offb)
        got = planner._in_bytes(cfg, "rows", frac, offb)
        rows_in = (got - off_bytes) / (cfg.batch * cfg.in_channels
                                       * cfg.width * 4)
        implied_halo = (rows_in - band_h * cfg.stride) / 2
        assert implied_halo == deformation_halo(cfg.kernel_size, bound)

    def test_rows_in_clamps_to_input_height(self):
        # a band covering the whole plane cannot ship more rows than exist
        planner = ShardPlanner(Interconnect(), bound=7.0)
        whole = planner._in_bytes(SMALL, "rows", 1.0, 2)
        off_bytes = (SMALL.batch * SMALL.deformable_groups * 2 * SMALL.taps
                     * SMALL.out_height * SMALL.out_width * 2)
        assert whole == SMALL.batch * SMALL.in_channels * SMALL.height \
            * SMALL.width * 4 + off_bytes

    def test_out_bytes_rows_band_vs_channels_partial(self):
        planner = ShardPlanner(Interconnect())
        full = SMALL.batch * SMALL.out_channels * SMALL.out_pixels * 4.0
        # a row shard ships only its band; a channel shard ships a
        # full-size partial product for the stitch to reduce
        assert planner._out_bytes(SMALL, "rows", 0.25) == 0.25 * full
        assert planner._out_bytes(SMALL, "channels", 0.25) == full


# ----------------------------------------------------------------------
# interconnect
# ----------------------------------------------------------------------
class TestInterconnect:
    def test_transfer_ms_latency_plus_bytes_over_bandwidth(self):
        link = LinkSpec(latency_ms=0.01, bandwidth_gbps=10.0)
        # 10 GB/s = 1e7 bytes/ms
        assert link.transfer_ms(1e7) == pytest.approx(0.01 + 1.0)
        assert link.transfer_ms(0) == 0.0
        assert link.transfer_ms(-5) == 0.0

    def test_links_are_symmetric_and_default_falls_back(self):
        fast = LinkSpec(latency_ms=0.001, bandwidth_gbps=100.0)
        ic = Interconnect({("b", "a"): fast})
        assert ic.link("a", "b") is fast
        assert ic.link("b", "a") is fast
        assert ic.link("a", "c") is DEFAULT_LINK
        assert ic.transfer_ms(1e6, "a", "b") \
            == ic.transfer_ms(1e6, "b", "a")

    def test_default_interconnect_is_nvlink_class(self):
        ic = default_interconnect([XAVIER, RTX_2080TI])
        cross = ic.link(XAVIER.name, RTX_2080TI.name)
        slower = min(XAVIER.dram_bandwidth_gbps,
                     RTX_2080TI.dram_bandwidth_gbps)
        assert cross.bandwidth_gbps == pytest.approx(slower / 2.0, abs=1e-3)
        assert cross.latency_ms == 0.003
        same = ic.link(XAVIER.name, XAVIER.name)
        assert same.latency_ms == 0.002
        assert same.bandwidth_gbps \
            == pytest.approx(XAVIER.dram_bandwidth_gbps / 2.0, abs=1e-3)

    def test_rows_view_lists_every_pair_once(self):
        ic = default_interconnect([XAVIER, RTX_2080TI])
        rows = ic.rows([XAVIER.name, RTX_2080TI.name])
        pairs = [r["pair"] for r in rows]
        assert pairs == sorted(pairs) and len(pairs) == len(set(pairs))
        assert len(rows) == 3            # (a,a), (a,b), (b,b)
        assert all(r["explicit"] for r in rows)


# ----------------------------------------------------------------------
# band / fraction / stage arithmetic
# ----------------------------------------------------------------------
class TestBandMath:
    @pytest.mark.parametrize("total,weights", [
        (14, (1.0, 1.0)), (14, (3.0, 1.0)), (7, (1.0, 1.0, 1.0)),
        (5, (0.9, 0.05, 0.05)), (720, (2.3, 1.1, 0.6)),
    ])
    def test_band_bounds_tile_exactly(self, total, weights):
        bounds = band_bounds(total, weights)
        assert bounds[0][0] == 0 and bounds[-1][1] == total
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo            # contiguous, no gap or overlap
        assert all(lo <= hi for lo, hi in bounds)

    def test_band_bounds_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            band_bounds(0, (1.0,))
        with pytest.raises(ValueError):
            band_bounds(4, ())
        with pytest.raises(ValueError):
            band_bounds(4, (0.0, 0.0))

    def test_fractions_cover_denominator_with_no_zero_share(self):
        for weights in ((1.0, 1.0), (5.0, 1.0), (1.0, 1e-6, 1.0)):
            fracs = _fractions(weights)
            assert sum(num for num, _ in fracs) == _FRACTION_DEN
            assert all(den == _FRACTION_DEN for _, den in fracs)
            assert all(num >= 1 for num, _ in fracs)

    def test_stage_bounds_partition_contiguous_nonempty(self):
        for costs, k in (([1.0, 1.0, 1.0], 2), ([5.0, 1.0, 1.0, 1.0], 3),
                         ([1.0] * 6, 3)):
            stages = _stage_bounds(costs, k)
            assert len(stages) == k
            assert stages[0][0] == 0 and stages[-1][1] == len(costs)
            for lo, hi in stages:
                assert hi > lo
            for (_, hi), (lo, _) in zip(stages, stages[1:]):
                assert hi == lo

    def test_enumerate_shards_tile_and_skip_empty(self):
        shards = enumerate_shards(SMALL, "rows", (1.0, 1.0))
        assert [s.label() for s in shards] == ["rows[0:7]", "rows[7:14]"]
        # a vanishing weight rounds to an empty band -> None placeholder
        shards = enumerate_shards(SMALL, "rows", (1.0, 1e-9))
        assert shards[0].hi == SMALL.out_height and shards[1] is None

    def test_shard_spec_validates(self):
        with pytest.raises(ValueError):
            ShardSpec("diagonal", 0, 2, 0, 4)
        with pytest.raises(ValueError):
            ShardSpec("rows", 0, 2, 4, 4)


# ----------------------------------------------------------------------
# cost-model shard descriptors + memo keys
# ----------------------------------------------------------------------
class TestEngineCostModelShards:
    @pytest.fixture(scope="class")
    def cm(self, small_model):
        from repro.pipeline import DefconEngine

        return EngineCostModel(DefconEngine(small_model, RTX_2080TI))

    def test_descriptor_arithmetic(self, cm):
        shape = (3, 32, 32)
        whole = cm(shape)
        sites = len(cm.site_configs(shape))
        assert cm(shape, shard=("rows", 360, 720)) \
            == pytest.approx(whole / 2.0)
        assert cm(shape, shard=("stage", 0, sites)) \
            == pytest.approx(whole)
        stages = sum(cm(shape, shard=("stage", i, i + 1))
                     for i in range(sites))
        assert stages == pytest.approx(whole)

    def test_memo_keys_carry_the_descriptor(self, cm):
        shape = (3, 32, 32)
        cm(shape)
        cm(shape, shard=("rows", 360, 720))
        keys = set(cm._cache)
        assert (shape, 1, None) in keys
        assert (shape, 1, ("rows", 360, 720)) in keys

    def test_unknown_descriptor_rejected(self, cm):
        with pytest.raises(ValueError):
            cm((3, 32, 32), shard=("diagonal", 1, 2))

    def test_shard_site_ms_exact_and_memoised(self, cm):
        shape = (3, 32, 32)
        sites = len(cm.site_configs(shape))
        first = cm.shard_site_ms(shape, 1, "channels", (1, 1), 0)
        assert len(first) == sites
        assert all(s > 0 and g > 0 for s, g in first)
        assert cm.shard_site_ms(shape, 1, "channels", (1, 1), 0) is first
        # the two halves of an even split price identically per site
        other = cm.shard_site_ms(shape, 1, "channels", (1, 1), 1)
        assert other == pytest.approx(first)

    def test_small_shard_gemm_does_not_scale_linearly(self, cm):
        # the wave-quantisation effect that forced exact shard pricing: a
        # half-row shard's GEMM costs clearly more than half the whole
        # GEMM, so fraction-scaled pricing would systematically lie
        shape = (3, 32, 32)
        whole = sum(g for _, g in cm.site_split_ms(shape))
        half = sum(g for _, g in
                   cm.shard_site_ms(shape, 1, "rows", (1, 1), 0))
        assert half > 0.55 * whole


# ----------------------------------------------------------------------
# routing determinism + tie-breaking
# ----------------------------------------------------------------------
def _plan(label_worker, ms, kind="rows", n=2):
    assignments = tuple(
        ShardAssignment(worker=f"{label_worker}{i}", device="d",
                        weight=1.0, fraction=(360, 720))
        for i in range(n))
    return ShardPlan(kind=kind, coordinator=f"{label_worker}0",
                     assignments=assignments, predicted_ms=ms)


class TestRoutingDeterminism:
    def _worker(self, name, ms):
        from repro.fleet import FleetWorker

        class _Engine:
            def classify(self, images):
                return np.zeros(images.shape[0], dtype=np.int64)

        return FleetWorker(name, _Engine(),
                           predictor=lambda shape, batch, ms=ms: ms * batch)

    def test_equal_ects_tie_break_by_worker_name(self):
        workers = [self._worker(n, 1.0) for n in ("wb", "wa", "wc")]
        router = make_router("cost")
        assert router.choose(workers, (3, 8, 8), 0.0).name == "wa"
        table = router.ect_table(workers, (3, 8, 8), 0.0)
        assert table == {"wa": 1.0, "wb": 1.0, "wc": 1.0}
        # determinism: repeated evaluation yields the identical table
        assert router.ect_table(workers, (3, 8, 8), 0.0) == table

    def test_unbound_shard_router_degrades_to_cost(self):
        workers = [self._worker(n, 1.0) for n in ("wb", "wa")]
        router = make_router("shard-cost")
        assert isinstance(router, ShardAwareCostRouter)
        assert router.choose(workers, (3, 8, 8), 0.0).name == "wa"
        assert not any(k.startswith("plan:")
                       for k in router.ect_table(workers, (3, 8, 8), 0.0))

    def test_equal_cost_plans_tie_break_by_label(self, monkeypatch):
        planner = ShardPlanner(Interconnect())
        a = _plan("a", 1.0, kind="rows")
        b = _plan("b", 1.0, kind="channels")
        monkeypatch.setattr(planner, "plan_space",
                            lambda *args, **kw: [a, b])
        best = planner.best_plan([], (3, 8, 8), 1, 0.0)
        assert best.label == min(a.label, b.label)
        assert best is (a if a.label < b.label else b)

    def test_always_mode_picks_widest_split_then_cheapest(self, monkeypatch):
        planner = ShardPlanner(Interconnect(), mode="always")
        single = ShardPlan(kind="single", coordinator="c", assignments=(),
                           predicted_ms=0.1)
        narrow = _plan("n", 0.2, n=2)
        wide_slow = _plan("s", 5.0, n=3)
        wide_fast = _plan("f", 4.0, n=3)
        coord = type("W", (), {"shardable": True})()
        monkeypatch.setattr(
            planner, "plan_space",
            lambda *args, **kw: [single, narrow, wide_slow, wide_fast])
        got = planner.resolve([], coord, (3, 8, 8), 1, 0.0)
        assert got is wide_fast

    def test_cost_mode_may_resolve_single(self, monkeypatch):
        planner = ShardPlanner(Interconnect(), mode="cost")
        single = ShardPlan(kind="single", coordinator="c", assignments=(),
                           predicted_ms=0.1)
        split = _plan("s", 0.5)
        coord = type("W", (), {"shardable": True})()
        monkeypatch.setattr(planner, "plan_space",
                            lambda *args, **kw: [single, split])
        assert planner.resolve([], coord, (3, 8, 8), 1, 0.0) is single

    def test_unshardable_coordinator_resolves_none(self):
        planner = ShardPlanner(Interconnect())
        coord = type("W", (), {"shardable": False})()
        assert planner.resolve([], coord, (3, 8, 8), 1, 0.0) is None

    def test_planner_rejects_unknown_mode_and_kind(self):
        with pytest.raises(ValueError):
            ShardPlanner(Interconnect(), mode="sometimes")
        with pytest.raises(ValueError):
            ShardPlanner(Interconnect(), kinds=("diagonal",))

    def test_real_plan_space_rows_in_ect_table(self, small_model):
        sched = build_fleet(small_model, ("xavier", "2080ti"), shard="cost")
        table = sched.router.ect_table(sched.workers, (3, 32, 32), 0.0)
        plan_rows = {k: v for k, v in table.items()
                     if k.startswith("plan:")}
        assert plan_rows, "shard-aware router exposed no plan rows"
        assert all(v > 0 for v in plan_rows.values())
        assert sched.router.ect_table(sched.workers, (3, 32, 32), 0.0) \
            == table


# ----------------------------------------------------------------------
# bit-identity of stitched shards (fast unit slice of the conformance
# group's shard.bit_identical.* checks)
# ----------------------------------------------------------------------
class TestShardBitIdentity:
    @pytest.fixture(scope="class")
    def arrays(self):
        g = np.random.default_rng(3)
        x = g.normal(size=SMALL.input_shape()).astype(np.float32)
        w = g.normal(size=SMALL.weight_shape()).astype(np.float32)
        b = g.normal(size=(SMALL.out_channels,)).astype(np.float32)
        off = synth_offsets(SMALL, bound=7.0, seed=3)
        base = run_deform_op("tex2dpp", x, off, w, b, SMALL, XAVIER).output
        return x, off, w, b, base

    @pytest.mark.parametrize("kind", SHARD_KINDS)
    @pytest.mark.parametrize("weights", [(2.0, 1.0), (1.0, 1.0, 1.0)])
    def test_stitched_equals_unsharded(self, arrays, kind, weights):
        x, off, w, b, base = arrays
        pc = PlanCache(max_entries=8)
        for _ in ("cold", "warm"):
            shards = [s for s in enumerate_shards(SMALL, kind, weights)
                      if s is not None]
            results = [run_shard(x, off, SMALL, XAVIER, s,
                                 fp16_offsets=True, plan_cache=pc)
                       for s in shards]
            out = stitch_columns(results, w, b, SMALL, XAVIER).output
            assert np.array_equal(out, base)

    def test_shard_stats_shape(self, arrays):
        x, off, w, b, _ = arrays
        spec = ShardSpec("rows", 0, 2, 0, 7)
        res = run_shard(x, off, SMALL, XAVIER, spec, fp16_offsets=True)
        assert res.sample.duration_ms > 0 and res.gemm.duration_ms > 0
        assert res.out_bytes > 0 and res.in_bytes > 0
        assert res.halo_rows >= 0


# ----------------------------------------------------------------------
# scheduler integration (real engines)
# ----------------------------------------------------------------------
class TestSchedulerIntegration:
    def _images(self, n, size=32):
        rng = np.random.default_rng(0)
        return [rng.uniform(0, 1, (3, size, size)).astype(np.float32)
                for _ in range(n)]

    def test_always_mode_shards_and_accounts(self, small_model):
        sched = build_fleet(small_model, ("xavier", "2080ti"),
                            shard="always", max_batch_size=1)
        futs = [sched.submit(img) for img in self._images(2)]
        sched.drain()
        snap = sched.snapshot()
        shard = snap["shard"]
        assert shard["mode"] == "always"
        assert snap["completed"] == 2 and not sched.unresolved()
        assert all(f.exception() is None for f in futs)
        assert shard["sharded_batches"] > 0
        assert shard["traffic_bytes"].get("scatter", 0) > 0
        assert shard["traffic_bytes"].get("gather", 0) > 0
        # both workers' device timelines advanced: the non-coordinator
        # participant was genuinely busy during the split
        assert all(w["busy_until_ms"] > 0 for w in snap["workers"])
        applied = [d for d in sched.shard_decisions if d["applied"]]
        assert applied
        for d in applied:
            assert d["kind"] in SHARD_KINDS + ("pipeline",)
            assert d["simulated_ms"] is not None
            assert len(d["workers"]) >= 2

    def test_sharded_results_match_unsharded(self, small_model):
        images = self._images(3)
        plain = build_fleet(small_model, ("xavier", "2080ti"),
                            max_batch_size=1)
        sharded = build_fleet(small_model, ("xavier", "2080ti"),
                              shard="always", max_batch_size=1)
        want, got = [], []
        for sched, out in ((plain, want), (sharded, got)):
            futs = [sched.submit(img) for img in images]
            sched.drain()
            out.extend(f.result() for f in futs)
        assert [np.asarray(a).tolist() for a in want] \
            == [np.asarray(a).tolist() for a in got]

    def test_cost_mode_records_every_decision(self, small_model):
        sched = build_fleet(small_model, ("xavier", "2080ti"),
                            shard="cost", max_batch_size=2)
        futs = [sched.submit(img) for img in self._images(4)]
        sched.drain()
        assert all(f.exception() is None for f in futs)
        assert sched.snapshot()["shard"]["mode"] == "cost"
        assert sched.shard_decisions
        for d in sched.shard_decisions:
            assert d["plan"] and d["predicted_ms"] >= 0
            assert d["kind"] in ("single",) + SHARD_KINDS + ("pipeline",)

    def test_shard_off_leaves_planner_unset(self, small_model):
        sched = build_fleet(small_model, ("xavier", "2080ti"))
        assert sched.shard_planner is None
        assert sched.snapshot()["shard"] is None

    def test_pipeline_plans_priced_for_batches(self, small_model):
        sched = build_fleet(small_model, ("xavier", "2080ti"),
                            shard="cost", max_batch_size=4)
        planner = sched.shard_planner
        plans = planner.plan_space(sched.workers, (3, 32, 32), 2, 0.0)
        pipes = [p for p in plans if p.kind == "pipeline"]
        assert pipes, "no pipeline plan priced for a batched request"
        sites = len(sched.workers[0].site_configs((3, 32, 32), 2))
        for p in pipes:
            assert p.predicted_ms > 0
            stages = [a.fraction for a in p.assignments]
            assert stages[0][0] == 0 and stages[-1][1] == sites
            for (_, hi), (lo, _) in zip(stages, stages[1:]):
                assert hi == lo
