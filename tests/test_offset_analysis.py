"""Offset/receptive-field analysis utilities."""

import numpy as np
import pytest

from repro.deform import (DeformConv2d, ascii_heatmap,
                          deformation_magnitude_map, model_offset_report,
                          offset_stats)
from repro.models import build_classifier
from repro.tensor import Tensor

from helpers import rng


class TestOffsetStats:
    def test_zero_offsets(self):
        stats = offset_stats(np.zeros((1, 18, 4, 4)))
        assert stats.mean_magnitude == 0.0
        assert stats.effective_radius == pytest.approx(1.0)  # 3x3 base

    def test_known_displacement(self):
        off = np.zeros((1, 18, 2, 2))
        off[:, 0::2] = 3.0   # Δy = 3 everywhere, Δx = 0
        stats = offset_stats(off)
        assert stats.mean_magnitude == pytest.approx(3.0)
        assert stats.max_magnitude == pytest.approx(3.0)
        assert stats.effective_radius == pytest.approx(4.0)

    def test_saturation_fraction(self):
        off = np.zeros((1, 18, 1, 1))
        off[0, :9] = 7.0    # half the components pinned at the bound
        stats = offset_stats(off, bound=7.0)
        assert stats.saturation == pytest.approx(0.5)

    def test_dilation_extends_base_radius(self):
        stats = offset_stats(np.zeros((1, 18, 2, 2)), dilation=2)
        assert stats.effective_radius == pytest.approx(2.0)

    def test_row_format(self):
        row = offset_stats(np.zeros((1, 18, 2, 2))).row()
        assert set(row) == {"mean|Δp|", "std", "max|Δp|", "saturation%",
                            "eff_radius"}


class TestModelReport:
    def test_report_after_forward(self):
        model = build_classifier("r50s", placement=[True] * 9, bound=7.0,
                                 seed=0)
        xs = rng(0).uniform(0, 1, size=(1, 3, 64, 64)).astype(np.float32)
        model(Tensor(xs))
        report = model_offset_report(model)
        assert len(report) == 9
        for stats in report.values():
            assert stats.max_magnitude <= 7.0 + 1e-5

    def test_empty_before_forward(self):
        model = build_classifier("r50s", placement=[True] * 9, seed=0)
        assert model_offset_report(model) == {}


class TestHeatmap:
    def test_magnitude_map_shape(self):
        off = rng(1).normal(size=(2, 18, 6, 8)).astype(np.float32)
        grid = deformation_magnitude_map(off)
        assert grid.shape == (6, 8)
        assert (grid >= 0).all()

    def test_ascii_heatmap_renders(self):
        grid = np.zeros((8, 8))
        grid[4, 4] = 1.0
        art = ascii_heatmap(grid)
        lines = art.splitlines()
        assert len(lines) == 8
        assert "@" in art and " " in art

    def test_ascii_heatmap_all_zero(self):
        art = ascii_heatmap(np.zeros((4, 4)))
        assert set(art.replace("\n", "")) == {" "}
