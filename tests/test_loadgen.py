"""Statistical + determinism tests for the open-loop load generator.

The loadgen is a seeded non-homogeneous Poisson sampler; these tests
check the *distribution*, not single draws, with confidence bounds
derived from the process itself:

* flat-spec interarrival gaps are exponential(λ): sample mean within
  4·σ/√n of 1/λ and sample variance within 5·√(8/n) of 1/λ² (the
  exponential's fourth moment gives Var(s²) ≈ 8σ⁴/n);
* the normalised envelope integrates to the configured request count
  (analytic normaliser vs an independent trapezoid), and the realised
  Poisson count lands within 5·√N of N;
* a burst episode multiplies the windowed arrival rate by its factor;
* identical specs yield byte-identical event streams in this process
  and in a pool worker (``test_key_stability.py`` style).
"""

import math

import numpy as np
import pytest

from repro.fleet.loadgen import (Arrival, BurstEpisode, LoadSpec,
                                 RequestClass, parse_loadgen)

pytestmark = pytest.mark.fleet

FLAT = LoadSpec(requests=4000, duration_ms=1000.0, seed=11)

CROSS = LoadSpec(requests=500, duration_ms=100.0, diurnal_amplitude=0.6,
                 diurnal_cycles=2.0,
                 bursts=(BurstEpisode(20.0, 30.0, 4.0),),
                 classes=(RequestClass("small", 3.0, 16, 2.0, 0),
                          RequestClass("large", 1.0, 32, 8.0, 1)),
                 seed=7)


# Pool entry points must be module-level so they pickle.
def _worker_stream_digest(_=None) -> str:
    return CROSS.stream_digest()


def _in_worker(fn):
    """Run ``fn`` in a single pool worker; skip if pools are unavailable."""
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(fn).result(timeout=60)
    except Exception as exc:  # sandboxed CI without fork/spawn support
        pytest.skip(f"process pool unavailable: {exc}")


class TestPoissonStatistics:
    def test_interarrival_mean_within_bounds(self):
        """Flat spec: gaps are exponential(λ = N/D), so the sample mean
        must land within 4 standard errors of 1/λ."""
        times = np.array([a.t_ms for a in FLAT.events()])
        gaps = np.diff(times)
        n = len(gaps)
        lam = FLAT.requests / FLAT.duration_ms
        mu = 1.0 / lam
        stderr = mu / math.sqrt(n)       # σ = μ for the exponential
        assert abs(gaps.mean() - mu) < 4.0 * stderr, \
            f"mean {gaps.mean():.4f} vs {mu:.4f} ± {4 * stderr:.4f}"

    def test_interarrival_variance_within_bounds(self):
        """Sample variance of exponential(λ) gaps ≈ 1/λ², with sampling
        error √(Var(s²)) ≈ √(8/n)·σ² from the fourth moment."""
        times = np.array([a.t_ms for a in FLAT.events()])
        gaps = np.diff(times)
        n = len(gaps)
        var = (FLAT.duration_ms / FLAT.requests) ** 2
        tol = 5.0 * math.sqrt(8.0 / n) * var
        sample = gaps.var(ddof=1)
        assert abs(sample - var) < tol, \
            f"variance {sample:.5f} vs {var:.5f} ± {tol:.5f}"

    def test_realised_count_is_poisson_around_requests(self):
        """The envelope is normalised to mass N, so the realised count is
        Poisson(N): within 5·√N of N."""
        for seed in (0, 1, 2):
            spec = LoadSpec(requests=2000, duration_ms=200.0,
                            diurnal_amplitude=0.5,
                            bursts=(BurstEpisode(50.0, 80.0, 3.0),),
                            seed=seed)
            n = len(spec.events())
            assert abs(n - spec.requests) < 5 * math.sqrt(spec.requests), \
                f"seed {seed}: realised {n} vs expected {spec.requests}"


class TestEnvelope:
    def test_envelope_integrates_to_request_count(self):
        """The analytic normaliser must agree with an independent
        numerical integral of rate(t)."""
        spec = CROSS
        # integrate each burst segment separately so the trapezoid never
        # straddles a rate discontinuity
        total = 0.0
        for t0, t1, _ in spec._segments():
            ts = np.linspace(t0, t1, 20001)
            rates = np.array([spec.rate(t) for t in ts[:-1]] +
                             [spec.rate(t1 - 1e-9)])
            total += float(np.sum(0.5 * (rates[1:] + rates[:-1])
                                  * np.diff(ts)))
        assert total == pytest.approx(spec.requests, rel=1e-3)

    def test_diurnal_modulates_arrival_density(self):
        """With a strong diurnal swell, the peak half of the cycle must
        hold more arrivals than the trough half."""
        spec = LoadSpec(requests=4000, duration_ms=400.0,
                        diurnal_amplitude=0.8, diurnal_cycles=1.0, seed=5)
        times = np.array([a.t_ms for a in spec.events()])
        # sin > 0 on the first half-period, < 0 on the second
        peak = np.sum(times < 200.0)
        trough = np.sum(times >= 200.0)
        assert peak > 1.5 * trough

    def test_burst_raises_windowed_rate_by_factor(self):
        """Arrival rate inside the burst window over the rate outside it
        must recover the configured factor."""
        factor = 4.0
        spec = LoadSpec(requests=6000, duration_ms=600.0,
                        bursts=(BurstEpisode(200.0, 300.0, factor),),
                        seed=13)
        times = np.array([a.t_ms for a in spec.events()])
        inside = np.sum((times >= 200.0) & (times < 300.0)) / 100.0
        outside = np.sum((times < 200.0) | (times >= 300.0)) / 500.0
        assert inside / outside == pytest.approx(factor, rel=0.15)

    def test_overlapping_bursts_compound(self):
        spec = LoadSpec(requests=100, duration_ms=100.0,
                        bursts=(BurstEpisode(10.0, 30.0, 2.0),
                                BurstEpisode(20.0, 40.0, 3.0)))
        assert spec.burst_factor(25.0) == pytest.approx(6.0)
        assert spec.burst_factor(15.0) == pytest.approx(2.0)
        assert spec.burst_factor(35.0) == pytest.approx(3.0)
        assert spec.burst_factor(50.0) == pytest.approx(1.0)

    def test_peak_rate_bounds_rate_everywhere(self):
        spec = CROSS
        peak = spec.peak_rate()
        ts = np.linspace(0.0, spec.duration_ms, 5003)[:-1]
        assert max(spec.rate(t) for t in ts) <= peak + 1e-12

    def test_scaled_preserves_shape_and_scales_mass(self):
        spec = CROSS.scaled(2.0)
        assert spec.requests == 2 * CROSS.requests
        assert spec.bursts == CROSS.bursts
        assert spec.classes == CROSS.classes
        assert spec.offered_rpms == pytest.approx(2 * CROSS.offered_rpms)


class TestRequestClasses:
    def test_class_mix_follows_weights(self):
        """3:1 weights → the small class holds ~75% of arrivals."""
        events = CROSS.events()
        small = sum(1 for a in events if a.cls.name == "small")
        frac = small / len(events)
        # binomial: p=0.75, σ = √(p(1−p)/n)
        sigma = math.sqrt(0.75 * 0.25 / len(events))
        assert abs(frac - 0.75) < 5 * sigma

    def test_classes_carry_geometry_deadline_priority(self):
        events = CROSS.events()
        by_name = {a.cls.name: a for a in events}
        small, large = by_name["small"], by_name["large"]
        assert small.image().shape == (3, 16, 16)
        assert large.image().shape == (3, 32, 32)
        assert small.cls.deadline_ms == 2.0 and small.cls.priority == 0
        assert large.cls.deadline_ms == 8.0 and large.cls.priority == 1

    def test_images_are_deterministic_per_arrival(self):
        a = CROSS.events()[0]
        img1, img2 = a.image(), a.image()
        assert img1.dtype == np.float32
        np.testing.assert_array_equal(img1, img2)


class TestDeterminism:
    def test_same_seed_same_stream_same_process(self):
        assert CROSS.stream_bytes() == CROSS.stream_bytes()
        assert LoadSpec(**{**CROSS.__dict__}).stream_digest() \
            == CROSS.stream_digest()

    def test_different_seed_different_stream(self):
        other = LoadSpec(**{**CROSS.__dict__, "seed": CROSS.seed + 1})
        assert other.stream_digest() != CROSS.stream_digest()

    def test_stream_identical_across_processes(self):
        """The acceptance criterion: byte-identical event streams for
        identical seeds in two different processes."""
        assert _worker_stream_digest() == _in_worker(_worker_stream_digest)

    def test_stream_digest_covers_event_content(self):
        events = CROSS.events()
        bumped = list(events)
        a = bumped[0]
        bumped[0] = Arrival(a.index, a.t_ms + 1e-9, a.cls, a.image_seed)
        assert CROSS.stream_digest(bumped) != CROSS.stream_digest(events)


class TestGrammar:
    def test_parse_full_spec(self):
        spec = parse_loadgen(
            "n=400,duration=50,diurnal=0.5,cycles=2,seed=3,"
            "burst=10-14x4,burst=30-31x8,"
            "classes=small:3:16:2.0:0|large:1:32:8.0:1")
        assert spec.requests == 400
        assert spec.duration_ms == 50.0
        assert spec.diurnal_amplitude == 0.5
        assert spec.diurnal_cycles == 2.0
        assert spec.seed == 3
        assert spec.bursts == (BurstEpisode(10.0, 14.0, 4.0),
                               BurstEpisode(30.0, 31.0, 8.0))
        assert spec.classes == (RequestClass("small", 3.0, 16, 2.0, 0),
                                RequestClass("large", 1.0, 32, 8.0, 1))

    def test_parse_defaults(self):
        spec = parse_loadgen("n=32,duration=16")
        assert spec.diurnal_amplitude == 0.0
        assert spec.bursts == ()
        assert len(spec.classes) == 1
        assert spec.classes[0].deadline_ms is None

    def test_dash_deadline_means_none(self):
        spec = parse_loadgen("n=8,duration=4,classes=c:1:16:-:2")
        assert spec.classes[0].deadline_ms is None
        assert spec.classes[0].priority == 2

    @pytest.mark.parametrize("bad", [
        "nope",                          # no key=value
        "n=8,duration=4,what=1",         # unknown key
        "n=8,duration=4,burst=10x4",     # malformed burst window
        "n=8,duration=4,classes=:1",     # empty class name
        "n=0,duration=4",                # zero requests
        "n=8,duration=4,burst=2-9x4",    # burst window outside [0, D)
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_loadgen(bad)

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LoadSpec(requests=10, duration_ms=10.0, diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            BurstEpisode(5.0, 5.0, 2.0)
        with pytest.raises(ValueError):
            RequestClass("x", weight=0.0)
        with pytest.raises(ValueError):
            LoadSpec(requests=10, duration_ms=10.0,
                     classes=(RequestClass("a"), RequestClass("a")))
