"""Heterogeneous fleet scheduler tests (docs/fleet.md).

Most tests drive the scheduler with deterministic fake engines and
injected predictors — the fleet is a synchronous simulation, so every
assertion here (routing decisions, breaker walks, shed/reject counts) is
exact, not statistical.  A small integration slice runs real
DefconEngines on the Xavier/2080Ti presets.
"""

import numpy as np
import pytest

from repro.fleet import (CLOSED, HALF_OPEN, OPEN, REASON_CLOSED,
                         REASON_EXPIRED, REASON_QUEUE_FULL, REASON_RETRIES,
                         BoundedDeadlineQueue, CircuitBreaker,
                         EngineCostModel, FaultInjector, FaultSpec,
                         FleetRejection, FleetRequest, FleetScheduler,
                         FleetWorker, SimClock, WorkerCrashed, WorkerWedged,
                         build_fleet, make_router, parse_fault)
from repro.obs import MetricsRegistry, SpanTracer

pytestmark = pytest.mark.fleet

IMG = np.zeros((3, 8, 8), dtype=np.float32)
IMG16 = np.zeros((3, 16, 16), dtype=np.float32)


class FakeEngine:
    """Deterministic classify stub; returns the batch index per image."""

    def __init__(self):
        self.batch_shapes = []

    def classify(self, images):
        self.batch_shapes.append(images.shape)
        return np.arange(images.shape[0], dtype=np.int64)


def req(rid, image=IMG, submit_ms=0.0, deadline_ms=None, predicted_ms=1.0):
    r = FleetRequest(rid, image, submit_ms, deadline_ms)
    r.predicted_ms = predicted_ms
    return r


def worker(name, ms, **kw):
    """Fake worker whose predicted latency is ``ms`` per image."""
    return FleetWorker(name, FakeEngine(),
                       predictor=lambda shape, batch, ms=ms: ms * batch,
                       **kw)


# ----------------------------------------------------------------------
# queueing
# ----------------------------------------------------------------------
class TestBoundedDeadlineQueue:
    def test_admission_control_rejects_when_full(self):
        q = BoundedDeadlineQueue(capacity=2)
        q.push(req(0))
        q.push(req(1))
        assert q.full
        with pytest.raises(FleetRejection) as exc:
            q.push(req(2))
        assert exc.value.reason == REASON_QUEUE_FULL

    def test_edf_pop_order_then_submission_order(self):
        q = BoundedDeadlineQueue()
        q.push(req(0, deadline_ms=50.0))
        q.push(req(1, deadline_ms=10.0))
        q.push(req(2))                      # no deadline → last
        q.push(req(3, deadline_ms=10.0))    # same deadline as 1 → by id
        ids = [r.id for r in q.pop_batch(max_batch=4)]
        assert ids == [1, 3, 0, 2]

    def test_pop_batch_only_stacks_same_shapes(self):
        q = BoundedDeadlineQueue()
        q.push(req(0, IMG))
        q.push(req(1, IMG16))
        q.push(req(2, IMG))
        batch = q.pop_batch(max_batch=4)
        assert [r.id for r in batch] == [0, 2]
        assert [r.id for r in q.pop_batch(4)] == [1]

    def test_shed_expired_removes_only_late_requests(self):
        q = BoundedDeadlineQueue()
        q.push(req(0, deadline_ms=5.0))
        q.push(req(1, deadline_ms=20.0))
        q.push(req(2))
        shed = q.shed_expired(now_ms=10.0)
        assert [r.id for r in shed] == [0]
        assert len(q) == 2

    def test_pending_ms_sums_predictions(self):
        q = BoundedDeadlineQueue()
        q.push(req(0, predicted_ms=2.0))
        q.push(req(1, predicted_ms=3.5))
        assert q.pending_ms == pytest.approx(5.5)


class TestQueueUnderOpenLoopBursts:
    """The queue's robustness rules under generated bursty traffic —
    previously only exercised with hand-built request lists."""

    def test_shed_boundary_is_strictly_after_deadline(self):
        """Expiry at the exact deadline tick: ``now == deadline`` is
        still servable; the next representable instant is not."""
        q = BoundedDeadlineQueue()
        q.push(req(0, deadline_ms=10.0))
        assert q.shed_expired(now_ms=10.0) == []
        assert len(q) == 1
        just_after = float(np.nextafter(10.0, np.inf))
        assert [r.id for r in q.shed_expired(now_ms=just_after)] == [0]
        assert len(q) == 0

    def test_bursty_arrivals_trigger_admission_control_and_shedding(self):
        """Open-loop burst against a fixed-rate consumer: the bounded
        queue must reject pushes at capacity and shed exactly the
        requests whose deadline tick passed — and only during the flash
        crowd, since the envelope is well-provisioned outside it."""
        from repro.fleet import BurstEpisode, LoadSpec, RequestClass

        spec = LoadSpec(requests=60, duration_ms=60.0,
                        bursts=(BurstEpisode(20.0, 26.0, 8.0),),
                        classes=(RequestClass("c", 1.0, 8, 3.0, 0),),
                        seed=9)
        q = BoundedDeadlineQueue(capacity=8)
        service_ms = 0.5                    # consumer: one request / 0.5ms
        next_pop = 0.0
        rejected, shed, served = [], [], []
        for a in spec.events():
            while next_pop <= a.t_ms and len(q):
                shed += [r.id for r in q.shed_expired(next_pop)]
                served += [r.id for r in q.pop_batch(1)]
                next_pop += service_ms
            if not len(q):
                next_pop = max(next_pop, a.t_ms)
            r = FleetRequest(a.index, a.image(), a.t_ms,
                             a.t_ms + a.cls.deadline_ms)
            r.predicted_ms = service_ms
            try:
                q.push(r)
            except FleetRejection as exc:
                assert exc.reason == REASON_QUEUE_FULL
                rejected.append((a.index, a.t_ms))
        while len(q):
            shed += [r.id for r in q.shed_expired(next_pop)]
            served += [r.id for r in q.pop_batch(1)]
            next_pop += service_ms

        assert rejected, "the burst must overflow a capacity-8 queue"
        assert all(20.0 <= t < 28.0 for _, t in rejected), \
            "admission control should only fire around the flash crowd"
        assert shed, "3ms deadlines must expire while queued in the burst"
        # conservation: every arrival is served, shed, or rejected once
        ids = set(served) | set(shed) | {i for i, _ in rejected}
        assert len(served) + len(shed) + len(rejected) == len(ids)
        assert len(ids) == len(spec.events())

    def test_expiry_at_exact_boundary_inside_scheduler(self):
        """A request whose deadline equals the batch start tick is still
        served; one queued behind it expires and is shed with reason
        ``deadline_expired``."""
        sched = FleetScheduler([worker("w0", ms=5.0)], router="cost")
        f_exact = sched.submit(IMG, deadline_ms=5.0)    # served at 0.0
        f_late = sched.submit(IMG16, deadline_ms=5.0)   # starts at 5.0,
        sched.drain()                                    # 5.0 == deadline
        assert f_exact.result() is not None
        # the 16px request starts at t=5.0 — exactly its deadline — and
        # is still served (strictly-after semantics)
        assert f_late.result() is not None
        sched2 = FleetScheduler([worker("w0", ms=5.0)], router="cost")
        g0 = sched2.submit(IMG, deadline_ms=4.0)        # EDF head
        g1 = sched2.submit(IMG16, deadline_ms=4.999)    # expires at 5.0
        sched2.drain()
        assert g0.result() is not None
        with pytest.raises(FleetRejection) as exc:
            g1.result()
        assert exc.value.reason == REASON_EXPIRED


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_k_consecutive_failures(self):
        b = CircuitBreaker("w", failure_threshold=3)
        b.record_failure(1.0)
        b.record_failure(2.0)
        b.record_success(3.0)           # resets the streak
        b.record_failure(4.0)
        b.record_failure(5.0)
        assert b.state == CLOSED
        b.record_failure(6.0)
        assert b.state == OPEN and b.opened_at_ms == 6.0

    def test_half_open_probe_closes_on_success(self):
        b = CircuitBreaker("w", failure_threshold=1, cooldown_ms=10.0)
        b.record_failure(0.0)
        assert b.state == OPEN
        assert not b.probe_due(5.0)
        assert b.probe_due(10.0)
        b.begin_probe(10.0)
        assert b.state == HALF_OPEN
        b.record_success(11.0)
        assert b.state == CLOSED
        assert [(f, t) for _, f, t in b.transitions] == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        b = CircuitBreaker("w", failure_threshold=1, cooldown_ms=10.0)
        b.record_failure(0.0)
        b.begin_probe(10.0)
        b.record_failure(12.0)
        assert b.state == OPEN and b.opened_at_ms == 12.0
        assert not b.probe_due(21.0) and b.probe_due(22.0)

    def test_begin_probe_requires_open(self):
        b = CircuitBreaker("w")
        with pytest.raises(RuntimeError):
            b.begin_probe(0.0)

    def test_registry_mirrors_transitions(self):
        reg = MetricsRegistry()
        b = CircuitBreaker("w", failure_threshold=1, registry=reg)
        b.record_failure(0.0)
        counter = reg.get("fleet_breaker_transitions")
        assert counter.value(worker="w", to=OPEN) == 1
        assert reg.get("fleet_breaker_open").value(worker="w") == 1.0


# ----------------------------------------------------------------------
# faults
# ----------------------------------------------------------------------
class TestFaults:
    def test_parse_fault_full_form(self):
        f = parse_fault("w1-rtx-2080ti=latency:5-20:x8")
        assert f == FaultSpec("w1-rtx-2080ti", "latency", 5.0, 20.0, 8.0)

    def test_parse_fault_defaults_to_always_active(self):
        f = parse_fault("w0=crash")
        assert f.active(0.0) and f.active(1e9)

    @pytest.mark.parametrize("text", ["w0", "w0=melt", "w0=crash:9-3"])
    def test_parse_fault_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_fault(text)

    def test_injector_windows_and_counters(self):
        reg = MetricsRegistry()
        inj = FaultInjector([parse_fault("a=crash:10-20"),
                             parse_fault("a=latency:0-5:x4")], registry=reg)
        inj.check("a", 5.0)                      # outside crash window
        with pytest.raises(WorkerCrashed):
            inj.check("a", 10.0)
        assert inj.latency_factor("a", 2.0) == 4.0
        assert inj.latency_factor("a", 6.0) == 1.0
        counter = reg.get("fleet_faults_injected")
        assert counter.value(worker="a", kind="crash") == 1
        assert counter.value(worker="a", kind="latency") == 1

    def test_wedge_takes_precedence(self):
        inj = FaultInjector([parse_fault("a=wedge"), parse_fault("a=crash")])
        with pytest.raises(WorkerWedged):
            inj.check("a", 0.0)


# ----------------------------------------------------------------------
# routers
# ----------------------------------------------------------------------
class TestRouters:
    def test_cost_router_picks_lowest_ect_with_name_tiebreak(self):
        a = worker("a", 2.0)
        b = worker("b", 2.0)
        c = worker("c", 5.0)
        r = make_router("cost")
        assert r.choose([c, b, a], (3, 8, 8), 0.0) is a

    def test_cost_router_accounts_for_backlog(self):
        a = worker("a", 1.0)
        b = worker("b", 3.0)
        a.busy_until_ms = 10.0          # fast worker is busy
        r = make_router("cost")
        assert r.choose([a, b], (3, 8, 8), 0.0) is b

    def test_round_robin_cycles_by_name(self):
        a, b = worker("a", 1.0), worker("b", 1.0)
        r = make_router("round-robin")
        picks = [r.choose([b, a], (3, 8, 8), 0.0).name for _ in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_random_router_is_seed_deterministic(self):
        a, b = worker("a", 1.0), worker("b", 1.0)
        picks = [
            [make_router("random", seed=7).choose([a, b], (3, 8, 8), 0.0).name
             for _ in range(1)][0] for _ in range(3)]
        assert len(set(picks)) == 1

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_router("magic")


# ----------------------------------------------------------------------
# scheduler on fake engines
# ----------------------------------------------------------------------
def two_worker_fleet(router="cost", **kw):
    fast = worker("a-fast", 1.0)
    slow = worker("b-slow", 5.0)
    return FleetScheduler([fast, slow], router=router,
                          registry=MetricsRegistry(), **kw), fast, slow


class TestFleetScheduler:
    def test_cost_routing_prefers_fast_worker(self):
        sched, fast, slow = two_worker_fleet()
        futs = [sched.submit(IMG) for _ in range(10)]
        sched.drain()
        snap = sched.snapshot()
        assert snap["completed"] == 10 and not sched.unresolved()
        assert snap["completed_by_worker"]["a-fast"] \
            > snap["completed_by_worker"]["b-slow"]
        assert all(f.result() is not None for f in futs)

    def test_admission_control_rejects_with_reason(self):
        a = worker("a", 1.0, queue_capacity=2)
        sched = FleetScheduler([a], registry=MetricsRegistry())
        futs = [sched.submit(IMG) for _ in range(4)]
        # rejections resolve synchronously at submit time
        rejected = [f for f in futs if f.done() and f.exception() is not None]
        assert len(rejected) == 2
        for f in rejected:
            assert isinstance(f.exception(), FleetRejection)
            assert f.exception().reason == REASON_QUEUE_FULL
        sched.drain()
        assert not sched.unresolved()
        assert sched.snapshot()["rejected_by_reason"] == {
            REASON_QUEUE_FULL: 2}

    def test_expired_requests_are_shed_not_served(self):
        a = worker("a", 10.0)
        sched = FleetScheduler([a], registry=MetricsRegistry())
        kept = sched.submit(IMG)        # served at t=0, device busy to 10ms
        sched.drain()
        assert kept.result() is not None
        # cannot start before 10ms, but its deadline is 5ms → shed
        doomed = sched.submit(IMG16, deadline_ms=5.0)
        sched.drain()
        exc = doomed.exception()
        assert isinstance(exc, FleetRejection)
        assert exc.reason == REASON_EXPIRED
        # the engine never saw the 16px image
        assert all(s[-1] == 8 for s in a.engine.batch_shapes)

    def test_crash_reroutes_with_zero_lost_futures(self):
        reg = MetricsRegistry()
        inj = FaultInjector([parse_fault("a-fast=crash:0-inf")],
                            registry=reg)
        fast = FleetWorker("a-fast", FakeEngine(),
                           predictor=lambda s, b: 1.0 * b, injector=inj,
                           breaker=CircuitBreaker("a-fast",
                                                  failure_threshold=2))
        slow = worker("b-slow", 5.0)
        sched = FleetScheduler([fast, slow], registry=reg, max_attempts=3)
        futs = [sched.submit(IMG) for _ in range(8)]
        sched.drain()
        snap = sched.snapshot()
        assert snap["completed"] == 8
        assert snap["retries"] > 0
        assert not sched.unresolved()
        assert all(f.exception() is None for f in futs)
        assert fast.breaker.state == OPEN
        # shed/reject/transition counts are observable on the registry
        assert reg.get("fleet_breaker_transitions").value(
            worker="a-fast", to=OPEN) == 1
        assert reg.get("fleet_requests_retried").value(worker="a-fast") \
            == snap["retries"]

    def test_open_breaker_no_fallback_holds_queue_for_probe(self):
        # Reviewer repro: request already queued on a worker whose
        # breaker opens with no fallback.  step() must not dispatch into
        # serve_batch()'s not-servable guard (which crashed drain() and
        # lost the future) — the queue waits for the half-open probe.
        inj = FaultInjector([parse_fault("a=crash:0-inf")])
        a = FleetWorker("a", FakeEngine(), predictor=lambda s, b: 1.0 * b,
                        max_batch_size=1, injector=inj,
                        breaker=CircuitBreaker("a", failure_threshold=1,
                                               cooldown_ms=50.0))
        sched = FleetScheduler([a], registry=MetricsRegistry(),
                               max_attempts=2)
        futs = [sched.submit(IMG), sched.submit(IMG)]
        sched.drain()                   # must not raise
        assert not sched.unresolved()
        for f in futs:
            assert f.exception() is not None
        # the second request was held until the probe at 50ms, served as
        # the half-open probe (which failed and re-opened the breaker)
        assert a.breaker.state == OPEN
        assert [(f, t) for _, f, t in a.breaker.transitions] == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, OPEN)]
        assert sched.clock.now_ms >= 50.0

    def test_pinned_worker_reroutes_queue_to_healthy_worker(self):
        # Queued work on a breaker-pinned worker moves to a worker that
        # can serve sooner instead of waiting out the whole cooldown.
        reg = MetricsRegistry()
        inj = FaultInjector([parse_fault("a=crash:0-inf")], registry=reg)
        a = FleetWorker("a", FakeEngine(), predictor=lambda s, b: 1.0 * b,
                        max_batch_size=1, injector=inj,
                        breaker=CircuitBreaker("a", failure_threshold=1,
                                               cooldown_ms=1000.0))
        b = worker("b", 100.0)          # slow, so cost routing picks a
        sched = FleetScheduler([a, b], registry=reg, max_attempts=3)
        futs = [sched.submit(IMG), sched.submit(IMG)]
        sched.drain()
        assert not sched.unresolved()
        assert all(f.result() is not None for f in futs)
        snap = sched.snapshot()
        # request 0 failed on a and retried on b; request 1 never ran on
        # a — it was rerouted off the pinned queue
        assert snap["completed_by_worker"] == {"b": 2}
        assert snap["rerouted_by_worker"] == {"a": 1}
        assert reg.get("fleet_requests_rerouted").value(worker="a") == 1
        # a attempted exactly one batch (the crash); the rerouted request
        # never touched it, and the fleet finished long before a's
        # 1000ms cooldown
        assert reg.get("fleet_batch_failures").value(worker="a") == 1
        assert sched.clock.now_ms < 1000.0

    def test_pinned_worker_sheds_expired_before_probe(self):
        # A deadline that passes while pinned is shed with an explicit
        # rejection, not served late by the eventual probe.
        inj = FaultInjector([parse_fault("a=crash:0-inf")])
        a = FleetWorker("a", FakeEngine(), predictor=lambda s, b: 1.0 * b,
                        max_batch_size=1, injector=inj,
                        breaker=CircuitBreaker("a", failure_threshold=1,
                                               cooldown_ms=50.0))
        sched = FleetScheduler([a], registry=MetricsRegistry(),
                               max_attempts=2)
        crashed = sched.submit(IMG, deadline_ms=5.0)
        tight = sched.submit(IMG, deadline_ms=10.0)
        sched.drain()
        assert not sched.unresolved()
        assert crashed.exception() is not None
        exc = tight.exception()
        assert isinstance(exc, FleetRejection)
        assert exc.reason == REASON_EXPIRED
        # only the crashing attempt consumed device time: the expired
        # request was shed at the probe wake-up, no probe batch ran
        assert a.busy_until_ms == pytest.approx(a.failure_ms)
        assert [(f, t) for _, f, t in a.breaker.transitions] == [
            (CLOSED, OPEN)]

    def test_retries_exhausted_surfaces_engine_error(self):
        inj = FaultInjector([parse_fault("a=crash")])
        a = FleetWorker("a", FakeEngine(), predictor=lambda s, b: 1.0,
                        injector=inj)
        sched = FleetScheduler([a], registry=MetricsRegistry(),
                               max_attempts=2)
        fut = sched.submit(IMG)
        sched.drain()
        assert isinstance(fut.exception(), WorkerCrashed)
        assert sched.snapshot()["rejected_by_reason"] == {REASON_RETRIES: 1}

    def test_wedge_charges_detection_timeout(self):
        inj = FaultInjector([parse_fault("a=wedge:0-1")])
        a = FleetWorker("a", FakeEngine(), predictor=lambda s, b: 1.0,
                        injector=inj, wedge_timeout_ms=42.0)
        sched = FleetScheduler([a], registry=MetricsRegistry(),
                               max_attempts=5)
        fut = sched.submit(IMG)
        sched.drain()
        # first attempt wedges (42ms charged), retry at t=42 succeeds
        assert fut.result() is not None
        assert a.busy_until_ms == pytest.approx(43.0)

    def test_degradation_to_fallback_then_probe_recovery(self):
        inj = FaultInjector([parse_fault("a=crash:0-10")])
        primary = FakeEngine()
        fallback = FakeEngine()
        a = FleetWorker("a", primary, predictor=lambda s, b: 2.0 * b,
                        injector=inj, fallback_engine=fallback,
                        breaker=CircuitBreaker("a", failure_threshold=1,
                                               cooldown_ms=20.0))
        sched = FleetScheduler([a], registry=MetricsRegistry(),
                               max_attempts=5)
        first = sched.submit(IMG)
        sched.drain()
        # attempt 1 crashed the primary (breaker opens), retry served on
        # the reference fallback while degraded
        assert first.result() is not None
        assert a.breaker.state == OPEN and a.degraded
        assert fallback.batch_shapes == [(1, 3, 8, 8)]
        # past the cooldown (and the fault window) the next batch is a
        # half-open probe on the primary, which closes the breaker
        sched.clock.advance_to(30.0)
        second = sched.submit(IMG)
        sched.drain()
        assert second.result() is not None
        assert a.breaker.state == CLOSED
        assert len(primary.batch_shapes) == 1
        assert [(f, t) for _, f, t in a.breaker.transitions] == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_latency_fault_stretches_worker_timeline(self):
        inj = FaultInjector([parse_fault("a=latency:0-100:x4")])
        a = FleetWorker("a", FakeEngine(), predictor=lambda s, b: 2.0 * b,
                        injector=inj)
        sched = FleetScheduler([a], registry=MetricsRegistry())
        sched.submit(IMG)
        sched.drain()
        assert a.busy_until_ms == pytest.approx(8.0)   # 2ms × x4

    def test_close_rejects_queued_and_blocks_submit(self):
        sched, fast, slow = two_worker_fleet()
        fut = sched.submit(IMG)
        sched.close()
        exc = fut.exception()
        assert isinstance(exc, FleetRejection)
        assert exc.reason == REASON_CLOSED
        with pytest.raises(FleetRejection):
            sched.submit(IMG)
        assert not sched.unresolved()

    def test_batches_group_same_shape_edf(self):
        a = worker("a", 1.0, max_batch_size=4)
        sched = FleetScheduler([a], registry=MetricsRegistry())
        for img in (IMG, IMG16, IMG, IMG):
            sched.submit(img)
        sched.drain()
        assert a.engine.batch_shapes == [(3, 3, 8, 8), (1, 3, 16, 16)]

    def test_tracer_spans_record_fleet_batches(self):
        tracer = SpanTracer()
        a = worker("a", 1.0, tracer=None)
        sched = FleetScheduler([a], registry=MetricsRegistry(),
                               tracer=tracer)
        a.tracer = tracer
        sched.submit(IMG)
        sched.drain()
        names = [e["name"] for e in tracer.chrome_trace()["traceEvents"]
                 if e.get("ph") == "X"]
        assert "fleet.batch" in names

    def test_determinism_same_seed_same_run(self):
        def run():
            sched, _, _ = two_worker_fleet(router="random", seed=3)
            for i in range(12):
                sched.submit(IMG if i % 3 else IMG16,
                             deadline_ms=4.0 if i % 4 == 0 else None)
            sched.drain()
            return sched.decisions, sched.snapshot()

        d1, s1 = run()
        d2, s2 = run()
        assert d1 == d2
        assert s1 == s2


# ----------------------------------------------------------------------
# real engines (integration slice)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_model():
    from repro.models import build_classifier
    from repro.nas import manual_interval_placement

    return build_classifier("r50s", input_size=32,
                            placement=manual_interval_placement(9, 3),
                            bound=7.0, seed=0)


class TestRealEngineFleet:
    def test_cost_model_orders_devices_correctly(self, small_model):
        from repro.gpusim.device import RTX_2080TI, XAVIER
        from repro.pipeline import DefconEngine

        shape = (3, 32, 32)
        xavier = EngineCostModel(DefconEngine(small_model, XAVIER))
        ti = EngineCostModel(DefconEngine(small_model, RTX_2080TI))
        assert ti(shape) < xavier(shape)
        assert ti(shape) == ti(shape)       # memoised, stable

    def test_build_fleet_serves_and_routes_by_cost(self, small_model):
        rng = np.random.default_rng(0)
        sched = build_fleet(small_model, ("xavier", "2080ti"),
                            max_batch_size=2)
        futs = [sched.submit(rng.uniform(0, 1, (3, 32, 32)
                                         ).astype(np.float32))
                for _ in range(6)]
        sched.drain()
        snap = sched.snapshot()
        assert snap["completed"] == 6 and not sched.unresolved()
        # the faster 2080Ti must take the larger share under cost routing
        assert snap["completed_by_worker"]["w1-rtx-2080ti"] \
            >= snap["completed_by_worker"]["w0-jetson-agx-xavier"]
        assert all(f.result() is not None for f in futs)

    def test_build_fleet_no_degrade_survives_open_breaker(self,
                                                          small_model):
        # degrade=False + crash: the faulted worker's breaker opens with
        # no fallback; its queued requests must reroute to the healthy
        # device instead of crashing drain()
        rng = np.random.default_rng(0)
        sched = build_fleet(small_model, ("xavier", "2080ti"),
                            max_batch_size=1, breaker_threshold=1,
                            degrade=False,
                            faults=["w1-rtx-2080ti=crash:0-inf"])
        futs = [sched.submit(rng.uniform(0, 1, (3, 32, 32)
                                         ).astype(np.float32))
                for _ in range(4)]
        sched.drain()                   # must not raise
        snap = sched.snapshot()
        assert snap["completed"] == 4 and not sched.unresolved()
        assert snap["completed_by_worker"] == {"w0-jetson-agx-xavier": 4}
        assert all(f.exception() is None for f in futs)

    def test_build_fleet_survives_worker_fault(self, small_model):
        rng = np.random.default_rng(0)
        sched = build_fleet(small_model, ("xavier", "2080ti"),
                            max_batch_size=2, breaker_threshold=1,
                            faults=["w1-rtx-2080ti=crash:0-0.3"])
        futs = [sched.submit(rng.uniform(0, 1, (3, 32, 32)
                                         ).astype(np.float32))
                for _ in range(6)]
        sched.drain()
        snap = sched.snapshot()
        assert snap["completed"] == 6 and not sched.unresolved()
        assert snap["retries"] > 0
        assert all(f.exception() is None for f in futs)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestFleetCli:
    def test_devices_shows_dcn_latency_column(self, capsys):
        from repro.cli import main

        assert main(["devices", "--dcn-layer", "16,16,20,20"]) == 0
        out = capsys.readouterr().out
        assert "DCN 16x16x20x20" in out and "rtx-2080ti" in out

    def test_fleet_plan(self, capsys):
        from repro.cli import main

        assert main(["fleet", "plan"]) == 0
        out = capsys.readouterr().out
        assert "ECT ms" in out and "w1-rtx-2080ti" in out

    def test_fleet_run_with_fault_resolves_everything(self, capsys):
        from repro.cli import main

        assert main(["fleet", "run", "--requests", "5", "--max-batch", "2",
                     "--fault", "w1-rtx-2080ti=crash:0-0.2"]) == 0
        out = capsys.readouterr().out
        assert "futures audit: 5 submitted, 5 resolved, 0 unresolved" in out
        assert "Routing decisions" in out

    def test_fleet_run_slo_prints_attainment_and_exemplars(self, tmp_path,
                                                           capsys):
        import json
        import re

        from repro.cli import main

        trace = tmp_path / "trace.json"
        assert main(["fleet", "run", "--requests", "8", "--max-batch", "2",
                     "--slo", "--slo-p99-ms", "0.3",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "SLO fleet-p99-latency" in out
        assert "attainment" in out and "burn" in out
        assert "VIOLATED" in out      # 0.3 ms sits below the sim tail
        # every violated window names at least one exemplar span that
        # exists in the exported trace
        span_ids = set()
        for line in out.splitlines():
            if "VIOLATED" in line:
                ids = re.findall(r"\bs\d+\b", line)
                assert ids, line
                span_ids.update(ids)
        trace_ids = {e["args"]["span_id"]
                     for e in json.loads(trace.read_text())["traceEvents"]
                     if e.get("args", {}).get("span_id")}
        assert span_ids <= trace_ids
        # the hint points at trace --open for drill-down
        assert "trace --open" in out
