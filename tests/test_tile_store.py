"""Persistent tile store: round-trips, warm starts, corruption, versioning."""

import json
import os

import pytest

from repro.autotune import (TUNER_VERSION, TileStore, TileTuner, TuneResult,
                            geometry_key)
from repro.autotune.store import FORMAT_VERSION, entry_key
from repro.gpusim import RTX_2080TI, XAVIER
from repro.kernels import LayerConfig

CFG = LayerConfig(16, 16, 24, 24)
CFG2 = LayerConfig(32, 32, 12, 12)


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "tiles.json"


class TestRoundTrip:
    def test_put_get_roundtrip(self, store_path):
        store = TileStore(store_path)
        result = TuneResult(best_point=(8, 16), best_value=0.125,
                            history=[((8, 16), 0.125), ((4, 8), 0.25)])
        store.put(CFG, XAVIER.name, "tex2d", result)
        reloaded = TileStore(store_path).get(CFG, XAVIER.name, "tex2d")
        assert reloaded.best_point == (8, 16)
        assert reloaded.best_value == pytest.approx(0.125)
        assert reloaded.history == result.history

    def test_keys_are_fully_qualified(self, store_path):
        store = TileStore(store_path)
        result = TuneResult(best_point=(8, 8), best_value=1.0)
        store.put(CFG, XAVIER.name, "tex2d", result)
        # a different device, backend, or geometry is a distinct entry
        assert store.get(CFG, RTX_2080TI.name, "tex2d") is None
        assert store.get(CFG, XAVIER.name, "tex2dpp") is None
        assert store.get(CFG2, XAVIER.name, "tex2d") is None

    def test_save_is_atomic_no_temp_left_behind(self, store_path):
        store = TileStore(store_path)
        store.put(CFG, XAVIER.name, "tex2d",
                  TuneResult(best_point=(8, 8), best_value=1.0))
        leftovers = [p for p in store_path.parent.iterdir()
                     if p.name != store_path.name]
        assert leftovers == []
        assert json.loads(store_path.read_text())["format_version"] \
            == FORMAT_VERSION

    def test_memory_store_without_path(self):
        store = TileStore()
        store.put(CFG, XAVIER.name, "tex2d",
                  TuneResult(best_point=(4, 8), best_value=2.0))
        assert store.get_tile(CFG, XAVIER.name, "tex2d") == (4, 8)


class TestWarmStart:
    def test_tuner_reload_makes_zero_objective_evaluations(self, store_path):
        cold = TileTuner(XAVIER, budget=5, seed=0, store=TileStore(store_path))
        first = cold.tune(CFG)
        assert cold.objective_evaluations > 0

        warm = TileTuner(XAVIER, budget=5, seed=0, store=TileStore(store_path))
        second = warm.tune(CFG)
        assert warm.objective_evaluations == 0
        assert second.best_point == first.best_point
        assert second.best_value == pytest.approx(first.best_value)

    def test_fresh_results_written_back(self, store_path):
        tuner = TileTuner(XAVIER, budget=4, seed=0,
                          store=TileStore(store_path))
        tuner.tune(CFG)
        tuner.tune(CFG2)
        assert len(TileStore(store_path)) == 2


class TestCorruptionAndStaleness:
    def test_corrupt_file_tolerated_and_quarantined(self, store_path):
        store_path.write_text("{this is not json")
        store = TileStore(store_path)
        assert len(store) == 0
        assert store_path.with_suffix(".json.corrupt").exists()
        # the store remains usable after quarantine
        store.put(CFG, XAVIER.name, "tex2d",
                  TuneResult(best_point=(8, 8), best_value=1.0))
        assert len(TileStore(store_path)) == 1

    def test_wrong_format_version_ignored(self, store_path):
        store_path.write_text(json.dumps(
            {"format_version": 999, "entries": {"x": {"tile": [8, 8]}}}))
        assert len(TileStore(store_path)) == 0

    def test_stale_tuner_version_not_served(self, store_path):
        store = TileStore(store_path)
        stale_key = entry_key(CFG, XAVIER.name, "tex2d",
                              tuner_version=TUNER_VERSION - 1)
        store._entries[stale_key] = {"tile": [8, 8], "tuner_version":
                                     TUNER_VERSION - 1}
        store.save()
        reloaded = TileStore(store_path)
        assert len(reloaded) == 1              # preserved on disk...
        assert reloaded.get(CFG, XAVIER.name, "tex2d") is None  # ...unserved

    def test_malformed_entry_values_dropped_on_load(self, store_path):
        store_path.write_text(json.dumps({
            "format_version": FORMAT_VERSION,
            "entries": {"a": {"tile": [0, 8]}, "b": "nope",
                        "c": {"tile": [8]},
                        "good": {"tile": [8, 16]}}}))
        store = TileStore(store_path)
        assert store.keys() == ["good"]


class TestExportImport:
    def test_merge_round_trip(self, store_path, tmp_path):
        src = TileStore(store_path)
        src.put(CFG, XAVIER.name, "tex2d",
                TuneResult(best_point=(8, 16), best_value=0.5))
        dst = TileStore(tmp_path / "other.json")
        assert dst.merge(src.export_payload()) == 1
        assert dst.get_tile(CFG, XAVIER.name, "tex2d") == (8, 16)
        # second merge is a no-op without overwrite
        assert dst.merge(src.export_payload()) == 0

    def test_merge_rejects_unknown_format(self, store_path):
        store = TileStore(store_path)
        assert store.merge({"format_version": 42, "entries": {}}) == 0

    def test_geometry_key_covers_shape_fields(self):
        a = geometry_key(CFG)
        assert geometry_key(LayerConfig(16, 16, 24, 24, stride=2)) != a
        assert geometry_key(LayerConfig(16, 16, 24, 24, dilation=2)) != a
        # batch is deliberately excluded
        assert geometry_key(LayerConfig(16, 16, 24, 24, batch=4)) == a
