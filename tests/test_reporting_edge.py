"""Reporting-module edge cases and formatting invariants."""

import pytest

from repro.pipeline.reporting import (_fmt, format_placement_diagram,
                                      format_speedup_bars, format_table,
                                      markdown_table)


class TestFormatters:
    def test_fmt_variants(self):
        assert _fmt(True) == "yes"
        assert _fmt(False) == ""
        assert _fmt(1.234) == "1.23"
        assert _fmt("txt") == "txt"
        assert _fmt(7) == "7"

    def test_empty_rows_table(self):
        text = format_table(["a", "b"], [])
        lines = text.splitlines()
        assert lines[0].strip().startswith("a")
        assert set(lines[1].replace(" ", "")) == {"-"}

    def test_table_column_alignment(self):
        text = format_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        widths = {len(l) for l in lines}
        assert len(widths) == 1   # all lines padded to equal width

    def test_bars_empty(self):
        assert format_speedup_bars([], [], title="T") == "T"

    def test_bars_minimum_one_hash(self):
        text = format_speedup_bars(["tiny", "big"], [0.001, 10.0])
        tiny_line = text.splitlines()[0]
        assert "#" in tiny_line

    def test_bars_unit(self):
        text = format_speedup_bars(["a"], [2.0], unit="ms")
        assert "2.00ms" in text

    def test_placement_diagram_stage_bars(self):
        text = format_placement_diagram([True] * 4, [2, 2])
        assert text.count("|") == 1
        assert text.count("[D]") == 4

    def test_markdown_table_structure(self):
        text = markdown_table(["x", "y"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.50 |"
