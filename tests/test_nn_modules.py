"""Module system, layers, optimizers and schedulers."""

import numpy as np
import pytest

from repro.nn import (SGD, Adam, BatchNorm2d, Conv2d, CosineLR,
                      DepthwiseConv2d, GroupNorm, Identity, Linear, Module,
                      ModuleList, MultiStepLR, Parameter, PointwiseConv2d,
                      ReLU, Sequential, Sigmoid, Tanh)
from repro.tensor import Tensor

from helpers import rng


class TestModuleSystem:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(3))
                self.child = Linear(2, 2)

        m = M()
        names = dict(m.named_parameters())
        assert "w" in names
        assert "child.weight" in names and "child.bias" in names

    def test_num_parameters(self):
        lin = Linear(3, 4)
        assert lin.num_parameters() == 3 * 4 + 4

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), BatchNorm2d(2))
        seq.eval()
        assert not seq[1].training
        seq.train()
        assert seq[1].training

    def test_zero_grad(self):
        lin = Linear(2, 2)
        out = lin(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = Sequential(Conv2d(2, 3, 3, rng=rng(0)), BatchNorm2d(3))
        b = Sequential(Conv2d(2, 3, 3, rng=rng(5)), BatchNorm2d(3))
        state = a.state_dict()
        b.load_state_dict(state)
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_load_state_dict_shape_check(self):
        a = Linear(2, 3)
        bad = {k: np.zeros((1, 1)) for k in a.state_dict()}
        with pytest.raises(ValueError):
            a.load_state_dict(bad)

    def test_load_state_dict_missing_key(self):
        a = Linear(2, 3)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_module_list(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(ml) == 2
        assert ml[-1] is ml[1]
        assert len(list(ml.parameters())) == 4
        with pytest.raises(RuntimeError):
            ml(Tensor(np.zeros((1, 2))))

    def test_sequential_iteration_and_indexing(self):
        seq = Sequential(ReLU(), Tanh(), Sigmoid())
        assert len(seq) == 3
        assert isinstance(seq[-1], Sigmoid)
        assert [type(m).__name__ for m in seq] == ["ReLU", "Tanh", "Sigmoid"]


class TestLayers:
    def test_conv_output_shape_helper(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng(0))
        assert conv.output_shape(16, 16) == (8, 8, 8)

    def test_conv_macs(self):
        conv = Conv2d(4, 8, 3, padding=1, rng=rng(0))
        # 8 out ch × 16 pixels × 4 in × 9 taps
        assert conv.macs(4, 4) == 8 * 16 * 4 * 9

    def test_depthwise_is_grouped(self):
        dw = DepthwiseConv2d(6, rng=rng(0))
        assert dw.groups == 6
        x = Tensor(rng(1).normal(size=(1, 6, 5, 5)))
        assert dw(x).shape == (1, 6, 5, 5)

    def test_pointwise_shape(self):
        pw = PointwiseConv2d(6, 10, rng=rng(0))
        x = Tensor(rng(1).normal(size=(2, 6, 5, 5)))
        assert pw(x).shape == (2, 10, 5, 5)

    def test_conv_invalid_groups(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, groups=2)

    def test_batchnorm_normalises_in_train(self):
        bn = BatchNorm2d(3)
        x = Tensor(rng(2).normal(loc=5.0, scale=3.0, size=(8, 3, 6, 6)))
        out = bn(x)
        assert abs(float(out.data.mean())) < 1e-3
        assert float(out.data.std()) == pytest.approx(1.0, abs=1e-2)

    def test_batchnorm_running_stats_used_in_eval(self):
        bn = BatchNorm2d(2, momentum=1.0)
        x = Tensor(rng(3).normal(loc=2.0, size=(16, 2, 4, 4)))
        bn(x)  # one training pass with momentum 1 copies batch stats
        bn.eval()
        out = bn(Tensor(np.full((1, 2, 4, 4), 2.0, dtype=np.float32)))
        assert abs(float(out.data.mean())) < 0.2

    def test_batchnorm_channel_check(self):
        bn = BatchNorm2d(3)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((1, 4, 2, 2))))

    def test_groupnorm_statistics(self):
        gn = GroupNorm(2, 4)
        x = Tensor(rng(4).normal(loc=3.0, size=(2, 4, 8, 8)))
        out = gn(x)
        grp = out.data.reshape(2, 2, 2, 8, 8)
        assert np.allclose(grp.mean(axis=(2, 3, 4)), 0.0, atol=1e-3)

    def test_groupnorm_divisibility(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x


class TestOptimizers:
    def _minimise(self, opt_cls, **kwargs):
        w = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = opt_cls([w], **kwargs)
        for _ in range(150):
            loss = (w * w).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return w

    def test_sgd_converges(self):
        w = self._minimise(SGD, lr=0.1, momentum=0.0)
        assert np.abs(w.data).max() < 1e-3

    def test_sgd_momentum_converges(self):
        w = self._minimise(SGD, lr=0.05, momentum=0.9)
        assert np.abs(w.data).max() < 1e-3

    def test_adam_converges(self):
        w = self._minimise(Adam, lr=0.1)
        assert np.abs(w.data).max() < 1e-2

    def test_weight_decay_shrinks(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([w], lr=0.1, momentum=0.0, weight_decay=0.5)
        # zero task gradient — pure decay
        w.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert w.data[0] == pytest.approx(0.95)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        SGD([w], lr=0.1).step()  # no grad — should be a no-op
        assert w.data[0] == pytest.approx(1.0)


class TestSchedulers:
    def test_multistep_decays(self):
        w = Parameter(np.zeros(1))
        opt = SGD([w], lr=1e-2)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs[0] == pytest.approx(1e-2)
        assert lrs[1] == pytest.approx(1e-3)
        assert lrs[3] == pytest.approx(1e-4)

    def test_multistep_floor(self):
        w = Parameter(np.zeros(1))
        opt = SGD([w], lr=1e-2)
        sched = MultiStepLR(opt, milestones=[1, 2, 3, 4], gamma=0.1,
                            min_lr=1e-6)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(1e-6)

    def test_cosine_endpoints(self):
        w = Parameter(np.zeros(1))
        opt = SGD([w], lr=1.0)
        sched = CosineLR(opt, total_steps=10, min_lr=0.0)
        sched.step_count = 0
        assert sched.get_lr() == pytest.approx(1.0)
        sched.step_count = 10
        assert sched.get_lr() == pytest.approx(0.0, abs=1e-9)
