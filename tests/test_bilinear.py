"""Bilinear interpolation (Eq. 3) — oracle, boundaries, gradients."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deform.bilinear import (bilinear_gradients, bilinear_kernel_1d,
                                   bilinear_sample, bilinear_sample_reference,
                                   corner_weights, gather_zero_pad)

from helpers import rng


class TestKernel:
    def test_kernel_peak_at_zero_distance(self):
        assert bilinear_kernel_1d(np.array(2.0), np.array(2.0)) == 1.0

    def test_kernel_zero_beyond_one(self):
        assert bilinear_kernel_1d(np.array(0.0), np.array(1.5)) == 0.0

    @given(st.floats(-3, 3), st.floats(-3, 3))
    @settings(max_examples=50, deadline=None)
    def test_kernel_bounds(self, p, q):
        v = float(bilinear_kernel_1d(np.array(p), np.array(q)))
        assert 0.0 <= v <= 1.0


class TestSample:
    def test_integer_positions_exact(self):
        img = rng(0).normal(size=(4, 5)).astype(np.float32)
        py = np.array([0.0, 2.0, 3.0], dtype=np.float32)
        px = np.array([0.0, 1.0, 4.0], dtype=np.float32)
        vals = bilinear_sample(img, py, px)
        assert np.allclose(vals, img[[0, 2, 3], [0, 1, 4]], atol=1e-6)

    def test_midpoint_average(self):
        img = np.array([[0.0, 2.0], [4.0, 6.0]], dtype=np.float32)
        v = bilinear_sample(img, np.array([0.5], dtype=np.float32),
                            np.array([0.5], dtype=np.float32))
        assert np.allclose(v, 3.0)

    def test_out_of_bounds_zero(self):
        img = np.ones((3, 3), dtype=np.float32)
        v = bilinear_sample(img, np.array([-2.0], dtype=np.float32),
                            np.array([1.0], dtype=np.float32))
        assert np.allclose(v, 0.0)

    def test_boundary_partial_weight(self):
        # halfway off the edge: only half the mass remains (zero padding)
        img = np.ones((3, 3), dtype=np.float32)
        v = bilinear_sample(img, np.array([-0.5], dtype=np.float32),
                            np.array([1.0], dtype=np.float32))
        assert np.allclose(v, 0.5)

    @given(py=st.floats(-1.8, 7.5), px=st.floats(-1.8, 9.5))
    @settings(max_examples=80, deadline=None)
    def test_matches_closed_form_oracle(self, py, px):
        img = rng(7).normal(size=(7, 9)).astype(np.float32)
        got = float(bilinear_sample(img,
                                    np.array([py], dtype=np.float32),
                                    np.array([px], dtype=np.float32))[0])
        want = bilinear_sample_reference(img, np.float32(py), np.float32(px))
        assert abs(got - want) < 1e-3

    def test_batched_leading_dims(self):
        imgs = rng(8).normal(size=(2, 3, 6, 6)).astype(np.float32)
        py = rng(9).uniform(0, 5, size=(2, 3, 10)).astype(np.float32)
        px = rng(10).uniform(0, 5, size=(2, 3, 10)).astype(np.float32)
        vals = bilinear_sample(imgs, py, px)
        assert vals.shape == (2, 3, 10)
        # spot-check one element against the scalar path
        v = bilinear_sample(imgs[1, 2], py[1, 2, 3:4], px[1, 2, 3:4])
        assert np.allclose(vals[1, 2, 3], v[0], atol=1e-6)


class TestGradients:
    def test_gradient_matches_finite_difference(self):
        img = rng(11).normal(size=(8, 8)).astype(np.float64)
        eps = 1e-4
        for py, px in [(2.3, 4.7), (0.1, 0.9), (5.5, 5.5)]:
            py_a = np.array([py])
            px_a = np.array([px])
            d_py, d_px = bilinear_gradients(img, py_a, px_a)
            num_py = (bilinear_sample(img, py_a + eps, px_a)
                      - bilinear_sample(img, py_a - eps, px_a)) / (2 * eps)
            num_px = (bilinear_sample(img, py_a, px_a + eps)
                      - bilinear_sample(img, py_a, px_a - eps)) / (2 * eps)
            assert abs(d_py[0] - num_py[0]) < 1e-5
            assert abs(d_px[0] - num_px[0]) < 1e-5


class TestCornersAndGather:
    def test_corner_weights_fractions(self):
        y0, x0, wy, wx, y1, x1 = corner_weights(np.array([1.25]),
                                                np.array([2.75]))
        assert y0[0] == 1 and x0[0] == 2 and y1[0] == 2 and x1[0] == 3
        assert np.isclose(wy[0], 0.25) and np.isclose(wx[0], 0.75)

    def test_corner_weights_negative_coordinates(self):
        y0, x0, wy, wx, _, _ = corner_weights(np.array([-0.25]),
                                              np.array([-1.5]))
        assert y0[0] == -1 and x0[0] == -2
        assert np.isclose(wy[0], 0.75) and np.isclose(wx[0], 0.5)

    def test_gather_zero_pad_masks(self):
        img = np.arange(6, dtype=np.float32).reshape(2, 3)
        y = np.array([0, 1, -1, 2])
        x = np.array([0, 2, 0, 0])
        vals = gather_zero_pad(img, y, x)
        assert np.allclose(vals, [0.0, 5.0, 0.0, 0.0])
