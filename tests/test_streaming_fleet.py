"""Session-aware serving: loadgen sessions + scheduler affinity.

Covers the streaming half of docs/streaming.md that lives in the fleet:

* the ``--loadgen`` class grammar's ``session_frames`` field (and its
  strict rejection of unknown trailing fields);
* session assignment in :meth:`LoadSpec.events` — fixed-length video
  sessions carved out of each class's arrivals *without* disturbing the
  random stream (sessionless specs keep their historical byte digests);
* scheduler session affinity — frames of one stream stick to one worker
  so its plan-cache anchor stays hot, spill only under saturation, and
  per-session state is evicted exactly once the stream fully resolves.
"""

import numpy as np
import pytest

from repro.fleet import (FleetScheduler, FleetWorker, LoadSpec,
                         RequestClass, parse_loadgen)
from repro.obs import MetricsRegistry

pytestmark = [pytest.mark.fleet, pytest.mark.streaming]

IMG = np.zeros((3, 8, 8), dtype=np.float32)
IMG16 = np.zeros((3, 16, 16), dtype=np.float32)


class SessionEngine:
    """Classify stub that records session evictions."""

    def __init__(self):
        self.ended = []

    def classify(self, images):
        return np.arange(images.shape[0], dtype=np.int64)

    def end_session(self, session):
        self.ended.append(session)
        return 1


def worker(name, ms, **kw):
    return FleetWorker(name, SessionEngine(),
                       predictor=lambda shape, batch, ms=ms: ms * batch,
                       **kw)


# ----------------------------------------------------------------------
# loadgen grammar + session assignment
# ----------------------------------------------------------------------
class TestLoadgenGrammar:
    def test_session_frames_field(self):
        spec = parse_loadgen("classes=vid:2:16:40:1:5")
        (cls,) = spec.classes
        assert cls.session_frames == 5
        assert (cls.name, cls.weight, cls.input_size) == ("vid", 2.0, 16)
        assert cls.deadline_ms == 40.0 and cls.priority == 1

    def test_dash_means_sessionless(self):
        spec = parse_loadgen("classes=a:1:16:-:0:-|b:1:16")
        assert all(c.session_frames is None for c in spec.classes)

    def test_unknown_trailing_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown trailing fields"):
            parse_loadgen("classes=vid:1:16:-:0:5:bogus")

    def test_session_frames_validated(self):
        with pytest.raises(ValueError, match="session_frames"):
            parse_loadgen("classes=vid:1:16:-:0:0")


class TestSessionAssignment:
    def _spec(self, session_frames, seed=7):
        return LoadSpec(requests=24, duration_ms=24.0, seed=seed,
                        classes=(RequestClass("vid", input_size=8,
                                              session_frames=session_frames),))

    def test_fixed_length_sessions_with_flagged_tails(self):
        events = self._spec(session_frames=4).events()
        assert events, "empty stream"
        for i, a in enumerate(events):
            assert a.session == f"vid-s{i // 4}"
            if i % 4 == 3:
                assert a.end_of_session
        # the truncated final session still ends
        assert events[-1].end_of_session

    def test_sessionisation_preserves_the_random_stream(self):
        plain = self._spec(session_frames=None).events()
        sessioned = self._spec(session_frames=4).events()
        assert [a.t_ms for a in plain] == [a.t_ms for a in sessioned]
        assert [a.image_seed for a in plain] == \
            [a.image_seed for a in sessioned]
        assert all(a.session is None for a in plain)

    def test_sessionless_stream_lines_unchanged(self):
        """Historical digests: the session fields only appear on lines of
        sessionised arrivals."""
        plain = self._spec(session_frames=None)
        sessioned = self._spec(session_frames=4)
        line0 = plain.events()[0].stream_line()
        assert len(line0.split()) == 7
        assert sessioned.events()[0].stream_line() == \
            line0 + " vid-s0 0"
        assert plain.stream_digest() != sessioned.stream_digest()
        # and re-generation is byte-stable
        assert sessioned.stream_digest() == sessioned.stream_digest()


# ----------------------------------------------------------------------
# scheduler session affinity
# ----------------------------------------------------------------------
class TestSessionAffinity:
    def _pinned_fleet(self, pin_ms, other_ms, **kw):
        """Pin session "s" on ``w_pin`` (the only worker at submit time),
        then add a competitor — the next frame exercises the stickiness
        vs spill decision deterministically."""
        w_pin = worker("w_pin", ms=pin_ms)
        sched = FleetScheduler([w_pin], router="cost",
                               registry=MetricsRegistry(), **kw)
        sched.submit(IMG, session="s")
        sched.drain()
        w_other = worker("w_other", ms=other_ms)
        sched.add_worker(w_other)
        return sched

    def test_frames_stick_to_the_pinned_worker(self):
        # the pinned worker's ECT stays within 3x of the best → sticky
        # even though the cost router alone would move to w_other
        sched = self._pinned_fleet(pin_ms=1.0, other_ms=1.0)
        for _ in range(3):
            sched.submit(IMG, session="s")
            sched.drain()
        assert all(d["worker"] == "w_pin" for d in sched.decisions)
        assert sched.snapshot()["sessions"]["spills"] == 0

    def test_saturated_pin_spills_and_repins(self):
        # pinned ECT (10ms) exceeds 3x the best (1ms) → spill + re-pin
        sched = self._pinned_fleet(pin_ms=10.0, other_ms=1.0)
        sched.submit(IMG, session="s")
        sched.drain()
        assert sched.decisions[-1]["worker"] == "w_other"
        assert sched.snapshot()["sessions"]["spills"] == 1
        # the spill re-pinned the stream: no further spills
        sched.submit(IMG, session="s")
        sched.drain()
        assert sched.decisions[-1]["worker"] == "w_other"
        assert sched.snapshot()["sessions"]["spills"] == 1

    def test_eviction_waits_for_late_siblings(self):
        """The end-flagged frame resolving must NOT evict the session
        while a sibling frame is still in flight — the sibling's worker
        state (and any reroute) still belongs to the stream."""
        w = worker("w0", ms=1.0)
        sched = FleetScheduler([w], router="cost",
                               registry=MetricsRegistry())
        f_end = sched.submit(IMG, session="s", end_of_session=True)
        f_sib = sched.submit(IMG16, session="s")    # can't batch with IMG
        assert sched.step()                          # serves the end frame
        assert f_end.done() and not f_sib.done()
        snap = sched.snapshot()["sessions"]
        assert snap["active"] == 1 and snap["ended"] == 0
        assert w.engine.ended == []
        sched.drain()
        snap = sched.snapshot()["sessions"]
        assert snap["active"] == 0 and snap["ended"] == 1
        assert w.engine.ended == ["s"]

    def test_eviction_reaches_every_worker(self):
        sched = self._pinned_fleet(pin_ms=2.0, other_ms=1.0)
        sched.submit(IMG, session="s", end_of_session=True)
        sched.drain()
        for w in sched.workers:
            assert w.engine.ended == ["s"]
        assert sched.snapshot()["sessions"]["ended"] == 1

    def test_sessionless_traffic_untouched(self):
        sched = FleetScheduler([worker("w0", ms=1.0)],
                               registry=MetricsRegistry())
        sched.submit(IMG)
        sched.drain()
        snap = sched.snapshot()["sessions"]
        assert snap == {"active": 0, "ended": 0, "spills": 0}

    def test_spill_factor_validated(self):
        with pytest.raises(ValueError, match="session_spill_factor"):
            FleetScheduler([worker("w0", ms=1.0)], session_spill_factor=1.0)


class TestRunLoadIntegration:
    def test_sessionised_load_fully_resolves_and_evicts(self):
        spec = parse_loadgen(
            "n=40,duration=40,seed=3,classes=vid:2:8:-:0:4|bg:1:8")
        sched = FleetScheduler([worker("w0", ms=0.5),
                                worker("w1", ms=0.8)],
                               router="cost", registry=MetricsRegistry())
        futures = sched.run_load(spec.events())
        assert all(f.done() for f in futures)
        snap = sched.snapshot()["sessions"]
        assert snap["active"] == 0
        assert snap["ended"] >= 1
        # every eviction reached both workers
        ended = {tuple(w.engine.ended) for w in sched.workers}
        assert len(ended) == 1
