"""Reproducibility guarantees: seeded flows give identical results."""

import numpy as np
import pytest

from repro.data import ShapesDataset
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig, run_layer_all_backends
from repro.models import build_classifier
from repro.pipeline import TrainConfig, train_classifier

from helpers import rng


class TestSeededFlows:
    def test_kernel_latencies_deterministic(self):
        cfg = LayerConfig(32, 32, 28, 28)
        a = run_layer_all_backends(cfg, XAVIER, bound=7.0, seed=4,
                                   compute_output=False)
        b = run_layer_all_backends(cfg, XAVIER, bound=7.0, seed=4,
                                   compute_output=False)
        for backend in a:
            assert a[backend].sample_kernel.duration_ms == \
                b[backend].sample_kernel.duration_ms

    def test_training_deterministic(self):
        ds = ShapesDataset.generate(32, seed=0, num_objects=1)
        cfg = TrainConfig(epochs=1, batch_size=16, optimizer="sgd",
                          lr=1e-2, seed=3)
        logs = []
        for _ in range(2):
            model = build_classifier("r50s", seed=5)
            logs.append(train_classifier(model, ds, cfg).losses)
        assert logs[0] == logs[1]

    def test_search_deterministic(self):
        from repro.nas import DualPathLayer, IntervalSearch, SearchConfig
        from repro.tensor import Tensor

        def one_run():
            sites = [DualPathLayer(2, 2, rng=np.random.default_rng(30 + i))
                     for i in range(3)]

            class S:
                training = True

                def parameters(self):
                    for s in sites:
                        yield from s.parameters()

                def train(self, mode=True):
                    return self

            xs = [np.random.default_rng(7).normal(
                size=(2, 2, 6, 6)).astype(np.float32)]

            def batches():
                return iter(xs)

            def loss_fn(model, batch):
                h = Tensor(batch)
                for s in sites:
                    h = s(h)
                return (h * h).mean()

            cfg = SearchConfig(search_epochs=2, finetune_epochs=1,
                               beta=0.05, target_latency_ms=2.0, seed=11)
            return IntervalSearch(S(), sites, [1.0, 1.0, 1.0], cfg).run(
                batches, loss_fn)

        a, b = one_run(), one_run()
        assert a.placement == b.placement
        assert a.search_losses == b.search_losses

    def test_no_global_numpy_seed_dependence(self):
        """The library never consumes the global NumPy RNG state."""
        np.random.seed(123)
        before = np.random.get_state()[1][:5].copy()
        ds = ShapesDataset.generate(4, seed=0)
        model = build_classifier("r50s", seed=0)
        cfg = LayerConfig(8, 8, 10, 10)
        run_layer_all_backends(cfg, XAVIER, compute_output=False)
        after = np.random.get_state()[1][:5]
        assert np.array_equal(before, after)


def _stats_rows(result):
    """Numeric KernelStats fields of every launched kernel."""
    import dataclasses

    from repro.gpusim.profiler import KernelStats

    names = [f.name for f in dataclasses.fields(KernelStats)
             if f.name not in ("name", "layer", "geometry")]
    return [[getattr(k, f) for f in names] for k in result.kernels]


class TestPlanCacheDeterminism:
    """Plan caching is a wall-time optimisation, never a numerics one."""

    def test_all_backends_cached_vs_uncached_bit_identical(self):
        """Regression (ISSUE 4 satellite): run_layer_all_backends must
        thread plan_cache through, and cached runs — cold and warm — must
        reproduce uncached outputs and perf counters bit for bit."""
        from repro.kernels.plancache import PlanCache

        cfg = LayerConfig(8, 8, 12, 12, deformable_groups=2)
        base = run_layer_all_backends(cfg, XAVIER, bound=7.0, seed=3,
                                      compute_output=True)
        cache = PlanCache(max_entries=8)
        cold = run_layer_all_backends(cfg, XAVIER, bound=7.0, seed=3,
                                      compute_output=True, plan_cache=cache)
        warm = run_layer_all_backends(cfg, XAVIER, bound=7.0, seed=3,
                                      compute_output=True, plan_cache=cache)
        assert cache.stats.hits > 0, "warm pass never hit the plan cache"
        for backend in base:
            for cached in (cold, warm):
                assert np.array_equal(base[backend].output,
                                      cached[backend].output)
                assert _stats_rows(base[backend]) == _stats_rows(
                    cached[backend])

    def test_engine_plan_cache_on_off_bit_identical(self):
        """Same-seed engine runs are bit-identical with the plan cache
        enabled (default) and disabled, in both outputs and latency."""
        from repro.nas import manual_interval_placement
        from repro.pipeline import DefconEngine

        images = rng(9).uniform(0, 1, size=(2, 3, 64, 64)
                                ).astype(np.float32)
        outputs, latencies = [], []
        for plan_cache in (None, False):
            model = build_classifier(
                "r50s", placement=manual_interval_placement(9, 3),
                bound=7.0, seed=5)
            eng = DefconEngine(model, XAVIER, backend="tex2dpp",
                               plan_cache=plan_cache)
            outputs.append(eng.classify(images))
            latencies.append(eng.deformable_latency_ms())
        assert latencies[0] > 0
        assert np.array_equal(outputs[0], outputs[1])
        assert latencies[0] == latencies[1]

    def test_sweep_parallel_vs_serial_same_tile(self):
        """`sweep --workers N` must pick the same tile (and the same
        full latency history) as the serial sweep."""
        from repro.autotune.tuner import TileTuner

        cfg = LayerConfig(8, 8, 14, 14)
        with TileTuner(XAVIER, backend="tex2d", workers=2) as parallel:
            par = parallel.sweep(cfg)
        serial = TileTuner(XAVIER, backend="tex2d", workers=0).sweep(cfg)
        assert par.best_point == serial.best_point
        assert par.best_value == serial.best_value
        assert par.history == serial.history
