"""Reproducibility guarantees: seeded flows give identical results."""

import numpy as np
import pytest

from repro.data import ShapesDataset
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig, run_layer_all_backends
from repro.models import build_classifier
from repro.pipeline import TrainConfig, train_classifier

from helpers import rng


class TestSeededFlows:
    def test_kernel_latencies_deterministic(self):
        cfg = LayerConfig(32, 32, 28, 28)
        a = run_layer_all_backends(cfg, XAVIER, bound=7.0, seed=4,
                                   compute_output=False)
        b = run_layer_all_backends(cfg, XAVIER, bound=7.0, seed=4,
                                   compute_output=False)
        for backend in a:
            assert a[backend].sample_kernel.duration_ms == \
                b[backend].sample_kernel.duration_ms

    def test_training_deterministic(self):
        ds = ShapesDataset.generate(32, seed=0, num_objects=1)
        cfg = TrainConfig(epochs=1, batch_size=16, optimizer="sgd",
                          lr=1e-2, seed=3)
        logs = []
        for _ in range(2):
            model = build_classifier("r50s", seed=5)
            logs.append(train_classifier(model, ds, cfg).losses)
        assert logs[0] == logs[1]

    def test_search_deterministic(self):
        from repro.nas import DualPathLayer, IntervalSearch, SearchConfig
        from repro.tensor import Tensor

        def one_run():
            sites = [DualPathLayer(2, 2, rng=np.random.default_rng(30 + i))
                     for i in range(3)]

            class S:
                training = True

                def parameters(self):
                    for s in sites:
                        yield from s.parameters()

                def train(self, mode=True):
                    return self

            xs = [np.random.default_rng(7).normal(
                size=(2, 2, 6, 6)).astype(np.float32)]

            def batches():
                return iter(xs)

            def loss_fn(model, batch):
                h = Tensor(batch)
                for s in sites:
                    h = s(h)
                return (h * h).mean()

            cfg = SearchConfig(search_epochs=2, finetune_epochs=1,
                               beta=0.05, target_latency_ms=2.0, seed=11)
            return IntervalSearch(S(), sites, [1.0, 1.0, 1.0], cfg).run(
                batches, loss_fn)

        a, b = one_run(), one_run()
        assert a.placement == b.placement
        assert a.search_losses == b.search_losses

    def test_no_global_numpy_seed_dependence(self):
        """The library never consumes the global NumPy RNG state."""
        np.random.seed(123)
        before = np.random.get_state()[1][:5].copy()
        ds = ShapesDataset.generate(4, seed=0)
        model = build_classifier("r50s", seed=0)
        cfg = LayerConfig(8, 8, 10, 10)
        run_layer_all_backends(cfg, XAVIER, compute_output=False)
        after = np.random.get_state()[1][:5]
        assert np.array_equal(before, after)
