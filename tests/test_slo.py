"""Unit tests for the SLO engine (repro.obs.slo) and its fleet wiring."""

import pytest

from repro.obs import (SLO, Exemplar, MetricsRegistry, evaluate_slo,
                       evaluate_slos, format_slo_table)


def _latency_registry(window_ms=10.0):
    reg = MetricsRegistry()
    wh = reg.windowed_histogram("lat_ms", window_ms=window_ms,
                                clock=lambda: 0.0)
    return reg, wh


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_slo_validation():
    with pytest.raises(ValueError):
        SLO("x", "m", threshold_ms=1.0, objective="latency")
    with pytest.raises(ValueError):
        SLO("x", "m", threshold_ms=1.0, quantile=100.0)
    with pytest.raises(ValueError):
        SLO("x", "m", threshold_ms=1.0, target=1.0)
    with pytest.raises(ValueError):
        SLO("x", "m", threshold_ms=0.0)


def test_budget_fraction_and_describe():
    q = SLO("q", "m", threshold_ms=5.0, objective="quantile", quantile=99.0)
    a = SLO("a", "m", threshold_ms=5.0, objective="availability",
            target=0.95)
    assert q.budget_fraction == pytest.approx(0.01)
    assert a.budget_fraction == pytest.approx(0.05)
    assert "p99" in q.describe()
    assert "95%" in a.describe()


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def test_quantile_slo_attained_and_violated_windows():
    reg, wh = _latency_registry()
    # window 0: all fast; window 1: half the observations are slow
    for _ in range(100):
        wh.observe(1.0, ts_ms=5.0)
    for i in range(100):
        value = 1.0 if i % 2 == 0 else 50.0
        wh.observe(value, ts_ms=15.0,
                   exemplar=Exemplar(value=value, span_id=f"s{i}")
                   if value > 1.0 else None)
    slo = SLO("p99", "lat_ms", threshold_ms=10.0, objective="quantile",
              quantile=99.0)
    report = evaluate_slo(slo, reg)
    assert len(report.windows) == 2
    good, bad = report.windows
    assert good.attained and good.bad == pytest.approx(0.0, abs=1e-6)
    assert not bad.attained
    assert bad.bad == pytest.approx(50.0, abs=2.0)
    assert bad.observed > 10.0                    # per-window p99
    assert bad.exemplar_span_ids                  # names concrete spans
    assert report.attainment == pytest.approx(0.5)
    assert not report.ok and report.violated_windows == [bad]


def test_burn_rates_over_horizons():
    reg, wh = _latency_registry()
    # 7 clean windows then 1 fully-bad window
    for win in range(7):
        for _ in range(100):
            wh.observe(1.0, ts_ms=win * 10.0 + 5.0)
    for _ in range(100):
        wh.observe(99.0, ts_ms=75.0)
    slo = SLO("p99", "lat_ms", threshold_ms=10.0, quantile=99.0)
    report = evaluate_slo(slo, reg)
    # last window burns its entire budget 100x over; 6w dilutes by 6,
    # all 8 windows dilute by 8
    assert report.burn_rates["1w"] == pytest.approx(100.0, rel=0.05)
    assert report.burn_rates["6w"] == pytest.approx(100.0 / 6, rel=0.05)
    assert report.burn_rates["all"] == pytest.approx(100.0 / 8, rel=0.05)
    assert report.error_budget_remaining < 0      # overdrawn


def test_availability_slo_counts_bad_metric_failures():
    reg, wh = _latency_registry()
    failures = reg.windowed_histogram("fail", window_ms=10.0,
                                      clock=lambda: 0.0)
    for _ in range(98):
        wh.observe(1.0, ts_ms=5.0)
    failures.observe(1.0, ts_ms=5.0)
    failures.observe(1.0, ts_ms=5.0)
    slo = SLO("avail", "lat_ms", threshold_ms=10.0,
              objective="availability", target=0.99, bad_metric="fail")
    report = evaluate_slo(slo, reg)
    (win,) = report.windows
    assert win.count == 100                      # latency + failure obs
    assert win.bad == pytest.approx(2.0)
    assert win.observed == pytest.approx(0.98)
    assert not win.attained                      # 98% < 99% target


def test_failure_only_window_is_violated():
    reg, wh = _latency_registry()
    failures = reg.windowed_histogram("fail", window_ms=10.0,
                                      clock=lambda: 0.0)
    wh.observe(1.0, ts_ms=5.0)
    failures.observe(1.0, ts_ms=25.0)   # a window with zero latency obs
    slo = SLO("avail", "lat_ms", threshold_ms=10.0,
              objective="availability", target=0.999, bad_metric="fail")
    report = evaluate_slo(slo, reg)
    assert len(report.windows) == 2
    orphan = report.windows[1]
    assert orphan.start_ms == 20.0 and not orphan.attained
    assert orphan.count == 1 and orphan.bad == 1.0


def test_empty_and_missing_metric():
    reg, _ = _latency_registry()
    slo = SLO("p99", "lat_ms", threshold_ms=10.0)
    report = evaluate_slo(slo, reg)
    assert report.windows == [] and report.ok
    assert report.error_budget_remaining == 1.0
    report = evaluate_slo(SLO("x", "nope", threshold_ms=1.0), reg)
    assert report.ok


def test_non_windowed_metric_is_an_error():
    reg = MetricsRegistry()
    reg.histogram("plain").observe(1.0)
    with pytest.raises(ValueError, match="windowed"):
        evaluate_slo(SLO("x", "plain", threshold_ms=1.0), reg)


def test_report_snapshot_and_table():
    reg, wh = _latency_registry()
    for i in range(50):
        wh.observe(99.0 if i < 5 else 1.0, ts_ms=5.0,
                   exemplar=Exemplar(value=99.0, span_id="s7")
                   if i < 5 else None)
    slo = SLO("p99", "lat_ms", threshold_ms=10.0, quantile=99.0)
    reports = evaluate_slos([slo], reg)
    snap = reports[0].snapshot()
    assert snap["slo"] == "p99" and snap["windows"]
    assert set(snap["burn_rates"]) == {"1w", "6w", "all"}
    table = format_slo_table(reports[0])
    assert "VIOLATED" in table and "s7" in table
    assert "attainment" in table and "burn" in table


def test_exemplar_span_ids_deduped_worst_first():
    reg, wh = _latency_registry()
    for value, span in ((50.0, "sA"), (60.0, "sB"), (55.0, "sA"),
                        (5.0, "sC")):
        wh.observe(value, ts_ms=5.0,
                   exemplar=Exemplar(value=value, span_id=span))
    slo = SLO("p99", "lat_ms", threshold_ms=10.0, quantile=99.0)
    (win,) = evaluate_slo(slo, reg).windows
    # sC is under threshold; sA appears once despite two bad exemplars
    assert win.exemplar_span_ids == ["sB", "sA"]


# ----------------------------------------------------------------------
# fleet wiring
# ----------------------------------------------------------------------
@pytest.mark.fleet
def test_fleet_run_emits_windows_and_slo_exemplars():
    import numpy as np

    from repro.fleet import build_fleet, default_fleet_slos
    from repro.models import build_classifier
    from repro.nas import manual_interval_placement
    from repro.obs import SpanTracer

    model = build_classifier("r50s", input_size=32,
                             placement=manual_interval_placement(9, 3),
                             seed=0)
    tracer = SpanTracer()
    sched = build_fleet(model, ["xavier", "2080ti"], tracer=tracer,
                        slo_window_ms=0.25)
    rng = np.random.default_rng(0)
    images = [rng.uniform(0, 1, size=(3, 32, 32)).astype(np.float32)
              for _ in range(12)]
    for img in images:
        sched.submit(img)
    sched.drain()
    sched.close()

    series = sched.registry.get("fleet_request_latency_ms").series()
    assert series.count == 12
    assert len(series.windows()) > 1     # windowed on the SimClock
    # a threshold below the tail must yield violated windows whose
    # exemplars name real tracer spans
    reports = sched.evaluate_slos(default_fleet_slos(p99_ms=0.4))
    latency_report = reports[0]
    assert latency_report.violated_windows
    span_ids = {sid for w in latency_report.violated_windows
                for sid in w.exemplar_span_ids}
    assert span_ids
    trace_ids = {e["args"]["span_id"]
                 for e in tracer.chrome_trace()["traceEvents"]
                 if e.get("args", {}).get("span_id")}
    assert span_ids <= trace_ids
