"""Texture-cache model and the launch/occupancy/latency cost model."""

import numpy as np
import pytest

from repro.gpusim import (XAVIER, KernelCost, LaunchConfig, TextureCacheModel,
                          TextureCacheStats, estimate_time_ms, gemm_cost,
                          merge_costs, occupancy, stats_from_cost,
                          wave_efficiency)

from helpers import rng


class TestCacheModel:
    def _model(self, **kw):
        return TextureCacheModel(XAVIER, **kw)

    def test_dense_tile_mostly_hits(self):
        cm = self._model(concurrent_layers=1)
        y = np.repeat(np.arange(16), 16)
        x = np.tile(np.arange(16), 16)
        cta = np.zeros(256, dtype=np.int64)
        st = cm.simulate(y, x, cta, 64, 64)
        assert st.hit_rate > 80.0

    def test_repeated_access_hits(self):
        cm = self._model()
        y = np.zeros(1000, dtype=np.int64)
        x = np.zeros(1000, dtype=np.int64)
        cta = np.zeros(1000, dtype=np.int64)
        st = cm.simulate(y, x, cta, 8, 8)
        assert st.misses <= 4   # at most the 4 corner lines
        assert st.hit_rate > 99.0

    def test_disjoint_ctas_refetch_shared_halo(self):
        """Two CTAs touching the same texels both miss — the halo-refetch
        effect that penalises tiny tiles in Fig. 8."""
        cm = self._model()
        y = np.zeros(64, dtype=np.int64)
        x = np.tile(np.arange(32), 2)
        one_cta = np.zeros(64, dtype=np.int64)
        two_ctas = np.repeat(np.array([0, 1]), 32)
        st_one = cm.simulate(y, x, one_cta, 64, 64, corners=False)
        st_two = cm.simulate(y, x, two_ctas, 64, 64, corners=False)
        assert st_two.misses == 2 * st_one.misses

    def test_capacity_thrash_increases_misses(self):
        small = TextureCacheModel(
            XAVIER.with_overrides(tex_cache_kb_per_sm=1))
        big = TextureCacheModel(
            XAVIER.with_overrides(tex_cache_kb_per_sm=128))
        g = rng(0)
        y = g.integers(0, 256, size=8000)
        x = g.integers(0, 256, size=8000)
        cta = np.zeros(8000, dtype=np.int64)
        st_small = small.simulate(y, x, cta, 256, 256, corners=False)
        st_big = big.simulate(y, x, cta, 256, 256, corners=False)
        assert st_small.misses > st_big.misses

    def test_out_of_bounds_corners_not_fetched(self):
        """Border texels are zero-substituted, not read (paper Fig. 10
        discussion: boundary pixels are not computed)."""
        cm = self._model()
        y = np.full(10, -5, dtype=np.int64)
        x = np.full(10, -5, dtype=np.int64)
        cta = np.zeros(10, dtype=np.int64)
        st = cm.simulate(y, x, cta, 8, 8)
        assert st.texel_reads == 0 and st.misses == 0

    def test_corner_expansion_counts_quads(self):
        cm = self._model()
        st = cm.simulate(np.array([2]), np.array([2]), np.array([0]), 8, 8)
        assert st.requests == 1
        assert st.texel_reads == 4

    def test_line_ids_block_linear(self):
        cm = self._model()
        # same 4x8 tile -> same line
        assert cm.line_ids(np.array([0]), np.array([0]), 64) == \
            cm.line_ids(np.array([3]), np.array([7]), 64)
        assert cm.line_ids(np.array([0]), np.array([0]), 64) != \
            cm.line_ids(np.array([4]), np.array([0]), 64)

    def test_length_mismatch_rejected(self):
        cm = self._model()
        with pytest.raises(ValueError):
            cm.simulate(np.zeros(3), np.zeros(2), np.zeros(3), 8, 8)

    def test_stats_scaled(self):
        cm = self._model()
        st = cm.simulate(np.arange(8), np.arange(8), np.zeros(8), 32, 32)
        doubled = st.scaled(2.0)
        assert doubled.texel_reads == 2 * st.texel_reads
        assert doubled.miss_bytes == pytest.approx(2 * st.miss_bytes)

    def test_stats_scaled_preserves_hits_misses_invariant(self):
        """Regression: independently rounding hits and misses used to
        break ``hits + misses == texel_reads`` for awkward factors; hits
        are now derived from the other two."""
        g = rng(1)
        for _ in range(50):
            reads = int(g.integers(1, 10_000))
            misses = int(g.integers(0, reads + 1))
            st = TextureCacheStats(requests=reads // 4, texel_reads=reads,
                                   hits=reads - misses, misses=misses,
                                   miss_bytes=misses * 128.0)
            factor = float(g.uniform(0.001, 700.0))
            sc = st.scaled(factor)
            assert sc.hits + sc.misses == sc.texel_reads
            assert sc.hits >= 0 and sc.misses >= 0
        # degenerate factor: everything collapses to zero, not negatives
        zero = st.scaled(0.0)
        assert (zero.texel_reads, zero.hits, zero.misses) == (0, 0, 0)


class TestLaunchAndOccupancy:
    def test_full_occupancy(self):
        assert occupancy(LaunchConfig(100, 256), XAVIER) == pytest.approx(1.0)

    def test_small_block_limited_by_block_slots(self):
        # 32-thread blocks: 32 blocks/SM × 32 threads = 1024 of 2048
        assert occupancy(LaunchConfig(100, 32), XAVIER) == pytest.approx(0.5)

    def test_block_too_large_rejected(self):
        with pytest.raises(ValueError):
            occupancy(LaunchConfig(1, 2048), XAVIER)

    def test_invalid_launch(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 64)

    def test_wave_efficiency_exact_fill(self):
        # 8 SMs × 8 resident 256-thread blocks = 64 blocks per wave
        assert wave_efficiency(LaunchConfig(64, 256), XAVIER) == 1.0

    def test_wave_efficiency_tail_penalty(self):
        full = wave_efficiency(LaunchConfig(64, 256), XAVIER)
        tail = wave_efficiency(LaunchConfig(65, 256), XAVIER)
        assert tail < full

    def test_wave_efficiency_improves_with_more_waves(self):
        few = wave_efficiency(LaunchConfig(65, 256), XAVIER)
        many = wave_efficiency(LaunchConfig(64 * 20 + 1, 256), XAVIER)
        assert many > few


class TestCostModel:
    def test_monotone_in_flops(self):
        lc = LaunchConfig(1000, 256)
        t1 = estimate_time_ms(KernelCost(flops=1e9), lc, XAVIER)
        t2 = estimate_time_ms(KernelCost(flops=2e9), lc, XAVIER)
        assert t2 > t1

    def test_monotone_in_bytes(self):
        lc = LaunchConfig(1000, 256)
        t1 = estimate_time_ms(KernelCost(dram_bytes=1e8), lc, XAVIER)
        t2 = estimate_time_ms(KernelCost(dram_bytes=5e8), lc, XAVIER)
        assert t2 > t1

    def test_launch_overhead_floor(self):
        lc = LaunchConfig(1, 64)
        t = estimate_time_ms(KernelCost(), lc, XAVIER)
        assert t >= XAVIER.kernel_launch_overhead_us / 1e3

    def test_tex_divisor_slows_fetches(self):
        lc = LaunchConfig(1000, 256)
        t1 = estimate_time_ms(KernelCost(tex_fetches=1e8,
                                         tex_rate_divisor=1), lc, XAVIER)
        t4 = estimate_time_ms(KernelCost(tex_fetches=1e8,
                                         tex_rate_divisor=4), lc, XAVIER)
        assert t4 > t1

    def test_prologue_scales_with_grid(self):
        small = LaunchConfig(100, 256)
        large = LaunchConfig(10000, 256)
        cost = KernelCost(cta_prologue_cycles=500)
        assert estimate_time_ms(cost, large, XAVIER) > \
            estimate_time_ms(cost, small, XAVIER)

    def test_low_occupancy_hurts_compute(self):
        cost = KernelCost(flops=1e10)
        few_blocks = XAVIER.with_overrides(max_blocks_per_sm=4)
        fast = estimate_time_ms(cost, LaunchConfig(1000, 256), few_blocks)
        slow = estimate_time_ms(cost, LaunchConfig(1000, 32), few_blocks)
        assert slow > fast

    def test_gemm_cost_flops(self):
        c = gemm_cost(128, 256, 64)
        assert c.flops == 2.0 * 128 * 256 * 64

    def test_merge_costs_weighted_efficiency(self):
        a = KernelCost(flops=1e9, compute_efficiency=0.8)
        b = KernelCost(flops=1e9, compute_efficiency=0.4)
        m = merge_costs(a, b)
        assert m.flops == 2e9
        assert m.compute_efficiency == pytest.approx(0.6)

    def test_stats_from_cost(self):
        s = stats_from_cost("k", KernelCost(flops=1e9, dram_bytes=1e6),
                            LaunchConfig(100, 256), XAVIER)
        assert s.name == "k" and s.duration_ms > 0
        assert s.flop_count_sp == 1e9
