"""CLI tests (in-process main() invocation)."""

import pytest

from repro.cli import _layer_from_arg, build_parser, main


class TestArgParsing:
    def test_layer_parse(self):
        cfg = _layer_from_arg("128,128,69,69")
        assert cfg.in_channels == 128 and cfg.height == 69
        assert cfg.stride == 1

    def test_layer_parse_with_stride(self):
        cfg = _layer_from_arg("64,64,32,32,2")
        assert cfg.stride == 2

    def test_layer_parse_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _layer_from_arg("1,2,3")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "jetson-agx-xavier" in out and "rtx-2080ti" in out

    def test_layers_single(self, capsys):
        assert main(["layers", "--layer", "16,16,20,20"]) == 0
        out = capsys.readouterr().out
        assert "16x16x20x20" in out and "tex2D++" in out

    def test_end_to_end(self, capsys):
        assert main(["end-to-end", "--arch", "r50s"]) == 0
        out = capsys.readouterr().out
        assert "YOLACT++ baseline" in out
        assert "speedup" in out

    def test_tune(self, capsys):
        assert main(["tune", "--layer", "16,16,24,24", "--budget", "6"]) == 0
        out = capsys.readouterr().out
        assert "best tile" in out

    def test_latency_table_save(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        assert main(["latency-table", "--arch", "r50s",
                     "--save", str(path)]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "t(w_n)" in out

    def test_profile(self, capsys):
        assert main(["profile", "--layer", "16,16,20,20"]) == 0
        out = capsys.readouterr().out
        assert "pytorch" in out and "tex2dpp" in out

    def test_unknown_device_errors(self):
        with pytest.raises(KeyError):
            main(["layers", "--device", "tpu"])


class TestServeAndTiles:
    def test_tune_with_store_then_warm(self, tmp_path, capsys):
        store = str(tmp_path / "tiles.json")
        assert main(["tune", "--layer", "16,16,24,24", "--budget", "4",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["tune", "--layer", "16,16,24,24", "--budget", "4",
                     "--store", store]) == 0
        assert "from tile store" in capsys.readouterr().out

    def test_tiles_show_export_import(self, tmp_path, capsys):
        store = str(tmp_path / "tiles.json")
        main(["tune", "--layer", "16,16,24,24", "--budget", "4",
              "--store", store])
        capsys.readouterr()
        assert main(["tiles", "show", "--store", store]) == 0
        assert "c16x16_h24w24" in capsys.readouterr().out

        dump = str(tmp_path / "dump.json")
        assert main(["tiles", "export", "--store", store, "--out", dump]) == 0
        other = str(tmp_path / "other.json")
        capsys.readouterr()
        assert main(["tiles", "import", "--store", other, dump]) == 0
        assert "imported 1 entries" in capsys.readouterr().out

    def test_trace_open_lists_and_expands_spans(self, tmp_path, capsys):
        import json

        trace = {"traceEvents": [
            {"ph": "X", "name": "fleet.batch", "cat": "fleet",
             "ts": 10.0, "dur": 250.0, "pid": 1, "tid": 2,
             "args": {"span_id": "s3", "worker": "w0"}},
            {"ph": "X", "name": "fleet.batch", "cat": "fleet",
             "ts": 300.0, "dur": 100.0, "pid": 1, "tid": 2,
             "args": {"span_id": "s11"}},
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0},
        ]}
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))

        assert main(["trace", "--open", str(path)]) == 0
        out = capsys.readouterr().out
        assert "s3" in out and "s11" in out and "--span-id" in out

        assert main(["trace", "--open", str(path), "--span-id", "s3"]) == 0
        out = capsys.readouterr().out
        assert "span s3: fleet.batch" in out
        assert "worker: w0" in out and "dur: 250.0" in out

        assert main(["trace", "--open", str(path),
                     "--span-id", "s99"]) == 1
        assert "no span 's99'" in capsys.readouterr().err

    def test_trace_span_id_requires_open(self, capsys):
        assert main(["trace", "--span-id", "s1"]) == 1
        assert "--span-id requires --open" in capsys.readouterr().err

    def test_metrics_export_prometheus(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("hits", help="cache hits").inc(4, backend="tex2d")
        snap = tmp_path / "metrics.json"
        reg.write(snap)

        assert main(["metrics", "export", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE hits counter" in out
        assert 'hits{backend="tex2d"} 4' in out

        dest = tmp_path / "metrics.prom"
        assert main(["metrics", "export", str(snap),
                     "--out", str(dest)]) == 0
        assert "# TYPE hits counter" in dest.read_text()

        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a snapshot"}')
        assert main(["metrics", "export", str(bad)]) == 1
        assert "not a metrics registry snapshot" in capsys.readouterr().err

    def test_bench_compare_pass_and_regress(self, tmp_path, capsys):
        import json

        payload = {"schema_version": 1, "bench": "perf_model",
                   "metrics": {"fused_serving": {"speedup": 2.6}}}
        baseline = tmp_path / "baselines"
        current = tmp_path / "results"
        for d in (baseline, current):
            d.mkdir()
            (d / "BENCH_perf_model.json").write_text(json.dumps(payload))

        assert main(["bench", "compare", str(baseline), str(current)]) == 0
        assert "no tracked regressions" in capsys.readouterr().out

        perturbed = dict(payload,
                         metrics={"fused_serving": {"speedup": 1.0}})
        (current / "BENCH_perf_model.json").write_text(
            json.dumps(perturbed))
        verdict = tmp_path / "verdict.json"
        assert main(["bench", "compare", str(baseline), str(current),
                     "--json-out", str(verdict)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert json.loads(verdict.read_text())["verdict"] == "regress"

    def test_serve_classify_reports_batching(self, tmp_path, capsys):
        store = str(tmp_path / "tiles.json")
        assert main(["serve", "--requests", "4", "--max-batch", "2",
                     "--tune-budget", "3", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "Serving metrics" in out
        assert "tile cache:" in out
        assert "sequential" in out and "batched" in out
        # warm second run: tiles load from the store, no tuning
        capsys.readouterr()
        assert main(["serve", "--requests", "2", "--max-batch", "2",
                     "--tune-budget", "3", "--store", store]) == 0
        assert "warm start" in capsys.readouterr().out
