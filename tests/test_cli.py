"""CLI tests (in-process main() invocation)."""

import pytest

from repro.cli import _layer_from_arg, build_parser, main


class TestArgParsing:
    def test_layer_parse(self):
        cfg = _layer_from_arg("128,128,69,69")
        assert cfg.in_channels == 128 and cfg.height == 69
        assert cfg.stride == 1

    def test_layer_parse_with_stride(self):
        cfg = _layer_from_arg("64,64,32,32,2")
        assert cfg.stride == 2

    def test_layer_parse_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _layer_from_arg("1,2,3")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "jetson-agx-xavier" in out and "rtx-2080ti" in out

    def test_layers_single(self, capsys):
        assert main(["layers", "--layer", "16,16,20,20"]) == 0
        out = capsys.readouterr().out
        assert "16x16x20x20" in out and "tex2D++" in out

    def test_end_to_end(self, capsys):
        assert main(["end-to-end", "--arch", "r50s"]) == 0
        out = capsys.readouterr().out
        assert "YOLACT++ baseline" in out
        assert "speedup" in out

    def test_tune(self, capsys):
        assert main(["tune", "--layer", "16,16,24,24", "--budget", "6"]) == 0
        out = capsys.readouterr().out
        assert "best tile" in out

    def test_latency_table_save(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        assert main(["latency-table", "--arch", "r50s",
                     "--save", str(path)]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "t(w_n)" in out

    def test_profile(self, capsys):
        assert main(["profile", "--layer", "16,16,20,20"]) == 0
        out = capsys.readouterr().out
        assert "pytorch" in out and "tex2dpp" in out

    def test_unknown_device_errors(self):
        with pytest.raises(KeyError):
            main(["layers", "--device", "tpu"])


class TestServeAndTiles:
    def test_tune_with_store_then_warm(self, tmp_path, capsys):
        store = str(tmp_path / "tiles.json")
        assert main(["tune", "--layer", "16,16,24,24", "--budget", "4",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["tune", "--layer", "16,16,24,24", "--budget", "4",
                     "--store", store]) == 0
        assert "from tile store" in capsys.readouterr().out

    def test_tiles_show_export_import(self, tmp_path, capsys):
        store = str(tmp_path / "tiles.json")
        main(["tune", "--layer", "16,16,24,24", "--budget", "4",
              "--store", store])
        capsys.readouterr()
        assert main(["tiles", "show", "--store", store]) == 0
        assert "c16x16_h24w24" in capsys.readouterr().out

        dump = str(tmp_path / "dump.json")
        assert main(["tiles", "export", "--store", store, "--out", dump]) == 0
        other = str(tmp_path / "other.json")
        capsys.readouterr()
        assert main(["tiles", "import", "--store", other, dump]) == 0
        assert "imported 1 entries" in capsys.readouterr().out

    def test_serve_classify_reports_batching(self, tmp_path, capsys):
        store = str(tmp_path / "tiles.json")
        assert main(["serve", "--requests", "4", "--max-batch", "2",
                     "--tune-budget", "3", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "Serving metrics" in out
        assert "tile cache:" in out
        assert "sequential" in out and "batched" in out
        # warm second run: tiles load from the store, no tuning
        capsys.readouterr()
        assert main(["serve", "--requests", "2", "--max-batch", "2",
                     "--tune-budget", "3", "--store", store]) == 0
        assert "warm start" in capsys.readouterr().out
