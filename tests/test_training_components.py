"""Training-infrastructure tests: grad_scale, streaming data, TrainConfig."""

import numpy as np
import pytest

from repro.data import ShapesDataset, StreamingShapesDataset
from repro.nn import Adam, SGD
from repro.nn.module import Parameter
from repro.pipeline import TrainConfig
from repro.tensor import Tensor
from repro.tensor.tensor import grad_scale

from helpers import rng


class TestGradScale:
    def test_forward_identity(self):
        x = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        y = grad_scale(x, 0.1)
        assert np.array_equal(y.data, x.data)

    def test_backward_scales(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        (grad_scale(x, 0.25) * 4.0).sum().backward()
        assert np.allclose(x.grad, [1.0])

    def test_zero_scale_blocks_gradient(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        grad_scale(x, 0.0).sum().backward()
        assert np.allclose(x.grad, [0.0])

    def test_composes_with_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = grad_scale(x * x, 0.5) + x
        y.sum().backward()
        # d/dx (0.5·x² + x) in gradient terms: 0.5·2x + 1 = 3
        assert np.allclose(x.grad, [3.0])


class TestStreamingDataset:
    def test_epoch_size_respected(self):
        stream = StreamingShapesDataset(epoch_size=10, size=48)
        total = sum(len(s) for _, s in stream.batches(4))
        assert total == 10
        assert len(stream) == 10

    def test_fresh_samples_per_seed(self):
        stream = StreamingShapesDataset(epoch_size=4, size=48, seed=0)
        a = next(stream.batches(4, seed=1))[0]
        b = next(stream.batches(4, seed=2))[0]
        assert not np.array_equal(a, b)

    def test_deterministic_same_seed(self):
        stream = StreamingShapesDataset(epoch_size=4, size=48, seed=0)
        a = next(stream.batches(4, seed=7))[0]
        b = next(stream.batches(4, seed=7))[0]
        assert np.array_equal(a, b)

    def test_materialise_is_fixed(self):
        stream = StreamingShapesDataset(epoch_size=4, size=48, seed=3)
        ds = stream.materialise(6, seed=0)
        assert isinstance(ds, ShapesDataset)
        assert len(ds) == 6
        assert ds.size == 48

    def test_num_objects_forwarded(self):
        stream = StreamingShapesDataset(epoch_size=6, size=48,
                                        num_objects=1)
        for _, samples in stream.batches(6):
            assert all(len(s.instances) == 1 for s in samples)


class TestTrainConfig:
    def test_adam_default(self):
        cfg = TrainConfig()
        opt = cfg.build_optimizer([Parameter(np.zeros(2))])
        assert isinstance(opt, Adam)
        assert opt.lr == pytest.approx(cfg.lr)

    def test_sgd_option(self):
        cfg = TrainConfig(optimizer="sgd", lr=1e-2)
        opt = cfg.build_optimizer([Parameter(np.zeros(2))])
        assert isinstance(opt, SGD)
        assert opt.momentum == pytest.approx(0.9)

    def test_unknown_optimizer(self):
        with pytest.raises(ValueError):
            TrainConfig(optimizer="lion").build_optimizer(
                [Parameter(np.zeros(1))])


class TestOffsetGradScaleInLayer:
    def test_main_weight_gradient_unscaled(self):
        from repro.deform.layers import DeformConv2d

        layer = DeformConv2d(3, 3, offset_grad_scale=0.1, rng=rng(0))
        x = Tensor(rng(1).normal(size=(1, 3, 6, 6)))
        layer(x).sum().backward()
        g_main_scaled = layer.weight.grad.copy()
        layer.zero_grad()
        layer.offset_grad_scale = 1.0
        layer(x).sum().backward()
        # offsets start at zero, so the main filter's gradient is the same
        # regardless of the offset-head scaling
        assert np.allclose(g_main_scaled, layer.weight.grad, atol=1e-6)
