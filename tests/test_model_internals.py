"""Deeper model internals: bottleneck paths, FPN gradients, state dicts."""

import numpy as np
import pytest

from repro.models import (FPNLite, ResNetBackbone, build_classifier,
                          build_yolact)
from repro.models.resnet import Bottleneck, default_conv3x3, SiteSpec
from repro.nn import Conv2d
from repro.tensor import Tensor

from helpers import rng


def make_bottleneck(in_ch=8, width=4, stride=1, seed=0):
    g = rng(seed)
    site = SiteSpec(stage=3, block=0, in_channels=width, out_channels=width,
                    stride=stride, feature_size=8)
    conv2 = default_conv3x3(site, g)
    return Bottleneck(in_ch, width, stride, conv2, g)


class TestBottleneck:
    def test_identity_skip_when_shapes_match(self):
        blk = make_bottleneck(in_ch=8, width=4)   # out = 4*2 = 8 = in
        assert blk.down_conv is None

    def test_projection_skip_on_stride(self):
        blk = make_bottleneck(in_ch=8, width=4, stride=2)
        assert blk.down_conv is not None
        x = Tensor(rng(1).normal(size=(1, 8, 8, 8)))
        assert blk(x).shape == (1, 8, 4, 4)

    def test_projection_skip_on_channel_change(self):
        blk = make_bottleneck(in_ch=6, width=4)
        assert blk.down_conv is not None

    def test_gradient_flows_through_both_paths(self):
        blk = make_bottleneck(in_ch=8, width=4)
        x = Tensor(rng(2).normal(size=(1, 8, 8, 8)), requires_grad=True)
        (blk(x) ** 2).mean().backward()
        assert x.grad is not None
        assert blk.conv1.weight.grad is not None
        assert blk.conv3.weight.grad is not None


class TestBackboneVariants:
    def test_base_width_scales_channels(self):
        wide = ResNetBackbone("r50s", base_width=16, input_size=64)
        narrow = ResNetBackbone("r50s", base_width=8, input_size=64)
        assert wide.stage_channels[5] == 2 * narrow.stage_channels[5]

    def test_repr(self):
        bb = ResNetBackbone("r50s")
        assert "r50s" in repr(bb) and "sites=9" in repr(bb)

    def test_full_gradient_flow(self):
        bb = ResNetBackbone("r50s", input_size=32)
        x = Tensor(rng(3).normal(size=(1, 3, 32, 32)), requires_grad=True)
        feats = bb(x)
        (feats["c5"] ** 2).mean().backward()
        with_grad = sum(p.grad is not None for p in bb.parameters())
        total = sum(1 for _ in bb.parameters())
        assert with_grad == total


class TestFPN:
    def test_gradients_reach_all_laterals(self):
        fpn = FPNLite(8, 16, 32, out_channels=8, rng=rng(4))
        feats = {
            "c3": Tensor(rng(5).normal(size=(1, 8, 16, 16)),
                         requires_grad=True),
            "c4": Tensor(rng(6).normal(size=(1, 16, 8, 8)),
                         requires_grad=True),
            "c5": Tensor(rng(7).normal(size=(1, 32, 4, 4)),
                         requires_grad=True),
        }
        (fpn(feats) ** 2).mean().backward()
        for t in feats.values():
            assert t.grad is not None and np.abs(t.grad).sum() > 0


class TestStateDicts:
    def test_yolact_state_roundtrip(self):
        a = build_yolact("r50s", placement=[True] * 9, lightweight=True,
                         bound=7.0, seed=0)
        b = build_yolact("r50s", placement=[True] * 9, lightweight=True,
                         bound=7.0, seed=123)
        xs = rng(8).uniform(0, 1, size=(1, 3, 64, 64)).astype(np.float32)
        out_a = a(Tensor(xs))
        b.load_state_dict(a.state_dict())
        out_b = b(Tensor(xs))
        # BN running stats differ after a's forward; compare in eval mode
        a.eval()
        b.load_state_dict(a.state_dict())
        b.eval()
        out_a = a(Tensor(xs))
        out_b = b(Tensor(xs))
        assert np.allclose(out_a["cls"].data, out_b["cls"].data, atol=1e-6)

    def test_state_dict_includes_buffers(self):
        model = build_classifier("r50s", seed=0)
        state = model.state_dict()
        assert any(k.endswith("running_mean") for k in state)
        assert any(k.endswith("mask_bias") or True for k in state)

    def test_classifier_deterministic_given_seed(self):
        a = build_classifier("r50s", seed=7)
        b = build_classifier("r50s", seed=7)
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)
