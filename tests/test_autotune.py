"""Autotuner tests: GP surrogate, acquisition, Bayesian search, tile tuner."""

import numpy as np
import pytest

from repro.autotune import (BayesianOptimizer, GaussianProcess, SearchSpace,
                            TileTuner, expected_improvement, grid_search,
                            lower_confidence_bound, random_search, rbf_kernel)
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig

from helpers import rng


class TestSearchSpace:
    def test_basic_properties(self):
        space = SearchSpace.from_tiles([(4, 4), (8, 8), (16, 16)])
        assert len(space) == 3 and space.dim == 2
        assert space.index((8, 8)) == 1

    def test_normalized_in_unit_cube(self):
        space = SearchSpace.from_tiles([(2, 4), (8, 64), (32, 16)])
        coords = space.normalized()
        assert coords.min() >= 0.0 and coords.max() <= 1.0
        assert coords.shape == (3, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(points=())

    def test_mixed_dim_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(points=((1, 2), (1, 2, 3)))


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        x = np.array([[0.0], [0.5], [1.0]])
        y = np.array([1.0, -1.0, 2.0])
        gp = GaussianProcess(lengthscale=0.3, noise=1e-6).fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-2)
        assert (std < 0.1).all()

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.0], [0.1]])
        y = np.array([0.0, 0.1])
        gp = GaussianProcess(lengthscale=0.1).fit(x, y)
        _, std_near = gp.predict(np.array([[0.05]]))
        _, std_far = gp.predict(np.array([[0.9]]))
        assert std_far > std_near

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 1)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 1)), np.zeros(2))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            GaussianProcess(lengthscale=0.0)

    def test_rbf_kernel_diagonal_is_variance(self):
        a = rng(0).normal(size=(4, 2))
        k = rbf_kernel(a, a, lengthscale=0.5, variance=2.0)
        assert np.allclose(np.diag(k), 2.0)


class TestAcquisition:
    def test_ei_zero_when_certain_and_worse(self):
        ei = expected_improvement(np.array([5.0]), np.array([1e-12]),
                                  best=1.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_ei_positive_when_mean_better(self):
        ei = expected_improvement(np.array([0.0]), np.array([0.1]),
                                  best=1.0)
        assert ei[0] > 0.5

    def test_ei_rewards_uncertainty(self):
        low = expected_improvement(np.array([1.0]), np.array([0.01]),
                                   best=1.0)
        high = expected_improvement(np.array([1.0]), np.array([1.0]),
                                    best=1.0)
        assert high[0] > low[0]

    def test_lcb_ordering(self):
        s = lower_confidence_bound(np.array([1.0, 1.0]),
                                   np.array([0.1, 1.0]))
        assert s[1] > s[0]   # more uncertain = more promising


class TestBayesianOptimizer:
    def _space(self):
        return SearchSpace.from_tiles(
            [(ty, tx) for ty in (2, 4, 8, 16, 32) for tx in (2, 4, 8, 16, 32)])

    def test_finds_optimum_of_smooth_function(self):
        space = self._space()

        def objective(tile):
            ty, tx = tile
            return (np.log2(ty) - 3) ** 2 + (np.log2(tx) - 3) ** 2

        result = BayesianOptimizer(space, seed=0).minimize(objective,
                                                           budget=12)
        assert result.best_point == (8, 8)
        assert result.evaluations == 12

    def test_budget_clipped_to_space(self):
        space = SearchSpace.from_tiles([(2, 2), (4, 4)])
        result = BayesianOptimizer(space, seed=0).minimize(
            lambda t: float(t[0]), budget=50)
        assert result.evaluations == 2
        assert result.best_point == (2, 2)

    def test_deterministic_given_seed(self):
        space = self._space()

        def objective(tile):
            return float(tile[0] * 31 % 7 + tile[1] * 17 % 5)

        a = BayesianOptimizer(space, seed=3).minimize(objective, budget=10)
        b = BayesianOptimizer(space, seed=3).minimize(objective, budget=10)
        assert a.history == b.history

    def test_best_trace_monotone(self):
        space = self._space()
        result = BayesianOptimizer(space, seed=1).minimize(
            lambda t: float((t[0] - 7) ** 2 + t[1]), budget=10)
        trace = result.best_trace()
        assert all(a >= b for a, b in zip(trace, trace[1:]))

    def test_matches_or_beats_random_on_structured_objective(self):
        space = self._space()

        def objective(tile):
            ty, tx = tile
            return abs(np.log2(ty) - 2.0) + abs(np.log2(tx) - 4.0)

        bo = BayesianOptimizer(space, seed=0).minimize(objective, budget=12)
        rs = random_search(space, objective, budget=12, seed=0)
        assert bo.best_value <= rs.best_value + 1e-9


class TestGridAndRandom:
    def test_grid_search_exhaustive(self):
        space = SearchSpace.from_tiles([(2, 2), (4, 4), (8, 8)])
        result = grid_search(space, lambda t: float(-t[0]))
        assert result.evaluations == 3
        assert result.best_point == (8, 8)

    def test_random_search_distinct_points(self):
        space = SearchSpace.from_tiles(
            [(i, i) for i in (2, 4, 8, 16, 32, 64)])
        result = random_search(space, lambda t: float(t[0]), budget=6,
                               seed=0)
        assert len({p for p, _ in result.history}) == 6


class TestTileTuner:
    CFG = LayerConfig(16, 16, 24, 24)

    def test_bayes_matches_grid_oracle_or_close(self):
        tuner = TileTuner(XAVIER, budget=12, seed=0)
        bayes = tuner.tune(self.CFG, "bayes")
        oracle = tuner.tune(self.CFG, "grid")
        assert bayes.best_value <= oracle.best_value * 1.1

    def test_cache_returns_same_result(self):
        tuner = TileTuner(XAVIER, budget=6, seed=0)
        assert tuner.tune(self.CFG) is tuner.tune(self.CFG)

    def test_best_tile_is_legal(self):
        tuner = TileTuner(XAVIER, budget=6, seed=0)
        ty, tx = tuner.best_tile(self.CFG)
        assert ty * tx <= XAVIER.max_threads_per_block

    def test_rejects_non_texture_backend(self):
        with pytest.raises(ValueError):
            TileTuner(XAVIER, backend="pytorch")

    def test_unknown_method(self):
        tuner = TileTuner(XAVIER, budget=4)
        with pytest.raises(ValueError):
            tuner.tune(self.CFG, "annealing")

    def test_tune_layers_deduplicates(self):
        tuner = TileTuner(XAVIER, budget=4, seed=0)
        tiles = tuner.tune_layers([self.CFG, self.CFG])
        assert len(tiles) == 1
