"""Unit tests for windowed time-series metrics (repro.obs.timeseries).

The headline property: **windowed percentiles track exact offline
percentiles within the sketch's error bounds** — the estimated quantile
at q must lie between the exact percentiles at q ± eps.  Plus windowing
semantics (injectable clock, ring retention, late-drop), exemplar
retention, and the Prometheus exposition of windowed series.
"""

import numpy as np
import pytest

from repro.obs import (Exemplar, MetricsRegistry, QuantileSketch,
                       WindowedHistogram, WindowedSeries)
from repro.obs.timeseries import WindowStats, wall_clock_ms


# ----------------------------------------------------------------------
# QuantileSketch
# ----------------------------------------------------------------------
def _assert_quantiles_within_bounds(sketch, values, eps_pct=4.0):
    """Estimated q must lie between exact percentiles at q -/+ eps."""
    arr = np.asarray(values, dtype=np.float64)
    for q in (1, 5, 25, 50, 75, 90, 95, 99):
        lo = float(np.percentile(arr, max(0.0, q - eps_pct)))
        hi = float(np.percentile(arr, min(100.0, q + eps_pct)))
        est = sketch.quantile(q)
        assert lo <= est <= hi, \
            f"p{q}: estimate {est} outside exact [{lo}, {hi}]"


def test_sketch_exact_aggregates():
    sketch = QuantileSketch(compression=32)
    values = [float(v) for v in range(5000, 0, -1)]
    for v in values:
        sketch.add(v)
    assert sketch.count == 5000
    assert sketch.total == pytest.approx(sum(values))
    assert sketch.min == 1.0 and sketch.max == 5000.0
    assert sketch.mean == pytest.approx(np.mean(values))
    # memory stays O(compression), not O(n): tail centroids are singletons
    # (weight limit clamps to 1), so the constant is bigger than 1 — but
    # 10x more data must not mean 10x more centroids
    first = sketch.num_centroids
    assert first <= 8 * 32
    for v in range(50000):
        sketch.add(float(v % 5000) + 1.0)
    assert sketch.num_centroids <= 8 * 32


@pytest.mark.parametrize("dist", ["uniform", "lognormal", "bimodal"])
def test_sketch_quantiles_within_error_bounds(dist):
    rng = np.random.default_rng(7)
    n = 20000
    if dist == "uniform":
        values = rng.uniform(0, 100, size=n)
    elif dist == "lognormal":
        values = rng.lognormal(mean=1.0, sigma=1.2, size=n)
    else:
        values = np.concatenate([rng.normal(5, 1, n // 2),
                                 rng.normal(80, 5, n // 2)])
    sketch = QuantileSketch(compression=64)
    for v in values:
        sketch.add(float(v))
    _assert_quantiles_within_bounds(sketch, values)


def test_sketch_extremes_and_empty():
    sketch = QuantileSketch()
    assert sketch.quantile(50) == 0.0       # empty → 0, not a crash
    assert sketch.cdf(1.0) == 0.0
    for v in (3.0, 1.0, 2.0):
        sketch.add(v)
    assert sketch.quantile(0) == 1.0        # exact min
    assert sketch.quantile(100) == 3.0      # exact max


def test_sketch_cdf_inverts_quantile():
    rng = np.random.default_rng(3)
    values = rng.uniform(0, 50, size=8000)
    sketch = QuantileSketch(compression=64)
    for v in values:
        sketch.add(float(v))
    for x in (5.0, 20.0, 45.0):
        exact = float(np.mean(values <= x))
        assert sketch.cdf(x) == pytest.approx(exact, abs=0.05)
    assert sketch.cdf(-1.0) == 0.0
    assert sketch.cdf(1e9) == 1.0


def test_sketch_merge_matches_single_sketch_bounds():
    rng = np.random.default_rng(11)
    chunks = [rng.lognormal(size=3000) for _ in range(4)]
    total = QuantileSketch(compression=64)
    for chunk in chunks:
        part = QuantileSketch(compression=64)
        for v in chunk:
            part.add(float(v))
        total.merge(part)
    values = np.concatenate(chunks)
    assert total.count == len(values)
    assert total.total == pytest.approx(values.sum())
    _assert_quantiles_within_bounds(total, values, eps_pct=5.0)


def test_sketch_rejects_tiny_compression():
    with pytest.raises(ValueError):
        QuantileSketch(compression=4)


# ----------------------------------------------------------------------
# WindowedSeries
# ----------------------------------------------------------------------
def test_series_buckets_by_timestamp():
    series = WindowedSeries(window_ms=10.0, retention=8,
                            clock=lambda: 0.0)
    for ts, value in ((1.0, 5.0), (9.9, 6.0), (10.0, 7.0), (25.0, 8.0)):
        series.observe(value, ts_ms=ts)
    wins = series.windows()
    assert [w.index for w in wins] == [0, 1, 2]
    assert wins[0].count == 2 and wins[0].sum == 11.0
    assert wins[1].count == 1 and wins[2].count == 1
    assert (wins[0].start_ms, wins[0].end_ms) == (0.0, 10.0)
    assert series.latest().index == 2
    assert series.count == 4


def test_series_uses_injected_clock_when_no_timestamp():
    now = {"ms": 42.0}
    series = WindowedSeries(window_ms=10.0, clock=lambda: now["ms"])
    series.observe(1.0)
    now["ms"] = 55.0
    series.observe(2.0)
    assert [w.index for w in series.windows()] == [4, 5]


def test_series_ring_evicts_and_drops_late():
    series = WindowedSeries(window_ms=1.0, retention=3,
                            clock=lambda: 0.0)
    for ts in (0.5, 1.5, 2.5, 3.5, 4.5):
        series.observe(1.0, ts_ms=ts)
    # only the 3 newest windows survive
    assert [w.index for w in series.windows()] == [2, 3, 4]
    assert series.evicted == 2
    # a late observation older than the ring is dropped, not resurrected
    series.observe(9.0, ts_ms=0.7)
    assert series.dropped == 1
    assert [w.index for w in series.windows()] == [2, 3, 4]
    # memory bound holds under any input
    assert len(series) <= 3


def test_series_windowed_percentiles_match_offline_per_window():
    rng = np.random.default_rng(5)
    series = WindowedSeries(window_ms=100.0, retention=16,
                            clock=lambda: 0.0, compression=64)
    offline = {}
    for win in range(4):
        values = rng.lognormal(mean=win, sigma=0.8, size=4000)
        offline[win] = values
        for i, v in enumerate(values):
            series.observe(float(v), ts_ms=win * 100.0 + (i % 100))
    for stats in series.windows():
        _assert_quantiles_within_bounds(stats.sketch, offline[stats.index])
    # the merged roll-up also stays within bounds
    everything = np.concatenate(list(offline.values()))
    _assert_quantiles_within_bounds(series.total_sketch(), everything,
                                    eps_pct=5.0)


def test_series_quantile_series_shape():
    series = WindowedSeries(window_ms=10.0, clock=lambda: 0.0)
    series.observe(1.0, ts_ms=5.0)
    series.observe(3.0, ts_ms=15.0)
    pts = series.quantile_series(50)
    assert pts == [(0.0, 1.0), (10.0, 3.0)]


def test_window_exemplars_keep_worst():
    win = WindowStats(0, 10.0, max_exemplars=2)
    for i, v in enumerate((1.0, 9.0, 5.0, 7.0)):
        win.observe(v, Exemplar(value=v, span_id=f"s{i}"))
    kept = [(e.value, e.span_id) for e in win.exemplars]
    assert kept == [(9.0, "s1"), (7.0, "s3")]
    snap = win.snapshot()
    assert snap["exemplars"][0]["span_id"] == "s1"


def test_series_validation():
    with pytest.raises(ValueError):
        WindowedSeries(window_ms=0.0)
    with pytest.raises(ValueError):
        WindowedSeries(retention=0)


def test_wall_clock_is_monotonic_ms():
    a = wall_clock_ms()
    b = wall_clock_ms()
    assert b >= a


# ----------------------------------------------------------------------
# WindowedHistogram via the registry
# ----------------------------------------------------------------------
def test_registry_windowed_histogram_labels_and_idempotency():
    reg = MetricsRegistry()
    wh = reg.windowed_histogram("lat_ms", window_ms=10.0,
                                clock=lambda: 0.0)
    assert isinstance(wh, WindowedHistogram)
    assert reg.windowed_histogram("lat_ms") is wh
    with pytest.raises(ValueError):
        reg.counter("lat_ms")
    wh.observe(1.0, ts_ms=5.0, route="a")
    wh.observe(2.0, ts_ms=5.0, route="b")
    assert wh.count(route="a") == 1
    assert wh.series(route="b").windows()[0].sum == 2.0
    snap = reg.snapshot()["lat_ms"]
    assert snap["kind"] == "windowed_histogram"
    assert [s["labels"] for s in snap["series"]] == [{"route": "a"},
                                                     {"route": "b"}]


def test_windowed_histogram_in_prometheus_exposition():
    reg = MetricsRegistry()
    wh = reg.windowed_histogram("lat_ms", help="latency",
                                window_ms=10.0, clock=lambda: 0.0)
    for v in (1.0, 2.0, 30.0):
        wh.observe(v, ts_ms=5.0,
                   exemplar=Exemplar(value=v, span_id=f"s{int(v)}"))
    text = reg.to_prometheus()
    assert "# TYPE lat_ms summary" in text
    assert 'lat_ms{quantile="0.5"}' in text
    assert "lat_ms_count 3" in text
    assert "lat_ms_sum 33" in text
    # the worst exemplar rides the p99 sample
    assert '# {span_id="s30"} 30' in text
