"""Latency-table persistence and whole-network profiling."""

import numpy as np
import pytest

from repro.gpusim import RTX_2080TI, XAVIER
from repro.kernels import LayerConfig
from repro.nas import LatencyTable, manual_interval_placement
from repro.pipeline import paper_scale_geometry, profile_network


class TestLatencyTablePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        table = LatencyTable(XAVIER)
        cfgs = [LayerConfig(8, 8, 10, 10), LayerConfig(16, 16, 12, 12)]
        table.build(cfgs)
        path = tmp_path / "latency.json"
        table.save(path)
        loaded = LatencyTable.load(path, XAVIER)
        assert len(loaded) == 2
        for cfg in cfgs:
            assert loaded.lookup(cfg).deform_ms == pytest.approx(
                table.lookup(cfg).deform_ms)

    def test_load_rejects_wrong_device(self, tmp_path):
        table = LatencyTable(XAVIER)
        table.build([LayerConfig(8, 8, 10, 10)])
        path = tmp_path / "latency.json"
        table.save(path)
        with pytest.raises(ValueError):
            LatencyTable.load(path, RTX_2080TI)

    def test_loaded_table_extends(self, tmp_path):
        table = LatencyTable(XAVIER)
        table.build([LayerConfig(8, 8, 10, 10)])
        path = tmp_path / "latency.json"
        table.save(path)
        loaded = LatencyTable.load(path, XAVIER)
        loaded.lookup(LayerConfig(16, 16, 10, 10))   # fresh measurement
        assert len(loaded) == 2


class TestProfileNetwork:
    def test_trace_covers_all_dcn_sites(self):
        geo = paper_scale_geometry("r50s")
        placement = manual_interval_placement(geo.num_sites, 3)
        log = profile_network(geo, placement, XAVIER, backend="tex2dpp",
                              bound=7.0)
        # two kernels (sampling + GEMM) per deformable site
        assert len(log.records) == 2 * sum(placement)
        agg = log.by_name()
        assert "deformable_tex2dpp" in agg
        assert "implicit_gemm" in agg
        assert log.total_ms > 0

    def test_backends_differ_in_counters(self):
        geo = paper_scale_geometry("r50s")
        placement = manual_interval_placement(geo.num_sites, 3)
        ref = profile_network(geo, placement, XAVIER, backend="pytorch")
        tex = profile_network(geo, placement, XAVIER, backend="tex2d")
        ref_sample = ref.by_name()["deformable_im2col"]
        tex_sample = tex.by_name()["deformable_tex2d"]
        assert ref_sample.tex_cache_requests == 0
        assert tex_sample.tex_cache_requests > 0
        assert ref_sample.flop_count_sp > 3 * tex_sample.flop_count_sp

    def test_placement_validated(self):
        geo = paper_scale_geometry("r50s")
        with pytest.raises(ValueError):
            profile_network(geo, [True], XAVIER)
