"""im2col / col2im lowering tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, conv_output_size, im2col, sample_grid

from helpers import rng


class TestOutputSize:
    def test_same_padding(self):
        assert conv_output_size(8, 3, 1, 1) == 8

    def test_stride_two(self):
        assert conv_output_size(8, 3, 2, 1) == 4

    def test_dilation(self):
        # effective kernel 5 with dilation 2
        assert conv_output_size(9, 3, 1, 0, dilation=2) == 5

    @given(size=st.integers(4, 40), k=st.integers(1, 5),
           stride=st.integers(1, 3), pad=st.integers(0, 2))
    @settings(max_examples=50, deadline=None)
    def test_always_positive_when_kernel_fits(self, size, k, stride, pad):
        if size + 2 * pad >= k:
            assert conv_output_size(size, k, stride, pad) >= 1


class TestIm2Col:
    def test_shapes(self):
        x = rng(0).normal(size=(2, 3, 8, 8)).astype(np.float32)
        cols = im2col(x, 3, 3, stride=1, padding=1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_identity_kernel_1x1(self):
        x = rng(1).normal(size=(1, 2, 4, 4)).astype(np.float32)
        cols = im2col(x, 1, 1)
        assert np.allclose(cols.reshape(1, 2, 4, 4), x)

    def test_values_match_naive_window(self):
        x = rng(2).normal(size=(1, 1, 5, 5)).astype(np.float32)
        cols = im2col(x, 3, 3, stride=1, padding=0)
        # output pixel (1, 1) corresponds to window x[0:3, 0:3] ... check a few
        col = cols[0, :, 0].reshape(3, 3)
        assert np.allclose(col, x[0, 0, 0:3, 0:3])
        col_last = cols[0, :, -1].reshape(3, 3)
        assert np.allclose(col_last, x[0, 0, 2:5, 2:5])

    def test_padding_zero_fills(self):
        x = np.ones((1, 1, 3, 3), dtype=np.float32)
        cols = im2col(x, 3, 3, stride=1, padding=1)
        corner = cols[0, :, 0].reshape(3, 3)
        assert corner[0, 0] == 0.0 and corner[2, 2] == 1.0

    @given(h=st.integers(3, 10), w=st.integers(3, 10),
           stride=st.integers(1, 2), pad=st.integers(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_col2im_is_adjoint_of_im2col(self, h, w, stride, pad):
        """<im2col(x), y> == <x, col2im(y)> — exact adjointness."""
        if conv_output_size(h, 3, stride, pad) < 1:
            return
        if conv_output_size(w, 3, stride, pad) < 1:
            return
        g = rng(h * 100 + w)
        x = g.normal(size=(1, 2, h, w)).astype(np.float64)
        cols = im2col(x, 3, 3, stride, pad)
        y = g.normal(size=cols.shape).astype(np.float64)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 3, stride, pad)
        rhs = float((x * back).sum())
        assert abs(lhs - rhs) < 1e-6 * max(1.0, abs(lhs))


class TestSampleGrid:
    def test_grid_shapes(self):
        rows, cols, oh, ow = sample_grid(8, 8, 3, 3, 1, 1)
        assert rows.shape == (9, 64) and cols.shape == (9, 64)
        assert (oh, ow) == (8, 8)

    def test_grid_indices_within_padded_bounds(self):
        rows, cols, oh, ow = sample_grid(6, 6, 3, 3, 2, 1)
        assert rows.min() >= 0 and rows.max() <= 6 + 2 * 1 - 1
        assert cols.min() >= 0 and cols.max() <= 6 + 2 * 1 - 1
