"""Device registry, profiler log, and cross-cutting gpusim properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (DEVICES, RTX_2080TI, XAVIER, KernelStats,
                          ProfileLog, get_device)

from helpers import rng


class TestDeviceRegistry:
    def test_presets_registered(self):
        assert "jetson-agx-xavier" in DEVICES
        assert "rtx-2080ti" in DEVICES

    @pytest.mark.parametrize("alias,name", [
        ("xavier", "jetson-agx-xavier"),
        ("AGX", "jetson-agx-xavier"),
        ("2080ti", "rtx-2080ti"),
        ("RTX2080Ti", "rtx-2080ti"),
    ])
    def test_aliases(self, alias, name):
        assert get_device(alias).name == name

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("h100")

    def test_with_overrides_is_copy(self):
        fast = XAVIER.with_overrides(dram_bandwidth_gbps=999.0)
        assert fast.dram_bandwidth_gbps == 999.0
        assert XAVIER.dram_bandwidth_gbps == 137.0

    def test_peak_numbers(self):
        # 8 SM × 64 lanes × 2 × 1.377 GHz ≈ 1.41 TFLOP/s
        assert XAVIER.peak_gflops == pytest.approx(1410, rel=0.01)
        assert RTX_2080TI.peak_gflops > 5 * XAVIER.peak_gflops
        assert XAVIER.peak_tex_gtexels == pytest.approx(
            8 * 4 * 1.377, rel=1e-6)

    def test_effective_bandwidth_below_peak(self):
        for spec in DEVICES.values():
            assert spec.effective_dram_gbps < spec.dram_bandwidth_gbps


class TestKernelStats:
    def test_mflop(self):
        s = KernelStats(flop_count_sp=3e6)
        assert s.mflop == pytest.approx(3.0)

    def test_ratios_safe_on_zero(self):
        s = KernelStats()
        assert s.gld_transactions_per_request == 0.0
        assert s.gld_efficiency == 100.0
        assert s.tex_cache_hit_rate == 0.0

    def test_efficiency_capped_at_100(self):
        s = KernelStats(gld_bytes_requested=1e9, gld_transactions=1)
        assert s.gld_efficiency == 100.0

    def test_merged_sums_counters(self):
        a = KernelStats(name="k", duration_ms=1.0, flop_count_sp=10.0,
                        gld_requests=2, gld_transactions=8)
        b = KernelStats(name="k", duration_ms=2.0, flop_count_sp=30.0,
                        gld_requests=2, gld_transactions=4)
        m = a.merged(b)
        assert m.duration_ms == pytest.approx(3.0)
        assert m.flop_count_sp == pytest.approx(40.0)
        assert m.gld_transactions_per_request == pytest.approx(3.0)


class TestProfileLog:
    def _log(self):
        log = ProfileLog()
        log.add(KernelStats(name="a", duration_ms=1.0, flop_count_sp=1e6))
        log.add(KernelStats(name="b", duration_ms=2.0,
                            tex_cache_requests=10, tex_texel_reads=40,
                            tex_cache_hits=30))
        log.add(KernelStats(name="a", duration_ms=0.5, flop_count_sp=2e6))
        return log

    def test_total(self):
        assert self._log().total_ms == pytest.approx(3.5)

    def test_by_name_aggregates(self):
        agg = self._log().by_name()
        assert agg["a"].duration_ms == pytest.approx(1.5)
        assert agg["a"].flop_count_sp == pytest.approx(3e6)

    def test_summary_rows(self):
        rows = self._log().summary_rows()
        assert {r["kernel"] for r in rows} == {"a", "b"}
        b_row = next(r for r in rows if r["kernel"] == "b")
        assert b_row["tex_hit_rate_pct"] == pytest.approx(75.0)

    def test_by_name_mutation_does_not_leak_into_records(self):
        """Regression: the single-occurrence branch used to alias the live
        record, so mutating the aggregate corrupted the log."""
        log = self._log()
        agg = log.by_name()
        agg["b"].duration_ms = 999.0
        agg["b"].tex_cache_hits = 0.0
        assert log.records[1].duration_ms == pytest.approx(2.0)
        assert log.records[1].tex_cache_hits == pytest.approx(30.0)
        assert log.total_ms == pytest.approx(3.5)
        # a fresh aggregation is untouched by the earlier mutation
        assert log.by_name()["b"].duration_ms == pytest.approx(2.0)

    def test_merged_name_invariant(self):
        same = KernelStats(name="k").merged(KernelStats(name="k"))
        assert same.name == "k"
        one_sided = KernelStats(name="k").merged(KernelStats())
        assert one_sided.name == "k"
        adopted = KernelStats().merged(KernelStats(name="k"))
        assert adopted.name == "k"
        mixed = KernelStats(name="a").merged(KernelStats(name="b"))
        assert mixed.name == "a+b"   # never masquerades as either kernel


class TestCrossCuttingProperties:
    @given(sigma=st.floats(0.3, 4.0), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_bounded_synth_offsets_within_bound(self, sigma, seed):
        from repro.kernels import LayerConfig, synth_offsets

        off = synth_offsets(LayerConfig(4, 4, 12, 12), sigma=sigma,
                            bound=5.0, seed=seed)
        assert np.abs(off).max() <= 5.0

    @given(h=st.integers(6, 24), w=st.integers(6, 24))
    @settings(max_examples=15, deadline=None)
    def test_sampling_positions_zero_offset_in_padded_range(self, h, w):
        from repro.deform import sampling_positions

        off = np.zeros((1, 18, h, w), dtype=np.float32)
        py, px = sampling_positions(off, (h, w), 3, 1, 1, 1, 1)
        assert py.min() >= -1 and py.max() <= h
        assert px.min() >= -1 and px.max() <= w

    @given(n=st.integers(1, 4096))
    @settings(max_examples=25, deadline=None)
    def test_strided_efficiency_unit_stride_always_100(self, n):
        from repro.gpusim import strided_stats

        s = strided_stats(n, 4, XAVIER)
        # unit-stride float32: requested bytes == lane bytes; transferred
        # sectors may pad the tail warp, so efficiency is within (90, 100]
        assert s.efficiency <= 100.0
        assert s.transactions >= 1
