"""Tests for the bench-regression flight recorder (repro.obs.flightrec)."""

import json

import pytest

from repro.obs.flightrec import (DEFAULT_RULES, IMPROVED, MISSING, NEW, OK,
                                 REGRESSED, UNTRACKED, MetricRule,
                                 collect_benches, compare, flatten_metrics,
                                 run_compare)


def _bench(name, metrics, **extra):
    return {"schema_version": 1, "bench": name, "device": "xavier",
            "git_rev": "abc1234", "timestamp": "2026-08-07T00:00:00+00:00",
            "metrics": metrics, **extra}


def _write(tmp_path, sub, payloads):
    d = tmp_path / sub
    d.mkdir(parents=True, exist_ok=True)
    for p in payloads:
        (d / f"BENCH_{p['bench']}.json").write_text(json.dumps(p))
    return d


# ----------------------------------------------------------------------
# flattening + loading
# ----------------------------------------------------------------------
def test_flatten_metrics_dotted_paths():
    flat = flatten_metrics(_bench("x", {
        "a": {"speedup": 2.0, "note": "text", "flag": True},
        "list": [1.0, {"ms": 3.0}],
        "top": 7,
    }))
    assert flat == {"a.speedup": 2.0, "list.0": 1.0, "list.1.ms": 3.0,
                    "top": 7.0}


def test_collect_benches_dir_and_file(tmp_path):
    d = _write(tmp_path, "snap", [_bench("one", {"v_ms": 1.0}),
                                  _bench("two", {"v_ms": 2.0})])
    benches = collect_benches(d)
    assert sorted(benches) == ["one", "two"]
    single = collect_benches(d / "BENCH_one.json")
    assert list(single) == ["one"]
    (d / "BENCH_bad.json").write_text("{}")
    with pytest.raises(ValueError):
        collect_benches(d)


# ----------------------------------------------------------------------
# rules + comparison outcomes
# ----------------------------------------------------------------------
def test_rule_matching_first_wins():
    rules = [MetricRule("*.speedup", "higher"), MetricRule("*", "ignore")]
    from repro.obs.flightrec import _match_rule
    assert _match_rule("perf.fused.speedup", rules).direction == "higher"
    assert _match_rule("perf.iters", rules).direction == "ignore"


def test_halved_speedup_regresses_jitter_does_not():
    base = {"perf": _bench("perf", {"fused": {"speedup": 2.6}})}

    halved = {"perf": _bench("perf", {"fused": {"speedup": 1.3}})}
    report = compare(base, halved)
    (row,) = report.rows
    assert row.outcome == REGRESSED and report.exit_code == 1
    assert report.verdict == "regress"

    jitter = {"perf": _bench("perf", {"fused": {"speedup": 2.4}})}
    report = compare(base, jitter)
    assert report.rows[0].outcome == OK and report.exit_code == 0


def _fleet(metrics):
    # names matter: DEFAULT_RULES key tight gates off the bench prefix
    return {"fleet_scheduler": _bench("fleet_scheduler", metrics)}


def test_direction_lower_better_and_improvement():
    base = _fleet({"routing": {"makespan_ms": 1.0}})
    slower = _fleet({"routing": {"makespan_ms": 1.5}})
    faster = _fleet({"routing": {"makespan_ms": 0.5}})
    assert compare(base, slower).rows[0].outcome == REGRESSED
    assert compare(base, faster).rows[0].outcome == IMPROVED


def test_abs_floor_suppresses_tiny_relative_deltas():
    # 0.01 -> 0.02 ms is +100% relative but far below the 0.05 floor
    base = _fleet({"routing": {"makespan_ms": 0.01}})
    cur = _fleet({"routing": {"makespan_ms": 0.02}})
    assert compare(base, cur).rows[0].outcome == OK


def test_exact_gate_on_counts():
    base = _fleet({"routing": {"completed": 12, "unresolved": 0}})
    cur = _fleet({"routing": {"completed": 11, "unresolved": 1}})
    report = compare(base, cur)
    outcomes = {r.path: r.outcome for r in report.rows}
    assert outcomes["fleet_scheduler.routing.completed"] == REGRESSED
    assert outcomes["fleet_scheduler.routing.unresolved"] == REGRESSED


def test_untracked_new_and_missing_never_gate():
    base = {"f": _bench("f", {"iters": 3, "gone_ms": 1.0}),
            "old": _bench("old", {"v_ms": 1.0})}
    cur = {"f": _bench("f", {"iters": 9, "fresh_ms": 2.0}),
           "brand": _bench("brand", {"v_ms": 1.0})}
    report = compare(base, cur)
    outcomes = {r.path: r.outcome for r in report.rows}
    assert outcomes["f.iters"] == UNTRACKED       # no rule matches
    assert outcomes["f.gone_ms"] == MISSING
    assert outcomes["f.fresh_ms"] == NEW
    assert outcomes["old"] == MISSING
    assert outcomes["brand"] == NEW
    assert report.exit_code == 0


def test_report_json_and_markdown():
    base = {"f": _bench("f", {"speedup": 2.0})}
    cur = {"f": _bench("f", {"speedup": 0.5})}
    report = compare(base, cur)
    payload = json.loads(report.to_json())
    assert payload["verdict"] == "regress"
    assert payload["counts"] == {"regressed": 1}
    assert payload["baseline"]["f"]["git_rev"] == "abc1234"
    assert payload["baseline"]["f"]["timestamp"]
    md = report.to_markdown()
    assert "**REGRESSED**" in md and "f.speedup" in md


# ----------------------------------------------------------------------
# CLI driver (the acceptance path: perturb a copy -> non-zero exit)
# ----------------------------------------------------------------------
def test_run_compare_pass_then_perturbed_regression(tmp_path):
    baseline_payload = _bench("perf_model", {
        "fused_serving": {"speedup": 2.6, "fused_ms": 60.0},
        "steady_state": {"speedup": 5.4},
    })
    baseline = _write(tmp_path, "baselines", [baseline_payload])
    current = _write(tmp_path, "results", [baseline_payload])
    lines = []
    assert run_compare(str(baseline), str(current),
                       print_fn=lines.append) == 0
    assert any("no tracked regressions" in ln for ln in lines)

    # perturb a *copy* of the bench JSON: halve the fused speedup
    perturbed = json.loads((current / "BENCH_perf_model.json").read_text())
    perturbed["metrics"]["fused_serving"]["speedup"] /= 2
    (current / "BENCH_perf_model.json").write_text(json.dumps(perturbed))
    verdict = tmp_path / "verdict.json"
    md = tmp_path / "verdict.md"
    lines = []
    code = run_compare(str(baseline), str(current), json_out=str(verdict),
                       markdown_out=str(md), print_fn=lines.append)
    assert code == 1
    payload = json.loads(verdict.read_text())
    assert payload["verdict"] == "regress"
    regressed = [r for r in payload["rows"] if r["outcome"] == "regressed"]
    assert [r["path"] for r in regressed] == \
        ["perf_model.fused_serving.speedup"]
    assert "REGRESSED" in md.read_text()


def test_run_compare_unusable_inputs(tmp_path):
    lines = []
    assert run_compare(str(tmp_path / "nope"), str(tmp_path),
                       print_fn=lines.append) == 2
    empty = tmp_path / "empty"
    empty.mkdir()
    assert run_compare(str(empty), str(empty), print_fn=lines.append) == 2


def test_default_rules_cover_repo_metric_families():
    tracked = ["fleet_scheduler.routing.cost.makespan_ms",
               "fleet_scheduler.fault.throughput_rps",
               "fleet_scheduler.fault.completed",
               "perf_model.fused_serving.speedup",
               "perf_model.steady_state.cached_ms"]
    from repro.obs.flightrec import _match_rule
    for path in tracked:
        rule = _match_rule(path, DEFAULT_RULES)
        assert rule is not None and rule.direction != "ignore", path
