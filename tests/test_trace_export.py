"""Integration tests for the observability pillars working together.

Trace export from a real engine run (wall + sim spans with layer
attribution), exact per-layer accounting, bounded-memory ProfileLog /
ServingMetrics under load, thread-safety, and the ``repro trace`` CLI.
"""

import json
import threading

import numpy as np
import pytest

from repro.gpusim import XAVIER
from repro.gpusim.profiler import KernelStats, ProfileLog
from repro.models import build_classifier
from repro.nas import manual_interval_placement
from repro.obs import MetricsRegistry, SpanTracer
from repro.obs.tracer import SIM_PID, WALL_PID
from repro.pipeline import DefconEngine
from repro.pipeline.engine import TileCacheStats
from repro.serve import RequestBatcher, ServingMetrics

from helpers import rng

PLACEMENT = manual_interval_placement(9, 3)


@pytest.fixture(scope="module")
def model():
    return build_classifier("r50s", placement=PLACEMENT, bound=7.0, seed=0)


@pytest.fixture(scope="module")
def images():
    return rng(0).uniform(0, 1, size=(2, 3, 64, 64)).astype(np.float32)


# ----------------------------------------------------------------------
# engine + tracer
# ----------------------------------------------------------------------
def test_engine_trace_has_wall_and_sim_spans(model, images):
    tracer = SpanTracer()
    eng = DefconEngine(model, XAVIER, backend="tex2dpp", tracer=tracer)
    eng.classify(images)
    trace = tracer.chrome_trace()
    wall = [e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == WALL_PID]
    sim = [e for e in trace["traceEvents"]
           if e["ph"] == "X" and e["pid"] == SIM_PID]
    # wall track: the classify span plus the plan cache building its
    # per-geometry trace state on this cold first run
    assert [e["name"] for e in wall if e.get("cat") != "plancache"
            ] == ["engine.classify"]
    plancache_spans = [e for e in wall if e.get("cat") == "plancache"]
    assert {e["name"] for e in plancache_spans} <= {
        "plancache.build_trace", "plancache.retile"}
    assert plancache_spans, "cold run must build plan-cache traces"
    # one sim span per kernel launch, each attributed to a real module path
    assert len(sim) == len(eng.log.records)
    layer_names = {name for name, _ in model.named_modules()}
    for e in sim:
        assert e["args"]["layer"] in layer_names
        assert e["args"]["geometry"]
    # the sim track's total equals the engine's deformable latency
    assert tracer.sim_time_us == pytest.approx(
        eng.deformable_latency_ms() * 1e3)


def test_per_layer_rows_sum_to_total(model, images):
    eng = DefconEngine(model, XAVIER, backend="tex2dpp")
    eng.classify(images)
    rows = eng.per_layer_rows()
    assert len(rows) == sum(PLACEMENT)       # one row per deformable layer
    assert all(r["layer"] != "(unattributed)" for r in rows)
    total = sum(r["time_ms"] for r in rows)
    assert total == pytest.approx(eng.log.total_ms, abs=1e-9)
    assert sum(r["share_pct"] for r in rows) == pytest.approx(100.0)
    # by_layer agrees with the row view
    by_layer = eng.log.by_layer()
    assert sum(s.duration_ms for s in by_layer.values()) == pytest.approx(
        eng.log.total_ms, abs=1e-9)


def test_layer_names_are_dotted_module_paths(model):
    from repro.deform.layers import DeformConv2d

    DefconEngine(model, XAVIER)   # construction stamps layer names
    named = {name: mod for name, mod in model.named_modules()
             if isinstance(mod, DeformConv2d)}
    assert named                  # the placement enables some DCNs
    for name, mod in named.items():
        assert mod.layer_name == name


# ----------------------------------------------------------------------
# bounded memory, exact totals
# ----------------------------------------------------------------------
def test_profile_log_rollover_keeps_totals_exact():
    log = ProfileLog(max_records=8)
    n = 100
    for i in range(n):
        log.add(KernelStats(name="k", layer=f"l{i % 2}",
                            duration_ms=1.0, flop_count_sp=10.0))
    assert len(log.records) <= 8              # live window stays bounded
    assert log.num_launches == n              # ... but counts are exact
    assert log.total_ms == pytest.approx(n * 1.0)
    by_layer = log.by_layer()
    assert set(by_layer) == {"l0", "l1"}
    assert by_layer["l0"].duration_ms == pytest.approx(n / 2)
    assert by_layer["l0"].flop_count_sp == pytest.approx(10.0 * n / 2)
    # summary/per-layer views keep working across the rollover boundary
    assert sum(r["time_ms"] for r in log.per_layer_rows()) == pytest.approx(
        log.total_ms)


def test_profile_log_unbounded_when_disabled():
    log = ProfileLog(max_records=None)
    for _ in range(50):
        log.add(KernelStats(name="k", duration_ms=1.0))
    assert len(log.records) == 50


def test_serving_metrics_bounded_with_exact_totals():
    metrics = ServingMetrics(reservoir_size=16)
    n = 500
    for _ in range(n):
        metrics.record_submit()
    for i in range(n):
        metrics.record_batch(1, queue_waits_s=[0.001 * i],
                             infer_wall_s=0.01, sim_ms=2.0)
    snap = metrics.snapshot()
    assert snap["requests_submitted"] == n
    assert snap["requests_completed"] == n    # exact despite the reservoir
    assert snap["batches"] == n
    assert snap["sim_ms_total"] == pytest.approx(2.0 * n)
    assert snap["sim_ms_per_image"] == pytest.approx(2.0)
    # the reservoirs backing the histograms stay capped
    for name in ("serve_queue_wait_seconds", "serve_infer_wall_seconds",
                 "serve_sim_ms_per_batch"):
        hist = metrics.registry.get(name)
        assert len(hist.reservoir().values()) <= 16
        assert hist.count() == n


# ----------------------------------------------------------------------
# thread-safety
# ----------------------------------------------------------------------
def test_profile_log_concurrent_adds():
    log = ProfileLog(max_records=32)

    def work():
        for _ in range(200):
            log.add(KernelStats(name="k", layer="l", duration_ms=0.5))

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert log.num_launches == 8 * 200
    assert log.total_ms == pytest.approx(8 * 200 * 0.5)


def test_tile_cache_stats_concurrent_increments():
    stats = TileCacheStats()

    def work():
        for _ in range(300):
            stats.record_hit()
            stats.record_miss()

    threads = [threading.Thread(target=work) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert stats.hits == 6 * 300
    assert stats.misses == 6 * 300
    assert stats.lookups == 2 * 6 * 300


# ----------------------------------------------------------------------
# serving + registry end to end
# ----------------------------------------------------------------------
def test_traced_serving_session_unifies_registry(model):
    registry = MetricsRegistry()
    tracer = SpanTracer()
    eng = DefconEngine(model, XAVIER, backend="tex2dpp",
                       registry=registry, tracer=tracer)
    batcher = RequestBatcher(eng, max_batch_size=2,
                             metrics=ServingMetrics(registry=registry),
                             tracer=tracer)
    imgs = [rng(i).uniform(0, 1, size=(3, 64, 64)).astype(np.float32)
            for i in range(4)]
    batcher.serve_all(imgs)
    snap = registry.snapshot()
    # serving and engine metrics land in the same registry
    assert "serve_requests_completed" in snap
    assert "engine_tile_cache_lookups" in snap
    assert snap["serve_requests_completed"]["series"][0]["value"] == 4.0
    # trace shows batches nesting the engine call on the wall track
    names = [e["name"] for e in tracer.chrome_trace()["traceEvents"]
             if e["ph"] == "X" and e["pid"] == WALL_PID]
    assert "serve.batch" in names and "engine.classify" in names


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_trace_writes_trace_and_metrics(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "trace.json"
    mout = tmp_path / "metrics.json"
    rc = main(["trace", "--model", "r50s", "--requests", "3",
               "--max-batch", "2", "--input-size", "32",
               "--out", str(out), "--metrics-out", str(mout), "--flame"])
    assert rc == 0
    trace = json.loads(out.read_text())
    assert trace["displayTimeUnit"] == "ms"
    sim = [e for e in trace["traceEvents"]
           if e.get("ph") == "X" and e["pid"] == SIM_PID]
    wall = [e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["pid"] == WALL_PID]
    assert sim and wall
    assert all(e["args"]["layer"] != "(unattributed)" for e in sim)
    metrics = json.loads(mout.read_text())
    assert metrics["serve_requests_completed"]["series"][0]["value"] == 3.0
    captured = capsys.readouterr().out
    assert "Per-layer deformable latency" in captured
    assert "flame summary" in captured


def test_cli_serve_trace_flag(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "serve_trace.json"
    rc = main(["serve", "--arch", "r50s", "--requests", "2",
               "--max-batch", "2", "--input-size", "32",
               "--trace", str(out)])
    assert rc == 0
    trace = json.loads(out.read_text())
    assert any(e.get("pid") == SIM_PID for e in trace["traceEvents"])
