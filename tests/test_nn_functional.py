"""Functional-op tests: convolution against a naive oracle, pooling, losses."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.tensor import Tensor

from helpers import check_gradients, rng


def naive_conv2d(x, w, b=None, stride=1, padding=0, dilation=1, groups=1):
    """Straightforward loop implementation as a correctness oracle."""
    n, c_in, h, wd = x.shape
    c_out, c_in_g, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                       (padding, padding)))
    oh = (h + 2 * padding - dilation * (kh - 1) - 1) // stride + 1
    ow = (wd + 2 * padding - dilation * (kw - 1) - 1) // stride + 1
    out = np.zeros((n, c_out, oh, ow), dtype=np.float64)
    cpg_out = c_out // groups
    for ni in range(n):
        for oc in range(c_out):
            g = oc // cpg_out
            for oy in range(oh):
                for ox in range(ow):
                    acc = 0.0
                    for ic in range(c_in_g):
                        for ky in range(kh):
                            for kx in range(kw):
                                iy = oy * stride + ky * dilation
                                ix = ox * stride + kx * dilation
                                acc += (w[oc, ic, ky, kx]
                                        * x[ni, g * c_in_g + ic, iy, ix])
                    out[ni, oc, oy, ox] = acc
    if b is not None:
        out += b.reshape(1, -1, 1, 1)
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding,dilation", [
        (1, 0, 1), (1, 1, 1), (2, 1, 1), (1, 2, 2), (2, 0, 1)])
    def test_matches_naive(self, stride, padding, dilation):
        g = rng(stride * 10 + padding)
        x = Tensor(g.normal(size=(2, 3, 7, 7)))
        w = Tensor(g.normal(size=(4, 3, 3, 3)))
        b = Tensor(g.normal(size=(4,)))
        out = F.conv2d(x, w, b, stride=stride, padding=padding,
                       dilation=dilation)
        want = naive_conv2d(x.data, w.data, b.data, stride, padding, dilation)
        assert out.shape == want.shape
        assert np.allclose(out.data, want, atol=1e-4)

    def test_groups_matches_naive(self):
        g = rng(42)
        x = Tensor(g.normal(size=(1, 4, 6, 6)))
        w = Tensor(g.normal(size=(6, 2, 3, 3)))
        out = F.conv2d(x, w, None, padding=1, groups=2)
        want = naive_conv2d(x.data, w.data, None, 1, 1, 1, groups=2)
        assert np.allclose(out.data, want, atol=1e-4)

    def test_depthwise_equals_grouped(self):
        g = rng(43)
        x = Tensor(g.normal(size=(1, 3, 5, 5)))
        w = Tensor(g.normal(size=(3, 1, 3, 3)))
        a = F.depthwise_conv2d(x, w, padding=1)
        b = F.conv2d(x, w, padding=1, groups=3)
        assert np.allclose(a.data, b.data)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 5, 5)))
        w = Tensor(np.zeros((4, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_gradients_all_inputs(self):
        g = rng(44)
        x = Tensor(g.normal(size=(1, 2, 5, 5)), requires_grad=True)
        w = Tensor(g.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(g.normal(size=(3,)), requires_grad=True)
        check_gradients(lambda: F.conv2d(x, w, b, stride=2, padding=1),
                        [x, w, b])

    def test_grouped_gradients(self):
        g = rng(45)
        x = Tensor(g.normal(size=(1, 4, 4, 4)), requires_grad=True)
        w = Tensor(g.normal(size=(4, 2, 3, 3)), requires_grad=True)
        check_gradients(lambda: F.conv2d(x, w, padding=1, groups=2), [x, w])


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_routes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4),
                   requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        grad = x.grad[0, 0]
        assert grad.sum() == 4
        assert grad[1, 1] == 1 and grad[0, 0] == 0

    def test_avg_pool_values_and_grad(self):
        g = rng(46)
        x = Tensor(g.normal(size=(1, 2, 6, 6)), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        want = x.data.reshape(1, 2, 3, 2, 3, 2).mean(axis=(3, 5))
        assert np.allclose(out.data, want, atol=1e-6)
        check_gradients(lambda: F.avg_pool2d(x, 2), [x])

    def test_global_avg_pool(self):
        x = Tensor(rng(47).normal(size=(2, 3, 4, 4)))
        assert np.allclose(F.global_avg_pool2d(x).data,
                           x.data.mean(axis=(2, 3)), atol=1e-6)

    def test_upsample2x_values_and_grad(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]),
                   requires_grad=True)
        out = F.interpolate_nearest2x(x)
        assert out.shape == (1, 1, 4, 4)
        assert np.allclose(out.data[0, 0, :2, :2], 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 4.0)


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3), abs=1e-5)

    def test_cross_entropy_gradient(self):
        logits = Tensor(rng(48).normal(size=(3, 4)), requires_grad=True)
        labels = np.array([1, 0, 3])
        check_gradients(lambda: F.cross_entropy(logits, labels), [logits])

    def test_bce_with_logits_matches_formula(self):
        x = Tensor(np.array([0.0]))
        loss = F.binary_cross_entropy_with_logits(x, np.array([1.0]))
        assert loss.item() == pytest.approx(np.log(2), abs=1e-5)

    def test_bce_stability_large_logits(self):
        x = Tensor(np.array([100.0, -100.0]))
        loss = F.binary_cross_entropy_with_logits(x, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item()) and loss.item() < 1e-3

    def test_bce_gradient(self):
        x = Tensor(rng(49).normal(size=(6,)), requires_grad=True)
        t = rng(50).integers(0, 2, size=6).astype(np.float64)
        check_gradients(
            lambda: F.binary_cross_entropy_with_logits(x, t), [x])

    def test_smooth_l1_quadratic_region(self):
        pred = Tensor(np.array([0.05]), requires_grad=True)
        loss = F.smooth_l1(pred, np.array([0.0]), beta=1.0)
        assert loss.item() == pytest.approx(0.5 * 0.05**2, abs=1e-6)

    def test_smooth_l1_linear_region(self):
        pred = Tensor(np.array([3.0]))
        loss = F.smooth_l1(pred, np.array([0.0]), beta=1.0)
        assert loss.item() == pytest.approx(3.0 - 0.5, abs=1e-5)

    def test_smooth_l1_gradient(self):
        pred = Tensor(rng(51).normal(size=(5,)) * 2, requires_grad=True)
        target = rng(52).normal(size=(5,))
        check_gradients(lambda: F.smooth_l1(pred, target, beta=0.5), [pred])

    def test_linear(self):
        g = rng(53)
        x = Tensor(g.normal(size=(2, 3)), requires_grad=True)
        w = Tensor(g.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(g.normal(size=(4,)), requires_grad=True)
        out = F.linear(x, w, b)
        assert np.allclose(out.data, x.data @ w.data.T + b.data, atol=1e-5)
        check_gradients(lambda: F.linear(x, w, b), [x, w, b])
