"""Serving layer: request batcher ordering/flush/cap and metrics."""

import threading
import time

import numpy as np
import pytest

from repro.serve import BatcherClosedError, RequestBatcher, ServingMetrics


class FakeEngine:
    """Engine stand-in: classify returns each image's constant fill value."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False):
        self.batch_sizes = []
        self.delay_s = delay_s
        self.fail = fail

    def classify(self, images: np.ndarray) -> np.ndarray:
        self.batch_sizes.append(images.shape[0])
        if self.fail:
            raise RuntimeError("engine exploded")
        if self.delay_s:
            time.sleep(self.delay_s)
        return images[:, 0, 0, 0].astype(int)


def image(value: float, size: int = 8) -> np.ndarray:
    return np.full((3, size, size), value, dtype=np.float32)


class TestBatchingCore:
    def test_results_match_requests_in_order(self):
        eng = FakeEngine()
        batcher = RequestBatcher(eng, max_batch_size=4)
        results = batcher.serve_all([image(i) for i in range(10)])
        assert results == list(range(10))

    def test_batch_size_cap_respected(self):
        eng = FakeEngine()
        batcher = RequestBatcher(eng, max_batch_size=3)
        batcher.serve_all([image(i) for i in range(8)])
        assert eng.batch_sizes == [3, 3, 2]
        assert max(batcher.metrics.batch_size_histogram()) <= 3

    def test_mixed_shapes_never_share_a_batch(self):
        eng = FakeEngine()
        batcher = RequestBatcher(eng, max_batch_size=8)
        futures = [batcher.submit(image(1, size=8)),
                   batcher.submit(image(2, size=8)),
                   batcher.submit(image(3, size=16)),
                   batcher.submit(image(4, size=16))]
        batcher.flush()
        assert eng.batch_sizes == [2, 2]
        assert [f.result() for f in futures] == [1, 2, 3, 4]

    def test_engine_failure_propagates_to_batch_futures(self):
        batcher = RequestBatcher(FakeEngine(fail=True), max_batch_size=2)
        futures = batcher.submit_many([image(0), image(1)])
        batcher.flush()
        for f in futures:
            with pytest.raises(RuntimeError, match="engine exploded"):
                f.result(timeout=0)

    def test_interleaved_shapes_bucket_without_hol_blocking(self):
        """A shape change must not force-close the current batch: requests
        are bucketed per shape, so interleaved shapes still coalesce."""
        eng = FakeEngine()
        batcher = RequestBatcher(eng, max_batch_size=4)
        futures = [batcher.submit(image(1, size=8)),
                   batcher.submit(image(2, size=16)),
                   batcher.submit(image(3, size=8)),
                   batcher.submit(image(4, size=16)),
                   batcher.submit(image(5, size=8))]
        batcher.flush()
        # pre-fix this produced 5 singleton batches; bucketed it is 2
        assert eng.batch_sizes == [3, 2]
        assert [f.result() for f in futures] == [1, 2, 3, 4, 5]

    def test_bucket_service_order_is_oldest_request_first(self):
        eng = FakeEngine()
        batcher = RequestBatcher(eng, max_batch_size=8)
        batcher.submit(image(1, size=16))      # bucket 16 arrives first
        batcher.submit(image(2, size=8))
        batcher.submit(image(3, size=16))
        batcher.flush()
        # the 16-bucket holds the oldest request, so it is served first
        assert eng.batch_sizes == [2, 1]

    def test_rejects_batched_input_and_bad_params(self):
        batcher = RequestBatcher(FakeEngine())
        with pytest.raises(ValueError):
            batcher.submit(np.zeros((2, 3, 8, 8), dtype=np.float32))
        with pytest.raises(ValueError):
            RequestBatcher(FakeEngine(), task="segment")
        with pytest.raises(ValueError):
            RequestBatcher(FakeEngine(), max_batch_size=0)


class TestThreadedServing:
    def test_max_wait_flushes_partial_batch(self):
        eng = FakeEngine()
        with RequestBatcher(eng, max_batch_size=8,
                            max_wait_s=0.02) as batcher:
            t0 = time.monotonic()
            result = batcher.submit(image(5)).result(timeout=2.0)
            elapsed = time.monotonic() - t0
        assert result == 5
        assert eng.batch_sizes == [1]     # deadline flush, not a full batch
        assert elapsed < 1.0

    def test_concurrent_submitters_all_served(self):
        eng = FakeEngine(delay_s=0.002)
        results = {}

        with RequestBatcher(eng, max_batch_size=4,
                            max_wait_s=0.01) as batcher:
            def client(i):
                results[i] = batcher.submit(image(i)).result(timeout=5.0)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == {i: i for i in range(12)}
        assert max(eng.batch_sizes) <= 4
        assert sum(eng.batch_sizes) == 12

    def test_close_serves_remaining_requests(self):
        eng = FakeEngine()
        batcher = RequestBatcher(eng, max_batch_size=4).start()
        futures = batcher.submit_many([image(i) for i in range(3)])
        batcher.close()
        assert [f.result(timeout=0) for f in futures] == [0, 1, 2]
        with pytest.raises(RuntimeError):
            batcher.submit(image(9))


class TestCloseSemantics:
    def test_submit_after_close_fails_fast_sync_path(self):
        """Synchronous (never-started) batcher: close() seals it."""
        batcher = RequestBatcher(FakeEngine(), max_batch_size=4)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit(image(1))

    def test_submit_after_close_fails_fast_threaded_path(self):
        batcher = RequestBatcher(FakeEngine(), max_batch_size=4).start()
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit(image(1))

    def test_start_after_close_raises(self):
        batcher = RequestBatcher(FakeEngine())
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.start()

    def test_close_without_flush_resolves_in_flight_futures(self):
        """close(flush=False) must deterministically resolve every queued
        future with BatcherClosedError rather than abandon it."""
        eng = FakeEngine()
        batcher = RequestBatcher(eng, max_batch_size=4)
        futures = batcher.submit_many([image(i) for i in range(3)])
        batcher.close(flush=False)
        for f in futures:
            assert f.done()
            with pytest.raises(BatcherClosedError):
                f.result(timeout=0)
        assert eng.batch_sizes == []      # nothing was served
        with pytest.raises(BatcherClosedError):
            batcher.submit(image(9))

    def test_close_is_idempotent(self):
        batcher = RequestBatcher(FakeEngine()).start()
        batcher.submit(image(1))
        batcher.close()
        batcher.close()
        batcher.close(flush=False)


class TestThreadedEngineFailure:
    def test_failed_batch_isolated_and_metrics_count_failure(self):
        """start() daemon path: exactly the failed batch's futures get the
        exception, later batches still complete, and ServingMetrics counts
        the failure."""
        class FlakyEngine(FakeEngine):
            def classify(self, images):
                out = super().classify(images)
                if (images[:, 0, 0, 0] >= 7).any():
                    raise RuntimeError("poisoned batch")
                return out

        metrics = ServingMetrics()
        eng = FlakyEngine()
        with RequestBatcher(eng, max_batch_size=2, max_wait_s=0.005,
                            metrics=metrics) as batcher:
            # submit in bursts so the poisoned pair forms its own batch
            good_a = batcher.submit_many([image(1), image(2)])
            for f in good_a:
                f.result(timeout=5.0)
            bad = batcher.submit_many([image(7), image(8)])
            for f in bad:
                with pytest.raises(RuntimeError, match="poisoned batch"):
                    f.result(timeout=5.0)
            good_b = batcher.submit_many([image(3), image(4)])
            assert [f.result(timeout=5.0) for f in good_b] == [3, 4]
        assert [f.result(timeout=0) for f in good_a] == [1, 2]
        snap = metrics.snapshot()
        assert snap["requests_failed"] == 2
        # 1 if [7, 8] coalesced, 2 if the deadline split them — either way
        # every poisoned batch is counted and nothing else is
        assert snap["batch_failures"] in (1, 2)
        assert snap["requests_completed"] == 4
        assert snap["requests_submitted"] == 6
        assert snap["queue_depth"] == 0


class TestMetrics:
    def test_counts_and_histogram(self):
        metrics = ServingMetrics()
        batcher = RequestBatcher(FakeEngine(), max_batch_size=4,
                                 metrics=metrics)
        batcher.serve_all([image(i) for i in range(6)])
        snap = metrics.snapshot()
        assert snap["requests_submitted"] == 6
        assert snap["requests_completed"] == 6
        assert snap["queue_depth"] == 0
        assert snap["peak_queue_depth"] == 6
        assert snap["batch_size_histogram"] == {2: 1, 4: 1}
        assert snap["mean_batch_size"] == pytest.approx(3.0)

    def test_summary_renders(self):
        batcher = RequestBatcher(FakeEngine(), max_batch_size=2)
        batcher.serve_all([image(i) for i in range(2)])
        text = batcher.metrics.summary(
            nvprof_rows=[{"kernel": "k", "time_ms": 1.0}])
        assert "Serving metrics" in text
        assert "Engine nvprof counters" in text

    def test_sim_ms_accounting_uses_engine_log(self):
        class LoggedEngine(FakeEngine):
            class _Log:
                total_ms = 0.0

            def __init__(self):
                super().__init__()
                self.log = self._Log()

            def classify(self, images):
                self.log.total_ms += 0.5   # pretend half a ms per batch
                return super().classify(images)

        batcher = RequestBatcher(LoggedEngine(), max_batch_size=4)
        batcher.serve_all([image(i) for i in range(8)])
        snap = batcher.metrics.snapshot()
        assert snap["sim_ms_total"] == pytest.approx(1.0)   # 2 batches
        assert snap["sim_ms_per_image"] == pytest.approx(0.125)


class TestDetectTask:
    def test_detections_split_and_relabelled_per_request(self):
        from repro.data.coco_map import Detection

        class DetectEngine:
            def detect(self, images, **kwargs):
                dets = []
                for i in range(images.shape[0]):
                    value = int(images[i, 0, 0, 0])
                    dets.append(Detection(image_id=i, label=value, score=0.9,
                                          box=np.zeros(4)))
                return dets

        batcher = RequestBatcher(DetectEngine(), task="detect",
                                 max_batch_size=4)
        futures = batcher.submit_many([image(10), image(20)])
        batcher.flush()
        first, second = [f.result() for f in futures]
        assert [d.label for d in first] == [10]
        assert [d.label for d in second] == [20]
        assert first[0].image_id == 0 and second[0].image_id == 1
