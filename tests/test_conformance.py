"""The conformance subsystem: generator, oracle, suite, shrinker, CLI."""

import json

import numpy as np
import pytest

from repro.conformance import (CaseGenerator, ConformanceCase,
                               ConformanceRunner, inject_fault, load_repro,
                               make_offsets, oracle_run, ulp_tolerance)
from repro.conformance.report import compare_exact, compare_within
from repro.gpusim import XAVIER
from repro.kernels.config import LayerConfig

from helpers import rng

pytestmark = pytest.mark.conformance


@pytest.fixture(scope="module")
def runner():
    return ConformanceRunner(XAVIER)


class TestCaseGenerator:
    def test_same_seed_same_cases(self):
        a = CaseGenerator(seed=7).generate(40)
        b = CaseGenerator(seed=7).generate(40)
        assert [c.case_id() for c in a] == [c.case_id() for c in b]

    def test_different_seeds_differ(self):
        a = CaseGenerator(seed=0).generate(40)
        b = CaseGenerator(seed=1).generate(40)
        assert [c.case_id() for c in a] != [c.case_id() for c in b]

    def test_all_generated_cases_valid(self):
        for case in CaseGenerator(seed=3).generate(120):
            assert case.is_valid()
            arrays = case.materialize()
            cfg = case.layer_config()
            assert arrays["x"].shape == cfg.input_shape()
            assert arrays["offset"].shape == cfg.offset_shape()

    def test_corners_cross_every_regime(self):
        from repro.conformance import CORNER_GEOMETRIES, OFFSET_REGIMES

        cases = CaseGenerator(seed=0).generate(
            len(CORNER_GEOMETRIES) * len(OFFSET_REGIMES))
        regimes = {(c.height, c.width, c.offset_regime) for c in cases}
        assert len(regimes) == len(cases)

    def test_offset_regime_properties(self):
        cfg = LayerConfig(4, 4, 9, 9)
        zero = make_offsets(cfg, "zero", seed=0)
        assert not np.any(zero)
        integer = make_offsets(cfg, "integer", seed=0)
        assert np.array_equal(integer, np.rint(integer))
        grid = make_offsets(cfg, "grid", seed=0)
        assert np.array_equal(grid * 128, np.rint(grid * 128.0))
        outside = make_offsets(cfg, "outside", seed=0)
        assert np.abs(outside).min() > 2 * 9


class TestCaseSerialization:
    def test_json_round_trip(self):
        case = CaseGenerator(seed=2).generate(30)[-1]
        clone = ConformanceCase.from_payload(
            json.loads(json.dumps(case.to_payload())))
        assert clone.case_id() == case.case_id()
        a, b = case.materialize(), clone.materialize()
        for key in ("x", "offset", "weight"):
            assert np.array_equal(a[key], b[key])

    def test_explicit_offsets_survive_round_trip(self):
        case = ConformanceCase(in_channels=2, out_channels=2, height=4,
                               width=4)
        case.offsets = rng(0).normal(
            size=case.layer_config().offset_shape()).astype(np.float32)
        clone = ConformanceCase.from_payload(
            json.loads(json.dumps(case.to_payload())))
        assert np.array_equal(clone.materialize()["offset"],
                              case.offsets)
        assert clone.case_id() == case.case_id()

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            ConformanceCase.from_payload(
                dict(in_channels=3, out_channels=2, height=4, width=4,
                     deformable_groups=2))


class TestToleranceModel:
    def test_ulp_tolerance_positive_and_magnitude_scaled(self):
        cfg = LayerConfig(4, 4, 6, 6)
        case = ConformanceCase(in_channels=4, out_channels=4, height=6,
                               width=6, seed=1)
        arrays = case.materialize()
        ora = oracle_run(arrays["x"], arrays["offset"], arrays["weight"],
                         arrays["bias"], cfg, "tex2d")
        tol = ulp_tolerance(arrays["weight"], arrays["bias"], ora, cfg)
        assert tol.shape == ora.output.shape
        assert (tol > 0).all()
        scaled = oracle_run(arrays["x"] * 100, arrays["offset"],
                            arrays["weight"], arrays["bias"], cfg, "tex2d")
        assert ulp_tolerance(arrays["weight"], arrays["bias"], scaled,
                             cfg).max() > tol.max() * 10

    def test_compare_helpers(self):
        a = np.array([1.0, 2.0])
        assert compare_exact("x", a, a.copy()).passed
        assert not compare_exact("x", a, a + 1e-9).passed
        assert compare_within("x", a, a + 1e-4, np.array(1e-3)).passed
        bad = compare_within("x", a, a + 1e-2, np.array(1e-3))
        assert not bad.passed and bad.max_err > bad.tolerance


class TestSuite:
    def test_small_suite_green(self, runner):
        cases = CaseGenerator(seed=0).generate(16)
        suite = runner.run_suite(cases, shrink=False)
        failures = [(r.case.case_id(), f.name, f.detail)
                    for r in suite.failed_reports for f in r.failures]
        assert suite.passed, failures
        names = {r.name for rep in suite.reports for r in rep.results}
        assert "oracle.tex2dpp" in names
        assert "pair.tex2d_vs_reference" in names
        assert "inv.zero_offset.tex2d" in names
        assert "plancache.bit_identical.tex2dpp" in names

    def test_metrics_binding(self, runner):
        from repro.obs import MetricsRegistry

        suite = runner.run_suite(CaseGenerator(seed=0).generate(2),
                                 shrink=False)
        registry = MetricsRegistry()
        suite.bind_registry(registry)
        cases = registry.counter("conformance_cases")
        assert cases.value(result="pass") == 2
        checks = registry.counter("conformance_checks")
        assert checks.value(check="oracle.tex2d", result="pass") == 2


class TestInjectedBug:
    """The acceptance-criteria loop: catch → shrink → replay."""

    def test_flip_bilinear_caught_shrunk_and_replayable(self, runner,
                                                        tmp_path):
        cases = CaseGenerator(seed=0).generate(3)
        with inject_fault("flip-bilinear"):
            suite = runner.run_suite(cases, shrink=True,
                                     out_dir=str(tmp_path))
        assert not suite.passed, "injected bilinear flip was not caught"
        assert suite.artifacts
        path = suite.artifacts[0]
        payload = json.loads(open(path).read())
        case = payload["case"]
        assert case["height"] * case["width"] <= 64, \
            "shrinker left the repro too large"
        replayed = load_repro(path)
        with inject_fault("flip-bilinear"):
            first = runner.run_case(replayed)
            second = runner.run_case(replayed)
        assert first.failures and second.failures
        assert [f.name for f in first.failures] == \
            [f.name for f in second.failures], "replay is nondeterministic"
        clean = runner.run_case(replayed)
        assert clean.passed, "repro fails even without the fault"

    def test_injection_restores_kernel(self, runner):
        case = CaseGenerator(seed=0).generate(1)[0]
        with inject_fault("flip-bilinear"):
            assert not runner.run_case(case).passed
        assert runner.run_case(case).passed


class TestCLI:
    def test_conformance_run_and_replay_cli(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "repros"
        assert main(["conformance", "run", "--cases", "4", "--seed", "0",
                     "--out", str(out)]) == 0
        assert "PASS" in capsys.readouterr().out

        assert main(["conformance", "run", "--cases", "2", "--seed", "0",
                     "--out", str(out), "--inject", "flip-bilinear"]) == 1
        captured = capsys.readouterr().out
        assert "FAIL" in captured
        repros = sorted(out.glob("*.json"))
        assert repros
        assert main(["conformance", "replay", str(repros[0]),
                     "--inject", "flip-bilinear"]) == 1
        assert main(["conformance", "replay", str(repros[0])]) == 0

    def test_replay_missing_file_errors(self, capsys):
        from repro.cli import main

        assert main(["conformance", "replay", "/nonexistent.json"]) == 1
        assert "error" in capsys.readouterr().err
