"""Backbone / FPN / heads / YolactLite / classifier model tests."""

import numpy as np
import pytest

from repro.deform.layers import DeformConv2d
from repro.models import (STAGE_BLOCKS, FPNLite, PredictionHead, ProtoNet,
                          ResNetBackbone, ShapeClassifier, YolactLite,
                          build_backbone, build_classifier, build_yolact,
                          dual_path_sites)
from repro.models.yolact import _crop_to_box, _per_class_nms, _sigmoid
from repro.nas import DualPathLayer, manual_interval_placement
from repro.nn import Conv2d
from repro.tensor import Tensor

from helpers import rng


class TestBackbone:
    def test_stage_feature_shapes(self):
        bb = build_backbone("r50s", input_size=64)
        x = Tensor(rng(0).normal(size=(2, 3, 64, 64)))
        feats = bb(x)
        assert feats["c2"].shape[2:] == (32, 32)
        assert feats["c3"].shape[2:] == (16, 16)
        assert feats["c4"].shape[2:] == (8, 8)
        assert feats["c5"].shape[2:] == (4, 4)

    def test_candidate_sites_count(self):
        assert build_backbone("r50s").num_candidate_sites() == \
            sum(STAGE_BLOCKS["r50s"][1:])
        assert build_backbone("r101s").num_candidate_sites() == \
            sum(STAGE_BLOCKS["r101s"][1:])

    def test_downsampling_sites_marked(self):
        bb = build_backbone("r50s")
        specs = [s for s, _ in bb.candidate_sites()]
        down = [s for s in specs if s.is_downsampling]
        # one stride-2 site at the entry of each searchable stage
        assert len(down) == 3
        assert all(s.block == 0 for s in down)

    def test_site_layer_configs_match_feature_geometry(self):
        bb = build_backbone("r50s", input_size=64)
        cfgs = bb.site_layer_configs()
        specs = [s for s, _ in bb.candidate_sites()]
        for cfg, spec in zip(cfgs, specs):
            assert cfg.height == spec.feature_size
            assert cfg.stride == spec.stride

    def test_unknown_arch(self):
        with pytest.raises(KeyError):
            build_backbone("resnet152")

    def test_custom_blocks_tuple(self):
        bb = ResNetBackbone(arch=(1, 1, 1, 1), base_width=4, input_size=32)
        assert bb.num_candidate_sites() == 3

    def test_placement_controls_dcn_modules(self):
        placement = manual_interval_placement(9, 3)
        bb = build_backbone("r50s", placement=placement)
        mods = [m for _, m in bb.candidate_sites()]
        for use, mod in zip(placement, mods):
            if use:
                assert isinstance(mod, DeformConv2d)
            else:
                assert isinstance(mod, Conv2d)

    def test_placement_length_validated(self):
        with pytest.raises(ValueError):
            bb = build_backbone("r50s", placement=[True])
            Tensor  # placate linters; construction itself raises

    def test_supernet_sites_are_dual_path(self):
        bb = build_backbone("r50s", supernet=True)
        mods = [m for _, m in bb.candidate_sites()]
        assert all(isinstance(m, DualPathLayer) for m in mods)

    def test_supernet_and_placement_mutually_exclusive(self):
        with pytest.raises(ValueError):
            build_backbone("r50s", supernet=True, placement=[True] * 9)


class TestNeckAndHeads:
    def test_fpn_output_at_c3_scale(self):
        fpn = FPNLite(8, 16, 32, out_channels=12, rng=rng(1))
        feats = {
            "c3": Tensor(rng(2).normal(size=(1, 8, 16, 16))),
            "c4": Tensor(rng(3).normal(size=(1, 16, 8, 8))),
            "c5": Tensor(rng(4).normal(size=(1, 32, 4, 4))),
        }
        assert fpn(feats).shape == (1, 12, 16, 16)

    def test_protonet_upsamples_and_is_nonnegative(self):
        proto = ProtoNet(12, num_prototypes=5, rng=rng(5))
        out = proto(Tensor(rng(6).normal(size=(1, 12, 16, 16))))
        assert out.shape == (1, 5, 32, 32)
        assert (out.data >= 0).all()

    def test_prediction_head_branches(self):
        head = PredictionHead(12, num_classes=4, num_prototypes=5,
                              rng=rng(7))
        out = head(Tensor(rng(8).normal(size=(2, 12, 16, 16))))
        assert out["obj"].shape == (2, 1, 16, 16)
        assert out["cls"].shape == (2, 4, 16, 16)
        assert out["box"].shape == (2, 4, 16, 16)
        assert out["coef"].shape == (2, 5, 16, 16)


class TestYolact:
    @pytest.fixture(scope="class")
    def model(self):
        return build_yolact("r50s", seed=0)

    def test_forward_output_shapes(self, model):
        x = Tensor(rng(9).normal(size=(2, 3, 64, 64)))
        out = model(x)
        assert out["proto"].shape == (2, 6, 32, 32)
        assert out["cls"].shape == (2, 4, 16, 16)

    def test_detect_returns_detections(self, model):
        images = rng(10).uniform(0, 1, size=(2, 3, 64, 64)).astype(
            np.float32)
        dets = model.detect(images, score_threshold=0.01, max_dets=4)
        for d in dets:
            assert d.image_id in (0, 1)
            assert 0 <= d.label < 4
            assert d.mask.shape == (64, 64)
            assert d.box[0] <= d.box[2] and d.box[1] <= d.box[3]

    def test_detect_respects_image_ids(self, model):
        images = rng(11).uniform(0, 1, size=(2, 3, 64, 64)).astype(
            np.float32)
        dets = model.detect(images, score_threshold=0.01,
                            image_ids=[42, 43])
        assert {d.image_id for d in dets} <= {42, 43}

    def test_high_threshold_fewer_detections(self, model):
        images = rng(12).uniform(0, 1, size=(1, 3, 64, 64)).astype(
            np.float32)
        low = model.detect(images, score_threshold=0.001)
        high = model.detect(images, score_threshold=0.9)
        assert len(high) <= len(low)

    def test_assemble_masks_sigmoid_range(self, model):
        proto = rng(13).normal(size=(6, 16, 16))
        coefs = rng(14).normal(size=(3, 6))
        masks = model.assemble_masks(proto, coefs)
        assert masks.shape == (3, 16, 16)
        assert (masks > 0).all() and (masks < 1).all()


class TestDetectHelpers:
    def test_sigmoid_stable(self):
        v = _sigmoid(np.array([1000.0, -1000.0, 0.0]))
        assert np.allclose(v, [1.0, 0.0, 0.5])

    def test_nms_suppresses_overlaps(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [30, 30, 40, 40]],
                         dtype=np.float64)
        scores = np.array([0.9, 0.8, 0.7])
        labels = np.array([0, 0, 0])
        keep = _per_class_nms(boxes, scores, labels, 0.5)
        assert keep == [0, 2]

    def test_nms_keeps_across_classes(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 10, 10]], dtype=np.float64)
        scores = np.array([0.9, 0.8])
        labels = np.array([0, 1])
        keep = _per_class_nms(boxes, scores, labels, 0.5)
        assert sorted(keep) == [0, 1]

    def test_crop_to_box(self):
        mask = np.ones((10, 10), dtype=bool)
        out = _crop_to_box(mask, np.array([2.0, 3.0, 6.0, 7.0]))
        assert out[4, 4] and not out[0, 0] and not out[9, 9]

    def test_crop_degenerate_box(self):
        mask = np.ones((5, 5), dtype=bool)
        out = _crop_to_box(mask, np.array([3.0, 3.0, 3.0, 3.0]))
        assert not out.any()


class TestClassifier:
    def test_logits_shape_and_accuracy(self):
        model = build_classifier("r50s", seed=0)
        xs = rng(15).uniform(0, 1, size=(4, 3, 64, 64)).astype(np.float32)
        logits = model(Tensor(xs))
        assert logits.shape == (4, 4)
        preds = model.predict(xs)
        assert preds.shape == (4,)
        acc = model.accuracy(xs, preds)
        assert acc == pytest.approx(1.0)

    def test_dcn_classifier_builds(self):
        model = build_classifier("r50s", placement=[True] * 9,
                                 lightweight=True, bound=7.0)
        assert any(isinstance(m, DeformConv2d) for m in model.modules())
