#!/usr/bin/env python
"""Standalone bench-regression flight recorder (what CI invokes).

Thin wrapper over :mod:`repro.obs.flightrec` so the comparison runs
without an installed package::

    python tools/bench_compare.py results/baselines results \
        --json-out results/flight_verdict.json

Exit codes: 0 = no tracked regression, 1 = regression beyond threshold,
2 = unusable inputs.  ``repro bench compare`` is the same engine behind
the package CLI.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.flightrec import run_compare  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json snapshot sets; exit 1 on a "
                    "tracked regression")
    parser.add_argument("baseline", help="baseline file or directory")
    parser.add_argument("current", help="current file or directory")
    parser.add_argument("--json-out", default=None,
                        help="write the verdict JSON here")
    parser.add_argument("--markdown-out", default=None,
                        help="write the markdown table here")
    args = parser.parse_args(argv)
    return run_compare(args.baseline, args.current,
                       json_out=args.json_out,
                       markdown_out=args.markdown_out)


if __name__ == "__main__":
    sys.exit(main())
