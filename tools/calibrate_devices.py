"""Calibrate the four free device-model constants against the paper.

The GPU model's *mechanisms* (coalescing, texture cache, occupancy, wave
quantisation) are fixed; four throughput constants per device are not
directly published and are fitted once against the speedup columns of the
paper's Table II (Xavier) and Table IV (2080 Ti):

* ``scattered_penalty``     — achievable fraction of L2 bandwidth on
  scattered sector traffic;
* ``l2_bandwidth_ratio``    — L2 : DRAM bandwidth ratio;
* ``tex_fp32_rate_divisor`` — fp32 bilinear filtering rate divisor;
* ``gather_dram_reuse``     — DRAM-side reuse bound of gathered inputs.

Run:  ``python tools/calibrate_devices.py``
The chosen constants are printed and baked into ``repro/gpusim/device.py``
by hand; this script stays in the repo so the fit is reproducible.  Note
the fit only uses speedup *ratios* — absolute latencies are never matched
(the paper's rows aggregate an unknown number of invocations).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.gpusim.device import RTX_2080TI, XAVIER
from repro.kernels import TABLE2_LAYERS, run_layer_all_backends

# Paper Table II (Xavier) and Table IV (2080Ti): per-row speedup of tex2D
# and tex2D++ over the PyTorch baseline.
PAPER = {
    "jetson-agx-xavier": {
        "tex2d": [1.14, 1.31, 1.30, 1.34, 1.25, 1.34],
        "tex2dpp": [1.41, 1.34, 1.33, 1.39, 1.39, 1.40],
    },
    "rtx-2080ti": {
        "tex2d": [1.09, 1.30, 1.30, 1.25, 1.08, 1.20],
        "tex2dpp": [1.10, 1.30, 1.30, 1.26, 1.10, 1.20],
    },
}

GRID = {
    "scattered_penalty": (0.8, 1.2, 1.6, 2.0, 2.6),
    "l2_bandwidth_ratio": (2.5, 3.5),
    "tex_fp32_rate_divisor": (1, 2, 4),
    "gather_dram_reuse": (2.0, 4.0, 8.0),
}


def model_speedups(spec):
    s2d, s2dpp = [], []
    for cfg in TABLE2_LAYERS:
        res = run_layer_all_backends(cfg, spec, bound=7.0,
                                     compute_output=False)
        bl = res["pytorch"].sample_kernel.duration_ms
        s2d.append(bl / res["tex2d"].sample_kernel.duration_ms)
        s2dpp.append(bl / res["tex2dpp"].sample_kernel.duration_ms)
    return np.array(s2d), np.array(s2dpp)


def fit(base_spec):
    target2d = np.array(PAPER[base_spec.name]["tex2d"])
    target2dpp = np.array(PAPER[base_spec.name]["tex2dpp"])
    best = None
    keys = list(GRID)
    for values in itertools.product(*(GRID[k] for k in keys)):
        spec = base_spec.with_overrides(**dict(zip(keys, values)))
        s2d, s2dpp = model_speedups(spec)
        err = float(((s2d - target2d) ** 2).sum()
                    + ((s2dpp - target2dpp) ** 2).sum())
        if best is None or err < best[0]:
            best = (err, dict(zip(keys, values)), s2d, s2dpp)
    return best


if __name__ == "__main__":
    for base in (XAVIER, RTX_2080TI):
        err, params, s2d, s2dpp = fit(base)
        print(f"== {base.name}  rms={np.sqrt(err / 12):.3f}")
        print("  params:", params)
        print("  tex2d  :", np.round(s2d, 2), "target",
              PAPER[base.name]["tex2d"])
        print("  tex2dpp:", np.round(s2dpp, 2), "target",
              PAPER[base.name]["tex2dpp"])
