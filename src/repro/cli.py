"""Command-line interface: ``python -m repro.cli <command>``.

Thin, scriptable entry points over the library — the commands a downstream
user reaches for first:

* ``devices``       — list the simulated GPU presets with each one's
  predicted 3×3 DCN latency (the latency-table number the fleet router
  and NAS search consume);
* ``layers``        — per-layer backend comparison (Table II/IV rows);
* ``end-to-end``    — the Table III trajectory for a device;
* ``tune``          — autotune the CTA tile for one layer shape;
* ``latency-table`` — build (and optionally save) the NAS latency table;
* ``profile``       — nvprof-style counters for one layer on all backends;
* ``serve``         — batched serving demo: tile-store warm start, request
  batching, per-stage metrics, batched-vs-sequential latency (``--trace``
  exports a Chrome trace of the run);
* ``tiles``         — inspect / export / import the persistent tile store;
* ``conformance``   — cross-backend conformance suite: differential
  oracles, metamorphic invariants and a shrinking fuzzer
  (``run`` generates + checks cases, ``replay`` re-runs a failure JSON);
* ``fleet``         — heterogeneous fleet scheduler demo: cost-model
  routing across simulated devices, deadlines, fault injection, circuit
  breakers and graceful degradation (``run`` serves a request stream,
  ``plan`` shows the router's per-worker ECT view);
* ``trace``         — run a model preset under the span tracer and write
  Perfetto-loadable ``trace.json`` + ``metrics.json`` plus the per-layer
  latency table (paper Table II/IV style); ``--open PATH --span-id sNN``
  inspects one span of an existing trace (the id an SLO exemplar names);
* ``metrics``       — ``export`` converts a saved ``metrics.json``
  snapshot (or re-emits a live registry) to Prometheus text exposition;
* ``bench``         — ``compare`` runs the bench-regression flight
  recorder over two ``BENCH_*.json`` snapshot sets (baseline vs current)
  and exits non-zero on a tracked regression (the CI perf gate).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.gpusim.device import DEVICES, get_device
from repro.kernels.config import TABLE2_LAYERS, LayerConfig
from repro.pipeline.reporting import format_table


def _layer_from_arg(text: str) -> LayerConfig:
    """Parse ``CIN,COUT,H,W[,STRIDE]`` into a LayerConfig."""
    parts = [int(p) for p in text.split(",")]
    if len(parts) not in (4, 5):
        raise argparse.ArgumentTypeError(
            "layer must be CIN,COUT,H,W[,STRIDE]")
    stride = parts[4] if len(parts) == 5 else 1
    return LayerConfig(parts[0], parts[1], parts[2], parts[3],
                       stride=stride)


def cmd_devices(args) -> int:
    """``repro devices`` — list the simulated GPU presets.

    Alongside the hardware columns, each preset gets its predicted 3×3
    DCN latency for one reference layer shape — the same per-device
    latency-table path (``deform_latency_ms``) the NAS search and the
    fleet scheduler's cost-model router consume, so the column is
    literally the number routing decisions are made from.
    """
    from repro.nas.latency_table import deform_latency_ms

    cfg = _layer_from_arg(args.dcn_layer)
    rows = [[s.name, s.num_sms, s.core_clock_ghz, s.dram_bandwidth_gbps,
             s.tex_cache_kb_per_sm, round(s.peak_gflops / 1000, 2),
             round(deform_latency_ms(cfg, s, backend=args.backend), 3)]
            for s in DEVICES.values()]
    print(format_table(
        ["device", "SMs", "clock (GHz)", "DRAM (GB/s)", "tex $ (KB/SM)",
         "peak (TFLOP/s)", f"DCN {cfg.label()} (ms)"], rows,
        title=f"Simulated GPU presets — DCN column on {args.backend}"))

    from repro.fleet import default_interconnect
    ic = default_interconnect(list(DEVICES.values()))
    ic_rows = [[r["pair"], f"{r['latency_ms']:.3f}",
                f"{r['bandwidth_gbps']:.1f}"]
               for r in ic.rows([s.name for s in DEVICES.values()])]
    print("\n" + format_table(
        ["device pair", "link latency (ms)", "link bandwidth (GB/s)"],
        ic_rows,
        title="Default interconnect — links the fleet shard planner "
              "prices transfers over"))
    return 0


def cmd_layers(args) -> int:
    """``repro layers`` — per-layer backend latency comparison."""
    from repro.kernels.dispatch import run_layer_all_backends

    spec = get_device(args.device)
    layers = ([_layer_from_arg(args.layer)] if args.layer
              else list(TABLE2_LAYERS))
    rows = []
    for cfg in layers:
        res = run_layer_all_backends(cfg, spec, bound=args.bound,
                                     compute_output=False)
        bl = res["pytorch"].sample_kernel.duration_ms
        t2 = res["tex2d"].sample_kernel.duration_ms
        tp = res["tex2dpp"].sample_kernel.duration_ms
        rows.append([cfg.label(), round(bl, 3), round(t2, 3), round(tp, 3),
                     f"{bl / tp:.2f}x"])
    print(format_table(
        ["layer", "PyTorch (ms)", "tex2D (ms)", "tex2D++ (ms)", "speedup"],
        rows, title=f"Deformable operation on {spec.name}"))
    return 0


def cmd_end_to_end(args) -> int:
    """``repro end-to-end`` — the Table III latency trajectory."""
    from repro.nas.search import manual_interval_placement
    from repro.pipeline.geometry import paper_scale_geometry
    from repro.pipeline.inference import network_latency_ms

    spec = get_device(args.device)
    geo = paper_scale_geometry(args.arch)
    manual = manual_interval_placement(geo.num_sites, 3)
    searched = list(manual)
    on = [i for i, v in enumerate(searched) if v]
    searched[on[1]] = False
    baseline = network_latency_ms(geo, manual, spec).total_ms
    rows = []
    for label, placement, kw in (
            ("YOLACT++ baseline", manual, {}),
            ("interval search", searched, {}),
            ("search+tex2d", searched, dict(backend="tex2d")),
            ("search+light+bound+tex2dpp", searched,
             dict(backend="tex2dpp", lightweight=True, bound=7.0))):
        t = network_latency_ms(geo, placement, spec, **kw).total_ms
        rows.append([label, sum(placement), round(t, 1),
                     f"{baseline / t:.2f}x"])
    print(format_table(["configuration", "# DCNs", "ms", "speedup"], rows,
                       title=f"End-to-end {geo.name} on {spec.name}"))
    return 0


def cmd_tune(args) -> int:
    """``repro tune`` — Bayesian tile-size search for one layer."""
    from repro.autotune.store import TileStore
    from repro.autotune.tuner import TileTuner

    spec = get_device(args.device)
    cfg = _layer_from_arg(args.layer)
    store = TileStore(args.store) if args.store else None
    with TileTuner(spec, backend=args.backend, budget=args.budget,
                   store=store, workers=args.workers) as tuner:
        result = tuner.tune(cfg, args.method)
    warm = " (from tile store)" if tuner.objective_evaluations == 0 else ""
    print(f"best tile for {cfg.label()} on {spec.name} [{args.backend}]: "
          f"{result.best_point} @ {result.best_value:.4f} ms "
          f"({result.evaluations} evaluations{warm})")
    if store is not None:
        print(f"tile store {args.store}: {len(store)} entries")
    return 0


def cmd_latency_table(args) -> int:
    """``repro latency-table`` — build (and save) the NAS t(w_n) table."""
    from repro.nas.latency_table import LatencyTable
    from repro.pipeline.geometry import candidate_site_configs

    spec = get_device(args.device)
    table = LatencyTable(spec, backend=args.backend)
    table.build(candidate_site_configs(args.arch))
    rows = [[cfg.label(), round(lat.regular_ms, 3),
             round(lat.deform_ms, 3), round(lat.extra_ms, 3)]
            for cfg, lat in table.items()]
    print(format_table(
        ["site", "regular (ms)", "deformable (ms)", "extra (ms)"], rows,
        title=f"t(w_n) lookup table for {args.arch} on {spec.name}"))
    if args.save:
        table.save(args.save)
        print(f"saved to {args.save}")
    return 0


def cmd_profile(args) -> int:
    """``repro profile`` — nvprof-style counters for one layer."""
    from repro.kernels.dispatch import run_layer_all_backends

    spec = get_device(args.device)
    cfg = _layer_from_arg(args.layer)
    res = run_layer_all_backends(cfg, spec, bound=args.bound,
                                 compute_output=False)
    rows = []
    for backend in ("pytorch", "tex2d", "tex2dpp"):
        s = res[backend].sample_kernel
        rows.append([backend, round(s.duration_ms, 4), round(s.mflop, 2),
                     round(s.gld_efficiency, 1),
                     round(s.gld_transactions_per_request, 2),
                     int(s.tex_cache_requests),
                     round(s.tex_cache_hit_rate, 1)])
    print(format_table(
        ["kernel", "ms", "MFLOP", "GLD eff %", "trans/req", "tex req",
         "tex hit %"], rows,
        title=f"nvprof-style counters for {cfg.label()} on {spec.name}"))
    return 0


def _build_task_model(arch: str, task: str, input_size: int, seed: int):
    """Shared model construction for ``serve`` and ``trace``."""
    from repro.models import build_classifier, build_yolact
    from repro.nas import manual_interval_placement

    placement = manual_interval_placement(9 if arch == "r50s" else 14, 3)
    if task == "detect":
        model = build_yolact(arch, input_size=input_size,
                             placement=placement, bound=7.0, seed=seed)
        task_kwargs = {"score_threshold": 0.05}
    else:
        model = build_classifier(arch, input_size=input_size,
                                 placement=placement, bound=7.0, seed=seed)
        task_kwargs = {}
    return model, task_kwargs


def cmd_serve(args) -> int:
    """``repro serve`` — batched serving demo with tile-store warm start."""
    import numpy as np

    from repro.autotune.store import TileStore
    from repro.obs import MetricsRegistry, SpanTracer
    from repro.pipeline import DefconEngine
    from repro.serve import RequestBatcher, ServingMetrics

    if args.max_batch < 1 or args.requests < 1:
        import sys as _sys
        print("error: --max-batch and --requests must be >= 1",
              file=_sys.stderr)
        return 1
    if args.fused and args.no_plan_cache:
        import sys as _sys
        print("error: --fused requires the plan cache (fused plans live on "
              "its entries); drop --no-plan-cache", file=_sys.stderr)
        return 1
    execution = "fused" if args.fused else "eager"
    spec = get_device(args.device)
    model, task_kwargs = _build_task_model(args.arch, args.task,
                                           args.input_size, args.seed)
    store = TileStore(args.store) if args.store else None
    autotune = args.autotune or store is not None
    registry = MetricsRegistry()
    tracer = SpanTracer() if args.trace else None

    engine = DefconEngine(model, spec, backend=args.backend,
                          autotune=autotune, tune_budget=args.tune_budget,
                          tile_store=store, registry=registry, tracer=tracer,
                          plan_cache=False if args.no_plan_cache else None,
                          execution=execution)
    if autotune:
        print(f"autotune: {len(engine.tiles)} tile(s) bound, "
              f"{engine.tune_evaluations} objective evaluation(s)"
              + (" — warm start" if engine.tune_evaluations == 0 else ""))

    rng = np.random.default_rng(args.seed)
    images = [rng.uniform(0, 1, size=(3, args.input_size, args.input_size)
                          ).astype(np.float32) for _ in range(args.requests)]

    batcher = RequestBatcher(engine, task=args.task,
                             max_batch_size=args.max_batch,
                             max_wait_s=args.max_wait,
                             metrics=ServingMetrics(registry=registry),
                             tracer=tracer, **task_kwargs)
    batcher.serve_all(images)
    batched_ms = batcher.metrics.sim_ms_per_image

    # sequential baseline: one engine call per request, same tiles (and the
    # same plan cache, so both measurements see warmed steady-state plans)
    seq_engine = DefconEngine(model, spec, backend=args.backend,
                              autotune=autotune,
                              tune_budget=args.tune_budget, tile_store=store,
                              plan_cache=engine.plan_cache
                              if engine.plan_cache is not None else False,
                              execution=execution)
    for img in images:
        if args.task == "detect":
            seq_engine.detect(img[None], **task_kwargs)
        else:
            seq_engine.classify(img[None])
    seq_ms = seq_engine.deformable_latency_ms() / len(images)

    print(batcher.metrics.summary(nvprof_rows=engine.nvprof_rows()))
    if batched_ms > 0:
        print(f"\nper-image simulated deformable latency on {spec.name}: "
              f"sequential {seq_ms:.4f} ms, batched {batched_ms:.4f} ms "
              f"({seq_ms / batched_ms:.2f}x)")
    stats = engine.tile_cache_stats
    print(f"tile cache: {stats.hits} hits, {stats.near_hits} near-hits, "
          f"{stats.misses} misses")
    pstats = engine.plan_cache_stats
    if pstats is not None:
        print(f"plan cache: {pstats.hits} hits, {pstats.misses} misses, "
              f"{pstats.trace_builds} trace builds "
              f"({pstats.hit_rate:.1f}% hit rate)")
    if tracer is not None:
        tracer.write(args.trace)
        print(f"wrote Chrome trace to {args.trace} "
              f"({tracer.num_events} events)")
    if args.metrics_out:
        registry.write(args.metrics_out)
        print(f"wrote metrics registry to {args.metrics_out}")
    return 0


def _open_trace_span(path: str, span_id: Optional[str]) -> int:
    """``repro trace --open`` — inspect spans of an existing trace JSON.

    With ``--span-id`` prints the one span an SLO exemplar named (its
    timing, thread, and args); without, lists every span id in the file
    so the ids are discoverable.
    """
    import json
    import sys as _sys

    try:
        with open(path) as fh:
            events = json.load(fh).get("traceEvents", [])
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {path}: {exc}", file=_sys.stderr)
        return 1
    spans = [e for e in events
             if e.get("ph") == "X" and e.get("args", {}).get("span_id")]
    if span_id is None:
        rows = [[e["args"]["span_id"], e["name"], e.get("cat", ""),
                 round(e.get("ts", 0.0), 1), round(e.get("dur", 0.0), 1)]
                for e in sorted(
                    spans,
                    key=lambda e: int(e["args"]["span_id"][1:]))]
        print(format_table(["span", "name", "cat", "ts (us)", "dur (us)"],
                           rows, title=f"Spans in {path}"))
        print("\npass --span-id sNN to expand one span (SLO exemplar "
              "columns name these ids)")
        return 0
    matches = [e for e in spans if e["args"]["span_id"] == span_id]
    if not matches:
        print(f"error: no span {span_id!r} in {path} "
              f"({len(spans)} spans present)", file=_sys.stderr)
        return 1
    event = matches[0]
    print(f"span {span_id}: {event['name']} [{event.get('cat', '')}]")
    print(f"  ts: {event.get('ts', 0.0):.1f} us   "
          f"dur: {event.get('dur', 0.0):.1f} us   "
          f"pid: {event.get('pid')}   tid: {event.get('tid')}")
    for key, value in sorted(event.get("args", {}).items()):
        if key != "span_id":
            print(f"  {key}: {value}")
    return 0


def cmd_trace(args) -> int:
    """``repro trace`` — trace a serving session, export trace + metrics."""
    if args.open:
        return _open_trace_span(args.open, args.span_id)
    if args.span_id:
        import sys as _sys
        print("error: --span-id requires --open PATH", file=_sys.stderr)
        return 1

    import numpy as np

    from repro.autotune.store import TileStore
    from repro.obs import MetricsRegistry, SpanTracer
    from repro.pipeline import DefconEngine
    from repro.serve import RequestBatcher, ServingMetrics

    spec = get_device(args.device)
    model, task_kwargs = _build_task_model(args.model, args.task,
                                           args.input_size, args.seed)
    store = TileStore(args.store) if args.store else None
    registry = MetricsRegistry()
    tracer = SpanTracer()

    engine = DefconEngine(model, spec, backend=args.backend,
                          autotune=args.autotune or store is not None,
                          tune_budget=args.tune_budget, tile_store=store,
                          registry=registry, tracer=tracer)
    rng = np.random.default_rng(args.seed)
    images = [rng.uniform(0, 1, size=(3, args.input_size, args.input_size)
                          ).astype(np.float32) for _ in range(args.requests)]
    batcher = RequestBatcher(engine, task=args.task,
                             max_batch_size=args.max_batch,
                             metrics=ServingMetrics(registry=registry),
                             tracer=tracer, **task_kwargs)
    with tracer.span("serve.session", cat="serve",
                     requests=args.requests, model=args.model,
                     backend=args.backend, device=spec.name):
        batcher.serve_all(images)

    tracer.write(args.out)
    registry.write(args.metrics_out)

    rows = engine.per_layer_rows()
    if rows:
        keys = list(rows[0])
        print(format_table(keys,
                           [[round(r[k], 4) if isinstance(r[k], float)
                             else r[k] for k in keys] for r in rows],
                           title=f"Per-layer deformable latency — "
                                 f"{args.model}/{args.backend} on "
                                 f"{spec.name}"))
    total = engine.deformable_latency_ms()
    print(f"\n{args.requests} request(s), {batcher.metrics.num_batches} "
          f"batch(es); simulated deformable time {total:.4f} ms "
          f"across {engine.log.num_launches} kernel launches")
    print(f"wrote Chrome trace to {args.out} ({tracer.num_events} events) "
          f"and metrics to {args.metrics_out}")
    if args.flame:
        print("\n" + tracer.flame_summary(top=args.top))
    return 0


def cmd_metrics(args) -> int:
    """``repro metrics`` — convert metrics snapshots between formats."""
    import json
    import sys as _sys

    from repro.obs.registry import prometheus_from_snapshot

    if args.action != "export":
        raise ValueError(f"unknown metrics action {args.action!r}")
    try:
        with open(args.snapshot) as fh:
            snapshot = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read metrics snapshot {args.snapshot}: {exc}",
              file=_sys.stderr)
        return 1
    if not isinstance(snapshot, dict) or not all(
            isinstance(v, dict) and "kind" in v for v in snapshot.values()):
        print(f"error: {args.snapshot} is not a metrics registry snapshot",
              file=_sys.stderr)
        return 1
    text = prometheus_from_snapshot(snapshot)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote Prometheus exposition for {len(snapshot)} metric(s) "
              f"to {args.out}")
    else:
        _sys.stdout.write(text)
    return 0


def cmd_bench(args) -> int:
    """``repro bench`` — bench-regression flight recorder."""
    from repro.obs.flightrec import run_compare

    if args.action != "compare":
        raise ValueError(f"unknown bench action {args.action!r}")
    return run_compare(args.baseline, args.current,
                       json_out=args.json_out,
                       markdown_out=args.markdown_out)


def cmd_tiles(args) -> int:
    """``repro tiles`` — show / export / import the persistent tile store."""
    import json
    import sys as _sys

    from repro.autotune.store import TileStore

    store = TileStore(args.store)
    if args.action == "show":
        rows = [[r["device"], r["backend"], f"v{r['tuner_version']}",
                 r["geometry"], f"{r['tile']}",
                 round(r["best_ms"], 4) if r["best_ms"] is not None else "-",
                 r["evaluations"] or "-"] for r in store.rows()]
        print(format_table(
            ["device", "backend", "ver", "geometry", "tile", "best (ms)",
             "evals"], rows,
            title=f"Tile store {args.store} ({len(store)} entries)"))
        return 0
    if args.action == "export":
        payload = json.dumps(store.export_payload(), indent=1, sort_keys=True)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(payload + "\n")
            print(f"exported {len(store)} entries to {args.out}")
        else:
            _sys.stdout.write(payload + "\n")
        return 0
    if args.action == "import":
        src = getattr(args, "from")
        try:
            with open(src) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read tile payload {src}: {exc}",
                  file=_sys.stderr)
            return 1
        try:
            added = store.merge(payload, overwrite=args.overwrite)
        except ValueError as exc:
            print(f"error: {exc}", file=_sys.stderr)
            return 1
        print(f"imported {added} entries into {args.store} "
              f"({len(store)} total)")
        return 0
    raise ValueError(f"unknown tiles action {args.action!r}")


def cmd_conformance(args) -> int:
    """``repro conformance`` — cross-backend conformance suite."""
    import contextlib
    import sys as _sys

    from repro.conformance import (CaseGenerator, ConformanceRunner,
                                   inject_fault, load_repro)

    spec = get_device(args.device)
    runner = ConformanceRunner(spec)
    inject = (inject_fault(args.inject) if args.inject
              else contextlib.nullcontext())

    if args.action == "replay":
        try:
            case = load_repro(args.repro)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load repro {args.repro}: {exc}",
                  file=_sys.stderr)
            return 1
        with inject:
            report = runner.run_case(case)
        rows = [[r.name,
                 "skip" if r.skipped else "pass" if r.passed else "FAIL",
                 f"{r.max_err:.3e}", f"{r.tolerance:.3e}", r.detail[:60]]
                for r in report.results]
        print(format_table(
            ["check", "result", "max err", "tolerance", "detail"], rows,
            title=f"Replay of case {case.case_id()} "
                  f"({case.height}x{case.width}x{case.in_channels}, "
                  f"{case.offset_regime}) on {spec.name}"))
        verdict = "PASS" if report.passed else "FAIL"
        print(f"\nreplay {verdict}: {len(report.failures)} failing "
              f"check(s) of {len(report.results)}")
        return 0 if report.passed else 1

    from repro.obs import MetricsRegistry

    cases = CaseGenerator(seed=args.seed).generate(args.cases)
    registry = MetricsRegistry()
    with inject:
        suite = runner.run_suite(cases, shrink=not args.no_shrink,
                                 out_dir=args.out)
    suite.bind_registry(registry)
    print(format_table(
        ["check", "runs", "pass", "fail", "skip", "worst margin"],
        suite.check_rows(),
        title=f"Conformance: {suite.num_cases} cases, seed {args.seed}, "
              f"{spec.name}" + (f", fault={args.inject}" if args.inject
                                else "")))
    pstats = runner.plan_cache.stats if runner.plan_cache else None
    if pstats is not None and pstats.lookups:
        print(f"plan cache: {pstats.hits} hits / {pstats.lookups} lookups "
              f"({pstats.hit_rate:.1f}%)")
    if args.metrics_out:
        registry.write(args.metrics_out)
        print(f"wrote metrics registry to {args.metrics_out}")
    failed = suite.failed_reports
    if failed:
        print(f"\nFAIL: {len(failed)}/{suite.num_cases} case(s) failed; "
              f"{len(suite.artifacts)} repro artifact(s):")
        for path in suite.artifacts:
            print(f"  {path}")
        print(f"replay one with: repro conformance replay <path> "
              f"--device {args.device}")
        return 1
    print(f"\nPASS: {suite.num_cases} cases, all checks within bounds")
    return 0


def _build_fleet_from_args(args):
    """Shared fleet assembly for ``fleet run`` / ``fleet plan``."""
    from repro.autotune.store import TileStore
    from repro.fleet import build_fleet
    from repro.obs import MetricsRegistry, SpanTracer

    model, task_kwargs = _build_task_model(args.arch, args.task,
                                           args.input_size, args.seed)
    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    store = TileStore(args.store) if getattr(args, "store", None) else None
    registry = MetricsRegistry()
    # --slo needs a tracer even without --trace: exemplars carry span ids
    want_tracer = (getattr(args, "trace", None)
                   or getattr(args, "slo", False))
    tracer = SpanTracer() if want_tracer else None
    from repro.fleet.scheduler import DEFAULT_SLO_WINDOW_MS
    sched = build_fleet(
        model, devices, backend=args.backend, task=args.task,
        router=args.router, registry=registry, tracer=tracer,
        faults=list(getattr(args, "fault", None) or ()),
        tile_store=store, queue_capacity=args.queue_capacity,
        max_batch_size=args.max_batch, max_attempts=args.max_attempts,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_ms=args.breaker_cooldown,
        seed=args.seed,
        execution="fused" if getattr(args, "fused", False) else "eager",
        slo_window_ms=(getattr(args, "slo_window", None)
                       or DEFAULT_SLO_WINDOW_MS),
        shard=getattr(args, "shard", "off"),
        **task_kwargs)
    return sched, registry, tracer, model, task_kwargs


def _cmd_fleet_loadgen(args) -> int:
    """``repro fleet run --loadgen`` — open-loop traffic, optionally
    autoscaled, with an SLO-attainment table per offered-load level."""
    import sys as _sys

    from repro.fleet import (ElasticAutoscaler, default_fleet_slos,
                             engine_worker_provider, parse_autoscale,
                             parse_loadgen)

    try:
        spec = parse_loadgen(args.loadgen)
        policy = parse_autoscale(args.autoscale) if args.autoscale else None
        levels = [float(x) for x in args.load_levels.split(",")
                  if x.strip()]
        if not levels:
            raise ValueError("--load-levels needs at least one factor")
    except ValueError as exc:
        print(f"error: {exc}", file=_sys.stderr)
        return 1
    print(f"loadgen: {spec.describe()}")
    if policy is not None:
        print(f"autoscale: {policy.min_workers}..{policy.max_workers} "
              f"workers, catalogue {'|'.join(policy.catalogue)}, "
              f"p99<={policy.p99_ms:g}ms (burn>{policy.burn_up:g} or "
              f"depth>{policy.depth_up:g} scales up)")

    exit_code = 0
    rows = []
    last = None
    for level in levels:
        lspec = spec.scaled(level)
        try:
            sched, registry, tracer, model, task_kwargs = \
                _build_fleet_from_args(args)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=_sys.stderr)
            return 1
        auto = None
        if policy is not None:
            provider = engine_worker_provider(
                model, backend=args.backend, task=args.task,
                execution="fused" if getattr(args, "fused", False)
                else "eager",
                max_batch_size=args.max_batch,
                queue_capacity=args.queue_capacity,
                breaker_threshold=args.breaker_threshold,
                breaker_cooldown_ms=args.breaker_cooldown,
                tracer=tracer, **task_kwargs)
            auto = ElasticAutoscaler(policy, provider).attach(sched)
        futures = sched.run_load(lspec.events(), autoscaler=auto)
        sched.close()
        snap = sched.snapshot()
        reports = sched.evaluate_slos(default_fleet_slos(args.slo_p99_ms))
        p99_report = reports[0]
        if auto is not None:
            asnap = auto.snapshot()
            peak, worker_ms = asnap["peak_workers"], asnap["worker_ms"]
        else:
            asnap = None
            peak = len(sched.workers)
            worker_ms = round(peak * snap["makespan_ms"], 3)
        unresolved = len(sched.unresolved())
        if unresolved or not all(f.done() for f in futures):
            exit_code = 1
        rows.append([
            f"{level:g}x", f"{lspec.offered_rpms:.2f}",
            snap["submitted"], snap["completed"],
            sum(snap["rejected_by_reason"].values()),
            snap["latency_p50_ms"] if snap["latency_p50_ms"] is not None
            else "-",
            snap["latency_p99_ms"] if snap["latency_p99_ms"] is not None
            else "-",
            f"{100 * p99_report.attainment:.0f}%",
            "ok" if p99_report.ok else "VIOLATED",
            peak, worker_ms, unresolved,
        ])
        last = (sched, registry, tracer, auto, asnap, reports)
    print("\n" + format_table(
        ["load", "req/ms", "submitted", "completed", "rejected", "p50 ms",
         "p99 ms", "attain", "p99 SLO", "peak workers", "worker-ms",
         "unresolved"],
        rows,
        title=f"SLO attainment per load level — p99<={args.slo_p99_ms:g}ms, "
              f"{'autoscaled' if policy is not None else 'static'} fleet"))

    sched, registry, tracer, auto, asnap, reports = last
    if auto is not None and auto.events:
        core = ("sim_ms", "action", "worker", "device")
        erows = [[e["sim_ms"], e["action"], e["worker"],
                  e.get("device", "-"),
                  " ".join(f"{k}={v}" for k, v in e.items()
                           if k not in core) or "-"]
                 for e in auto.events]
        print("\n" + format_table(
            ["sim ms", "action", "worker", "device", "detail"], erows,
            title=f"Autoscaler actions at {rows[-1][0]} load — "
                  f"{asnap['scale_ups']} up, {asnap['scale_downs']} down, "
                  f"peak {asnap['peak_workers']} workers"))
    if getattr(args, "slo", False):
        from repro.obs.slo import format_slo_table

        for report in reports:
            print("\n" + format_slo_table(report))
    if tracer is not None and args.trace:
        tracer.write(args.trace)
        print(f"\nwrote Chrome trace to {args.trace} "
              f"({tracer.num_events} events)")
    if args.metrics_out:
        registry.write(args.metrics_out)
        print(f"wrote metrics registry to {args.metrics_out}")
    return exit_code


def cmd_fleet(args) -> int:
    """``repro fleet`` — heterogeneous fleet scheduler demo."""
    import sys as _sys

    import numpy as np

    if args.action == "run" and getattr(args, "loadgen", None):
        return _cmd_fleet_loadgen(args)
    if getattr(args, "autoscale", None):
        print("error: --autoscale needs --loadgen (open-loop traffic "
              "drives the scaling signals)", file=_sys.stderr)
        return 1
    try:
        sched, registry, tracer, _, _ = _build_fleet_from_args(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=_sys.stderr)
        return 1
    rng = np.random.default_rng(args.seed)
    image = rng.uniform(0, 1, size=(3, args.input_size, args.input_size)
                        ).astype(np.float32)

    plan_rows = [[r["worker"], r["device"], r["backend"], r["breaker"],
                  r["queue_depth"], r["backlog_ms"], r["predicted_ms"],
                  r["ect_ms"]] for r in sched.explain(image)]
    print(format_table(
        ["worker", "device", "backend", "breaker", "queued", "backlog ms",
         "predicted ms", "ECT ms"], plan_rows,
        title=f"Fleet routing view — router={sched.router.name}, "
              f"one {args.input_size}px {args.task} request"))
    if sched.shard_planner is not None:
        srows = [[p.label, p.kind, len(p.assignments) or 1,
                  round(p.predicted_ms, 3)]
                 for p in sorted(
                     sched.shard_planner.plan_space(
                         sched.workers, image.shape, 1,
                         sched.clock.now_ms),
                     key=lambda p: (p.predicted_ms, p.label))]
        print("\n" + format_table(
            ["plan", "kind", "workers", "predicted ms"], srows,
            title=f"Shard plan space — mode={sched.shard_planner.mode}, "
                  f"cheapest wins at serve time"))
    if args.action == "plan":
        print("\nlowest expected completion time wins; `fleet run` serves "
              "a full request stream through this router.")
        return 0

    images = [rng.uniform(0, 1, size=(3, args.input_size, args.input_size)
                          ).astype(np.float32)
              for _ in range(args.requests)]
    futures = [sched.submit(img, deadline_ms=args.deadline) for img in images]
    sched.drain()
    sched.close()

    shown = sched.decisions[:args.show_decisions]
    dec_rows = [[d["request"], d["attempt"], d["sim_ms"],
                 d["worker"] or "(rejected)",
                 "  ".join(f"{n}={ms}" for n, ms in d["ect_ms"].items())]
                for d in shown]
    print("\n" + format_table(
        ["req", "try", "sim ms", "routed to", "candidate ECTs (ms)"],
        dec_rows,
        title=f"Routing decisions (first {len(shown)} of "
              f"{len(sched.decisions)})"))

    if sched.shard_decisions:
        sd_rows = [[d["worker"], d["plan"], d["kind"], d["requests"],
                    d["predicted_ms"],
                    d["simulated_ms"] if d["simulated_ms"] is not None
                    else "-",
                    "yes" if d["applied"] else "no"]
                   for d in sched.shard_decisions[:args.show_decisions]]
        print("\n" + format_table(
            ["coordinator", "plan", "kind", "reqs", "predicted ms",
             "simulated ms", "sharded"], sd_rows,
            title=f"Shard decisions (first {len(sd_rows)} of "
                  f"{len(sched.shard_decisions)})"))

    snap = sched.snapshot()
    worker_rows = [[w["worker"], w["device"], w["backend"], w["breaker"],
                    "yes" if w["degraded"] else "no",
                    snap["completed_by_worker"].get(
                        w["worker"], 0), w["busy_until_ms"]]
                   for w in snap["workers"]]
    print("\n" + format_table(
        ["worker", "device", "backend", "breaker", "degraded", "completed",
         "busy until (ms)"], worker_rows, title="Workers after the run"))

    rejected = sum(snap["rejected_by_reason"].values())
    print(f"\n{snap['submitted']} submitted: {snap['completed']} completed, "
          f"{rejected} rejected {snap['rejected_by_reason']}, "
          f"{snap['retries']} retries; makespan {snap['makespan_ms']} ms "
          f"simulated")
    unresolved = len(sched.unresolved())
    resolved = sum(1 for f in futures if f.done())
    print(f"futures audit: {len(futures)} submitted, {resolved} resolved, "
          f"{unresolved} unresolved")
    if getattr(args, "slo", False):
        from repro.fleet import default_fleet_slos
        from repro.obs.slo import format_slo_table

        reports = sched.evaluate_slos(default_fleet_slos(args.slo_p99_ms))
        for report in reports:
            print("\n" + format_slo_table(report))
        violated = sum(len(r.violated_windows) for r in reports)
        if violated:
            trace_hint = args.trace or "<trace.json>"
            print(f"\n{violated} violated window(s); inspect an exemplar "
                  f"with: repro trace --open {trace_hint} --span-id <sNN>"
                  + ("" if args.trace else
                     " (re-run with --trace PATH to export the spans)"))
    if tracer is not None:
        tracer.write(args.trace)
        print(f"wrote Chrome trace to {args.trace} "
              f"({tracer.num_events} events)")
    if args.metrics_out:
        registry.write(args.metrics_out)
        print(f"wrote metrics registry to {args.metrics_out}")
    return 0 if unresolved == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DEFCON reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "devices", help="list simulated GPU presets with DCN latency")
    p.add_argument("--dcn-layer", default="128,128,69,69",
                   help="CIN,COUT,H,W[,STRIDE] for the predicted 3x3 DCN "
                        "latency column (default: 128,128,69,69)")
    p.add_argument("--backend", default="tex2dpp",
                   choices=["pytorch", "tex2d", "tex2dpp"],
                   help="backend for the DCN latency column")

    p = sub.add_parser("layers", help="per-layer backend comparison")
    p.add_argument("--device", default="xavier")
    p.add_argument("--layer", default=None,
                   help="CIN,COUT,H,W[,STRIDE]; default: Table II shapes")
    p.add_argument("--bound", type=float, default=7.0)

    p = sub.add_parser("end-to-end", help="Table III trajectory")
    p.add_argument("--device", default="xavier")
    p.add_argument("--arch", default="r101s")

    p = sub.add_parser("tune", help="autotune the CTA tile for a layer")
    p.add_argument("--device", default="xavier")
    p.add_argument("--layer", required=True)
    p.add_argument("--backend", default="tex2d",
                   choices=["tex2d", "tex2dpp"])
    p.add_argument("--budget", type=int, default=14)
    p.add_argument("--method", default="bayes",
                   choices=["bayes", "random", "grid", "sweep"])
    p.add_argument("--workers", type=int, default=0,
                   help="process-pool workers for --method sweep "
                        "(0/1 = serial; results are identical)")
    p.add_argument("--store", default=None,
                   help="persist/reuse results in this tile-store JSON")

    p = sub.add_parser("serve", help="batched serving demo with metrics")
    p.add_argument("--device", default="xavier")
    p.add_argument("--arch", default="r50s")
    p.add_argument("--task", default="classify",
                   choices=["classify", "detect"])
    p.add_argument("--backend", default="tex2dpp",
                   choices=["pytorch", "tex2d", "tex2dpp"])
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--max-batch", type=int, default=4)
    p.add_argument("--max-wait", type=float, default=0.01)
    p.add_argument("--input-size", type=int, default=64)
    p.add_argument("--store", default=None,
                   help="tile-store path (implies --autotune; warm start "
                        "when populated)")
    p.add_argument("--autotune", action="store_true")
    p.add_argument("--tune-budget", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="also export a Chrome trace JSON of the run")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="also export the metrics registry as JSON")
    p.add_argument("--no-plan-cache", action="store_true",
                   help="disable the perf-model plan cache (for A/B "
                        "comparison; see docs/performance.md)")
    p.add_argument("--fused", action="store_true",
                   help="fused execution: run the texture hot path through "
                        "compiled FusedPlans (bit-identical outputs; "
                        "incompatible with --no-plan-cache)")

    p = sub.add_parser(
        "trace", help="trace a serving session (Chrome trace + metrics)")
    p.add_argument("--model", default="r50s",
                   help="model preset (r50s/r101s)")
    p.add_argument("--device", default="xavier")
    p.add_argument("--task", default="classify",
                   choices=["classify", "detect"])
    p.add_argument("--backend", default="tex2dpp",
                   choices=["pytorch", "tex2d", "tex2dpp"])
    p.add_argument("--requests", type=int, default=4)
    p.add_argument("--max-batch", type=int, default=2)
    p.add_argument("--input-size", type=int, default=64)
    p.add_argument("--autotune", action="store_true")
    p.add_argument("--tune-budget", type=int, default=6)
    p.add_argument("--store", default=None,
                   help="tile-store path (implies autotune)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace output path (Perfetto-loadable)")
    p.add_argument("--metrics-out", default="metrics.json",
                   help="metrics registry JSON output path")
    p.add_argument("--flame", action="store_true",
                   help="print the text flame summary")
    p.add_argument("--top", type=int, default=None, metavar="N",
                   help="keep only the N largest flame rows")
    p.add_argument("--open", default=None, metavar="TRACE_JSON",
                   help="inspect an existing trace instead of running: "
                        "list its span ids, or expand one with --span-id")
    p.add_argument("--span-id", default=None, metavar="SID",
                   help="with --open: print the one span an SLO exemplar "
                        "named (e.g. s17)")

    p = sub.add_parser("tiles", help="inspect/export/import the tile store")
    tiles_sub = p.add_subparsers(dest="action", required=True)
    ps = tiles_sub.add_parser("show", help="list stored tiles")
    ps.add_argument("--store", required=True)
    pe = tiles_sub.add_parser("export", help="write a portable JSON dump")
    pe.add_argument("--store", required=True)
    pe.add_argument("--out", default=None, help="output path (default stdout)")
    pi = tiles_sub.add_parser("import", help="merge an exported dump")
    pi.add_argument("--store", required=True)
    pi.add_argument("from", metavar="FROM", help="exported JSON to merge")
    pi.add_argument("--overwrite", action="store_true",
                    help="replace existing entries on key collision")

    p = sub.add_parser(
        "conformance",
        help="differential conformance suite for the deform kernels")
    conf_sub = p.add_subparsers(dest="action", required=True)
    pr = conf_sub.add_parser(
        "run", help="generate cases and run the full check catalogue")
    pr.add_argument("--device", default="xavier")
    pr.add_argument("--cases", type=int, default=200,
                    help="number of cases to generate (default 200)")
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--out", default="results/conformance",
                    help="directory for failure repro JSONs")
    pr.add_argument("--no-shrink", action="store_true",
                    help="serialise failures without minimising them")
    pr.add_argument("--inject", default=None,
                    choices=["flip-bilinear", "drop-quantization"],
                    help="inject a known kernel fault (suite self-test; "
                         "the run is expected to FAIL)")
    pr.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="also export the metrics registry as JSON")
    pp = conf_sub.add_parser(
        "replay", help="re-run one failure repro JSON deterministically")
    pp.add_argument("repro", metavar="REPRO_JSON",
                    help="path written by a failing `conformance run`")
    pp.add_argument("--device", default="xavier")
    pp.add_argument("--inject", default=None,
                    choices=["flip-bilinear", "drop-quantization"],
                    help="replay under the same injected fault")

    p = sub.add_parser(
        "fleet", help="heterogeneous fleet scheduler (docs/fleet.md)")
    fleet_sub = p.add_subparsers(dest="action", required=True)
    fleet_common = argparse.ArgumentParser(add_help=False)
    fleet_common.add_argument("--devices", default="xavier,2080ti",
                              help="comma-separated device presets, one "
                                   "worker each (default: xavier,2080ti)")
    fleet_common.add_argument("--backend", default="tex2dpp",
                              choices=["pytorch", "tex2d", "tex2dpp"])
    fleet_common.add_argument("--router", default="cost",
                              choices=["cost", "shard-cost", "round-robin",
                                       "random"])
    fleet_common.add_argument("--shard", default="off",
                              choices=["off", "cost", "always"],
                              help="intra-request parallelism: split "
                                   "deformable layers across workers when "
                                   "the interconnect-aware cost model says "
                                   "it wins (cost), always take the widest "
                                   "split (always), or never (off)")
    fleet_common.add_argument("--arch", default="r50s")
    fleet_common.add_argument("--task", default="classify",
                              choices=["classify", "detect"])
    fleet_common.add_argument("--input-size", type=int, default=32)
    fleet_common.add_argument("--max-batch", type=int, default=4)
    fleet_common.add_argument("--queue-capacity", type=int, default=16)
    fleet_common.add_argument("--max-attempts", type=int, default=3)
    fleet_common.add_argument("--breaker-threshold", type=int, default=3)
    fleet_common.add_argument("--breaker-cooldown", type=float, default=50.0,
                              metavar="MS")
    fleet_common.add_argument("--seed", type=int, default=0)
    fleet_common.add_argument("--fused", action="store_true",
                              help="fused execution on every worker engine "
                                   "(bit-identical outputs; see "
                                   "docs/performance.md)")
    fr = fleet_sub.add_parser(
        "run", parents=[fleet_common],
        help="serve a request stream across the fleet")
    fr.add_argument("--requests", type=int, default=8)
    fr.add_argument("--deadline", type=float, default=None, metavar="MS",
                    help="per-request deadline in simulated ms "
                         "(default: none)")
    fr.add_argument("--fault", action="append", default=None,
                    metavar="WORKER=KIND[:START-END][:xFACTOR]",
                    help="inject a fault (kinds: crash, latency, wedge; "
                         "times in sim ms); repeatable. Workers are named "
                         "w<i>-<device>, e.g. w1-rtx-2080ti=crash:0-20")
    fr.add_argument("--store", default=None,
                    help="tile-store path for per-device warm start")
    fr.add_argument("--show-decisions", type=int, default=12)
    fr.add_argument("--trace", default=None, metavar="PATH",
                    help="also export a Chrome trace JSON of the run")
    fr.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="also export the metrics registry as JSON")
    fr.add_argument("--slo", action="store_true",
                    help="evaluate the fleet's default SLOs after the run "
                         "and print per-window attainment tables with burn "
                         "rates and exemplar span ids")
    fr.add_argument("--slo-p99-ms", type=float, default=0.5, metavar="MS",
                    help="p99 latency threshold for the default SLOs "
                         "(simulated ms; default 0.5)")
    fr.add_argument("--slo-window", type=float, default=None, metavar="MS",
                    help="SLO window width in simulated ms "
                         "(default 0.25)")
    fr.add_argument("--loadgen", default=None, metavar="SPEC",
                    help="open-loop traffic instead of --requests: "
                         "n=400,duration=50,diurnal=0.5,cycles=2,"
                         "burst=10-14x4,classes=small:3:16:2.0:0|"
                         "large:1:32:8.0:1,seed=3; a class is "
                         "name:weight:size[:deadline[:priority"
                         "[:session-frames]]] — session-frames groups "
                         "arrivals into video sessions (docs/streaming.md; "
                         "see docs/fleet.md)")
    fr.add_argument("--autoscale", default=None, metavar="POLICY",
                    help="elastic worker-set policy (needs --loadgen): "
                         "min=1,max=4,catalogue=xavier|2080ti,p99=0.5,"
                         "burn=1.0,depth=4,warm=1,cold=6 "
                         "(see docs/fleet.md)")
    fr.add_argument("--load-levels", default="1", metavar="F1,F2,...",
                    help="offered-load multipliers swept over --loadgen; "
                         "one SLO-attainment row per level (default: 1)")
    fleet_sub.add_parser(
        "plan", parents=[fleet_common],
        help="show the router's per-worker ECT view without serving")

    p = sub.add_parser(
        "metrics", help="convert metrics snapshots (Prometheus exposition)")
    metrics_sub = p.add_subparsers(dest="action", required=True)
    pm = metrics_sub.add_parser(
        "export", help="metrics.json snapshot -> Prometheus text")
    pm.add_argument("snapshot", metavar="METRICS_JSON",
                    help="snapshot written by --metrics-out / registry.write")
    pm.add_argument("--out", default=None,
                    help="output path (default stdout)")

    p = sub.add_parser(
        "bench", help="bench-regression flight recorder (docs/observability.md)")
    bench_sub = p.add_subparsers(dest="action", required=True)
    pb = bench_sub.add_parser(
        "compare",
        help="compare BENCH_*.json snapshot sets; exit 1 on regression")
    pb.add_argument("baseline", metavar="BASELINE",
                    help="baseline BENCH_*.json file or directory")
    pb.add_argument("current", metavar="CURRENT",
                    help="current BENCH_*.json file or directory")
    pb.add_argument("--json-out", default=None, metavar="PATH",
                    help="write the verdict JSON here")
    pb.add_argument("--markdown-out", default=None, metavar="PATH",
                    help="write the markdown table here")

    p = sub.add_parser("latency-table", help="build the NAS t(w_n) table")
    p.add_argument("--device", default="xavier")
    p.add_argument("--arch", default="r101s")
    p.add_argument("--backend", default="pytorch")
    p.add_argument("--save", default=None, help="write JSON to this path")

    p = sub.add_parser("profile", help="nvprof counters for one layer")
    p.add_argument("--device", default="xavier")
    p.add_argument("--layer", required=True)
    p.add_argument("--bound", type=float, default=7.0)
    return parser


COMMANDS = {
    "devices": cmd_devices,
    "layers": cmd_layers,
    "end-to-end": cmd_end_to_end,
    "tune": cmd_tune,
    "latency-table": cmd_latency_table,
    "profile": cmd_profile,
    "serve": cmd_serve,
    "tiles": cmd_tiles,
    "trace": cmd_trace,
    "conformance": cmd_conformance,
    "fleet": cmd_fleet,
    "metrics": cmd_metrics,
    "bench": cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
