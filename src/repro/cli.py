"""Command-line interface: ``python -m repro.cli <command>``.

Thin, scriptable entry points over the library — the commands a downstream
user reaches for first:

* ``devices``       — list the simulated GPU presets;
* ``layers``        — per-layer backend comparison (Table II/IV rows);
* ``end-to-end``    — the Table III trajectory for a device;
* ``tune``          — autotune the CTA tile for one layer shape;
* ``latency-table`` — build (and optionally save) the NAS latency table;
* ``profile``       — nvprof-style counters for one layer on all backends.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.gpusim.device import DEVICES, get_device
from repro.kernels.config import TABLE2_LAYERS, LayerConfig
from repro.pipeline.reporting import format_table


def _layer_from_arg(text: str) -> LayerConfig:
    """Parse ``CIN,COUT,H,W[,STRIDE]`` into a LayerConfig."""
    parts = [int(p) for p in text.split(",")]
    if len(parts) not in (4, 5):
        raise argparse.ArgumentTypeError(
            "layer must be CIN,COUT,H,W[,STRIDE]")
    stride = parts[4] if len(parts) == 5 else 1
    return LayerConfig(parts[0], parts[1], parts[2], parts[3],
                       stride=stride)


def cmd_devices(args) -> int:
    """``repro devices`` — list the simulated GPU presets."""
    rows = [[s.name, s.num_sms, s.core_clock_ghz, s.dram_bandwidth_gbps,
             s.tex_cache_kb_per_sm, round(s.peak_gflops / 1000, 2)]
            for s in DEVICES.values()]
    print(format_table(
        ["device", "SMs", "clock (GHz)", "DRAM (GB/s)", "tex $ (KB/SM)",
         "peak (TFLOP/s)"], rows, title="Simulated GPU presets"))
    return 0


def cmd_layers(args) -> int:
    """``repro layers`` — per-layer backend latency comparison."""
    from repro.kernels.dispatch import run_layer_all_backends

    spec = get_device(args.device)
    layers = ([_layer_from_arg(args.layer)] if args.layer
              else list(TABLE2_LAYERS))
    rows = []
    for cfg in layers:
        res = run_layer_all_backends(cfg, spec, bound=args.bound,
                                     compute_output=False)
        bl = res["pytorch"].sample_kernel.duration_ms
        t2 = res["tex2d"].sample_kernel.duration_ms
        tp = res["tex2dpp"].sample_kernel.duration_ms
        rows.append([cfg.label(), round(bl, 3), round(t2, 3), round(tp, 3),
                     f"{bl / tp:.2f}x"])
    print(format_table(
        ["layer", "PyTorch (ms)", "tex2D (ms)", "tex2D++ (ms)", "speedup"],
        rows, title=f"Deformable operation on {spec.name}"))
    return 0


def cmd_end_to_end(args) -> int:
    """``repro end-to-end`` — the Table III latency trajectory."""
    from repro.nas.search import manual_interval_placement
    from repro.pipeline.geometry import paper_scale_geometry
    from repro.pipeline.inference import network_latency_ms

    spec = get_device(args.device)
    geo = paper_scale_geometry(args.arch)
    manual = manual_interval_placement(geo.num_sites, 3)
    searched = list(manual)
    on = [i for i, v in enumerate(searched) if v]
    searched[on[1]] = False
    baseline = network_latency_ms(geo, manual, spec).total_ms
    rows = []
    for label, placement, kw in (
            ("YOLACT++ baseline", manual, {}),
            ("interval search", searched, {}),
            ("search+tex2d", searched, dict(backend="tex2d")),
            ("search+light+bound+tex2dpp", searched,
             dict(backend="tex2dpp", lightweight=True, bound=7.0))):
        t = network_latency_ms(geo, placement, spec, **kw).total_ms
        rows.append([label, sum(placement), round(t, 1),
                     f"{baseline / t:.2f}x"])
    print(format_table(["configuration", "# DCNs", "ms", "speedup"], rows,
                       title=f"End-to-end {geo.name} on {spec.name}"))
    return 0


def cmd_tune(args) -> int:
    """``repro tune`` — Bayesian tile-size search for one layer."""
    from repro.autotune.tuner import TileTuner

    spec = get_device(args.device)
    cfg = _layer_from_arg(args.layer)
    tuner = TileTuner(spec, backend=args.backend, budget=args.budget)
    result = tuner.tune(cfg, args.method)
    print(f"best tile for {cfg.label()} on {spec.name} [{args.backend}]: "
          f"{result.best_point} @ {result.best_value:.4f} ms "
          f"({result.evaluations} evaluations)")
    return 0


def cmd_latency_table(args) -> int:
    """``repro latency-table`` — build (and save) the NAS t(w_n) table."""
    from repro.nas.latency_table import LatencyTable
    from repro.pipeline.geometry import candidate_site_configs

    spec = get_device(args.device)
    table = LatencyTable(spec, backend=args.backend)
    table.build(candidate_site_configs(args.arch))
    rows = [[cfg.label(), round(lat.regular_ms, 3),
             round(lat.deform_ms, 3), round(lat.extra_ms, 3)]
            for cfg, lat in table.items()]
    print(format_table(
        ["site", "regular (ms)", "deformable (ms)", "extra (ms)"], rows,
        title=f"t(w_n) lookup table for {args.arch} on {spec.name}"))
    if args.save:
        table.save(args.save)
        print(f"saved to {args.save}")
    return 0


def cmd_profile(args) -> int:
    """``repro profile`` — nvprof-style counters for one layer."""
    from repro.kernels.dispatch import run_layer_all_backends

    spec = get_device(args.device)
    cfg = _layer_from_arg(args.layer)
    res = run_layer_all_backends(cfg, spec, bound=args.bound,
                                 compute_output=False)
    rows = []
    for backend in ("pytorch", "tex2d", "tex2dpp"):
        s = res[backend].sample_kernel
        rows.append([backend, round(s.duration_ms, 4), round(s.mflop, 2),
                     round(s.gld_efficiency, 1),
                     round(s.gld_transactions_per_request, 2),
                     int(s.tex_cache_requests),
                     round(s.tex_cache_hit_rate, 1)])
    print(format_table(
        ["kernel", "ms", "MFLOP", "GLD eff %", "trans/req", "tex req",
         "tex hit %"], rows,
        title=f"nvprof-style counters for {cfg.label()} on {spec.name}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DEFCON reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list simulated GPU presets")

    p = sub.add_parser("layers", help="per-layer backend comparison")
    p.add_argument("--device", default="xavier")
    p.add_argument("--layer", default=None,
                   help="CIN,COUT,H,W[,STRIDE]; default: Table II shapes")
    p.add_argument("--bound", type=float, default=7.0)

    p = sub.add_parser("end-to-end", help="Table III trajectory")
    p.add_argument("--device", default="xavier")
    p.add_argument("--arch", default="r101s")

    p = sub.add_parser("tune", help="autotune the CTA tile for a layer")
    p.add_argument("--device", default="xavier")
    p.add_argument("--layer", required=True)
    p.add_argument("--backend", default="tex2d",
                   choices=["tex2d", "tex2dpp"])
    p.add_argument("--budget", type=int, default=14)
    p.add_argument("--method", default="bayes",
                   choices=["bayes", "random", "grid"])

    p = sub.add_parser("latency-table", help="build the NAS t(w_n) table")
    p.add_argument("--device", default="xavier")
    p.add_argument("--arch", default="r101s")
    p.add_argument("--backend", default="pytorch")
    p.add_argument("--save", default=None, help="write JSON to this path")

    p = sub.add_parser("profile", help="nvprof counters for one layer")
    p.add_argument("--device", default="xavier")
    p.add_argument("--layer", required=True)
    p.add_argument("--bound", type=float, default=7.0)
    return parser


COMMANDS = {
    "devices": cmd_devices,
    "layers": cmd_layers,
    "end-to-end": cmd_end_to_end,
    "tune": cmd_tune,
    "latency-table": cmd_latency_table,
    "profile": cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
