"""Training and evaluation loops.

Mirrors the paper's recipe in miniature: SGD with momentum 0.9, initial LR
1e-2 with step decay (MultiStepLR, floor 1e-6).  All loops are seeded and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.tensor import Tensor
from repro.nn import SGD, Adam, MultiStepLR
from repro.data.coco_map import EvalResult, GroundTruth, evaluate_map
from repro.data.dataset import ShapesDataset, classification_arrays
from repro.models.classifier import ShapeClassifier
from repro.models.yolact import YolactLite
from repro.pipeline.losses import classification_loss, detection_loss


@dataclass
class TrainConfig:
    """Training hyperparameters.

    The paper trains full-scale YOLACT++ with SGD (momentum 0.9, LR 1e-2
    stepped down to 1e-6).  At the reproduction's scale (hundreds of
    images, minutes of training) Adam converges several times faster to
    the same orderings, so it is the default; ``optimizer='sgd'`` restores
    the paper's recipe.
    """

    epochs: int = 8
    batch_size: int = 16
    optimizer: str = "adam"
    lr: float = 2e-3
    momentum: float = 0.9
    weight_decay: float = 1e-4
    milestone_fractions: tuple = (0.6, 0.85)
    seed: int = 0

    def build_optimizer(self, params):
        if self.optimizer == "adam":
            return Adam(params, lr=self.lr,
                        weight_decay=self.weight_decay)
        if self.optimizer == "sgd":
            return SGD(params, lr=self.lr, momentum=self.momentum,
                       weight_decay=self.weight_decay)
        raise ValueError(f"unknown optimizer {self.optimizer!r}")


@dataclass
class TrainLog:
    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_detector(model: YolactLite, dataset: ShapesDataset,
                   config: TrainConfig = TrainConfig(),
                   extra_loss: Optional[Callable[[YolactLite], Tensor]] = None,
                   progress: Optional[Callable[[str], None]] = None
                   ) -> TrainLog:
    """Train YolactLite on the shapes dataset.

    ``extra_loss`` hooks auxiliary penalties into every step — e.g. the
    offset-regularisation term of Table V.
    """
    opt = config.build_optimizer(model.parameters())
    steps_per_epoch = max(1, int(np.ceil(len(dataset) / config.batch_size)))
    total = config.epochs * steps_per_epoch
    sched = MultiStepLR(opt, [int(f * total)
                              for f in config.milestone_fractions])
    log = TrainLog()
    model.train()
    for epoch in range(config.epochs):
        for images, samples in dataset.batches(config.batch_size,
                                               seed=config.seed + epoch):
            out = model(Tensor(images))
            loss = detection_loss(out, samples, dataset.size)
            if extra_loss is not None:
                aux = extra_loss(model)
                if aux is not None:
                    loss = loss + aux
            opt.zero_grad()
            loss.backward()
            opt.step()
            sched.step()
            log.losses.append(float(loss.item()))
        if progress is not None:
            progress(f"epoch {epoch + 1}/{config.epochs} "
                     f"loss={log.losses[-1]:.4f}")
    return log


def evaluate_detector(model: YolactLite, dataset: ShapesDataset,
                      score_threshold: float = 0.05,
                      batch_size: int = 16) -> EvalResult:
    """COCO-style box/mask mAP of the model on a dataset."""
    dets, gts = [], []
    image_id = 0
    for images, samples in dataset.batches(batch_size):
        ids = list(range(image_id, image_id + len(samples)))
        dets.extend(model.detect(images, score_threshold=score_threshold,
                                 image_ids=ids))
        for i, sample in zip(ids, samples):
            for inst in sample.instances:
                gts.append(GroundTruth(image_id=i, label=inst.label,
                                       box=np.array(inst.box),
                                       mask=inst.mask))
        image_id += len(samples)
    return evaluate_map(dets, gts)


def train_classifier(model: ShapeClassifier, dataset: ShapesDataset,
                     config: TrainConfig = TrainConfig(),
                     progress: Optional[Callable[[str], None]] = None
                     ) -> TrainLog:
    """Train the classification proxy on single-instance samples."""
    xs, ys = classification_arrays(dataset)
    opt = config.build_optimizer(model.parameters())
    steps_per_epoch = max(1, int(np.ceil(len(xs) / config.batch_size)))
    total = config.epochs * steps_per_epoch
    sched = MultiStepLR(opt, [int(f * total)
                              for f in config.milestone_fractions])
    log = TrainLog()
    rng = np.random.default_rng(config.seed)
    model.train()
    for epoch in range(config.epochs):
        order = rng.permutation(len(xs))
        for start in range(0, len(xs), config.batch_size):
            idx = order[start:start + config.batch_size]
            logits = model(Tensor(xs[idx]))
            loss = classification_loss(logits, ys[idx])
            opt.zero_grad()
            loss.backward()
            opt.step()
            sched.step()
            log.losses.append(float(loss.item()))
        if progress is not None:
            progress(f"epoch {epoch + 1}/{config.epochs} "
                     f"loss={log.losses[-1]:.4f}")
    return log


def evaluate_classifier(model: ShapeClassifier,
                        dataset: ShapesDataset) -> float:
    xs, ys = classification_arrays(dataset)
    return model.accuracy(xs, ys)
