"""Experiment orchestration: the accuracy side of the paper's evaluation.

Bundles dataset creation, model construction per :class:`DefconConfig`,
training, COCO-style evaluation, and the interval search — so each bench
(`benchmarks/bench_table*.py`) is a thin driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.data.dataset import ShapesDataset, StreamingShapesDataset
from repro.data.shapes import NUM_CLASSES
from repro.deform.layers import DeformConv2d
from repro.deform.offsets import DEFAULT_BOUND, offset_regularization
from repro.gpusim.device import DeviceSpec, XAVIER
from repro.models.resnet import STAGE_BLOCKS
from repro.models.zoo import build_classifier, build_yolact, dual_path_sites
from repro.nas.latency_table import LatencyTable
from repro.nas.search import (IntervalSearch, SearchConfig, SearchResult,
                              manual_interval_placement)
from repro.pipeline.config import DefconConfig
from repro.pipeline.geometry import candidate_site_configs
from repro.pipeline.losses import detection_loss
from repro.pipeline.train import (TrainConfig, evaluate_classifier,
                                  evaluate_detector, train_classifier,
                                  train_detector)
from repro.tensor import Tensor


@dataclass
class ExperimentSettings:
    """Shared knobs of one accuracy experiment family.

    ``task='classification'`` is the single-object proxy protocol used for
    the accuracy tables (see EXPERIMENTS.md): same deformed-shapes
    distribution, minutes instead of hours, clean orderings.
    ``task='detection'`` trains the full YolactLite with streamed data and
    evaluates COCO-style mAP.
    """

    arch: str = "r50s"
    input_size: int = 64
    train_samples: int = 320
    val_samples: int = 128
    deformation: float = 1.0
    task: str = "classification"     # or "detection"
    #: classification trains best with the paper's SGD recipe at this
    #: scale; detection (YolactLite multi-task) prefers Adam — pass an
    #: explicit TrainConfig when switching tasks.
    train: TrainConfig = field(default_factory=lambda: TrainConfig(
        epochs=8, batch_size=16, optimizer="sgd", lr=1e-2))
    search: SearchConfig = field(default_factory=lambda: SearchConfig(
        search_epochs=3, finetune_epochs=3, beta=0.05))
    seed: int = 0

    @property
    def num_sites(self) -> int:
        return sum(STAGE_BLOCKS[self.arch][1:])


@dataclass
class AccuracyRow:
    """One accuracy result row (Table I / III / V format)."""

    method: str
    num_dcn: int
    box_map: float
    mask_map: float
    mask_ap50: float
    accuracy: Optional[float] = None   # classification proxy, if measured
    placement: Optional[List[bool]] = None


class AccuracyExperiment:
    """Caches datasets and runs fixed-placement or searched configurations."""

    def __init__(self, settings: ExperimentSettings = ExperimentSettings(),
                 device: DeviceSpec = XAVIER):
        self.settings = settings
        self.device = device
        s = settings
        if s.task == "classification":
            # fixed single-object splits (the proxy protocol)
            self.train_set = ShapesDataset.generate(
                s.train_samples, size=s.input_size, seed=s.seed,
                deformation=s.deformation, num_objects=1)
            self.val_set = ShapesDataset.generate(
                s.val_samples, size=s.input_size, seed=s.seed + 9999,
                deformation=s.deformation, num_objects=1)
        else:
            # streamed training data (the generator is the distribution)
            self.train_set = StreamingShapesDataset(
                epoch_size=s.train_samples, size=s.input_size,
                deformation=s.deformation, seed=s.seed)
            self.val_set = self.train_set.materialise(s.val_samples,
                                                      seed=s.seed + 9999)
        self._latency_table: Optional[LatencyTable] = None

    # ------------------------------------------------------------------
    def manual_placement(self, interval: int = 3) -> List[bool]:
        return manual_interval_placement(self.settings.num_sites, interval)

    def site_latencies_ms(self) -> List[float]:
        """Paper-scale t(w_n) per candidate site (for the search penalty)."""
        if self._latency_table is None:
            self._latency_table = LatencyTable(self.device)
        sites = candidate_site_configs(self.settings.arch)
        return [self._latency_table.deform_ms(cfg) for cfg in sites]

    # ------------------------------------------------------------------
    def run_fixed(self, method: str, placement: List[bool],
                  config: DefconConfig = DefconConfig(),
                  progress=None) -> AccuracyRow:
        """Train + evaluate a model with a fixed DCN placement."""
        s = self.settings
        if s.task == "classification":
            model = build_classifier(s.arch, input_size=s.input_size,
                                     num_classes=NUM_CLASSES,
                                     placement=placement,
                                     lightweight=config.lightweight,
                                     bound=config.bound,
                                     rounded=config.rounded, seed=s.seed)
            train_classifier(model, self.train_set, s.train,
                             progress=progress)
            acc = evaluate_classifier(model, self.val_set)
            return AccuracyRow(method=method, num_dcn=sum(placement),
                               box_map=float("nan"), mask_map=float("nan"),
                               mask_ap50=float("nan"), accuracy=acc,
                               placement=list(placement))
        model = build_yolact(s.arch, input_size=s.input_size,
                             num_classes=NUM_CLASSES, placement=placement,
                             lightweight=config.lightweight,
                             bound=config.bound, rounded=config.rounded,
                             seed=s.seed)
        extra = None
        if config.regularization:
            def extra(m):
                terms = [offset_regularization(mod.last_offsets,
                                               DEFAULT_BOUND)
                         for mod in m.modules()
                         if isinstance(mod, DeformConv2d)
                         and mod.last_offsets is not None]
                if not terms:
                    return None
                total = terms[0]
                for t in terms[1:]:
                    total = total + t
                return total * 0.1
        train_detector(model, self.train_set, s.train, extra_loss=extra,
                       progress=progress)
        result = evaluate_detector(model, self.val_set)
        return AccuracyRow(method=method, num_dcn=sum(placement),
                           box_map=100 * result.box_map,
                           mask_map=100 * result.mask_map,
                           mask_ap50=100 * result.mask_ap50,
                           placement=list(placement))

    # ------------------------------------------------------------------
    def run_search(self, config: DefconConfig = DefconConfig(search=True),
                   target_latency_ms: Optional[float] = None,
                   progress=None) -> SearchResult:
        """Run the interval search (Algorithm 1) on the supernet."""
        s = self.settings
        latencies = self.site_latencies_ms()
        if target_latency_ms is None:
            # Default target: the manual interval-3 deformable budget —
            # "at least as fast as the hand-crafted placement" (greedy
            # selection fills strictly under it, so the searched model is
            # never slower and usually cheaper).
            manual = self.manual_placement()
            target_latency_ms = sum(
                t for t, u in zip(latencies, manual) if u)
        search_cfg = replace(s.search,
                             target_latency_ms=target_latency_ms,
                             seed=s.seed)
        if s.task == "classification":
            supernet = build_classifier(s.arch, input_size=s.input_size,
                                        num_classes=NUM_CLASSES,
                                        supernet=True,
                                        lightweight=config.lightweight,
                                        bound=config.bound, seed=s.seed)
            from repro.data.dataset import classification_arrays
            from repro.pipeline.losses import classification_loss
            xs, ys = classification_arrays(self.train_set)
            bs = s.train.batch_size

            def batches():
                for start in range(0, len(xs), bs):
                    yield xs[start:start + bs], ys[start:start + bs]

            def loss_fn(model, batch):
                bx, by = batch
                return classification_loss(model(Tensor(bx)), by)
        else:
            supernet = build_yolact(s.arch, input_size=s.input_size,
                                    num_classes=NUM_CLASSES, supernet=True,
                                    lightweight=config.lightweight,
                                    bound=config.bound, seed=s.seed)
            bs = s.train.batch_size

            def batches():
                return self.train_set.batches(bs, seed=s.seed)

            def loss_fn(model, batch):
                images, samples = batch
                return detection_loss(model(Tensor(images)), samples,
                                      s.input_size)

        sites = dual_path_sites(supernet)
        search = IntervalSearch(supernet, sites, latencies, search_cfg)
        result = search.run(batches, loss_fn, progress=progress)
        self._searched_supernet = supernet
        return result

    def evaluate_searched(self, result: SearchResult,
                          config: DefconConfig = DefconConfig(search=True),
                          progress=None) -> AccuracyRow:
        """Train the discretised searched architecture from scratch and
        evaluate it (the paper fine-tunes; retraining at our scale is
        equivalent and keeps comparisons seed-matched)."""
        return self.run_fixed(f"ours ({config.label()})", result.placement,
                              config=config, progress=progress)
