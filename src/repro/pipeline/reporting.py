"""Paper-style table and figure formatting (plain-text, terminal friendly).

Every bench prints through these helpers so the output lines up with the
corresponding table/figure of the paper, making side-by-side comparison
(EXPERIMENTS.md) mechanical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else ""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_speedup_bars(labels: Sequence[str], values: Sequence[float],
                        title: str = "", width: int = 40,
                        unit: str = "x") -> str:
    """ASCII bar chart — the textual analogue of the paper's bar figures."""
    if not values:
        return title
    peak = max(values)
    lines = [title] if title else []
    label_w = max(len(l) for l in labels)
    for label, v in zip(labels, values):
        bar = "#" * max(1, int(round(width * v / peak)))
        lines.append(f"{label.rjust(label_w)} | {bar} {v:.2f}{unit}")
    return "\n".join(lines)


def format_placement_diagram(placement: Sequence[bool],
                             stage_sizes: Sequence[int],
                             label: str = "") -> str:
    """Fig. 6-style block diagram: one box per candidate 3×3 site.

    ``[D]`` marks a deformable site, ``[.]`` a regular conv; ``|`` separates
    backbone stages.
    """
    out = []
    idx = 0
    for n in stage_sizes:
        boxes = "".join("[D]" if placement[idx + j] else "[.]"
                        for j in range(n))
        out.append(boxes)
        idx += n
    body = " | ".join(out)
    prefix = f"{label}: " if label else ""
    return f"{prefix}{body}  ({sum(placement)} DCNs)"


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md extracts)."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
