"""Training losses for YolactLite and the classification proxy.

The detection loss follows YOLACT's recipe in miniature: per-cell
objectness (BCE), classification (CE) and box regression (smooth-L1) at
cells containing an instance centre, plus a prototype-assembly mask loss
(BCE of the coefficient-combined prototypes against the downsampled GT
mask) — the part that actually exercises the backbone's spatial features
and therefore the deformable convolutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.tensor import Tensor
from repro.nn import functional as F
from repro.data.shapes import Sample
from repro.models.yolact import CELL_RANGE


@dataclass(frozen=True)
class LossWeights:
    obj: float = 1.0
    cls: float = 1.0
    box: float = 5.0
    mask: float = 4.0
    #: positive cells are ~1 % of the grid; without re-weighting the
    #: objectness head collapses to "no object everywhere"
    obj_pos_weight: float = 12.0


def build_targets(samples: Sequence[Sample], grid: int, size: int):
    """Assign each GT instance to the grid cell containing its centre.

    Returns parallel index arrays plus per-positive targets, and the dense
    objectness target map.
    """
    b_idx, gy_idx, gx_idx, labels = [], [], [], []
    boxes, masks = [], []
    obj_target = np.zeros((len(samples), grid, grid), dtype=np.float32)
    # Dense classification supervision (FCOS-style): every cell whose
    # centre falls inside a GT box carries that instance's label.  The
    # centre cell alone gives the class head ~1 gradient per object per
    # step — far too sparse to generalise.
    cls_dense = np.full((len(samples), grid, grid), -1, dtype=np.int64)
    cell = size / grid
    for i, sample in enumerate(samples):
        for inst in sample.instances:
            x1, y1, x2, y2 = inst.box
            cx, cy = (x1 + x2) / 2, (y1 + y2) / 2
            gx = min(grid - 1, int(cx / cell))
            gy = min(grid - 1, int(cy / cell))
            gx1 = max(0, int(np.ceil(x1 / cell - 0.5)))
            gx2 = min(grid, int(np.floor(x2 / cell - 0.5)) + 1)
            gy1 = max(0, int(np.ceil(y1 / cell - 0.5)))
            gy2 = min(grid, int(np.floor(y2 / cell - 0.5)) + 1)
            cls_dense[i, gy1:gy2, gx1:gx2] = inst.label
            if obj_target[i, gy, gx] > 0:
                continue  # one instance per cell (rare at this density)
            obj_target[i, gy, gx] = 1.0
            b_idx.append(i)
            gy_idx.append(gy)
            gx_idx.append(gx)
            labels.append(inst.label)
            # cell-relative centre encoding (see models.yolact.CELL_RANGE)
            tx = (cx / cell - gx - 0.5) / CELL_RANGE + 0.5
            ty = (cy / cell - gy - 0.5) / CELL_RANGE + 0.5
            boxes.append([tx, ty, (x2 - x1) / size, (y2 - y1) / size])
            masks.append(inst.mask)
    return (np.array(b_idx), np.array(gy_idx), np.array(gx_idx),
            np.array(labels), np.array(boxes, dtype=np.float32).reshape(-1, 4),
            masks, obj_target, cls_dense)


def _downsample_mask(mask: np.ndarray, factor: int) -> np.ndarray:
    """Block-mean downsample of a boolean mask to the prototype grid."""
    h, w = mask.shape
    m = mask[: h - h % factor, : w - w % factor].astype(np.float32)
    m = m.reshape(h // factor, factor, w // factor, factor).mean(axis=(1, 3))
    return (m > 0.3).astype(np.float32)


def detection_loss(out: dict, samples: Sequence[Sample], size: int,
                   weights: LossWeights = LossWeights()) -> Tensor:
    """Total YOLACT-style loss for one minibatch."""
    grid = out["obj"].shape[-1]
    (b, gy, gx, labels, boxes, masks, obj_t, cls_dense) = build_targets(
        samples, grid, size)

    # Objectness everywhere, with positives re-weighted: per-element BCE
    # scaled by (1 + (w-1)·target) and averaged.
    obj_logits = out["obj"].reshape(out["obj"].shape[0], grid, grid)
    obj_target = Tensor(obj_t)
    per_cell = (obj_logits.relu() - obj_logits * obj_target
                + ((-obj_logits.abs()).exp() + 1.0).log())
    cell_weights = Tensor(
        1.0 + (weights.obj_pos_weight - 1.0) * obj_t)
    loss = (per_cell * cell_weights).mean() * weights.obj

    if len(b) == 0:
        return loss

    # Classification, densely over all in-box cells.
    db, dgy, dgx = np.nonzero(cls_dense >= 0)
    dense_labels = cls_dense[db, dgy, dgx]
    cls_logits = out["cls"].transpose(0, 2, 3, 1)[db, dgy, dgx]
    loss = loss + F.cross_entropy(cls_logits, dense_labels) * weights.cls

    # Boxes at positive cells: sigmoid(raw) vs normalised targets.
    box_pred = out["box"].transpose(0, 2, 3, 1)[b, gy, gx].sigmoid()
    loss = loss + F.smooth_l1(box_pred, boxes, beta=0.1) * weights.box

    # Masks: assemble prototypes with this cell's coefficients.  As in
    # YOLACT, the mask BCE is cropped to the ground-truth box and divided
    # by its area — the prototypes only need to model object interiors;
    # inference crops to the predicted box.
    proto = out["proto"]                       # (N, K, Hp, Wp)
    hp = proto.shape[-1]
    factor = size // hp
    coef = out["coef"].transpose(0, 2, 3, 1)[b, gy, gx]     # (M, K)
    m = len(b)
    proto_sel = proto[b]                                     # (M, K, Hp, Wp)
    mask_logits = (proto_sel * coef.reshape(m, -1, 1, 1)).sum(axis=1)
    if "mask_bias" in out:
        mask_logits = mask_logits + out["mask_bias"]
    mask_targets = np.stack([_downsample_mask(mk, factor) for mk in masks])
    crop = np.zeros_like(mask_targets)
    for j, mk in enumerate(masks):
        ys_m, xs_m = np.nonzero(mk)
        pad = 2 * factor
        y1 = max(0, (ys_m.min() - pad) // factor)
        y2 = min(hp, (ys_m.max() + pad) // factor + 1)
        x1 = max(0, (xs_m.min() - pad) // factor)
        x2 = min(hp, (xs_m.max() + pad) // factor + 1)
        crop[j, y1:y2, x1:x2] = 1.0 / max(1, (y2 - y1) * (x2 - x1))
    x_l = mask_logits
    t_m = Tensor(mask_targets)
    per_pixel = (x_l.relu() - x_l * t_m + ((-x_l.abs()).exp() + 1.0).log())
    mask_loss = (per_pixel * Tensor(crop / m)).sum()
    loss = loss + mask_loss * weights.mask
    return loss


def classification_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    return F.cross_entropy(logits, labels)
