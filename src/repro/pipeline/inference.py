"""End-to-end inference latency model (Table III, Fig. 9).

Walks a :class:`~repro.pipeline.geometry.NetworkGeometry` and prices every
layer on the simulated device:

* fixed convs  → im2col-GEMM latency;
* candidate sites without a DCN → regular 3×3 conv latency;
* candidate sites with a DCN    → offset-head convs (regular or
  lightweight) + the deformable operator on the selected backend
  (pytorch / tex2d / tex2dpp), with optionally autotuned tiles.

Per-layer kernel-launch overhead is included — on the Jetson it is a real
part of why fewer DCN layers (interval search) means a faster network.

Two calibrated rebalancing constants reproduce the composition the paper's
Table III implies (the baseline YOLACT++ spends nearly all its time in the
deformable layers and their offset heads):

* ``ENGINE_SPEEDUP`` — the non-DCN workload (standard convs and the filter
  GEMM) runs through an optimised inference engine (TensorRT-style fp16,
  as in YOLACTEdge on the same Jetson target); DCN sampling and the offset
  head fall back to the slow framework path.
* ``DCN_SAMPLE_SCALE`` — the framework's deformable sampling kernel on the
  Jetson is latency-bound well below the throughput model's estimate; this
  factor scales all three backends identically, so every backend-to-backend
  ratio (Table II / Fig. 7) is untouched.

Both were fitted once against the speedup column of Table III
(`tools/calibrate_devices.py` documents the procedure); per-configuration
differences still come from the mechanistic model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autotune.tuner import TileTuner
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import LaunchConfig, estimate_time_ms, gemm_cost
from repro.kernels.config import LayerConfig, synth_offsets
from repro.kernels.dispatch import run_deform_op
from repro.kernels.tex2d import DEFAULT_TILE
from repro.pipeline.geometry import NetworkGeometry

#: see module docstring — calibrated against Table III's speedup column
DCN_SAMPLE_SCALE = 12.0
ENGINE_SPEEDUP = 24.0


@dataclass
class LatencyBreakdown:
    """Where the milliseconds went."""

    fixed_ms: float = 0.0
    regular_site_ms: float = 0.0
    offset_head_ms: float = 0.0
    deform_op_ms: float = 0.0
    per_site: List[Dict[str, float]] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return (self.fixed_ms + self.regular_site_ms + self.offset_head_ms
                + self.deform_op_ms)


def conv_ms(cfg: LayerConfig, spec: DeviceSpec) -> float:
    """Latency of a regular convolution of this shape (im2col GEMM)."""
    l = cfg.out_pixels * cfg.batch
    gemm = gemm_cost(cfg.out_channels, l,
                     cfg.in_channels * cfg.kernel_size ** 2)
    launch = LaunchConfig(
        grid=max(1, -(-(cfg.out_channels * l) // (128 * 64))), block=256)
    return estimate_time_ms(gemm, launch, spec)


def offset_head_ms(site: LayerConfig, spec: DeviceSpec,
                   lightweight: bool) -> float:
    """Latency of the offset-prediction convs for one DCN site (step ①).

    Regular head: a full 3×3 conv C → 2·k²·dg.  Lightweight head (Eq. 9):
    depthwise 3×3 (C→C) + pointwise 1×1 (C → 2·k²·dg).
    """
    out_ch = site.offset_channels
    if not lightweight:
        head = LayerConfig(site.in_channels, out_ch, site.height, site.width,
                           kernel_size=3, stride=site.stride)
        return conv_ms(head, spec)
    # Depthwise 3×3: per-channel filters; model as GEMM-equivalent workload
    # with C independent single-channel convolutions.
    dw_l = site.out_pixels * site.batch
    dw = gemm_cost(site.in_channels, dw_l, 9, efficiency=0.45)
    dw_launch = LaunchConfig(
        grid=max(1, -(-(site.in_channels * dw_l) // 256)), block=256)
    dw_ms = estimate_time_ms(dw, dw_launch, spec)
    pw = LayerConfig(site.in_channels, out_ch, site.out_height,
                     site.out_width, kernel_size=1, padding=0)
    return dw_ms + conv_ms(pw, spec)


def deform_op_ms(site: LayerConfig, spec: DeviceSpec, backend: str,
                 bound: Optional[float], tile: Tuple[int, int] = DEFAULT_TILE,
                 seed: int = 0) -> float:
    """Latency of the deformable operator itself (step ②).

    The sampling kernel takes the slow fallback path (× DCN_SAMPLE_SCALE,
    identically for every backend); the filter GEMM rides the optimised
    engine (÷ ENGINE_SPEEDUP).
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=site.input_shape()).astype(np.float32)
    w = rng.normal(size=site.weight_shape()).astype(np.float32)
    off = synth_offsets(site, sigma=2.0, bound=bound, seed=seed)
    res = run_deform_op(backend, x, off, w, None, site, spec, tile=tile,
                        compute_output=False)
    sample, gemm = res.kernels[0], res.kernels[1]
    return (sample.duration_ms * DCN_SAMPLE_SCALE
            + gemm.duration_ms / ENGINE_SPEEDUP)


def profile_network(geometry: NetworkGeometry, placement: Sequence[bool],
                    spec: DeviceSpec, backend: str = "pytorch",
                    lightweight: bool = False,
                    bound: Optional[float] = None, seed: int = 0):
    """nvprof-style trace of one full inference: a ProfileLog whose records
    are every deformable sampling/GEMM kernel the network launches, so
    Fig. 10-style counter analysis works at network granularity."""
    from repro.gpusim.profiler import ProfileLog

    if len(placement) != geometry.num_sites:
        raise ValueError("placement length mismatch")
    log = ProfileLog()
    for cfg, use_dcn in zip(geometry.candidate_sites, placement):
        if not use_dcn:
            continue
        rng = np.random.default_rng(seed)
        x = rng.normal(size=cfg.input_shape()).astype(np.float32)
        w = rng.normal(size=cfg.weight_shape()).astype(np.float32)
        off = synth_offsets(cfg, sigma=2.0, bound=bound, seed=seed)
        res = run_deform_op(backend, x, off, w, None, cfg, spec,
                            compute_output=False)
        for k in res.kernels:
            log.add(k)
    return log


def network_latency_ms(geometry: NetworkGeometry, placement: Sequence[bool],
                       spec: DeviceSpec, backend: str = "pytorch",
                       lightweight: bool = False,
                       bound: Optional[float] = None,
                       tuner: Optional[TileTuner] = None,
                       seed: int = 0) -> LatencyBreakdown:
    """Price a full inference of the network under one configuration."""
    if len(placement) != geometry.num_sites:
        raise ValueError(
            f"placement has {len(placement)} entries; geometry has "
            f"{geometry.num_sites} sites")
    launch_ms = spec.kernel_launch_overhead_us / 1e3
    bd = LatencyBreakdown()
    for cfg in geometry.fixed_convs:
        bd.fixed_ms += (conv_ms(cfg, spec) + launch_ms) / ENGINE_SPEEDUP
    tile_cache: Dict[LayerConfig, Tuple[int, int]] = {}
    for cfg, use_dcn in zip(geometry.candidate_sites, placement):
        if not use_dcn:
            bd.regular_site_ms += (conv_ms(cfg, spec)
                                   + launch_ms) / ENGINE_SPEEDUP
            continue
        head = offset_head_ms(cfg, spec, lightweight) + launch_ms
        tile = DEFAULT_TILE
        if tuner is not None and backend in ("tex2d", "tex2dpp"):
            if cfg not in tile_cache:
                tile_cache[cfg] = tuner.best_tile(cfg)
            tile = tile_cache[cfg]
        op = deform_op_ms(cfg, spec, backend, bound, tile=tile, seed=seed)
        bd.offset_head_ms += head
        bd.deform_op_ms += op
        bd.per_site.append({
            "label": cfg.label(), "offset_head_ms": head, "deform_op_ms": op,
        })
    return bd
