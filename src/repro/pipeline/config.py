"""DEFCON optimisation configurations (the flag matrix of Table III)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.deform.offsets import DEFAULT_BOUND


@dataclass(frozen=True)
class DefconConfig:
    """One row of the paper's optimisation matrix.

    ``search``      — interval-searched placement (else manual interval-3);
    ``boundary``    — bounded deformation with P = 7;
    ``lightweight`` — depthwise+1×1 offset head;
    ``tex``         — inference backend: None (PyTorch), 'tex2d', 'tex2dpp';
    ``rounded`` / ``regularization`` — the Table V offset ablations.
    """

    search: bool = False
    boundary: bool = False
    lightweight: bool = False
    tex: Optional[str] = None
    rounded: bool = False
    regularization: bool = False

    @property
    def bound(self) -> Optional[float]:
        return DEFAULT_BOUND if self.boundary else None

    @property
    def backend(self) -> str:
        return self.tex if self.tex else "pytorch"

    def label(self) -> str:
        bits = []
        if self.search:
            bits.append("search")
        if self.boundary:
            bits.append("boundary")
        if self.lightweight:
            bits.append("light")
        if self.tex:
            bits.append(self.tex)
        if self.rounded:
            bits.append("round")
        if self.regularization:
            bits.append("reg")
        return "+".join(bits) if bits else "baseline"


#: The six rows of Table III (tex column covers both tex2D and tex2D++ —
#: the bench reports both backends for each checked row).
TABLE3_ROWS: List[DefconConfig] = [
    DefconConfig(),                                             # YOLACT++
    DefconConfig(search=True),
    DefconConfig(search=True, tex="tex2d"),
    DefconConfig(search=True, boundary=True, tex="tex2d"),
    DefconConfig(search=True, lightweight=True, tex="tex2d"),
    DefconConfig(search=True, boundary=True, lightweight=True, tex="tex2d"),
]

#: Table V rows: offset-policy ablations on the searched model.
TABLE5_ROWS: List[DefconConfig] = [
    DefconConfig(search=True, boundary=True, lightweight=True),
    DefconConfig(search=True, boundary=True, lightweight=True,
                 regularization=True),
    DefconConfig(search=True, boundary=True, lightweight=True, rounded=True),
]
