"""DEFCON end-to-end pipeline: configs, training, latency model, reporting."""

from repro.pipeline.config import TABLE3_ROWS, TABLE5_ROWS, DefconConfig
from repro.pipeline.geometry import (NetworkGeometry, candidate_site_configs,
                                     fixed_conv_configs, paper_scale_geometry)
from repro.pipeline.inference import (DCN_SAMPLE_SCALE, ENGINE_SPEEDUP,
                                      LatencyBreakdown, conv_ms,
                                      deform_op_ms, network_latency_ms,
                                      offset_head_ms, profile_network)
from repro.pipeline.losses import (LossWeights, build_targets,
                                   classification_loss, detection_loss)
from repro.pipeline.train import (TrainConfig, TrainLog, evaluate_classifier,
                                  evaluate_detector, train_classifier,
                                  train_detector)
from repro.pipeline.experiment import (AccuracyExperiment, AccuracyRow,
                                       ExperimentSettings)
from repro.pipeline.engine import DefconEngine, TextureRuntime
from repro.pipeline.reporting import (format_placement_diagram,
                                      format_speedup_bars, format_table,
                                      markdown_table)

__all__ = [
    "DefconConfig", "TABLE3_ROWS", "TABLE5_ROWS",
    "NetworkGeometry", "paper_scale_geometry", "candidate_site_configs",
    "fixed_conv_configs",
    "LatencyBreakdown", "network_latency_ms", "conv_ms", "deform_op_ms",
    "offset_head_ms", "profile_network", "DCN_SAMPLE_SCALE", "ENGINE_SPEEDUP",
    "detection_loss", "classification_loss", "build_targets", "LossWeights",
    "TrainConfig", "TrainLog", "train_detector", "evaluate_detector",
    "train_classifier", "evaluate_classifier",
    "AccuracyExperiment", "AccuracyRow", "ExperimentSettings",
    "DefconEngine", "TextureRuntime",
    "format_table", "format_speedup_bars", "format_placement_diagram",
    "markdown_table",
]
