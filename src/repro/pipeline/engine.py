"""DefconEngine — run a *trained* model through the simulated GPU backends.

This is the deployment story of the paper, end to end: take the network
the interval search produced, bind its deformable layers to the tex2D /
tex2D++ kernels (with autotuned tiles), and run real inference — the
layers execute with their *learned* offsets through the functional texture
unit, so the engine simultaneously produces:

* the model's actual detections (numerics go through 1.8 fixed-point
  hardware filtering — accuracy parity is observable, not assumed), and
* an nvprof-style :class:`~repro.gpusim.profiler.ProfileLog` of every
  deformable kernel launch — each record attributed to the model layer
  that launched it, so ``per_layer_rows()`` reproduces the paper's
  Table II/IV per-layer breakdown for any model.

Observability (docs/observability.md): pass a
:class:`~repro.obs.registry.MetricsRegistry` to share one metrics home
with the serving layer (the engine registers its tile-cache and autotune
counters onto it), and a :class:`~repro.obs.tracer.SpanTracer` to stream
every kernel launch onto the simulated-GPU trace timeline.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.autotune.tuner import TileTuner
from repro.deform.layers import DeformConv2d
from repro.gpusim.device import DeviceSpec
from repro.gpusim.profiler import ProfileLog
from repro.kernels.config import LayerConfig
from repro.kernels.dispatch import BACKENDS, run_deform_op
from repro.kernels.fused import validate_execution
from repro.kernels.plancache import PlanCache, PlanCacheStats
from repro.kernels.tex2d import DEFAULT_TILE
from repro.kernels.tiling import TileKey, nearest_tile_key, tile_key
from repro.nn import Module
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import SpanTracer
from repro.tensor import Tensor

logger = logging.getLogger(__name__)


class TileCacheStats:
    """Observability for the tuned-tile lookup (nothing falls back silently).

    * ``hits`` — exact tuned-geometry matches;
    * ``near_hits`` — no exact match, but a tile tuned for the nearest
      geometry with the same channels/stride was substituted (resized or
      otherwise non-nominal inputs land here);
    * ``misses`` — nothing tuned is applicable and the untuned
      ``DEFAULT_TILE`` ran (each distinct geometry is also logged once).

    Increments are lock-protected (the serving worker thread and the
    caller's thread may both drive the engine) and mirrored onto a
    :class:`~repro.obs.registry.MetricsRegistry` counter
    (``engine_tile_cache_lookups{result=...}``) when one is bound.
    """

    def __init__(self):
        self.hits = 0
        self.near_hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._counter = None

    def bind_registry(self, registry: MetricsRegistry) -> "TileCacheStats":
        with self._lock:
            self._counter = registry.counter(
                "engine_tile_cache_lookups",
                help="runtime tile lookups by result (hit/near_hit/miss)")
            # re-publish anything counted before binding
            for result, n in (("hit", self.hits), ("near_hit", self.near_hits),
                              ("miss", self.misses)):
                if n:
                    self._counter.inc(n, result=result)
        return self

    def _record(self, attr: str, result: str) -> None:
        with self._lock:
            setattr(self, attr, getattr(self, attr) + 1)
            counter = self._counter
        if counter is not None:
            counter.inc(result=result)

    def record_hit(self) -> None:
        self._record("hits", "hit")

    def record_near_hit(self) -> None:
        self._record("near_hits", "near_hit")

    def record_miss(self) -> None:
        self._record("misses", "miss")

    @property
    def lookups(self) -> int:
        return self.hits + self.near_hits + self.misses

    def __repr__(self) -> str:
        return (f"TileCacheStats(hits={self.hits}, "
                f"near_hits={self.near_hits}, misses={self.misses})")


@dataclass
class TextureRuntime:
    """Per-layer execution binding installed on DeformConv2d modules."""

    spec: DeviceSpec
    backend: str
    log: ProfileLog
    tiles: Dict[TileKey, Tuple[int, int]] = field(default_factory=dict)
    default_tile: Tuple[int, int] = DEFAULT_TILE
    cache_stats: TileCacheStats = field(default_factory=TileCacheStats)
    #: perf-model plan cache shared by every layer execution (None = off)
    plan_cache: Optional[PlanCache] = None
    #: "eager" or "fused" — forwarded to the texture backends
    execution: str = "eager"
    #: active video-stream session stamped on texture-backend calls; with
    #: a delta-bounded plan cache this unlocks delta-keyed lookups
    #: (see docs/streaming.md)
    session: Optional[str] = None
    #: fleet shard-execution hook (a
    #: :class:`~repro.fleet.shard.ShardContext`): when set, each layer is
    #: offered to it first and only falls through to the local backend
    #: when the hook declines (returns None)
    shard_executor: Optional[object] = None
    #: near-hit resolutions memoised per runtime geometry
    resolved: Dict[TileKey, Tuple[int, int]] = field(default_factory=dict)
    _warned: Set[TileKey] = field(default_factory=set)
    #: guards the mutable lookup caches under concurrent engine use
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def lookup_tile(self, cfg: LayerConfig) -> Tuple[int, int]:
        """Resolve the CTA tile for one runtime geometry, counting misses."""
        key = tile_key(cfg)
        with self._lock:
            tile = self.tiles.get(key)
            if tile is not None:
                self.cache_stats.record_hit()
                return tile
            tile = self.resolved.get(key)
            if tile is not None:
                self.cache_stats.record_near_hit()
                return tile
            near = nearest_tile_key(key, self.tiles)
            if near is not None:
                tile = self.tiles[near]
                self.resolved[key] = tile
                self.cache_stats.record_near_hit()
                logger.info("tile cache near-hit: geometry %s served with "
                            "tile %s tuned for %s", key, tile, near)
                return tile
            self.cache_stats.record_miss()
            if self.tiles and key not in self._warned:
                self._warned.add(key)
                logger.warning("tile cache miss: no tuned tile for geometry "
                               "%s (have %d tuned entries); falling back to "
                               "the untuned default %s", key, len(self.tiles),
                               self.default_tile)
            return self.default_tile

    @staticmethod
    def layer_config(layer: DeformConv2d, x: Tensor) -> LayerConfig:
        n, c, h, w = x.shape
        return LayerConfig(
            in_channels=c, out_channels=layer.out_channels,
            height=h, width=w, kernel_size=layer.kernel_size,
            stride=layer.stride, padding=layer.padding,
            dilation=layer.dilation,
            deformable_groups=layer.deformable_groups, batch=n)

    def execute(self, layer: DeformConv2d, x: Tensor,
                offsets: Tensor) -> Tensor:
        cfg = self.layer_config(layer, x)
        executor = self.shard_executor
        if executor is not None:
            out = executor.execute_layer(self, layer, cfg, x, offsets)
            if out is not None:
                return out
        return self.execute_direct(layer, cfg, x, offsets)

    def execute_direct(self, layer: DeformConv2d, cfg: LayerConfig,
                       x: Tensor, offsets: Tensor) -> Tensor:
        """Run one layer on this runtime's own backend (no sharding)."""
        tile = self.lookup_tile(cfg)
        bias = layer.bias.data if layer.bias is not None else None
        res = run_deform_op(self.backend, x.data.astype(np.float32),
                            offsets.data.astype(np.float32),
                            layer.weight.data, bias, cfg, self.spec,
                            tile=tile, compute_output=True,
                            layer=getattr(layer, "layer_name", ""),
                            plan_cache=self.plan_cache,
                            execution=self.execution,
                            session=self.session)
        for k in res.kernels:
            self.log.add(k)
        return Tensor(res.output.astype(np.float32))


class DefconEngine:
    """Bind a model's deformable layers to a simulated kernel backend.

    ``tile_store`` (a :class:`repro.autotune.store.TileStore`) makes the
    autotuned tiles a persistent deployment artifact: a warm start against a
    populated store binds every tile with **zero** tuner objective
    evaluations, and fresh tuning results are written back for the next
    engine.  ``tune_evaluations`` records how much tuning work construction
    actually performed, so warm starts are verifiable.

    ``registry`` (optional) is the engine's metrics home — one is created
    when not supplied; ``tracer`` (optional) streams every simulated kernel
    launch onto the trace's simGPU timeline and wraps ``classify``/
    ``detect`` calls in wall-time spans.

    ``plan_cache`` memoises the texture perf model (fetch trace + cache
    simulation) across steps with identical offsets/geometry/tile — the
    steady state of serving.  ``None`` (default) creates a private
    :class:`~repro.kernels.plancache.PlanCache`; pass an existing one to
    share plans across engines (e.g. a batched and a sequential engine
    over the same model), or ``False`` to disable caching.  Hit/miss
    counters land on the registry as ``plan_cache_lookups{result=...}``.

    ``execution="fused"`` routes every texture-backend layer execution
    through its compiled :class:`~repro.kernels.fused.FusedPlan` — the
    steady-state serving fast path.  Fused plans live on the plan-cache
    entries, so fused execution with ``plan_cache=False`` is a
    configuration error (raised here, not at first inference).

    ``delta_bound`` enables the streaming delta-keyed plan-cache mode on
    the engine's private cache (see docs/streaming.md): with a session
    stamped via :meth:`set_session`, consecutive video frames whose
    quantised offsets stay within the bound reuse the session anchor's
    trace simulation and fused buffers — outputs remain bit-identical
    because blend weights are recomputed per frame.
    """

    def __init__(self, model: Module, spec: DeviceSpec,
                 backend: str = "tex2dpp", autotune: bool = False,
                 tune_budget: int = 10, seed: int = 0,
                 tile_store: Optional[object] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[SpanTracer] = None,
                 max_log_records: Optional[int] = ProfileLog.DEFAULT_MAX_RECORDS,
                 plan_cache=None, execution: str = "eager",
                 delta_bound: Optional[float] = None):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.model = model
        self.spec = spec
        self.backend = backend
        self.log = ProfileLog(max_records=max_log_records)
        self.tile_store = tile_store
        self.tune_evaluations = 0
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        if plan_cache is False:
            if delta_bound is not None:
                raise ValueError("delta_bound requires a plan cache — "
                                 "delta-keyed lookups live on PlanCache "
                                 "(see docs/streaming.md)")
            self.plan_cache: Optional[PlanCache] = None
        elif plan_cache is None:
            self.plan_cache = PlanCache(registry=self.registry, tracer=tracer,
                                        delta_bound=delta_bound)
        else:
            if delta_bound is not None \
                    and plan_cache.delta_bound != delta_bound:
                raise ValueError(
                    f"shared plan cache has delta_bound="
                    f"{plan_cache.delta_bound!r}, engine asked for "
                    f"{delta_bound!r} — configure the bound on the cache")
            # A shared cache keeps publishing to whichever registry bound
            # it first — a second engine must not steal its counters.
            self.plan_cache = plan_cache
            if not plan_cache.stats.bound:
                plan_cache.bind_registry(self.registry)
        validate_execution(execution, self.plan_cache)
        self.execution = execution
        self._runtime = TextureRuntime(spec=spec, backend=backend,
                                       log=self.log,
                                       plan_cache=self.plan_cache,
                                       execution=execution)
        self._runtime.cache_stats.bind_registry(self.registry)
        self._layers = [m for m in model.modules()
                        if isinstance(m, DeformConv2d)]
        self._name_deformable_layers(model)
        if tracer is not None:
            tracer.attach(self.log)
        if autotune and backend in ("tex2d", "tex2dpp"):
            self._autotune_tiles(tune_budget, seed)

    @staticmethod
    def _name_deformable_layers(model: Module) -> None:
        """Stamp each DeformConv2d with its dotted path inside ``model``.

        Pre-existing names (e.g. from a previous engine over the same
        model) are left alone, so attribution stays stable across engines.
        """
        for name, mod in model.named_modules():
            if isinstance(mod, DeformConv2d) and not mod.layer_name:
                mod.layer_name = name or type(mod).__name__

    # ------------------------------------------------------------------
    def _autotune_tiles(self, budget: int, seed: int) -> None:
        """Tune one tile per distinct layer geometry (offline, Fig. 8).

        With a backing store, geometries already tuned for this device and
        backend load straight from disk — the tuner objective is never
        evaluated for them.
        """
        # plan_cache=False on the engine disables trace reuse everywhere,
        # including inside the tuner's candidate evaluations.
        tuner = TileTuner(self.spec, backend=self.backend, budget=budget,
                          seed=seed, store=self.tile_store,
                          registry=self.registry,
                          plan_cache=(self.plan_cache
                                      if self.plan_cache is not None
                                      else False))
        backbone = getattr(self.model, "backbone", None)
        if backbone is None:
            return
        input_size = getattr(self.model, "input_size",
                             getattr(backbone, "input_size", None))
        if input_size is None:
            return
        for spec_site, mod in backbone.candidate_sites():
            if not isinstance(mod, DeformConv2d):
                continue
            cfg = spec_site.layer_config()
            key = tile_key(cfg)
            if key not in self._runtime.tiles:
                try:
                    self._runtime.tiles[key] = tuner.best_tile(cfg)
                except ValueError as exc:
                    # e.g. the output plane is too small for any legal CTA
                    # tile — the site runs DEFAULT_TILE and counts as a miss
                    logger.warning("autotune skipped %s: %s",
                                   cfg.label(), exc)
        self.tune_evaluations = tuner.objective_evaluations

    @property
    def num_deformable_layers(self) -> int:
        return len(self._layers)

    @property
    def tiles(self) -> Dict[TileKey, Tuple[int, int]]:
        return dict(self._runtime.tiles)

    def lookup_tile(self, cfg: LayerConfig) -> Tuple[int, int]:
        """Resolve this engine's CTA tile for one geometry (the fleet's
        shard executor runs kernels on participant engines directly and
        needs each device's own tuned tile)."""
        return self._runtime.lookup_tile(cfg)

    @property
    def tile_cache_stats(self) -> TileCacheStats:
        """Hit/near-hit/miss counters of the runtime tile lookup."""
        return self._runtime.cache_stats

    @property
    def plan_cache_stats(self) -> Optional[PlanCacheStats]:
        """Hit/miss/build counters of the perf-model plan cache (None =
        caching disabled)."""
        return self.plan_cache.stats if self.plan_cache is not None else None

    # -- streaming sessions (docs/streaming.md) ------------------------
    def set_session(self, session: Optional[str]) -> None:
        """Stamp subsequent layer executions with a video-stream session.

        With a delta-bounded plan cache this unlocks delta-keyed lookups:
        an exact-digest miss within ``delta_bound`` of the session's
        anchor reuses the anchor's memoised trace simulation and fused
        buffers while blend weights are recomputed per frame.  Pass
        ``None`` to return to plain exact-keyed lookups.
        """
        self._runtime.session = session

    def end_session(self, session: str) -> int:
        """Drop the plan cache's per-session anchor state for one ended
        stream; returns the number of anchors released."""
        if self._runtime.session == session:
            self._runtime.session = None
        if self.plan_cache is None:
            return 0
        return self.plan_cache.end_session(session)

    # ------------------------------------------------------------------
    def __enter__(self) -> "DefconEngine":
        for layer in self._layers:
            layer.texture_runtime = self._runtime
        return self

    def __exit__(self, *exc) -> None:
        for layer in self._layers:
            layer.texture_runtime = None

    # ------------------------------------------------------------------
    def detect(self, images: np.ndarray, **kwargs):
        """Run detection with the deformable layers on the bound backend."""
        if self.tracer is not None:
            with self.tracer.span("engine.detect", cat="engine",
                                  batch=int(np.asarray(images).shape[0])):
                with self:
                    return self.model.detect(images, **kwargs)
        with self:
            return self.model.detect(images, **kwargs)

    def classify(self, images: np.ndarray) -> np.ndarray:
        if self.tracer is not None:
            with self.tracer.span("engine.classify", cat="engine",
                                  batch=int(np.asarray(images).shape[0])):
                with self:
                    return self.model.predict(images)
        with self:
            return self.model.predict(images)

    def deformable_latency_ms(self) -> float:
        """Accumulated simulated time of all deformable kernel launches."""
        return self.log.total_ms

    def nvprof_rows(self):
        return self.log.summary_rows()

    def per_layer_rows(self) -> List[dict]:
        """Table II/IV-style per-layer latency breakdown (see ProfileLog)."""
        return self.log.per_layer_rows()
