"""DefconEngine — run a *trained* model through the simulated GPU backends.

This is the deployment story of the paper, end to end: take the network
the interval search produced, bind its deformable layers to the tex2D /
tex2D++ kernels (with autotuned tiles), and run real inference — the
layers execute with their *learned* offsets through the functional texture
unit, so the engine simultaneously produces:

* the model's actual detections (numerics go through 1.8 fixed-point
  hardware filtering — accuracy parity is observable, not assumed), and
* an nvprof-style :class:`~repro.gpusim.profiler.ProfileLog` of every
  deformable kernel launch, from which per-image deformable latency and
  Fig. 10 counters fall out.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.autotune.tuner import TileTuner
from repro.deform.layers import DeformConv2d
from repro.gpusim.device import DeviceSpec
from repro.gpusim.profiler import ProfileLog
from repro.kernels.config import LayerConfig
from repro.kernels.dispatch import BACKENDS, run_deform_op
from repro.kernels.tex2d import DEFAULT_TILE
from repro.kernels.tiling import TileKey, nearest_tile_key, tile_key
from repro.nn import Module
from repro.tensor import Tensor

logger = logging.getLogger(__name__)


@dataclass
class TileCacheStats:
    """Observability for the tuned-tile lookup (nothing falls back silently).

    * ``hits`` — exact tuned-geometry matches;
    * ``near_hits`` — no exact match, but a tile tuned for the nearest
      geometry with the same channels/stride was substituted (resized or
      otherwise non-nominal inputs land here);
    * ``misses`` — nothing tuned is applicable and the untuned
      ``DEFAULT_TILE`` ran (each distinct geometry is also logged once).
    """

    hits: int = 0
    near_hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.near_hits + self.misses


@dataclass
class TextureRuntime:
    """Per-layer execution binding installed on DeformConv2d modules."""

    spec: DeviceSpec
    backend: str
    log: ProfileLog
    tiles: Dict[TileKey, Tuple[int, int]] = field(default_factory=dict)
    default_tile: Tuple[int, int] = DEFAULT_TILE
    cache_stats: TileCacheStats = field(default_factory=TileCacheStats)
    #: near-hit resolutions memoised per runtime geometry
    resolved: Dict[TileKey, Tuple[int, int]] = field(default_factory=dict)
    _warned: Set[TileKey] = field(default_factory=set)

    def lookup_tile(self, cfg: LayerConfig) -> Tuple[int, int]:
        """Resolve the CTA tile for one runtime geometry, counting misses."""
        key = tile_key(cfg)
        tile = self.tiles.get(key)
        if tile is not None:
            self.cache_stats.hits += 1
            return tile
        tile = self.resolved.get(key)
        if tile is not None:
            self.cache_stats.near_hits += 1
            return tile
        near = nearest_tile_key(key, self.tiles)
        if near is not None:
            tile = self.tiles[near]
            self.resolved[key] = tile
            self.cache_stats.near_hits += 1
            logger.info("tile cache near-hit: geometry %s served with tile "
                        "%s tuned for %s", key, tile, near)
            return tile
        self.cache_stats.misses += 1
        if self.tiles and key not in self._warned:
            self._warned.add(key)
            logger.warning("tile cache miss: no tuned tile for geometry %s "
                           "(have %d tuned entries); falling back to the "
                           "untuned default %s", key, len(self.tiles),
                           self.default_tile)
        return self.default_tile

    def execute(self, layer: DeformConv2d, x: Tensor,
                offsets: Tensor) -> Tensor:
        n, c, h, w = x.shape
        cfg = LayerConfig(
            in_channels=c, out_channels=layer.out_channels,
            height=h, width=w, kernel_size=layer.kernel_size,
            stride=layer.stride, padding=layer.padding,
            dilation=layer.dilation,
            deformable_groups=layer.deformable_groups, batch=n)
        tile = self.lookup_tile(cfg)
        bias = layer.bias.data if layer.bias is not None else None
        res = run_deform_op(self.backend, x.data.astype(np.float32),
                            offsets.data.astype(np.float32),
                            layer.weight.data, bias, cfg, self.spec,
                            tile=tile, compute_output=True)
        for k in res.kernels:
            self.log.add(k)
        return Tensor(res.output.astype(np.float32))


class DefconEngine:
    """Bind a model's deformable layers to a simulated kernel backend.

    ``tile_store`` (a :class:`repro.autotune.store.TileStore`) makes the
    autotuned tiles a persistent deployment artifact: a warm start against a
    populated store binds every tile with **zero** tuner objective
    evaluations, and fresh tuning results are written back for the next
    engine.  ``tune_evaluations`` records how much tuning work construction
    actually performed, so warm starts are verifiable.
    """

    def __init__(self, model: Module, spec: DeviceSpec,
                 backend: str = "tex2dpp", autotune: bool = False,
                 tune_budget: int = 10, seed: int = 0,
                 tile_store: Optional[object] = None):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.model = model
        self.spec = spec
        self.backend = backend
        self.log = ProfileLog()
        self.tile_store = tile_store
        self.tune_evaluations = 0
        self._runtime = TextureRuntime(spec=spec, backend=backend,
                                       log=self.log)
        self._layers = [m for m in model.modules()
                        if isinstance(m, DeformConv2d)]
        if autotune and backend in ("tex2d", "tex2dpp"):
            self._autotune_tiles(tune_budget, seed)

    # ------------------------------------------------------------------
    def _autotune_tiles(self, budget: int, seed: int) -> None:
        """Tune one tile per distinct layer geometry (offline, Fig. 8).

        With a backing store, geometries already tuned for this device and
        backend load straight from disk — the tuner objective is never
        evaluated for them.
        """
        tuner = TileTuner(self.spec, backend=self.backend, budget=budget,
                          seed=seed, store=self.tile_store)
        backbone = getattr(self.model, "backbone", None)
        if backbone is None:
            return
        input_size = getattr(self.model, "input_size",
                             getattr(backbone, "input_size", None))
        if input_size is None:
            return
        for spec_site, mod in backbone.candidate_sites():
            if not isinstance(mod, DeformConv2d):
                continue
            cfg = spec_site.layer_config()
            key = tile_key(cfg)
            if key not in self._runtime.tiles:
                try:
                    self._runtime.tiles[key] = tuner.best_tile(cfg)
                except ValueError as exc:
                    # e.g. the output plane is too small for any legal CTA
                    # tile — the site runs DEFAULT_TILE and counts as a miss
                    logger.warning("autotune skipped %s: %s",
                                   cfg.label(), exc)
        self.tune_evaluations = tuner.objective_evaluations

    @property
    def num_deformable_layers(self) -> int:
        return len(self._layers)

    @property
    def tiles(self) -> Dict[TileKey, Tuple[int, int]]:
        return dict(self._runtime.tiles)

    @property
    def tile_cache_stats(self) -> TileCacheStats:
        """Hit/near-hit/miss counters of the runtime tile lookup."""
        return self._runtime.cache_stats

    # ------------------------------------------------------------------
    def __enter__(self) -> "DefconEngine":
        for layer in self._layers:
            layer.texture_runtime = self._runtime
        return self

    def __exit__(self, *exc) -> None:
        for layer in self._layers:
            layer.texture_runtime = None

    # ------------------------------------------------------------------
    def detect(self, images: np.ndarray, **kwargs):
        """Run detection with the deformable layers on the bound backend."""
        with self:
            return self.model.detect(images, **kwargs)

    def classify(self, images: np.ndarray) -> np.ndarray:
        with self:
            return self.model.predict(images)

    def deformable_latency_ms(self) -> float:
        """Accumulated simulated time of all deformable kernel launches."""
        return self.log.total_ms

    def nvprof_rows(self):
        return self.log.summary_rows()
