"""DefconEngine — run a *trained* model through the simulated GPU backends.

This is the deployment story of the paper, end to end: take the network
the interval search produced, bind its deformable layers to the tex2D /
tex2D++ kernels (with autotuned tiles), and run real inference — the
layers execute with their *learned* offsets through the functional texture
unit, so the engine simultaneously produces:

* the model's actual detections (numerics go through 1.8 fixed-point
  hardware filtering — accuracy parity is observable, not assumed), and
* an nvprof-style :class:`~repro.gpusim.profiler.ProfileLog` of every
  deformable kernel launch, from which per-image deformable latency and
  Fig. 10 counters fall out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.autotune.tuner import TileTuner
from repro.deform.layers import DeformConv2d
from repro.gpusim.device import DeviceSpec
from repro.gpusim.profiler import ProfileLog
from repro.kernels.config import LayerConfig
from repro.kernels.dispatch import run_deform_op
from repro.kernels.tex2d import DEFAULT_TILE
from repro.nn import Module
from repro.tensor import Tensor


@dataclass
class TextureRuntime:
    """Per-layer execution binding installed on DeformConv2d modules."""

    spec: DeviceSpec
    backend: str
    log: ProfileLog
    tiles: Dict[Tuple[int, ...], Tuple[int, int]] = field(
        default_factory=dict)
    default_tile: Tuple[int, int] = DEFAULT_TILE

    def execute(self, layer: DeformConv2d, x: Tensor,
                offsets: Tensor) -> Tensor:
        n, c, h, w = x.shape
        cfg = LayerConfig(
            in_channels=c, out_channels=layer.out_channels,
            height=h, width=w, kernel_size=layer.kernel_size,
            stride=layer.stride, padding=layer.padding,
            dilation=layer.dilation,
            deformable_groups=layer.deformable_groups, batch=n)
        tile = self.tiles.get((c, h, w, layer.stride), self.default_tile)
        bias = layer.bias.data if layer.bias is not None else None
        res = run_deform_op(self.backend, x.data.astype(np.float32),
                            offsets.data.astype(np.float32),
                            layer.weight.data, bias, cfg, self.spec,
                            tile=tile, compute_output=True)
        for k in res.kernels:
            self.log.add(k)
        return Tensor(res.output.astype(np.float32))


class DefconEngine:
    """Bind a model's deformable layers to a simulated kernel backend."""

    def __init__(self, model: Module, spec: DeviceSpec,
                 backend: str = "tex2dpp", autotune: bool = False,
                 tune_budget: int = 10, seed: int = 0):
        self.model = model
        self.spec = spec
        self.backend = backend
        self.log = ProfileLog()
        self._runtime = TextureRuntime(spec=spec, backend=backend,
                                       log=self.log)
        self._layers = [m for m in model.modules()
                        if isinstance(m, DeformConv2d)]
        if autotune and backend in ("tex2d", "tex2dpp"):
            self._autotune_tiles(tune_budget, seed)

    # ------------------------------------------------------------------
    def _autotune_tiles(self, budget: int, seed: int) -> None:
        """Tune one tile per distinct layer geometry (offline, Fig. 8)."""
        tuner = TileTuner(self.spec, backend=self.backend, budget=budget,
                          seed=seed)
        input_size = getattr(self.model, "input_size", None)
        backbone = getattr(self.model, "backbone", None)
        if backbone is None or input_size is None:
            return
        for spec_site, mod in backbone.candidate_sites():
            if not isinstance(mod, DeformConv2d):
                continue
            cfg = spec_site.layer_config()
            key = (cfg.in_channels, cfg.height, cfg.width, cfg.stride)
            if key not in self._runtime.tiles:
                self._runtime.tiles[key] = tuner.best_tile(cfg)

    @property
    def num_deformable_layers(self) -> int:
        return len(self._layers)

    @property
    def tiles(self) -> Dict[Tuple[int, ...], Tuple[int, int]]:
        return dict(self._runtime.tiles)

    # ------------------------------------------------------------------
    def __enter__(self) -> "DefconEngine":
        for layer in self._layers:
            layer.texture_runtime = self._runtime
        return self

    def __exit__(self, *exc) -> None:
        for layer in self._layers:
            layer.texture_runtime = None

    # ------------------------------------------------------------------
    def detect(self, images: np.ndarray, **kwargs):
        """Run detection with the deformable layers on the bound backend."""
        with self:
            return self.model.detect(images, **kwargs)

    def classify(self, images: np.ndarray) -> np.ndarray:
        with self:
            return self.model.predict(images)

    def deformable_latency_ms(self) -> float:
        """Accumulated simulated time of all deformable kernel launches."""
        return self.log.total_ms

    def nvprof_rows(self):
        return self.log.summary_rows()
