"""Paper-scale network geometry for end-to-end latency evaluation.

Accuracy experiments run on the scaled-down backbones (they must train in
seconds), but *latency* does not need training — so the end-to-end latency
model evaluates the true YOLACT++ geometry: ResNet-101 at 550×550 input,
whose candidate 3×3 shapes are exactly the paper's Table II rows
(128@138/69, 256@69/35, 512@35/18).

A scaled backbone's placement vector maps 1:1 onto this geometry through
``site_configs``: the scaled model has fewer blocks per stage, so its n-th
searchable site corresponds to the n-th entry of the compressed stage
layout here (same stages, same stride pattern, paper channels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.kernels.config import LayerConfig
from repro.models.resnet import STAGE_BLOCKS

#: paper-scale channel width of the candidate 3×3 conv per stage
STAGE_WIDTH = {3: 128, 4: 256, 5: 512}
#: feature extent entering the stage (550-input YOLACT++ ResNet)
STAGE_INPUT_SIZE = {3: 138, 4: 69, 5: 35}
#: deformable-group granularity: offsets shared per 4-channel group.  This
#: makes the offset head comparable in cost to the main convolution at
#: paper scale, which is what the paper's Table III "Light" row implies
#: (replacing the offset conv halves the end-to-end time) — see
#: EXPERIMENTS.md for the full derivation.
CHANNELS_PER_OFFSET_GROUP = 4


@dataclass(frozen=True)
class NetworkGeometry:
    """Fixed conv workload + candidate-site shapes of one network."""

    name: str
    candidate_sites: List[LayerConfig]
    #: everything that is never searched: stem, stage-2, the 1×1 convs of
    #: the bottlenecks, downsample projections, FPN, protonet, heads
    fixed_convs: List[LayerConfig] = field(default_factory=list)

    @property
    def num_sites(self) -> int:
        return len(self.candidate_sites)


def candidate_site_configs(arch: str = "r101s",
                           deformable_groups_per_site: bool = True
                           ) -> List[LayerConfig]:
    """Paper-scale LayerConfig of each searchable 3×3 site of ``arch``."""
    blocks = STAGE_BLOCKS[arch]
    sites: List[LayerConfig] = []
    for stage, num_blocks in zip((3, 4, 5), blocks[1:]):
        width = STAGE_WIDTH[stage]
        size = STAGE_INPUT_SIZE[stage]
        dg = max(1, width // CHANNELS_PER_OFFSET_GROUP) \
            if deformable_groups_per_site else 1
        for block in range(num_blocks):
            stride = 2 if block == 0 else 1
            h = size if block == 0 else size // 2
            sites.append(LayerConfig(
                in_channels=width, out_channels=width, height=h, width=h,
                stride=stride, deformable_groups=dg))
    return sites


def fixed_conv_configs(arch: str = "r101s") -> List[LayerConfig]:
    """The non-searchable conv workload of the paper-scale network."""
    blocks = STAGE_BLOCKS[arch]
    convs: List[LayerConfig] = []
    # Stem: 7×7/2 on 550² (modelled as its MAC-equivalent 3×3 workload).
    convs.append(LayerConfig(3, 64, 550, 550, kernel_size=7, stride=2,
                             padding=3))
    # Stage 2: width 64, out 256, at 138².
    in_ch = 64
    for block in range(blocks[0]):
        convs.append(LayerConfig(in_ch, 64, 138, 138, kernel_size=1, padding=0))
        convs.append(LayerConfig(64, 64, 138, 138))
        convs.append(LayerConfig(64, 256, 138, 138, kernel_size=1, padding=0))
        in_ch = 256
    # Stages 3–5: the 1×1 reduce/expand convs around every candidate site.
    in_ch = 256
    for stage, num_blocks in zip((3, 4, 5), blocks[1:]):
        width = STAGE_WIDTH[stage]
        size = STAGE_INPUT_SIZE[stage]
        for block in range(num_blocks):
            h_in = size if block == 0 else size // 2
            h_out = size // 2
            convs.append(LayerConfig(in_ch, width, h_in, h_in,
                                     kernel_size=1, padding=0))
            convs.append(LayerConfig(width, width * 4, h_out, h_out,
                                     kernel_size=1, padding=0))
            if block == 0:
                convs.append(LayerConfig(in_ch, width * 4, h_in, h_in,
                                         kernel_size=1, stride=2, padding=0))
            in_ch = width * 4
    # FPN laterals + smooth (256-channel pyramid, as in YOLACT).
    for ch, size in ((512, 69), (1024, 35), (2048, 18)):
        convs.append(LayerConfig(ch, 256, size, size, kernel_size=1, padding=0))
    for size in (69, 35, 18):
        convs.append(LayerConfig(256, 256, size, size))
    # ProtoNet: three 3×3 convs + projection at P3 scale.
    for _ in range(3):
        convs.append(LayerConfig(256, 256, 69, 69))
    convs.append(LayerConfig(256, 32, 138, 138, kernel_size=1, padding=0))
    # Prediction heads on P3–P5.
    for size in (69, 35, 18):
        convs.append(LayerConfig(256, 256, size, size))
        convs.append(LayerConfig(256, 3 * (81 + 4 + 32), size, size))
    return convs


def paper_scale_geometry(arch: str = "r101s") -> NetworkGeometry:
    """The end-to-end latency workload for one scaled architecture."""
    return NetworkGeometry(
        name=f"yolact++-{arch}@550",
        candidate_sites=candidate_site_configs(arch),
        fixed_convs=fixed_conv_configs(arch),
    )
