"""The differentiable latency penalty L_s (paper Eq. 6 and Eq. 8).

    L_s = | Σ_n ⌈α¹_n > α⁰_n⌋ · σ(α¹_n) · t(w_n)  −  T |²

⌈·⌋ maps {True, False} → {1, 0} and carries no gradient; only α¹ (the
deformable path) is penalised, matching Eq. 7 where the regular path's
gradient has no latency term.

One practical departure from the paper's literal Eq. 6: α¹ enters through
a sigmoid.  The raw architecture parameters live at |α| ≲ 0.5 for the
whole search, so a raw α¹·t product can never reach a millisecond-scale
target T — the accumulated term must be *a latency* for the constraint to
bind.  σ(α¹) ∈ (0, 1) is a monotone squashing of the same parameter
(selection strength 0.5 at the unbiased init), leaves α⁰ without any
latency gradient exactly as in Eq. 7, and makes the Eq. 8 gradient
identical up to the chain factor σ'(α¹).  The sigmoid is sharpened
(``σ(k·α¹)``, k = 4) so a clearly-selected site contributes ≈ its full
latency and the penalty's soft sum tracks the discretised architecture's
latency; the gradient then concentrates on sites near the decision
boundary — the ones the cull should flip first.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.tensor import Tensor


#: sharpness of the selection-strength squashing σ(k·α¹)
SELECTION_SHARPNESS = 4.0


def _sigmoid(v: float) -> float:
    return float(1.0 / (1.0 + np.exp(-v)))


def latency_penalty(alphas: Sequence[Tensor], latencies_ms: Sequence[float],
                    target_ms: float) -> Tensor:
    """Differentiable L_s over the candidate sites.

    ``alphas``: per-layer architecture parameters, each of shape (2,) —
    index 0 the regular conv, 1 the deformable conv.  ``latencies_ms``:
    t(w_n) for the deformable operator of each site.  ``target_ms``: T.
    """
    if len(alphas) != len(latencies_ms):
        raise ValueError("alphas and latencies length mismatch")
    total = None
    for alpha, t_n in zip(alphas, latencies_ms):
        gate = 1.0 if float(alpha.data[1]) > float(alpha.data[0]) else 0.0
        if gate == 0.0:
            continue
        term = (alpha[1:2] * SELECTION_SHARPNESS).sigmoid() * float(t_n)
        total = term if total is None else total + term
    if total is None:
        total = Tensor(np.zeros(1, dtype=np.float32))
    diff = total - float(target_ms)
    return (diff * diff).reshape(())


def latency_penalty_gradient(alphas: Sequence[np.ndarray],
                             latencies_ms: Sequence[float],
                             target_ms: float) -> List[float]:
    """Closed-form ∂L_s/∂α¹ per site (Eq. 8 with the sigmoid chain factor)
    — the test oracle for the autograd path."""
    k = SELECTION_SHARPNESS
    gates = [1.0 if a[1] > a[0] else 0.0 for a in alphas]
    acc = sum(g * _sigmoid(k * a[1]) * t
              for g, a, t in zip(gates, alphas, latencies_ms))
    out = []
    for g, a, t in zip(gates, alphas, latencies_ms):
        s = _sigmoid(k * a[1])
        out.append(2.0 * (acc - target_ms) * g * t * k * s * (1.0 - s))
    return out


def estimated_deform_latency(alphas: Sequence[np.ndarray],
                             latencies_ms: Sequence[float]) -> float:
    """The Σ ⌈α¹>α⁰⌋·t term with selection treated as hard — the achieved
    deformable latency of the *discretised* architecture."""
    return sum(t for a, t in zip(alphas, latencies_ms) if a[1] > a[0])
