"""Gradient-based interval search (paper Algorithm 1).

Bi-level optimisation of network weights W and architecture parameters A
(Eq. 4): every candidate 3×3 site is a :class:`~repro.nas.dual_path.
DualPathLayer`; the search epochs blend both operators with Gumbel-Softmax
sampling (Eq. 5) and backpropagate task loss + β·L_s (Eq. 6); the operator
with the larger α wins; the discretised network is then fine-tuned.

The driver is model-agnostic: it only needs the supernet module, the list
of dual-path sites, their ``t(w_n)`` latencies, and a batch iterator with a
loss function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.nn import Adam, Module, SGD
from repro.nas.dual_path import DEFORM, DualPathLayer
from repro.nas.gumbel import anneal_tau
from repro.nas.penalty import estimated_deform_latency, latency_penalty


@dataclass
class SearchConfig:
    """Hyperparameters of Algorithm 1."""

    search_epochs: int = 4
    finetune_epochs: int = 4
    beta: float = 0.1            # penalty weight in Eq. 4
    target_latency_ms: float = 0.0   # T in Eq. 6
    weight_optimizer: str = "sgd"    # the paper's recipe; 'adam' available
    lr_weights: float = 1e-2
    momentum: float = 0.9
    lr_alpha: float = 3e-3
    tau_start: float = 5.0
    tau_end: float = 0.5
    noise: str = "gumbel"
    weight_decay: float = 1e-4
    seed: int = 0


@dataclass
class SearchResult:
    """Outcome: placement decisions + training history."""

    placement: List[bool]                 # True = deformable at that site
    alphas: List[np.ndarray]
    estimated_latency_ms: float
    search_losses: List[float] = field(default_factory=list)
    finetune_losses: List[float] = field(default_factory=list)

    @property
    def num_dcn(self) -> int:
        return int(sum(self.placement))

    def placement_string(self) -> str:
        """Fig. 6-style block diagram: D = deformable, '.' = regular."""
        return "".join("D" if p else "." for p in self.placement)


BatchIter = Callable[[], Iterable]
LossFn = Callable[[Module, object], "Tensor"]


class IntervalSearch:
    """Runs Algorithm 1 against any supernet exposing dual-path sites."""

    def __init__(self, supernet: Module, sites: Sequence[DualPathLayer],
                 site_latencies_ms: Sequence[float],
                 config: Optional[SearchConfig] = None):
        if len(sites) != len(site_latencies_ms):
            raise ValueError("one latency per candidate site required")
        if not sites:
            raise ValueError("no candidate sites to search over")
        self.supernet = supernet
        self.sites = list(sites)
        self.site_latencies = list(site_latencies_ms)
        self.config = config or SearchConfig()

    # ------------------------------------------------------------------
    def _split_params(self):
        alpha_ids = {id(s.alpha) for s in self.sites}
        weights = [p for p in self.supernet.parameters()
                   if id(p) not in alpha_ids]
        alphas = [s.alpha for s in self.sites]
        return weights, alphas

    # ------------------------------------------------------------------
    def run(self, batches: BatchIter, loss_fn: LossFn,
            progress: Optional[Callable[[str], None]] = None) -> SearchResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        weights, alphas = self._split_params()
        if cfg.weight_optimizer == "adam":
            opt_w = Adam(weights, lr=cfg.lr_weights,
                         weight_decay=cfg.weight_decay)
        else:
            opt_w = SGD(weights, lr=cfg.lr_weights, momentum=cfg.momentum,
                        weight_decay=cfg.weight_decay)
        opt_a = Adam(alphas, lr=cfg.lr_alpha)

        # --- interval search ------------------------------------------
        search_losses: List[float] = []
        num_batches = sum(1 for _ in batches())
        total_steps = max(1, cfg.search_epochs * num_batches)
        step = 0
        self.supernet.train()
        for _epoch in range(cfg.search_epochs):
            for batch in batches():
                tau = anneal_tau(step, total_steps, cfg.tau_start, cfg.tau_end)
                for site in self.sites:
                    site.set_search_state(tau, rng, noise=cfg.noise)
                loss = loss_fn(self.supernet, batch)
                penalty = latency_penalty(alphas, self.site_latencies,
                                          cfg.target_latency_ms)
                total = loss + penalty * cfg.beta
                opt_w.zero_grad()
                opt_a.zero_grad()
                total.backward()
                opt_w.step()
                opt_a.step()
                search_losses.append(float(loss.item()))
                step += 1
            if progress is not None:
                progress(f"search epoch {_epoch + 1}/{cfg.search_epochs} "
                         f"loss={search_losses[-1]:.4f} "
                         f"dcn={sum(s.chosen() == DEFORM for s in self.sites)}")

        # --- select by the magnitude of α ------------------------------
        # Algorithm 1's Ensure clause guarantees the selected architecture
        # approximates the target: Σ ⌈α¹>α⁰⌋·t(w) ≈ T.  Selection is
        # therefore greedy by α-margin *subject to the budget* — pure
        # argmax when no target is set.
        margins = [float(s.alpha.data[1] - s.alpha.data[0])
                   for s in self.sites]
        chosen = [m > 0 for m in margins]
        if cfg.target_latency_ms > 0:
            chosen = [False] * len(self.sites)
            spent = 0.0
            for idx in np.argsort([-m for m in margins]):
                idx = int(idx)
                if margins[idx] <= 0:
                    break
                if spent + self.site_latencies[idx] <= cfg.target_latency_ms:
                    chosen[idx] = True
                    spent += self.site_latencies[idx]
        placement = []
        for site, use in zip(self.sites, chosen):
            site.freeze_choice(DEFORM if use else 1 - DEFORM)
            placement.append(bool(use))

        # --- fine-tune the discretised architecture --------------------
        finetune_losses: List[float] = []
        for _epoch in range(cfg.finetune_epochs):
            for batch in batches():
                loss = loss_fn(self.supernet, batch)
                opt_w.zero_grad()
                loss.backward()
                opt_w.step()
                finetune_losses.append(float(loss.item()))
            if progress is not None:
                progress(f"fine-tune epoch {_epoch + 1}/{cfg.finetune_epochs} "
                         f"loss={finetune_losses[-1]:.4f}")

        alpha_values = [s.alpha.data.copy() for s in self.sites]
        return SearchResult(
            placement=placement,
            alphas=alpha_values,
            estimated_latency_ms=sum(
                t for t, use in zip(self.site_latencies, placement) if use),
            search_losses=search_losses,
            finetune_losses=finetune_losses,
        )


def manual_interval_placement(num_sites: int, interval: int = 3,
                              offset: Optional[int] = None) -> List[bool]:
    """The YOLACT++ hand-crafted policy: a DCN every ``interval`` blocks.

    YOLACT++ applies DCN with interval 3 (skip two blocks between DCNs),
    counted from the end of the backbone so the final block is deformable.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if offset is None:
        offset = (num_sites - 1) % interval
    return [(i - offset) % interval == 0 and i >= offset
            for i in range(num_sites)]
