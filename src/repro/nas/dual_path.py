"""Dual-path searchable layer — regular conv vs deformable conv (Fig. 4c).

Each candidate 3×3 site in the backbone holds both operators plus a pair of
architecture parameters α = (α⁰ regular, α¹ deformable); during the search
the outputs are blended with Gumbel-Softmax weights (Eq. 5), and afterwards
the operator with the larger α wins (Algorithm 1: "Select Layer Type by the
Magnitude of α").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import Tensor
from repro.nn import Conv2d, Module
from repro.nn.module import Parameter
from repro.deform.layers import DeformConv2d
from repro.nas.gumbel import gumbel_softmax

REGULAR, DEFORM = 0, 1


class DualPathLayer(Module):
    """Holds both operator choices for one candidate site."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 lightweight: bool = False, bound: Optional[float] = None,
                 deformable_groups: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.regular = Conv2d(in_channels, out_channels, 3, stride=stride,
                              padding=1, bias=False, rng=rng)
        self.deform = DeformConv2d(in_channels, out_channels, 3,
                                   stride=stride, padding=1, bias=False,
                                   lightweight=lightweight, bound=bound,
                                   deformable_groups=deformable_groups,
                                   rng=rng)
        # Start unbiased between the two operators.
        self.alpha = Parameter(np.zeros(2, dtype=np.float32))
        # Search-mode state, set by the driver before each forward.
        self._tau = 1.0
        self._rng = rng
        self._noise = "gumbel"
        self._search_mode = True
        self._fixed_choice: Optional[int] = None

    # ------------------------------------------------------------------
    def set_search_state(self, tau: float, rng: np.random.Generator,
                         noise: str = "gumbel") -> None:
        self._tau = tau
        self._rng = rng
        self._noise = noise
        self._search_mode = True
        self._fixed_choice = None

    def freeze_choice(self, choice: Optional[int] = None) -> int:
        """Stop sampling; use ``choice`` (default: argmax α) from now on."""
        if choice is None:
            choice = self.chosen()
        if choice not in (REGULAR, DEFORM):
            raise ValueError("choice must be 0 (regular) or 1 (deform)")
        self._search_mode = False
        self._fixed_choice = choice
        return choice

    def chosen(self) -> int:
        """Operator selected by the magnitude of α (Algorithm 1)."""
        return int(np.argmax(self.alpha.data))

    @property
    def uses_deform(self) -> bool:
        if self._fixed_choice is not None:
            return self._fixed_choice == DEFORM
        return self.chosen() == DEFORM

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        if not self._search_mode and self._fixed_choice is not None:
            branch = self.deform if self._fixed_choice == DEFORM else self.regular
            return branch(x)
        weights = gumbel_softmax(self.alpha, self._tau, self._rng,
                                 noise=self._noise)
        return (self.regular(x) * weights[0:1].reshape(1, 1, 1, 1)
                + self.deform(x) * weights[1:2].reshape(1, 1, 1, 1))

    def __repr__(self) -> str:
        tag = "deform" if self.uses_deform else "regular"
        return (f"DualPathLayer({self.in_channels}, {self.out_channels}, "
                f"s={self.stride}, chosen={tag})")
