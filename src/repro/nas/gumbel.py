"""Gumbel-Softmax sampling for the dual-path search (paper Eq. 5).

The paper linearly combines the two operator outputs with weights

    w_i = exp((α_i + ε_i)/τ) / Σ_j exp((α_j + ε_j)/τ)

where ε keeps exploration alive and τ is annealed.  The paper writes
ε ~ U(0, 1); standard Gumbel noise ``−log(−log u)`` is also provided (it is
what makes the soft samples converge to the categorical distribution) and
is the default — ``noise='uniform'`` gives the literal paper variant.
Both are differentiable w.r.t. α.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import Tensor


def sample_noise(shape, rng: np.random.Generator,
                 noise: str = "gumbel") -> np.ndarray:
    """Draw the exploration noise ε."""
    u = rng.uniform(1e-9, 1.0 - 1e-9, size=shape)
    if noise == "gumbel":
        return (-np.log(-np.log(u))).astype(np.float32)
    if noise == "uniform":
        return u.astype(np.float32)
    raise ValueError(f"noise must be 'gumbel' or 'uniform', got {noise!r}")


def gumbel_softmax(alpha: Tensor, tau: float, rng: np.random.Generator,
                   noise: str = "gumbel", hard: bool = False,
                   eps: Optional[np.ndarray] = None) -> Tensor:
    """Differentiable operator weights from architecture parameters.

    ``alpha``: (num_ops,) architecture parameters; returns (num_ops,)
    weights summing to 1.  ``hard=True`` returns a straight-through one-hot
    (forward one-hot, backward soft) for discretised evaluation passes.
    """
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    if eps is None:
        eps = sample_noise(alpha.shape, rng, noise)
    soft = ((alpha + Tensor(eps)) * (1.0 / tau)).softmax(axis=-1)
    if not hard:
        return soft
    # Straight-through: one-hot forward, identity gradient to the soft part.
    idx = int(np.argmax(soft.data))
    one_hot = np.zeros_like(soft.data)
    one_hot[idx] = 1.0
    return soft + Tensor(one_hot - soft.data)


def anneal_tau(step: int, total_steps: int, tau_start: float = 5.0,
               tau_end: float = 0.5) -> float:
    """Exponential temperature annealing schedule over the search."""
    if total_steps <= 1:
        return tau_end
    frac = min(1.0, step / (total_steps - 1))
    return float(tau_start * (tau_end / tau_start) ** frac)
