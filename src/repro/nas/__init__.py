"""Interval search: automated deformable-layer placement (paper §III-A-a).

* :class:`DualPathLayer` — the searchable regular/deformable site (Fig. 4c);
* :func:`gumbel_softmax` — Eq. 5 sampling;
* :class:`LatencyTable` — the on-device ``t(w_n)`` lookup;
* :func:`latency_penalty` — Eq. 6 (gradient per Eq. 8);
* :class:`IntervalSearch` — Algorithm 1 end to end;
* :func:`manual_interval_placement` — the YOLACT++ interval-3 baseline.
"""

from repro.nas.gumbel import anneal_tau, gumbel_softmax, sample_noise
from repro.nas.dual_path import DEFORM, REGULAR, DualPathLayer
from repro.nas.latency_table import (LatencyTable, LayerLatency,
                                     conv_latency_ms, deform_latency_ms)
from repro.nas.penalty import (estimated_deform_latency, latency_penalty,
                               latency_penalty_gradient)
from repro.nas.search import (IntervalSearch, SearchConfig, SearchResult,
                              manual_interval_placement)

__all__ = [
    "gumbel_softmax", "anneal_tau", "sample_noise",
    "DualPathLayer", "REGULAR", "DEFORM",
    "LatencyTable", "LayerLatency", "conv_latency_ms", "deform_latency_ms",
    "latency_penalty", "latency_penalty_gradient",
    "estimated_deform_latency",
    "IntervalSearch", "SearchConfig", "SearchResult",
    "manual_interval_placement",
]
