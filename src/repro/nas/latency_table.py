"""On-device latency lookup table ``t(w_n)`` (paper Eq. 6).

The paper collects per-layer latencies on the target GPU for every
candidate configuration (trivial because DCNs only ever replace certain
3×3 conv2d layers) and uses the table inside the differentiable latency
penalty.  Here "on-device" measurement is a run of the GPU simulator; the
table records, per layer shape, the latency of the regular conv and of the
deformable operator on the chosen backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import LaunchConfig, estimate_time_ms, gemm_cost
from repro.kernels.config import LayerConfig, synth_offsets
from repro.kernels.dispatch import run_deform_op


@dataclass(frozen=True)
class LayerLatency:
    """Latencies (ms) of the two operator choices for one layer shape."""

    regular_ms: float
    deform_ms: float

    @property
    def extra_ms(self) -> float:
        """Marginal cost of choosing the deformable operator."""
        return max(0.0, self.deform_ms - self.regular_ms)


def conv_latency_ms(cfg: LayerConfig, spec: DeviceSpec) -> float:
    """Latency of the regular 3×3 conv (im2col GEMM) for this shape."""
    l = cfg.out_pixels * cfg.batch
    gemm = gemm_cost(cfg.out_channels, l, cfg.in_channels * cfg.taps)
    launch = LaunchConfig(
        grid=max(1, -(-(cfg.out_channels * l) // (128 * 64))), block=256)
    return estimate_time_ms(gemm, launch, spec)


def deform_latency_ms(cfg: LayerConfig, spec: DeviceSpec,
                      backend: str = "pytorch", seed: int = 0,
                      bound: Optional[float] = 7.0) -> float:
    """Latency of the deformable operator (sampling + GEMM) for this shape."""
    sample_ms, gemm_ms = deform_latency_split_ms(cfg, spec, backend=backend,
                                                 seed=seed, bound=bound)
    return sample_ms + gemm_ms


def deform_latency_split_ms(cfg: LayerConfig, spec: DeviceSpec,
                            backend: str = "pytorch", seed: int = 0,
                            bound: Optional[float] = 7.0
                            ) -> Tuple[float, float]:
    """(sampling ms, GEMM ms) of the deformable operator for this shape.

    The fleet's shard planner prices a split layer from the two halves
    separately: the gather/blend sampling kernel divides across shard
    workers while the column GEMM stays whole at the coordinator (the
    stitch), so only the first component scales with a shard's fraction.
    The sum is exactly :func:`deform_latency_ms`.
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=cfg.input_shape()).astype(np.float32)
    w = rng.normal(size=cfg.weight_shape()).astype(np.float32)
    off = synth_offsets(cfg, bound=bound, seed=seed)
    res = run_deform_op(backend, x, off, w, None, cfg, spec,
                        compute_output=False)
    gemm_ms = sum(k.duration_ms for k in res.kernels
                  if k.name == "implicit_gemm")
    return res.latency_ms - gemm_ms, gemm_ms


def deform_shard_latency_split_ms(cfg: LayerConfig, spec: DeviceSpec,
                                  shard, backend: str = "tex2dpp",
                                  seed: int = 0,
                                  bound: Optional[float] = 7.0
                                  ) -> Tuple[float, float]:
    """(sampling ms, GEMM ms) of *one shard* of the deformable operator.

    The sharded sibling of :func:`deform_latency_split_ms`: runs
    :func:`~repro.kernels.shards.run_shard` on synthetic offsets for the
    exact :class:`~repro.kernels.shards.ShardSpec` bounds the executor
    would use, so the shard planner prices the same launch-grid and
    wave-efficiency effects the serve-time simulation will report —
    small shard GEMMs do *not* scale linearly with their fraction, and
    pricing them as if they did makes the router shard when it loses.
    """
    from repro.kernels.shards import run_shard

    rng = np.random.default_rng(seed)
    x = rng.normal(size=cfg.input_shape()).astype(np.float32)
    off = synth_offsets(cfg, bound=bound, seed=seed)
    res = run_shard(x, off, cfg, spec, shard,
                    fp16_offsets=(backend == "tex2dpp"))
    return res.sample.duration_ms, res.gemm.duration_ms


class LatencyTable:
    """``t(w_n)`` — per-shape operator latencies, built once and reused."""

    def __init__(self, spec: DeviceSpec, backend: str = "pytorch",
                 seed: int = 0):
        self.spec = spec
        self.backend = backend
        self.seed = seed
        self._table: Dict[LayerConfig, LayerLatency] = {}

    def build(self, layers: Iterable[LayerConfig]) -> "LatencyTable":
        for cfg in layers:
            self.lookup(cfg)
        return self

    def lookup(self, cfg: LayerConfig) -> LayerLatency:
        if cfg not in self._table:
            self._table[cfg] = LayerLatency(
                regular_ms=conv_latency_ms(cfg, self.spec),
                deform_ms=deform_latency_ms(cfg, self.spec,
                                            backend=self.backend,
                                            seed=self.seed),
            )
        return self._table[cfg]

    def deform_ms(self, cfg: LayerConfig) -> float:
        return self.lookup(cfg).deform_ms

    def __len__(self) -> int:
        return len(self._table)

    def items(self) -> Iterable[Tuple[LayerConfig, LayerLatency]]:
        return self._table.items()

    # ------------------------------------------------------------------
    # persistence — the paper collects on-device latencies once and reuses
    # the lookup table across searches
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialise the table to JSON (shape tuple → latencies)."""
        import dataclasses
        import json

        payload = {
            "device": self.spec.name,
            "backend": self.backend,
            "entries": [
                {"config": dataclasses.asdict(cfg),
                 "regular_ms": lat.regular_ms,
                 "deform_ms": lat.deform_ms}
                for cfg, lat in self._table.items()
            ],
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1)

    @classmethod
    def load(cls, path, spec: DeviceSpec) -> "LatencyTable":
        """Rebuild a table from :meth:`save` output.

        The device recorded in the file must match ``spec`` — a latency
        table is only valid for the hardware it was measured on.
        """
        import json

        with open(path) as fh:
            payload = json.load(fh)
        if payload["device"] != spec.name:
            raise ValueError(
                f"latency table was measured on {payload['device']!r}, "
                f"not {spec.name!r}")
        table = cls(spec, backend=payload["backend"])
        for entry in payload["entries"]:
            cfg = LayerConfig(**entry["config"])
            table._table[cfg] = LayerLatency(
                regular_ms=entry["regular_ms"],
                deform_ms=entry["deform_ms"])
        return table
