"""Labeled metrics registry — one home for every subsystem's counters.

Prometheus-shaped but dependency-free: a :class:`MetricsRegistry` owns
named metrics, each metric owns one series per label set, and everything
is thread-safe.  ``snapshot()`` / ``to_json()`` give a stable,
machine-readable view (the ``metrics.json`` the ``repro trace`` CLI
writes).

:class:`Histogram` series are backed by :class:`BoundedReservoir`:
**count / sum / min / max are exact forever**, while the per-series sample
buffer is capped (uniform reservoir sampling, seeded → deterministic), so
percentiles are approximate but memory never grows with the number of
observations — the property long-running serving needs.
"""

from __future__ import annotations

import json
import random
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class BoundedReservoir:
    """Exact running aggregates + a bounded uniform sample.

    ``add()`` is O(1); the sample follows Vitter's algorithm R, so after
    ``n`` observations every value had probability ``capacity / n`` of
    being retained — percentiles computed from the sample are unbiased
    estimates.  The RNG is seeded, so a fixed observation sequence yields
    a fixed sample (deterministic tests).
    """

    def __init__(self, capacity: int = 1024, seed: int = 0):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._sample: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._sample) < self.capacity:
            self._sample.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self._sample[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def values(self) -> List[float]:
        """The retained sample (NOT all observations once count > capacity)."""
        return list(self._sample)

    def percentile(self, q: float) -> float:
        if not self._sample:
            return 0.0
        return float(np.percentile(
            np.asarray(self._sample, dtype=np.float64), q))

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "sample_size": len(self._sample),
        }


class Metric:
    """Base: one named metric holding one series per label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, object] = {}

    def _get_series(self, labels: Dict[str, str]):
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._new_series()
            self._series[key] = series
        return series

    def _new_series(self):
        raise NotImplementedError

    def label_sets(self) -> List[Dict[str, str]]:
        """Label sets with at least one series, in snapshot order (sorted
        by the series' label-key tuples — see :meth:`snapshot`)."""
        with self._lock:
            return [dict(k) for k in sorted(self._series)]

    def snapshot(self) -> dict:
        """One metric's snapshot, in the documented stable order.

        Series are sorted by their label-key tuples (label names and
        values, both ascending), so two runs that record the same
        observations produce byte-identical snapshots regardless of
        insertion order — the property snapshot diffs and the
        bench-compare flight recorder rely on.
        """
        with self._lock:
            series = [{"labels": dict(key), **self._series_snapshot(s)}
                      for key, s in sorted(self._series.items())]
        return {"kind": self.kind, "help": self.help, "series": series}

    def _series_snapshot(self, series) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing value (per label set)."""

    kind = "counter"

    def _new_series(self):
        return [0.0]

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._get_series(labels)[0] += amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._get_series(labels)[0])

    def _series_snapshot(self, series) -> dict:
        return {"value": series[0]}


class Gauge(Metric):
    """A value that can go up and down (queue depth, cache size, ...)."""

    kind = "gauge"

    def _new_series(self):
        return [0.0]

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._get_series(labels)[0] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        with self._lock:
            self._get_series(labels)[0] += amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels) -> None:
        """Atomically raise the gauge to ``value`` if it is higher."""
        with self._lock:
            series = self._get_series(labels)
            series[0] = max(series[0], float(value))

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._get_series(labels)[0])

    def _series_snapshot(self, series) -> dict:
        return {"value": series[0]}


class Histogram(Metric):
    """Distribution metric: exact totals, reservoir-bounded percentiles."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 reservoir_size: int = 1024, seed: int = 0):
        super().__init__(name, help)
        self.reservoir_size = reservoir_size
        self.seed = seed

    def _new_series(self) -> BoundedReservoir:
        return BoundedReservoir(self.reservoir_size, seed=self.seed)

    def observe(self, value: float, **labels) -> None:
        with self._lock:
            self._get_series(labels).add(value)

    def reservoir(self, **labels) -> BoundedReservoir:
        with self._lock:
            return self._get_series(labels)

    def count(self, **labels) -> int:
        with self._lock:
            return self._get_series(labels).count

    def sum(self, **labels) -> float:
        with self._lock:
            return self._get_series(labels).total

    def mean(self, **labels) -> float:
        with self._lock:
            return self._get_series(labels).mean

    def percentile(self, q: float, **labels) -> float:
        with self._lock:
            return self._get_series(labels).percentile(q)

    def _series_snapshot(self, series: BoundedReservoir) -> dict:
        return series.snapshot()


_METRIC_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe collection of named metrics.

    Registration is idempotent — asking twice for the same (name, kind)
    returns the same object, so independent subsystems can share series
    without coordination; asking for an existing name with a *different*
    kind raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _register(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help=help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  reservoir_size: int = 1024, seed: int = 0) -> Histogram:
        return self._register(Histogram, name, help,
                              reservoir_size=reservoir_size, seed=seed)

    def windowed_histogram(self, name: str, help: str = "", **kwargs):
        """A :class:`~repro.obs.timeseries.WindowedHistogram` — per-window
        count/sum/min/max + quantile sketches on an injectable clock
        (``window_ms= retention= clock= compression=`` keyword args;
        see :mod:`repro.obs.timeseries`).  Like every other kind,
        registration is idempotent: the first caller's window/clock
        configuration wins."""
        from repro.obs.timeseries import WindowedHistogram
        return self._register(WindowedHistogram, name, help, **kwargs)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> dict:
        """``{metric_name: {kind, help, series: [{labels, ...}]}}``.

        **Stable order contract** (snapshot diffs and the bench-compare
        flight recorder depend on it): metric names ascending, each
        metric's series sorted by its label-key tuples (label names and
        values ascending), and :meth:`to_json` serialises with
        ``sort_keys=True`` — so two runs recording the same observations
        emit byte-identical JSON regardless of registration or
        observation interleaving.
        """
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    # ------------------------------------------------------------------
    # Prometheus-style text exposition
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus-style text exposition of every metric.

        Counters and gauges expose one sample per label set; histograms
        and windowed histograms expose summary-style ``quantile`` samples
        plus exact ``_count`` / ``_sum`` samples.  Windowed-histogram
        quantiles aggregate the retained windows, and their worst
        retained exemplar rides the p99 sample as an OpenMetrics-style
        ``# {span_id="..."}`` annotation — the hook SLO tooling and
        scrape-side dashboards use to jump into the trace.  Output order
        follows the :meth:`snapshot` contract, so it is byte-stable.
        """
        return prometheus_from_snapshot(self.snapshot())

    def write_prometheus(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())


def prometheus_from_snapshot(snapshot: Dict[str, dict]) -> str:
    """Prometheus text exposition from a :meth:`MetricsRegistry.snapshot`
    dict — live (what :meth:`MetricsRegistry.to_prometheus` passes) or
    re-loaded from a ``metrics.json`` file (what ``repro metrics export``
    passes), so any saved snapshot is scrapeable after the fact."""
    lines: List[str] = []
    for name, snap in sorted(snapshot.items()):
        kind = snap["kind"]
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "summary",
                     "windowed_histogram": "summary"}.get(kind, "untyped")
        if snap.get("help"):
            lines.append(f"# HELP {name} {snap['help']}")
        lines.append(f"# TYPE {name} {prom_type}")
        for series in snap["series"]:
            labels = series["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_fmt_labels(labels)} "
                             f"{_fmt_value(series['value'])}")
                continue
            for q_key, q in (("p50", "0.5"), ("p95", "0.95"),
                             ("p99", "0.99")):
                value = series.get(q_key)
                if value is None and kind == "windowed_histogram":
                    value = _windowed_quantile(series, q_key)
                sample = (f"{name}"
                          f"{_fmt_labels(labels, quantile=q)} "
                          f"{_fmt_value(value or 0.0)}")
                if q_key == "p99":
                    exemplar = _worst_exemplar(series)
                    if exemplar is not None:
                        sample += (f" # {{span_id=\""
                                   f"{exemplar['span_id']}\"}} "
                                   f"{_fmt_value(exemplar['value'])}")
                lines.append(sample)
            lines.append(f"{name}_count{_fmt_labels(labels)} "
                         f"{_fmt_value(series['count'])}")
            lines.append(f"{name}_sum{_fmt_labels(labels)} "
                         f"{_fmt_value(series['sum'])}")
    return "\n".join(lines) + "\n"


def _fmt_value(value) -> str:
    return f"{float(value):.10g}"


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _fmt_labels(labels: Dict[str, str], **extra) -> str:
    items = sorted({**labels, **extra}.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + body + "}"


def _windowed_quantile(series_snap: dict, q_key: str) -> float:
    """Aggregate a windowed-histogram series snapshot to one quantile.

    Snapshot-level fallback (count-weighted mean of per-window
    quantiles); live series use the exact merged sketch instead.
    """
    wins = [w for w in series_snap.get("windows", []) if w.get("count")]
    total = sum(w["count"] for w in wins)
    if not total:
        return 0.0
    return sum(w[q_key] * w["count"] for w in wins) / total


def _worst_exemplar(series_snap: dict) -> Optional[dict]:
    worst = None
    for win in series_snap.get("windows", []):
        for ex in win.get("exemplars", []):
            if worst is None or ex["value"] > worst["value"]:
                worst = ex
    return worst
