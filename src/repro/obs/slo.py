"""Declarative SLOs evaluated over windowed time series.

An :class:`SLO` names a windowed-histogram metric on a
:class:`~repro.obs.registry.MetricsRegistry` and states an objective:

* ``objective="quantile"`` — *"p99 latency <= threshold_ms per window"*.
  The implied error budget is the quantile's tail mass (p99 → 1% of
  observations may exceed the threshold per window).
* ``objective="availability"`` — *"at least ``target`` of observations
  good per window"*, where good means value <= ``threshold_ms`` and,
  when ``bad_metric`` is set, observations on that second windowed
  series (e.g. failed/rejected requests, which never produce a latency
  sample) count as bad outright.

:func:`evaluate_slo` walks every retained window and produces an
:class:`SLOReport`:

* an **attainment curve** — one :class:`SLOWindow` row per window with
  the observed quantile, the estimated bad fraction, the per-window burn
  rate, attained/violated, and the exemplar span ids of the worst
  observations (the :class:`~repro.obs.timeseries.Exemplar` links into
  the Chrome trace — ``repro trace --open trace.json --span-id sNN``
  jumps to the span);
* **multi-window burn rates** — budget consumption over the most recent
  1 window, the most recent 6, and all retained windows (the classic
  fast/slow burn pair alerting policies page on);
* **error-budget remaining** — the fraction of the total budget across
  retained windows not yet consumed (can go negative).

Burn rate follows the standard definition: ``bad_fraction /
error_budget_fraction`` — 1.0 means exactly exhausting budget at this
rate, >1 means burning faster than the SLO allows.

``repro fleet run --slo`` evaluates the fleet's default SLOs and prints
the attainment table; see docs/observability.md ("SLOs and burn rate").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import WindowedHistogram, WindowedSeries

#: burn-rate lookback horizons (in windows) reported by every evaluation
BURN_HORIZONS = (1, 6)


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a windowed metric."""

    name: str
    metric: str                         # windowed-histogram metric name
    threshold_ms: float                 # per-observation "good" bound
    objective: str = "quantile"         # "quantile" | "availability"
    quantile: float = 99.0              # used by objective="quantile"
    target: float = 0.999               # used by objective="availability"
    labels: Tuple[Tuple[str, str], ...] = ()
    #: optional second windowed metric whose observations are all bad
    #: (failures/rejections that never yield a latency sample)
    bad_metric: Optional[str] = None

    def __post_init__(self):
        if self.objective not in ("quantile", "availability"):
            raise ValueError(f"unknown SLO objective {self.objective!r}")
        if not 0.0 < self.quantile < 100.0:
            raise ValueError("quantile must be in (0, 100)")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.threshold_ms <= 0:
            raise ValueError("threshold_ms must be positive")

    @property
    def budget_fraction(self) -> float:
        """Allowed bad fraction per window (the error budget)."""
        if self.objective == "quantile":
            return 1.0 - self.quantile / 100.0
        return 1.0 - self.target

    def describe(self) -> str:
        if self.objective == "quantile":
            return (f"p{self.quantile:g}({self.metric}) <= "
                    f"{self.threshold_ms:g} ms per window")
        return (f"good({self.metric} <= {self.threshold_ms:g} ms) >= "
                f"{100 * self.target:g}% per window")


@dataclass
class SLOWindow:
    """One row of the attainment curve."""

    start_ms: float
    end_ms: float
    count: int                  # total observations (incl. bad_metric)
    bad: float                  # estimated bad observations
    observed: float             # quantile value / availability fraction
    attained: bool
    burn_rate: float            # bad_fraction / budget_fraction
    exemplar_span_ids: List[str] = field(default_factory=list)

    def snapshot(self) -> dict:
        return {
            "window_start_ms": self.start_ms,
            "window_end_ms": self.end_ms,
            "count": self.count,
            "bad": round(self.bad, 3),
            "observed": self.observed,
            "attained": self.attained,
            "burn_rate": round(self.burn_rate, 4),
            "exemplar_span_ids": list(self.exemplar_span_ids),
        }


@dataclass
class SLOReport:
    """Everything one SLO evaluation produced."""

    slo: SLO
    windows: List[SLOWindow]
    burn_rates: Dict[str, float]        # "1w"/"6w"/"all" → burn rate
    error_budget_remaining: float       # 1.0 = untouched, <0 = overdrawn

    @property
    def attainment(self) -> float:
        """Fraction of non-empty windows that attained the objective."""
        if not self.windows:
            return 1.0
        return sum(w.attained for w in self.windows) / len(self.windows)

    @property
    def violated_windows(self) -> List[SLOWindow]:
        return [w for w in self.windows if not w.attained]

    @property
    def ok(self) -> bool:
        return not self.violated_windows

    def snapshot(self) -> dict:
        return {
            "slo": self.slo.name,
            "objective": self.slo.describe(),
            "attainment": round(self.attainment, 4),
            "burn_rates": {k: round(v, 4)
                           for k, v in sorted(self.burn_rates.items())},
            "error_budget_remaining": round(self.error_budget_remaining, 4),
            "windows": [w.snapshot() for w in self.windows],
        }


def _series_for(registry: MetricsRegistry, name: str,
                labels: Tuple[Tuple[str, str], ...]
                ) -> Optional[WindowedSeries]:
    metric = registry.get(name)
    if metric is None:
        return None
    if not isinstance(metric, WindowedHistogram):
        raise ValueError(
            f"SLO metric {name!r} is a {metric.kind}, not a windowed "
            f"histogram — SLOs need the time axis")
    return metric.series(**dict(labels))


def evaluate_slo(slo: SLO, registry: MetricsRegistry) -> SLOReport:
    """Evaluate one SLO against the registry's retained windows."""
    series = _series_for(registry, slo.metric, slo.labels)
    if series is None or not len(series):
        return SLOReport(slo, [], {f"{h}w": 0.0 for h in BURN_HORIZONS}
                         | {"all": 0.0}, 1.0)
    bad_series = (_series_for(registry, slo.bad_metric, slo.labels)
                  if slo.bad_metric else None)
    bad_by_index: Dict[int, int] = {}
    if bad_series is not None:
        for win in bad_series.windows():
            bad_by_index[win.index] = win.count

    budget = slo.budget_fraction
    rows: List[SLOWindow] = []
    for win in series.windows():
        extra_bad = bad_by_index.pop(win.index, 0)
        total = win.count + extra_bad
        # estimated observations over the threshold, via the sketch CDF
        over = win.count * (1.0 - win.sketch.cdf(slo.threshold_ms))
        bad = over + extra_bad
        bad_fraction = bad / total if total else 0.0
        if slo.objective == "quantile":
            observed = win.quantile(slo.quantile)
            attained = bad_fraction <= budget + 1e-12
        else:
            observed = 1.0 - bad_fraction
            attained = observed >= slo.target - 1e-12
        # worst-first, deduped: one batch span can serve many requests
        exemplars = list(dict.fromkeys(
            e.span_id for e in win.exemplars
            if e.value > slo.threshold_ms and e.span_id))
        rows.append(SLOWindow(
            start_ms=win.start_ms, end_ms=win.end_ms, count=total,
            bad=bad, observed=observed, attained=attained,
            burn_rate=(bad_fraction / budget) if budget > 0 else 0.0,
            exemplar_span_ids=exemplars))
    # windows where *only* failures landed (no latency samples at all)
    for index, extra_bad in sorted(bad_by_index.items()):
        if not extra_bad:
            continue
        start = index * series.window_ms
        rows.append(SLOWindow(
            start_ms=start, end_ms=start + series.window_ms,
            count=extra_bad, bad=float(extra_bad),
            observed=(float("inf") if slo.objective == "quantile" else 0.0),
            attained=False,
            burn_rate=(1.0 / budget) if budget > 0 else 0.0))
    rows.sort(key=lambda w: w.start_ms)

    burn_rates = {}
    for horizon in BURN_HORIZONS:
        burn_rates[f"{horizon}w"] = _burn_over(rows[-horizon:], budget)
    burn_rates["all"] = _burn_over(rows, budget)
    total_obs = sum(w.count for w in rows)
    total_bad = sum(w.bad for w in rows)
    budget_total = total_obs * budget
    remaining = 1.0 - (total_bad / budget_total) if budget_total > 0 else 1.0
    return SLOReport(slo, rows, burn_rates, remaining)


def _burn_over(rows: List[SLOWindow], budget: float) -> float:
    total = sum(w.count for w in rows)
    bad = sum(w.bad for w in rows)
    if not total or budget <= 0:
        return 0.0
    return (bad / total) / budget


def evaluate_slos(slos: List[SLO],
                  registry: MetricsRegistry) -> List[SLOReport]:
    return [evaluate_slo(slo, registry) for slo in slos]


def format_slo_table(report: SLOReport) -> str:
    """The per-window attainment table ``repro fleet run --slo`` prints."""
    from repro.pipeline.reporting import format_table

    rows = []
    for w in report.windows:
        observed = ("inf" if w.observed == float("inf")
                    else f"{w.observed:.3f}")
        rows.append([
            f"[{w.start_ms:g}, {w.end_ms:g})", w.count,
            f"{w.bad:.1f}", observed, f"{w.burn_rate:.2f}",
            "ok" if w.attained else "VIOLATED",
            " ".join(w.exemplar_span_ids) or "-",
        ])
    burn = "  ".join(f"{k}={v:.2f}"
                     for k, v in sorted(report.burn_rates.items()))
    title = (f"SLO {report.slo.name}: {report.slo.describe()} — "
             f"attainment {100 * report.attainment:.1f}%, "
             f"budget remaining {100 * report.error_budget_remaining:.1f}%, "
             f"burn [{burn}]")
    header = ["window (ms)", "n", "bad", "observed", "burn", "status",
              "exemplar spans"]
    return format_table(header, rows, title=title)
