"""Bench-regression flight recorder — compare ``BENCH_*.json`` snapshots.

Every benchmark already writes a machine-readable
``results/BENCH_<name>.json`` (see ``benchmarks/common.py``), but until
now nobody tracked the trajectory: a PR could halve the fused-path
speedup and nothing would notice unless a hard-coded bar happened to
trip.  This module is the missing comparator:

* :func:`collect_benches` loads one snapshot set (a directory of
  ``BENCH_*.json`` files, or a single file);
* :func:`flatten_metrics` lowers each snapshot's nested ``metrics`` dict
  into dotted scalar paths (``fused_serving.speedup``);
* :func:`compare` walks baseline vs current metric-by-metric under
  **noise-aware rules**: each metric matches the first
  :class:`MetricRule` whose glob pattern fits its
  ``bench.dotted.path``, giving it a direction (higher/lower is better),
  a relative threshold, and a minimum absolute floor — a delta gates
  only when it exceeds *both*, so micro-jitter on tiny values never
  fails CI while a real regression cannot hide;
* the resulting :class:`FlightReport` renders as a verdict JSON
  (``to_json``) and a markdown table (``to_markdown``) and carries the
  process exit code (non-zero iff any tracked metric regressed).

Wall-clock metrics (``*_ms`` on a CI box) are inherently noisy, so the
default rules gate tightly only on machine-independent numbers —
simulated makespans/throughputs and speedup *ratios* — and treat raw
millisecond samples with wide thresholds.  Untracked metrics are
reported informationally but never gate.

Entry points: ``repro bench compare`` (CLI) and
``tools/bench_compare.py`` (standalone script, what CI runs).
"""

from __future__ import annotations

import fnmatch
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: bump when the verdict JSON envelope changes shape
VERDICT_SCHEMA_VERSION = 1

#: comparison outcomes
OK = "ok"
REGRESSED = "regressed"
IMPROVED = "improved"
MISSING = "missing"        # in baseline, absent from current
NEW = "new"                # in current, absent from baseline
UNTRACKED = "untracked"    # no rule matched — informational only


@dataclass(frozen=True)
class MetricRule:
    """How one family of metrics is judged.

    ``pattern`` is a glob over ``bench.dotted.metric.path``.
    ``direction`` is ``"higher"`` (bigger is better: speedups,
    throughput), ``"lower"`` (latencies, makespans) or ``"ignore"``
    (report, never gate).  A change gates only when it is worse by more
    than ``rel_tol`` *relative* AND more than ``abs_floor`` *absolute* —
    the floor keeps noise on near-zero values from tripping the
    relative test.
    """

    pattern: str
    direction: str                  # "higher" | "lower" | "ignore"
    rel_tol: float = 0.25
    abs_floor: float = 0.0

    def matches(self, path: str) -> bool:
        return fnmatch.fnmatchcase(path, self.pattern)


#: first match wins; order from specific to generic.
DEFAULT_RULES: Tuple[MetricRule, ...] = (
    # deterministic simulation outputs — tight gates, they cannot jitter
    MetricRule("fleet_scheduler.*.makespan_ms", "lower",
               rel_tol=0.10, abs_floor=0.05),
    MetricRule("fleet_scheduler.*.throughput_rps", "higher",
               rel_tol=0.10, abs_floor=1.0),
    MetricRule("fleet_scheduler.*.completed", "higher",
               rel_tol=0.0, abs_floor=0.0),
    MetricRule("fleet_scheduler.*.unresolved", "lower",
               rel_tol=0.0, abs_floor=0.0),
    MetricRule("fleet_scheduler.*.futures_failed", "lower",
               rel_tol=0.0, abs_floor=0.0),
    # fleet sharding bench — a deterministic simulation, but the latency
    # model it prices with is allowed to evolve: exact gates on the shard
    # counters (how many batches sharded, everything completed, nothing
    # lost), tolerant gates on simulated milliseconds, and the raw
    # per-request decision table is informational only
    MetricRule("fleet_sharding.*.decisions.*", "ignore"),
    MetricRule("fleet_sharding.*.sharded_batches", "higher",
               rel_tol=0.0, abs_floor=0.0),
    MetricRule("fleet_sharding.*.completed", "higher",
               rel_tol=0.0, abs_floor=0.0),
    MetricRule("fleet_sharding.*.unresolved", "lower",
               rel_tol=0.0, abs_floor=0.0),
    MetricRule("fleet_sharding.*.makespan_ms", "lower",
               rel_tol=0.10, abs_floor=0.02),
    MetricRule("fleet_sharding.*speedup*", "higher",
               rel_tol=0.05, abs_floor=0.02),
    MetricRule("fleet_sharding.*_bytes", "ignore"),
    MetricRule("fleet_sharding.*", "ignore"),
    # fleet autoscale bench — a deterministic simulation priced by the
    # evolving latency model: exact gates on resolution and on the
    # peak-load SLO verdicts, tolerant gates on simulated latency and
    # worker-hours, everything else informational
    MetricRule("fleet_autoscale.*.unresolved", "lower",
               rel_tol=0.0, abs_floor=0.0),
    MetricRule("fleet_autoscale.*.futures_failed", "lower",
               rel_tol=0.0, abs_floor=0.0),
    MetricRule("fleet_autoscale.*.completed", "higher",
               rel_tol=0.15, abs_floor=2.0),
    MetricRule("fleet_autoscale.peak.*attained", "higher",
               rel_tol=0.0, abs_floor=0.0),
    MetricRule("fleet_autoscale.peak.deterministic", "higher",
               rel_tol=0.0, abs_floor=0.0),
    MetricRule("fleet_autoscale.peak.auto_worker_ms", "lower",
               rel_tol=0.30, abs_floor=1.0),
    MetricRule("fleet_autoscale.*.p99_ms", "lower",
               rel_tol=0.50, abs_floor=0.25),
    MetricRule("fleet_autoscale.*", "ignore"),
    # streaming bench — the delta-hit-rates and eviction counts are
    # deterministic simulation outputs (tight gates); wall-clock frame
    # times and the steady-state speedup fall through to the generic
    # machine-sensitive rules below
    MetricRule("streaming.stride_hit_rate.*", "higher",
               rel_tol=0.0, abs_floor=0.05),
    MetricRule("streaming.concurrent_streams.*.hit_rate", "higher",
               rel_tol=0.0, abs_floor=0.05),
    MetricRule("streaming.concurrent_streams.*.evictions", "ignore"),
    MetricRule("streaming.steady_state.delta_hits", "higher",
               rel_tol=0.0, abs_floor=1.0),
    MetricRule("streaming.frames", "ignore"),
    MetricRule("streaming.delta_bound", "ignore"),
    # wall-clock speedup ratios — machine-sensitive but dimensionless;
    # a halved speedup must fail, scheduler jitter must not
    MetricRule("*speedup", "higher", rel_tol=0.40, abs_floor=0.25),
    # raw wall-clock samples — informational-to-loose (CI boxes vary)
    MetricRule("*_ms", "lower", rel_tol=1.50, abs_floor=50.0),
    MetricRule("*_s", "lower", rel_tol=1.50, abs_floor=5.0),
)


@dataclass
class ComparisonRow:
    """One metric's verdict."""

    path: str                       # "bench.dotted.metric"
    baseline: Optional[float]
    current: Optional[float]
    outcome: str                    # OK/REGRESSED/IMPROVED/...
    direction: str = "ignore"
    rel_delta: Optional[float] = None   # signed, vs baseline
    rule: Optional[str] = None      # the pattern that matched

    def snapshot(self) -> dict:
        return {
            "path": self.path,
            "baseline": self.baseline,
            "current": self.current,
            "outcome": self.outcome,
            "direction": self.direction,
            "rel_delta": (round(self.rel_delta, 6)
                          if self.rel_delta is not None else None),
            "rule": self.rule,
        }


@dataclass
class FlightReport:
    """Everything one baseline-vs-current comparison produced."""

    rows: List[ComparisonRow] = field(default_factory=list)
    baseline_meta: Dict[str, dict] = field(default_factory=dict)
    current_meta: Dict[str, dict] = field(default_factory=dict)

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.outcome == REGRESSED]

    @property
    def verdict(self) -> str:
        return "regress" if self.regressions else "pass"

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for row in self.rows:
            counts[row.outcome] = counts.get(row.outcome, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> str:
        payload = {
            "schema_version": VERDICT_SCHEMA_VERSION,
            "verdict": self.verdict,
            "counts": self.counts(),
            "rows": [r.snapshot() for r in self.rows],
            "baseline": self.baseline_meta,
            "current": self.current_meta,
        }
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"

    def to_markdown(self) -> str:
        lines = [
            f"## Bench flight recorder — verdict: **{self.verdict}**",
            "",
            "| metric | baseline | current | Δ rel | direction | outcome |",
            "|---|---:|---:|---:|---|---|",
        ]
        order = {REGRESSED: 0, IMPROVED: 1, OK: 2, MISSING: 3, NEW: 4,
                 UNTRACKED: 5}
        for row in sorted(self.rows,
                          key=lambda r: (order.get(r.outcome, 9), r.path)):
            base = "-" if row.baseline is None else f"{row.baseline:.4g}"
            cur = "-" if row.current is None else f"{row.current:.4g}"
            rel = ("-" if row.rel_delta is None
                   else f"{100 * row.rel_delta:+.1f}%")
            mark = ("**REGRESSED**" if row.outcome == REGRESSED
                    else row.outcome)
            lines.append(f"| `{row.path}` | {base} | {cur} | {rel} | "
                         f"{row.direction} | {mark} |")
        counts = ", ".join(f"{k}: {v}" for k, v in self.counts().items())
        lines += ["", f"{len(self.rows)} metrics compared ({counts})."]
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# loading + flattening
# ----------------------------------------------------------------------
def load_bench(path: Union[str, Path]) -> dict:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "bench" not in payload:
        raise ValueError(f"{path}: not a BENCH_*.json payload")
    return payload


def collect_benches(path: Union[str, Path]) -> Dict[str, dict]:
    """``{bench_name: payload}`` from a directory or a single file."""
    p = Path(path)
    if p.is_dir():
        benches = {}
        for f in sorted(p.glob("BENCH_*.json")):
            payload = load_bench(f)
            benches[str(payload["bench"])] = payload
        return benches
    payload = load_bench(p)
    return {str(payload["bench"]): payload}


def flatten_metrics(payload: dict) -> Dict[str, float]:
    """Numeric leaves of ``payload['metrics']`` as dotted paths.

    Booleans and strings are skipped (they are labels, not trajectory);
    lists flatten by index.
    """
    flat: Dict[str, float] = {}

    def walk(prefix: str, value) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            flat[prefix] = float(value)
        elif isinstance(value, dict):
            for k in sorted(value):
                walk(f"{prefix}.{k}" if prefix else str(k), value[k])
        elif isinstance(value, (list, tuple)):
            for i, v in enumerate(value):
                walk(f"{prefix}.{i}", v)

    walk("", payload.get("metrics", {}))
    return flat


def _match_rule(path: str,
                rules: Sequence[MetricRule]) -> Optional[MetricRule]:
    for rule in rules:
        if rule.matches(path):
            return rule
    return None


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def compare(baseline: Dict[str, dict], current: Dict[str, dict],
            rules: Sequence[MetricRule] = DEFAULT_RULES) -> FlightReport:
    """Compare two snapshot sets metric-by-metric.

    Benches present only on one side are reported (``missing`` /
    ``new``) but never gate — a baseline can lag behind a newly added
    bench without blocking it.
    """
    report = FlightReport(
        baseline_meta={name: _meta(p) for name, p in sorted(baseline.items())},
        current_meta={name: _meta(p) for name, p in sorted(current.items())})

    for bench in sorted(set(baseline) | set(current)):
        base_payload = baseline.get(bench)
        cur_payload = current.get(bench)
        if base_payload is None:
            report.rows.append(ComparisonRow(bench, None, None, NEW))
            continue
        if cur_payload is None:
            report.rows.append(ComparisonRow(bench, None, None, MISSING))
            continue
        base_flat = flatten_metrics(base_payload)
        cur_flat = flatten_metrics(cur_payload)
        for key in sorted(set(base_flat) | set(cur_flat)):
            path = f"{bench}.{key}"
            b = base_flat.get(key)
            c = cur_flat.get(key)
            if b is None:
                report.rows.append(ComparisonRow(path, None, c, NEW))
                continue
            if c is None:
                report.rows.append(ComparisonRow(path, b, None, MISSING))
                continue
            report.rows.append(_compare_metric(path, b, c, rules))
    return report


def _compare_metric(path: str, baseline: float, current: float,
                    rules: Sequence[MetricRule]) -> ComparisonRow:
    rule = _match_rule(path, rules)
    rel = ((current - baseline) / abs(baseline)
           if baseline != 0 else (0.0 if current == 0 else None))
    if rule is None or rule.direction == "ignore":
        return ComparisonRow(path, baseline, current, UNTRACKED,
                             rel_delta=rel,
                             rule=rule.pattern if rule else None)
    # signed "worseness": positive when the change hurts
    if rule.direction == "higher":
        worse_abs = baseline - current
    else:
        worse_abs = current - baseline
    # baseline 0: any change is infinitely-relative, so the relative
    # test is vacuous and the abs floor alone decides (0 -> 1 failures
    # on a clean baseline must gate)
    worse_rel = (worse_abs / abs(baseline) if baseline != 0
                 else math.copysign(math.inf, worse_abs) if worse_abs
                 else 0.0)
    if worse_abs > rule.abs_floor and worse_rel > rule.rel_tol:
        outcome = REGRESSED
    elif worse_abs < -rule.abs_floor and worse_rel < -rule.rel_tol:
        outcome = IMPROVED
    else:
        outcome = OK
    return ComparisonRow(path, baseline, current, outcome,
                         direction=rule.direction, rel_delta=rel,
                         rule=rule.pattern)


def _meta(payload: dict) -> dict:
    return {k: payload.get(k) for k in
            ("schema_version", "device", "git_rev", "timestamp")
            if payload.get(k) is not None}


# ----------------------------------------------------------------------
# CLI driver (shared by `repro bench compare` and tools/bench_compare.py)
# ----------------------------------------------------------------------
def run_compare(baseline_path: str, current_path: str, *,
                json_out: Optional[str] = None,
                markdown_out: Optional[str] = None,
                rules: Sequence[MetricRule] = DEFAULT_RULES,
                print_fn=print) -> int:
    """Load, compare, emit artifacts; returns the process exit code."""
    try:
        baseline = collect_benches(baseline_path)
        current = collect_benches(current_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print_fn(f"error: {exc}")
        return 2
    if not baseline:
        print_fn(f"error: no BENCH_*.json under {baseline_path}")
        return 2
    report = compare(baseline, current, rules)
    print_fn(report.to_markdown())
    if json_out:
        Path(json_out).write_text(report.to_json())
        print_fn(f"[verdict json saved to {json_out}]")
    if markdown_out:
        Path(markdown_out).write_text(report.to_markdown())
        print_fn(f"[markdown saved to {markdown_out}]")
    if report.regressions:
        print_fn(f"FLIGHT RECORDER: {len(report.regressions)} tracked "
                 f"metric(s) regressed beyond threshold")
    else:
        print_fn("FLIGHT RECORDER: no tracked regressions")
    return report.exit_code
