"""``repro.obs`` — the unified observability layer.

Three pillars (docs/observability.md):

* :mod:`repro.obs.registry` — a labeled metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`) every subsystem
  registers onto instead of hand-rolling counters.  Histograms are backed
  by :class:`BoundedReservoir`, so totals stay exact while memory stays
  bounded no matter how long a serving process runs.
* :mod:`repro.obs.tracer` — :class:`SpanTracer`: nested wall-time spans
  interleaved with simulated-GPU kernel spans, exportable as Chrome
  trace-event JSON (``chrome://tracing`` / Perfetto) or a text flame
  summary.
* per-layer kernel attribution — ``layer``/``geometry`` tags threaded from
  :class:`~repro.deform.layers.DeformConv2d` through the dispatch layer
  into :class:`~repro.gpusim.profiler.KernelStats`, surfaced by
  ``ProfileLog.by_layer()`` and ``DefconEngine.per_layer_rows()``.
"""

from repro.obs.registry import (BoundedReservoir, Counter, Gauge, Histogram,
                                MetricsRegistry)
from repro.obs.tracer import SpanTracer

__all__ = [
    "BoundedReservoir", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "SpanTracer",
]
