"""``repro.obs`` — the unified observability layer.

Three pillars (docs/observability.md):

* :mod:`repro.obs.registry` — a labeled metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`) every subsystem
  registers onto instead of hand-rolling counters.  Histograms are backed
  by :class:`BoundedReservoir`, so totals stay exact while memory stays
  bounded no matter how long a serving process runs.
* :mod:`repro.obs.tracer` — :class:`SpanTracer`: nested wall-time spans
  interleaved with simulated-GPU kernel spans, exportable as Chrome
  trace-event JSON (``chrome://tracing`` / Perfetto) or a text flame
  summary.
* per-layer kernel attribution — ``layer``/``geometry`` tags threaded from
  :class:`~repro.deform.layers.DeformConv2d` through the dispatch layer
  into :class:`~repro.gpusim.profiler.KernelStats`, surfaced by
  ``ProfileLog.by_layer()`` and ``DefconEngine.per_layer_rows()``.
* :mod:`repro.obs.timeseries` — windowed time series on an injectable
  clock: per-window exact aggregates + bounded quantile sketches, with
  exemplars linking observations back to tracer spans.
* :mod:`repro.obs.slo` — declarative :class:`SLO` specs evaluated per
  window into attainment tables, multi-window burn rates and error
  budgets; ``registry.to_prometheus()`` exposes everything as a
  Prometheus-style text exposition.
* :mod:`repro.obs.flightrec` — the bench-regression flight recorder:
  noise-aware comparison of ``results/BENCH_*.json`` snapshots
  (``repro bench compare`` / ``tools/bench_compare.py``).
"""

from repro.obs.flightrec import (FlightReport, MetricRule, compare,
                                 run_compare)
from repro.obs.registry import (BoundedReservoir, Counter, Gauge, Histogram,
                                MetricsRegistry, prometheus_from_snapshot)
from repro.obs.slo import (SLO, SLOReport, evaluate_slo, evaluate_slos,
                           format_slo_table)
from repro.obs.timeseries import (Exemplar, QuantileSketch, WindowedHistogram,
                                  WindowedSeries)
from repro.obs.tracer import SpanTracer

__all__ = [
    "BoundedReservoir", "Counter", "Exemplar", "FlightReport", "Gauge",
    "Histogram", "MetricRule", "MetricsRegistry", "QuantileSketch", "SLO",
    "SLOReport", "SpanTracer", "WindowedHistogram", "WindowedSeries",
    "compare", "evaluate_slo", "evaluate_slos", "format_slo_table",
    "prometheus_from_snapshot", "run_compare",
]
