"""Windowed time-series metrics — the *time* axis `repro.obs` was missing.

:class:`~repro.obs.registry.MetricsRegistry` histograms aggregate over the
lifetime of a process: great for "what was p99 overall", useless for "in
which 20 ms window did p99 blow past the SLO".  This module adds that
axis as three composable pieces:

* :class:`QuantileSketch` — a t-digest-style bounded quantile sketch.
  Count / sum / min / max are exact; quantiles interpolate between merged
  centroids whose width is limited by ``4·W·q·(1-q)/compression``, so
  rank error concentrates at the tails exactly where SLOs look.  Memory
  is O(compression) regardless of how many observations arrive.
* :class:`WindowedSeries` — observations bucketed into fixed-width
  windows on an **injectable clock** (the fleet passes its
  :class:`~repro.fleet.scheduler.SimClock`, serving uses the wall clock),
  ring-buffered so only the most recent ``retention`` windows are held:
  memory is O(windows retained), never O(observations).  Each window
  keeps exact count/sum/min/max, a sketch, and a bounded set of
  **exemplars** (trace span ids attached to the worst observations) so a
  violated window can be traced back to concrete spans.
* :class:`WindowedHistogram` — the labeled
  :class:`~repro.obs.registry.Metric` wrapper the registry hands out via
  ``registry.windowed_histogram(...)``; one :class:`WindowedSeries` per
  label set, same locking discipline as the other metric kinds.

See docs/observability.md ("Time-series windows") and
:mod:`repro.obs.slo` for the SLO engine evaluated on top of these
windows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.registry import Metric

#: default fixed window width (ms) and number of retained windows
DEFAULT_WINDOW_MS = 1000.0
DEFAULT_RETENTION = 120
#: default t-digest compression (number of retained centroids, roughly)
DEFAULT_COMPRESSION = 64
#: exemplars retained per window (the worst observations win)
DEFAULT_EXEMPLARS_PER_WINDOW = 4


def wall_clock_ms() -> float:
    """Default clock: monotonic wall time in milliseconds."""
    return time.monotonic() * 1e3


@dataclass(frozen=True)
class Exemplar:
    """One concrete observation linked back to its trace span."""

    value: float
    span_id: str
    labels: Tuple[Tuple[str, str], ...] = ()
    ts_ms: float = 0.0

    def snapshot(self) -> dict:
        return {"value": self.value, "span_id": self.span_id,
                "labels": dict(self.labels), "ts_ms": self.ts_ms}


class QuantileSketch:
    """Bounded-memory quantile sketch (merging t-digest, k0/k1 hybrid).

    Incoming values buffer unmerged; once the buffer reaches
    ``4 × compression`` everything is sorted and greedily merged into
    centroids whose weight may not exceed ``4·W·q·(1-q)/compression``
    (``W`` total weight, ``q`` the centroid's mid-quantile).  That keeps
    centroid count O(compression) while forcing tail centroids to stay
    tiny — tail quantiles (the SLO ones) are near-exact.

    ``quantile()`` interpolates linearly between adjacent centroid means
    (exact min/max at the extremes); ``cdf()`` is the inverse — the
    estimated fraction of observations ``<= x`` — which is what
    error-budget accounting needs.
    """

    def __init__(self, compression: int = DEFAULT_COMPRESSION):
        if compression < 8:
            raise ValueError("sketch compression must be >= 8")
        self.compression = int(compression)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: merged (mean, weight) centroids, sorted by mean
        self._centroids: List[Tuple[float, float]] = []
        self._buffer: List[float] = []

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._buffer.append(value)
        if len(self._buffer) >= 4 * self.compression:
            self._compress()

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one (window → total roll-ups)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = other.min if self.min is None \
            else min(self.min, other.min)
        self.max = other.max if self.max is None \
            else max(self.max, other.max)
        self._centroids.extend(other._centroids)
        self._buffer.extend(other._buffer)
        self._compress()

    # ------------------------------------------------------------------
    def _compress(self) -> None:
        pending = self._centroids + [(v, 1.0) for v in self._buffer]
        self._buffer = []
        if not pending:
            return
        pending.sort()
        total = sum(w for _, w in pending)
        merged: List[Tuple[float, float]] = []
        cur_mean, cur_weight = pending[0]
        seen = 0.0          # weight fully to the left of the open centroid
        for mean, weight in pending[1:]:
            q = (seen + (cur_weight + weight) / 2.0) / total
            limit = max(1.0, 4.0 * total * q * (1.0 - q) / self.compression)
            if cur_weight + weight <= limit:
                new_weight = cur_weight + weight
                cur_mean += (mean - cur_mean) * weight / new_weight
                cur_weight = new_weight
            else:
                merged.append((cur_mean, cur_weight))
                seen += cur_weight
                cur_mean, cur_weight = mean, weight
        merged.append((cur_mean, cur_weight))
        self._centroids = merged

    @property
    def num_centroids(self) -> int:
        self._compress()
        return len(self._centroids)

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimated value at percentile ``q`` (0..100)."""
        if self.count == 0:
            return 0.0
        self._compress()
        q = min(100.0, max(0.0, float(q))) / 100.0
        if q <= 0.0:
            return float(self.min)
        if q >= 1.0:
            return float(self.max)
        target = q * self.count
        # centroid i spans cumulative weight (cum - w/2, cum + w/2)
        cum = 0.0
        prev_mid, prev_mean = 0.0, float(self.min)
        for mean, weight in self._centroids:
            mid = cum + weight / 2.0
            if target <= mid:
                span = mid - prev_mid
                frac = (target - prev_mid) / span if span > 0 else 0.0
                return prev_mean + frac * (mean - prev_mean)
            cum += weight
            prev_mid, prev_mean = mid, mean
        span = self.count - prev_mid
        frac = (target - prev_mid) / span if span > 0 else 1.0
        return prev_mean + frac * (float(self.max) - prev_mean)

    def cdf(self, x: float) -> float:
        """Estimated fraction of observations ``<= x`` (0..1)."""
        if self.count == 0:
            return 0.0
        x = float(x)
        if x < self.min:
            return 0.0
        if x >= self.max:
            return 1.0
        self._compress()
        cum = 0.0
        prev_mid, prev_mean = 0.0, float(self.min)
        for mean, weight in self._centroids:
            mid = cum + weight / 2.0
            if x < mean:
                span = mean - prev_mean
                frac = (x - prev_mean) / span if span > 0 else 0.0
                return (prev_mid + frac * (mid - prev_mid)) / self.count
            cum += weight
            prev_mid, prev_mean = mid, mean
        span = float(self.max) - prev_mean
        frac = (x - prev_mean) / span if span > 0 else 1.0
        return (prev_mid + frac * (self.count - prev_mid)) / self.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
        }

    def __repr__(self) -> str:
        return (f"QuantileSketch(count={self.count}, "
                f"centroids={len(self._centroids)}+{len(self._buffer)})")


class WindowStats:
    """One fixed-width window: exact aggregates + sketch + exemplars."""

    def __init__(self, index: int, window_ms: float,
                 compression: int = DEFAULT_COMPRESSION,
                 max_exemplars: int = DEFAULT_EXEMPLARS_PER_WINDOW):
        self.index = index
        self.start_ms = index * window_ms
        self.end_ms = (index + 1) * window_ms
        self.sketch = QuantileSketch(compression)
        self.max_exemplars = max_exemplars
        #: kept sorted ascending by value; the *worst* observations win
        self.exemplars: List[Exemplar] = []

    def observe(self, value: float,
                exemplar: Optional[Exemplar] = None) -> None:
        self.sketch.add(value)
        if exemplar is not None:
            self.exemplars.append(exemplar)
            self.exemplars.sort(key=lambda e: (-e.value, e.span_id))
            del self.exemplars[self.max_exemplars:]

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def sum(self) -> float:
        return self.sketch.total

    @property
    def min(self) -> Optional[float]:
        return self.sketch.min

    @property
    def max(self) -> Optional[float]:
        return self.sketch.max

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)

    def snapshot(self) -> dict:
        snap = {"window_start_ms": self.start_ms,
                "window_end_ms": self.end_ms, **self.sketch.snapshot()}
        if self.exemplars:
            snap["exemplars"] = [e.snapshot() for e in self.exemplars]
        return snap


class WindowedSeries:
    """Ring buffer of :class:`WindowStats` over an injectable clock.

    Observations land in the window covering their timestamp; the ring
    retains the ``retention`` most recent windows ever observed into.
    Out-of-order arrivals are fine (concurrent producers rarely observe
    in global time order); only observations older than a window the
    ring already *evicted* are counted on ``dropped`` instead of
    resurrecting it (memory stays O(retention) under any input).
    """

    def __init__(self, window_ms: float = DEFAULT_WINDOW_MS,
                 retention: int = DEFAULT_RETENTION,
                 clock: Callable[[], float] = wall_clock_ms,
                 compression: int = DEFAULT_COMPRESSION,
                 max_exemplars: int = DEFAULT_EXEMPLARS_PER_WINDOW):
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.window_ms = float(window_ms)
        self.retention = int(retention)
        self.clock = clock
        self.compression = int(compression)
        self.max_exemplars = int(max_exemplars)
        #: window index -> WindowStats, ascending insertion order
        self._windows: Dict[int, WindowStats] = {}
        self.dropped = 0        # too-late observations refused
        self.evicted = 0        # windows rolled out of the ring
        #: indexes below this were evicted and may never come back
        self._evict_watermark: Optional[int] = None

    # ------------------------------------------------------------------
    def _index(self, ts_ms: float) -> int:
        return int(ts_ms // self.window_ms)

    def observe(self, value: float, ts_ms: Optional[float] = None,
                exemplar: Optional[Exemplar] = None) -> None:
        ts = float(ts_ms) if ts_ms is not None else float(self.clock())
        idx = self._index(ts)
        win = self._windows.get(idx)
        if win is None:
            if (self._evict_watermark is not None
                    and idx < self._evict_watermark):
                # older than an evicted window — never resurrect
                self.dropped += 1
                return
            win = WindowStats(idx, self.window_ms, self.compression,
                              self.max_exemplars)
            self._windows[idx] = win
            self._prune()
        win.observe(value, exemplar)

    def _prune(self) -> None:
        while len(self._windows) > self.retention:
            oldest = min(self._windows)
            del self._windows[oldest]
            self.evicted += 1
            self._evict_watermark = max(self._evict_watermark or 0,
                                        oldest + 1)

    # ------------------------------------------------------------------
    def windows(self) -> List[WindowStats]:
        """Retained windows, oldest first."""
        return [self._windows[i] for i in sorted(self._windows)]

    def __len__(self) -> int:
        return len(self._windows)

    @property
    def count(self) -> int:
        """Total observations across retained windows."""
        return sum(w.count for w in self._windows.values())

    def latest(self) -> Optional[WindowStats]:
        if not self._windows:
            return None
        return self._windows[max(self._windows)]

    def total_sketch(self) -> QuantileSketch:
        """All retained windows folded into one sketch."""
        total = QuantileSketch(self.compression)
        for w in self.windows():
            total.merge(w.sketch)
        return total

    def quantile_series(self, q: float) -> List[Tuple[float, float]]:
        """``[(window_start_ms, quantile_value), ...]`` oldest first."""
        return [(w.start_ms, w.quantile(q)) for w in self.windows()]

    def snapshot(self) -> dict:
        wins = self.windows()
        return {
            "window_ms": self.window_ms,
            "retention": self.retention,
            "windows": [w.snapshot() for w in wins],
            "count": sum(w.count for w in wins),
            "sum": sum(w.sum for w in wins),
            "dropped": self.dropped,
            "evicted": self.evicted,
        }


class WindowedHistogram(Metric):
    """Labeled windowed-histogram metric (one series per label set).

    Registered via
    :meth:`~repro.obs.registry.MetricsRegistry.windowed_histogram`; the
    clock is shared by every series, so a fleet registry built on a
    :class:`~repro.fleet.scheduler.SimClock` buckets everything in
    simulated time while a serving registry buckets in wall time.
    """

    kind = "windowed_histogram"

    def __init__(self, name: str, help: str = "",
                 window_ms: float = DEFAULT_WINDOW_MS,
                 retention: int = DEFAULT_RETENTION,
                 clock: Callable[[], float] = wall_clock_ms,
                 compression: int = DEFAULT_COMPRESSION,
                 max_exemplars: int = DEFAULT_EXEMPLARS_PER_WINDOW):
        super().__init__(name, help)
        self.window_ms = float(window_ms)
        self.retention = int(retention)
        self.clock = clock
        self.compression = int(compression)
        self.max_exemplars = int(max_exemplars)

    def _new_series(self) -> WindowedSeries:
        return WindowedSeries(self.window_ms, self.retention, self.clock,
                              self.compression, self.max_exemplars)

    def observe(self, value: float, ts_ms: Optional[float] = None,
                exemplar: Optional[Exemplar] = None, **labels) -> None:
        with self._lock:
            self._get_series(labels).observe(value, ts_ms, exemplar)

    def series(self, **labels) -> WindowedSeries:
        with self._lock:
            return self._get_series(labels)

    def count(self, **labels) -> int:
        with self._lock:
            return self._get_series(labels).count

    def _series_snapshot(self, series: WindowedSeries) -> dict:
        return series.snapshot()
