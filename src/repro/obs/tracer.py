"""Span tracer — wall-time spans interleaved with simulated-GPU kernel spans.

Two timelines share one trace:

* **host** (pid 1): nested wall-clock spans opened with
  :meth:`SpanTracer.span` — serve → batch → engine call.  One Chrome track
  per thread.
* **simGPU** (pid 2): one span per simulated kernel launch
  (:class:`~repro.gpusim.profiler.KernelStats`), laid out back-to-back on
  a virtual timeline whose unit is the *simulated* microsecond.  Each span
  carries the kernel name plus its ``layer``/``geometry`` attribution, so
  the paper's per-layer tables are visible directly in the trace viewer.

``chrome_trace()`` emits the Chrome trace-event JSON format (complete
``"X"`` events + ``"M"`` metadata), loadable in ``chrome://tracing`` and
Perfetto; ``flame_summary()`` renders an aggregated text flame view for
terminals and CI logs.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

#: Chrome trace pids for the two timelines.
WALL_PID = 1
SIM_PID = 2


class SpanTracer:
    """Collects spans; thread-safe; export via :meth:`chrome_trace`.

    ``clock`` is injectable (seconds, monotonic) so tests can drive a fake
    clock and get byte-identical traces.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        self._events: List[dict] = []
        self._sim_cursor_us = 0.0
        self._sim_launches = 0
        #: thread ident -> (compact tid, thread name)
        self._tids: Dict[int, int] = {}
        self._thread_names: Dict[int, str] = {}
        self._stacks: Dict[int, List[str]] = {}
        #: flame aggregation: "a;b;c" -> [total_us, count]
        self._flame: Dict[str, List[float]] = {}
        #: monotonically increasing span ids ("s1", "s2", ...) — the
        #: handles exemplars carry so a violated SLO window can name the
        #: exact span that served the offending request
        self._next_span_id = 0
        self._span_stacks: Dict[int, List[str]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[ident] = tid
            self._thread_names[tid] = threading.current_thread().name
        return tid

    def _record_flame(self, path: str, dur_us: float) -> None:
        agg = self._flame.setdefault(path, [0.0, 0])
        agg[0] += dur_us
        agg[1] += 1

    @contextmanager
    def span(self, name: str, cat: str = "wall", **args):
        """Open a nested wall-time span on the current thread.

        Every span gets a process-unique id (``"s1"``, ``"s2"``, ...)
        recorded in its ``args`` — :meth:`current_span_id` reads the
        innermost open one, which is what metric exemplars carry.
        """
        with self._lock:
            tid = self._tid()
            stack = self._stacks.setdefault(tid, [])
            stack.append(name)
            path = ";".join(stack)
            ts = self._now_us()
            self._next_span_id += 1
            span_id = f"s{self._next_span_id}"
            self._span_stacks.setdefault(tid, []).append(span_id)
        try:
            yield self
        finally:
            with self._lock:
                dur = max(0.0, self._now_us() - ts)
                self._events.append({
                    "name": name, "cat": cat, "ph": "X",
                    "ts": ts, "dur": dur, "pid": WALL_PID, "tid": tid,
                    "args": {"span_id": span_id,
                             **{str(k): v for k, v in args.items()}},
                })
                self._record_flame(path, dur)
                stack = self._stacks.get(tid)
                if stack and stack[-1] == name:
                    stack.pop()
                ids = self._span_stacks.get(tid)
                if ids and ids[-1] == span_id:
                    ids.pop()

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost span open on the current thread (or None)."""
        with self._lock:
            ids = self._span_stacks.get(self._tids.get(
                threading.get_ident(), -1))
            return ids[-1] if ids else None

    def record_kernel(self, stats) -> None:
        """Append one simulated kernel launch to the simGPU timeline.

        Accepts any object with ``name``/``duration_ms`` and optional
        ``layer``/``geometry``/``mflop`` attributes (KernelStats).
        """
        layer = getattr(stats, "layer", "") or "(unattributed)"
        geometry = getattr(stats, "geometry", "")
        with self._lock:
            ts = self._sim_cursor_us
            dur = max(0.0, float(stats.duration_ms) * 1e3)
            self._sim_cursor_us = ts + dur
            self._sim_launches += 1
            self._events.append({
                "name": stats.name or "kernel", "cat": "sim_kernel",
                "ph": "X", "ts": ts, "dur": dur, "pid": SIM_PID, "tid": 1,
                "args": {
                    "layer": layer, "geometry": geometry,
                    "mflop": round(getattr(stats, "mflop", 0.0), 3),
                },
            })
            self._record_flame(
                f"simGPU;{layer};{stats.name or 'kernel'}", dur)

    def attach(self, log) -> "SpanTracer":
        """Subscribe to a :class:`~repro.gpusim.profiler.ProfileLog` so
        every future kernel launch lands on the simGPU timeline."""
        log.subscribe(self.record_kernel)
        return self

    def instant(self, name: str, cat: str = "mark", **args) -> None:
        """A zero-duration instant event on the current thread's track."""
        with self._lock:
            self._events.append({
                "name": name, "cat": cat, "ph": "i", "s": "t",
                "ts": self._now_us(), "pid": WALL_PID, "tid": self._tid(),
                "args": {str(k): v for k, v in args.items()},
            })

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def sim_time_us(self) -> float:
        """Total simulated-GPU time placed on the simGPU track."""
        with self._lock:
            return self._sim_cursor_us

    def _metadata_events(self) -> List[dict]:
        meta = [
            {"name": "process_name", "ph": "M", "pid": WALL_PID, "tid": 0,
             "args": {"name": "host (wall time)"}},
            {"name": "process_name", "ph": "M", "pid": SIM_PID, "tid": 0,
             "args": {"name": "simGPU (simulated time)"}},
            {"name": "thread_name", "ph": "M", "pid": SIM_PID, "tid": 1,
             "args": {"name": "kernel launches"}},
        ]
        for tid, tname in sorted(self._thread_names.items()):
            meta.append({"name": "thread_name", "ph": "M", "pid": WALL_PID,
                         "tid": tid, "args": {"name": tname}})
        return meta

    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object (``{"traceEvents": [...]}``).

        Events are sorted by (pid, tid, ts, -dur, name), so export order is
        a pure function of the recorded spans — deterministic under a
        deterministic clock.
        """
        with self._lock:
            events = sorted(
                self._events,
                key=lambda e: (e["pid"], e["tid"], e["ts"],
                               -e.get("dur", 0.0), e["name"]))
            meta = self._metadata_events()
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def flame_summary(self, min_us: float = 0.0,
                      top: Optional[int] = None) -> str:
        """Aggregated text flame view: one line per span path.

        Host paths aggregate wall time; ``simGPU;...`` paths aggregate
        simulated time — the two units share the table but never mix in
        one row.  Rows sort by total time descending with the span path
        as a deterministic tie-break, so equal-duration rows (common
        under fake clocks and in CI logs) always print in the same
        order.  ``top`` keeps only the N largest rows after the
        ``min_us`` filter.
        """
        with self._lock:
            rows = sorted(self._flame.items(),
                          key=lambda kv: (-kv[1][0], kv[0]))
        kept = [(path, us, count) for path, (us, count) in rows
                if us >= min_us]
        if top is not None:
            kept = kept[:max(0, int(top))]
        lines = ["flame summary (self+children us, count, path)"]
        for path, us, count in kept:
            depth = path.count(";")
            leaf = path.rsplit(";", 1)[-1]
            lines.append(f"{us:12.1f}  {int(count):6d}  "
                         f"{'  ' * depth}{leaf}")
        return "\n".join(lines)
