"""Dynamic request batching for :class:`~repro.pipeline.engine.DefconEngine`.

Individual images arrive one at a time (a detection request per camera
frame, a classification request per upload); the simulated GPU — like the
real one — amortises its fixed per-launch overhead over the batch
dimension, so serving them one by one wastes most of the device.  The
batcher coalesces requests into batched ``detect`` / ``classify`` calls:

* pending requests are bucketed **per image shape** (only same-shaped
  images can stack into one tensor), so a stream of interleaved shapes
  does not suffer head-of-line blocking: a differently-shaped arrival
  joins its own bucket instead of force-closing the current batch;
* within a bucket the classic size-or-deadline policy applies: a batch
  closes when its bucket reaches ``max_batch_size`` **or** when the
  oldest request in any bucket has waited ``max_wait_s``;
* buckets are served oldest-request-first, so cross-shape fairness is
  FIFO in submission order;
* every request gets a :class:`concurrent.futures.Future`, so callers can
  block, poll, or fan out; engine failures propagate to exactly the
  futures of the failed batch.

The batching core is synchronous and deterministic — ``flush()`` drains the
queue on the caller's thread, which is what the tests and throughput bench
use.  ``start()`` adds a daemon worker thread for live serving, where the
``max_wait_s`` deadline actually matters.

Shutdown is fail-fast: once :meth:`close` runs, every still-queued request
is either served (``flush=True``, the default) or has its future resolved
with :class:`BatcherClosedError`; later ``submit()`` / ``start()`` calls
raise :class:`BatcherClosedError` immediately instead of silently
enqueueing work no thread will ever drain.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.metrics import ServingMetrics


class BatcherClosedError(RuntimeError):
    """Raised by ``submit()``/``start()`` after ``close()``, and set on the
    futures of requests the batcher discarded instead of serving."""


@dataclass
class _Request:
    """One submitted image and its promise."""

    id: int
    image: np.ndarray                 # (C, H, W)
    future: Future = field(default_factory=Future)
    submit_t: float = 0.0


class RequestBatcher:
    """Coalesce single-image requests into batched engine calls.

    Parameters
    ----------
    engine:
        Anything with ``classify(images)`` (``task='classify'``) or
        ``detect(images, **kwargs)`` (``task='detect'``) over an
        (N, C, H, W) array, plus — optionally — a ``log.total_ms`` for
        simulated-latency accounting (``DefconEngine`` has all three).
    task:
        'classify' → each future resolves to that image's predicted label;
        'detect'  → each future resolves to the list of
        :class:`~repro.data.coco_map.Detection` for that image, with
        ``image_id`` rewritten to the request id.
    max_batch_size / max_wait_s:
        The size-or-deadline batching policy (applied per shape bucket).
    """

    def __init__(self, engine, task: str = "classify",
                 max_batch_size: int = 8, max_wait_s: float = 0.02,
                 metrics: Optional[ServingMetrics] = None,
                 clock: Callable[[], float] = time.monotonic,
                 tracer=None, **task_kwargs):
        if task not in ("classify", "detect"):
            raise ValueError(f"unknown task {task!r}; "
                             "choose from ('classify', 'detect')")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.engine = engine
        self.task = task
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.metrics = metrics if metrics is not None else ServingMetrics()
        #: optional repro.obs.SpanTracer — wraps every served batch in a
        #: wall-time span (pass the same tracer to the engine to interleave
        #: the simulated kernel spans underneath)
        self.tracer = tracer
        self.task_kwargs = task_kwargs
        self._clock = clock
        #: per-shape FIFO sub-queues; insertion order of the dict is the
        #: order buckets first appeared, but service order is decided by
        #: the oldest request id across bucket heads
        self._buckets: "OrderedDict[Tuple[int, ...], deque]" = OrderedDict()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._next_id = 0
        self._worker: Optional[threading.Thread] = None
        self._stopping = False
        self._closed = False

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray) -> Future:
        """Enqueue one (C, H, W) image; returns the result future."""
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 3:
            raise ValueError(
                f"submit() takes one (C, H, W) image, got shape "
                f"{image.shape}; batching is the batcher's job")
        with self._lock:
            if self._closed or self._stopping:
                raise BatcherClosedError(
                    "batcher is closed; submit() after close() would "
                    "enqueue work no thread will drain")
            req = _Request(id=self._next_id, image=image,
                           submit_t=self._clock())
            self._next_id += 1
            bucket = self._buckets.get(image.shape)
            if bucket is None:
                bucket = deque()
                self._buckets[image.shape] = bucket
            bucket.append(req)
            self.metrics.record_submit()
            self._wakeup.notify()
        return req.future

    def submit_many(self, images: Sequence[np.ndarray]) -> List[Future]:
        return [self.submit(img) for img in images]

    def serve_all(self, images: Sequence[np.ndarray]) -> List[object]:
        """Submit everything, drain synchronously, return ordered results."""
        futures = self.submit_many(images)
        if self._worker is None:
            self.flush()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # batching core (synchronous, deterministic)
    # ------------------------------------------------------------------
    def _pending_count_locked(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def _oldest_bucket_locked(self) -> Optional[Tuple[int, ...]]:
        """The shape whose head request was submitted first (lowest id)."""
        oldest_shape = None
        oldest_id = None
        for shape, bucket in self._buckets.items():
            if bucket and (oldest_id is None or bucket[0].id < oldest_id):
                oldest_id = bucket[0].id
                oldest_shape = shape
        return oldest_shape

    def _take_batch(self) -> List[_Request]:
        """Pop the next batch: the oldest bucket's head run, capped at
        max_batch_size.  Requests of other shapes stay queued in their own
        buckets (no head-of-line blocking across shapes)."""
        with self._lock:
            shape = self._oldest_bucket_locked()
            if shape is None:
                return []
            bucket = self._buckets[shape]
            batch = [bucket.popleft()]
            while bucket and len(batch) < self.max_batch_size:
                batch.append(bucket.popleft())
            if not bucket:
                del self._buckets[shape]
            return batch

    def _serve_batch(self, batch: List[_Request]) -> None:
        if self.tracer is not None:
            with self.tracer.span("serve.batch", cat="serve",
                                  size=len(batch),
                                  first_request=batch[0].id):
                self._serve_batch_inner(batch)
        else:
            self._serve_batch_inner(batch)

    def _serve_batch_inner(self, batch: List[_Request]) -> None:
        images = np.stack([r.image for r in batch])
        t0 = self._clock()
        waits = [t0 - r.submit_t for r in batch]
        sim0 = self._engine_sim_ms()
        try:
            if self.task == "classify":
                labels = self.engine.classify(images)
                results = [labels[i] for i in range(len(batch))]
            else:
                dets = self.engine.detect(images, **self.task_kwargs)
                results = self._split_detections(dets, batch)
        except BaseException as exc:   # propagate to exactly this batch
            for r in batch:
                r.future.set_exception(exc)
            self.metrics.record_batch(len(batch), waits,
                                      self._clock() - t0, 0.0, failed=True)
            return
        sim_ms = self._engine_sim_ms() - sim0
        self.metrics.record_batch(len(batch), waits, self._clock() - t0,
                                  sim_ms)
        for r, res in zip(batch, results):
            r.future.set_result(res)

    def _engine_sim_ms(self) -> float:
        log = getattr(self.engine, "log", None)
        return float(log.total_ms) if log is not None else 0.0

    @staticmethod
    def _split_detections(dets, batch: List[_Request]) -> List[list]:
        """Group a batched detect()'s flat list back per request."""
        from dataclasses import replace

        per_image: List[list] = [[] for _ in batch]
        for det in dets:
            idx = int(det.image_id)
            per_image[idx].append(replace(det, image_id=batch[idx].id))
        return per_image

    def flush(self) -> int:
        """Serve every pending request now (caller's thread); returns the
        number of requests served."""
        served = 0
        while True:
            batch = self._take_batch()
            if not batch:
                return served
            self._serve_batch(batch)
            served += len(batch)

    # ------------------------------------------------------------------
    # threaded front-end
    # ------------------------------------------------------------------
    def start(self) -> "RequestBatcher":
        """Run a daemon worker that applies the size-or-deadline policy."""
        with self._lock:
            if self._closed:
                raise BatcherClosedError("batcher is closed; create a new "
                                         "one instead of restarting")
        if self._worker is not None:
            return self
        self._stopping = False
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()
        return self

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._pending_count_locked() and not self._stopping:
                    self._wakeup.wait(timeout=0.05)
                if self._stopping and not self._pending_count_locked():
                    return
                shape = self._oldest_bucket_locked()
                oldest = self._buckets[shape][0].submit_t
            # Coalesce: wait until some bucket is full or the oldest
            # request's deadline passes (closing immediately when told to
            # stop).
            deadline = oldest + self.max_wait_s
            while not self._stopping:
                with self._lock:
                    full = any(len(b) >= self.max_batch_size
                               for b in self._buckets.values())
                if full or self._clock() >= deadline:
                    break
                time.sleep(min(0.001, max(0.0, deadline - self._clock())))
            batch = self._take_batch()
            if batch:
                self._serve_batch(batch)

    def close(self, flush: bool = True) -> None:
        """Stop the worker and seal the batcher (idempotent).

        ``flush=True`` (default) serves whatever is still queued on the
        caller's thread; ``flush=False`` resolves every in-flight future
        with :class:`BatcherClosedError` — either way no future is left
        dangling, and subsequent ``submit()``/``start()`` raise.
        """
        worker = self._worker
        with self._lock:
            self._stopping = True
            self._closed = True
            self._wakeup.notify_all()
        if worker is not None:
            worker.join(timeout=5.0)
            self._worker = None
        if flush:
            self.flush()
        else:
            while True:
                batch = self._take_batch()
                if not batch:
                    break
                for r in batch:
                    r.future.set_exception(BatcherClosedError(
                        "batcher closed before serving this request"))

    def __enter__(self) -> "RequestBatcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
