"""Dynamic request batching for :class:`~repro.pipeline.engine.DefconEngine`.

Individual images arrive one at a time (a detection request per camera
frame, a classification request per upload); the simulated GPU — like the
real one — amortises its fixed per-launch overhead over the batch
dimension, so serving them one by one wastes most of the device.  The
batcher coalesces requests into batched ``detect`` / ``classify`` calls:

* a batch closes when it reaches ``max_batch_size`` **or** when the oldest
  request in it has waited ``max_wait_s`` (the classic size-or-deadline
  policy);
* only same-shaped images share a batch (they must stack into one tensor);
  a shape change closes the current batch and starts the next;
* every request gets a :class:`concurrent.futures.Future`, so callers can
  block, poll, or fan out; engine failures propagate to exactly the
  futures of the failed batch.

The batching core is synchronous and deterministic — ``flush()`` drains the
queue on the caller's thread, which is what the tests and throughput bench
use.  ``start()`` adds a daemon worker thread for live serving, where the
``max_wait_s`` deadline actually matters.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.serve.metrics import ServingMetrics


@dataclass
class _Request:
    """One submitted image and its promise."""

    id: int
    image: np.ndarray                 # (C, H, W)
    future: Future = field(default_factory=Future)
    submit_t: float = 0.0


class RequestBatcher:
    """Coalesce single-image requests into batched engine calls.

    Parameters
    ----------
    engine:
        Anything with ``classify(images)`` (``task='classify'``) or
        ``detect(images, **kwargs)`` (``task='detect'``) over an
        (N, C, H, W) array, plus — optionally — a ``log.total_ms`` for
        simulated-latency accounting (``DefconEngine`` has all three).
    task:
        'classify' → each future resolves to that image's predicted label;
        'detect'  → each future resolves to the list of
        :class:`~repro.data.coco_map.Detection` for that image, with
        ``image_id`` rewritten to the request id.
    max_batch_size / max_wait_s:
        The size-or-deadline batching policy.
    """

    def __init__(self, engine, task: str = "classify",
                 max_batch_size: int = 8, max_wait_s: float = 0.02,
                 metrics: Optional[ServingMetrics] = None,
                 clock: Callable[[], float] = time.monotonic,
                 tracer=None, **task_kwargs):
        if task not in ("classify", "detect"):
            raise ValueError(f"unknown task {task!r}; "
                             "choose from ('classify', 'detect')")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.engine = engine
        self.task = task
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.metrics = metrics if metrics is not None else ServingMetrics()
        #: optional repro.obs.SpanTracer — wraps every served batch in a
        #: wall-time span (pass the same tracer to the engine to interleave
        #: the simulated kernel spans underneath)
        self.tracer = tracer
        self.task_kwargs = task_kwargs
        self._clock = clock
        self._pending: deque = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._next_id = 0
        self._worker: Optional[threading.Thread] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray) -> Future:
        """Enqueue one (C, H, W) image; returns the result future."""
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 3:
            raise ValueError(
                f"submit() takes one (C, H, W) image, got shape "
                f"{image.shape}; batching is the batcher's job")
        with self._lock:
            if self._stopping:
                raise RuntimeError("batcher is closed")
            req = _Request(id=self._next_id, image=image,
                           submit_t=self._clock())
            self._next_id += 1
            self._pending.append(req)
            self.metrics.record_submit()
            self._wakeup.notify()
        return req.future

    def submit_many(self, images: Sequence[np.ndarray]) -> List[Future]:
        return [self.submit(img) for img in images]

    def serve_all(self, images: Sequence[np.ndarray]) -> List[object]:
        """Submit everything, drain synchronously, return ordered results."""
        futures = self.submit_many(images)
        if self._worker is None:
            self.flush()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # batching core (synchronous, deterministic)
    # ------------------------------------------------------------------
    def _take_batch(self) -> List[_Request]:
        """Pop the next batch: a same-shape run capped at max_batch_size."""
        with self._lock:
            if not self._pending:
                return []
            batch = [self._pending.popleft()]
            shape = batch[0].image.shape
            while (self._pending and len(batch) < self.max_batch_size
                   and self._pending[0].image.shape == shape):
                batch.append(self._pending.popleft())
            return batch

    def _serve_batch(self, batch: List[_Request]) -> None:
        if self.tracer is not None:
            with self.tracer.span("serve.batch", cat="serve",
                                  size=len(batch),
                                  first_request=batch[0].id):
                self._serve_batch_inner(batch)
        else:
            self._serve_batch_inner(batch)

    def _serve_batch_inner(self, batch: List[_Request]) -> None:
        images = np.stack([r.image for r in batch])
        t0 = self._clock()
        waits = [t0 - r.submit_t for r in batch]
        sim0 = self._engine_sim_ms()
        try:
            if self.task == "classify":
                labels = self.engine.classify(images)
                results = [labels[i] for i in range(len(batch))]
            else:
                dets = self.engine.detect(images, **self.task_kwargs)
                results = self._split_detections(dets, batch)
        except BaseException as exc:   # propagate to exactly this batch
            for r in batch:
                r.future.set_exception(exc)
            self.metrics.record_batch(len(batch), waits,
                                      self._clock() - t0, 0.0)
            return
        sim_ms = self._engine_sim_ms() - sim0
        self.metrics.record_batch(len(batch), waits, self._clock() - t0,
                                  sim_ms)
        for r, res in zip(batch, results):
            r.future.set_result(res)

    def _engine_sim_ms(self) -> float:
        log = getattr(self.engine, "log", None)
        return float(log.total_ms) if log is not None else 0.0

    @staticmethod
    def _split_detections(dets, batch: List[_Request]) -> List[list]:
        """Group a batched detect()'s flat list back per request."""
        from dataclasses import replace

        per_image: List[list] = [[] for _ in batch]
        for det in dets:
            idx = int(det.image_id)
            per_image[idx].append(replace(det, image_id=batch[idx].id))
        return per_image

    def flush(self) -> int:
        """Serve every pending request now (caller's thread); returns the
        number of requests served."""
        served = 0
        while True:
            batch = self._take_batch()
            if not batch:
                return served
            self._serve_batch(batch)
            served += len(batch)

    # ------------------------------------------------------------------
    # threaded front-end
    # ------------------------------------------------------------------
    def start(self) -> "RequestBatcher":
        """Run a daemon worker that applies the size-or-deadline policy."""
        if self._worker is not None:
            return self
        self._stopping = False
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()
        return self

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._stopping:
                    self._wakeup.wait(timeout=0.05)
                if self._stopping and not self._pending:
                    return
                oldest = self._pending[0].submit_t
            # Coalesce: wait until the batch is full or the oldest request's
            # deadline passes (closing immediately when told to stop).
            deadline = oldest + self.max_wait_s
            while not self._stopping:
                with self._lock:
                    full = len(self._pending) >= self.max_batch_size
                if full or self._clock() >= deadline:
                    break
                time.sleep(min(0.001, max(0.0, deadline - self._clock())))
            batch = self._take_batch()
            if batch:
                self._serve_batch(batch)

    def close(self, flush: bool = True) -> None:
        """Stop the worker; by default serve whatever is still queued."""
        worker = self._worker
        with self._lock:
            self._stopping = True
            self._wakeup.notify_all()
        if worker is not None:
            worker.join(timeout=5.0)
            self._worker = None
        if flush:
            self.flush()
        else:
            while True:
                batch = self._take_batch()
                if not batch:
                    break
                for r in batch:
                    r.future.set_exception(
                        RuntimeError("batcher closed before serving"))

    def __enter__(self) -> "RequestBatcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
