"""Per-request serving metrics: queue depth, batching, stage latencies.

The batcher records three stages for every served batch:

* **queue wait** — wall time between a request's submission and the start
  of its batch's inference (includes the deliberate coalescing wait);
* **inference wall time** — host-side time spent inside the engine call;
* **simulated GPU time** — the engine's :class:`ProfileLog` delta for the
  batch, i.e. the deformable kernel milliseconds the GPU model charged.

Everything lives on a :class:`~repro.obs.registry.MetricsRegistry` —
pass one in to share a metrics home with the engine (``repro trace``
does), or let the constructor create a private one.  Stage latencies are
:class:`~repro.obs.registry.Histogram` series backed by bounded
reservoirs: **counts and sums stay exact forever** while per-observation
memory is capped, so a serving process that handles millions of requests
holds steady-state memory (this replaces the unbounded per-request lists
that grew for the life of the process).

``snapshot()`` returns plain numbers so the CLI and benches can print or
assert without touching internals.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.obs.registry import MetricsRegistry


class ServingMetrics:
    """Metrics for one :class:`~repro.serve.RequestBatcher`.

    ``reservoir_size`` caps the per-stage latency sample buffers (totals
    and counts remain exact; percentiles become reservoir estimates once
    the cap is exceeded).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 reservoir_size: int = 1024,
                 window_ms: float = 1000.0, window_retention: int = 64):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        r = self.registry
        self._submitted = r.counter(
            "serve_requests_submitted", help="requests accepted by submit()")
        self._completed = r.counter(
            "serve_requests_completed", help="requests whose batch ran")
        self._failed = r.counter(
            "serve_requests_failed",
            help="requests whose batch raised in the engine")
        self._batch_failures = r.counter(
            "serve_batch_failures", help="batches that raised in the engine")
        self._depth = r.gauge(
            "serve_queue_depth", help="requests currently queued")
        self._peak_depth = r.gauge(
            "serve_peak_queue_depth", help="high-water queue depth")
        self._batches = r.counter(
            "serve_batches", help="served batches, labeled by batch size")
        self._queue_wait = r.histogram(
            "serve_queue_wait_seconds", reservoir_size=reservoir_size,
            help="submit-to-inference-start wall time per request")
        self._infer_wall = r.histogram(
            "serve_infer_wall_seconds", reservoir_size=reservoir_size,
            help="host wall time inside the engine call per batch")
        self._sim_ms = r.histogram(
            "serve_sim_ms_per_batch", reservoir_size=reservoir_size,
            help="simulated deformable GPU milliseconds per batch")
        # the time axis: per-request wall latency (queue wait + inference)
        # bucketed into fixed wall-clock windows, so serving dashboards
        # and SLOs can see *when* latency moved, not just lifetime
        # aggregates (see docs/observability.md, "Time-series windows")
        self._latency_windows = r.windowed_histogram(
            "serve_request_latency_ms",
            help="per-request wall latency (queue wait + inference), "
                 "windowed on the wall clock",
            window_ms=window_ms, retention=window_retention)

    # ------------------------------------------------------------------
    # recording hooks (called by the batcher)
    # ------------------------------------------------------------------
    def record_submit(self) -> None:
        with self._lock:
            self._submitted.inc()
            self._depth.inc()
            self._peak_depth.set_max(self._depth.value())

    def record_batch(self, size: int, queue_waits_s: List[float],
                     infer_wall_s: float, sim_ms: float,
                     failed: bool = False) -> None:
        """Record one attempted batch; ``failed=True`` when the engine call
        raised (the batch's requests count as failures, not completions)."""
        with self._lock:
            self._depth.dec(size)
            if failed:
                self._failed.inc(size)
                self._batch_failures.inc()
            else:
                self._completed.inc(size)
                self._batches.inc(size=size)
            for wait in queue_waits_s:
                self._queue_wait.observe(wait)
                self._latency_windows.observe(
                    (wait + infer_wall_s) * 1e3)
            self._infer_wall.observe(infer_wall_s)
            if not failed:
                self._sim_ms.observe(sim_ms)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def requests_submitted(self) -> int:
        return int(self._submitted.value())

    @property
    def requests_completed(self) -> int:
        return int(self._completed.value())

    @property
    def requests_failed(self) -> int:
        return int(self._failed.value())

    @property
    def batch_failures(self) -> int:
        return int(self._batch_failures.value())

    @property
    def queue_depth(self) -> int:
        return int(self._depth.value())

    @property
    def peak_queue_depth(self) -> int:
        return int(self._peak_depth.value())

    @property
    def num_batches(self) -> int:
        return sum(self.batch_size_histogram().values())

    @property
    def mean_batch_size(self) -> float:
        hist = self.batch_size_histogram()
        total = sum(s * n for s, n in hist.items())
        count = sum(hist.values())
        return total / count if count else 0.0

    @property
    def sim_ms_per_image(self) -> float:
        """Simulated deformable milliseconds per served image."""
        done = self.requests_completed
        return self._sim_ms.sum() / done if done else 0.0

    def batch_size_histogram(self) -> Dict[int, int]:
        hist = {int(labels["size"]): int(self._batches.value(**labels))
                for labels in self._batches.label_sets()}
        return dict(sorted(hist.items()))

    def snapshot(self) -> dict:
        """A flat, JSON-friendly view of everything recorded so far."""
        hist = self.batch_size_histogram()
        batches = sum(hist.values())
        completed = self.requests_completed
        waits = self._queue_wait.reservoir()
        infer = self._infer_wall.reservoir()
        sim_total = self._sim_ms.sum()
        return {
            "requests_submitted": self.requests_submitted,
            "requests_completed": completed,
            "requests_failed": self.requests_failed,
            "batch_failures": self.batch_failures,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "batches": batches,
            "batch_size_histogram": hist,
            "mean_batch_size": (completed / batches) if batches else 0.0,
            "queue_wait_ms_mean": 1e3 * waits.mean,
            "queue_wait_ms_p95": 1e3 * waits.percentile(95),
            "infer_wall_ms_mean": 1e3 * infer.mean,
            "sim_ms_total": float(sim_total),
            "sim_ms_per_image": (float(sim_total) / completed
                                 if completed else 0.0),
        }

    def summary(self, nvprof_rows: Optional[List[dict]] = None) -> str:
        """Human-readable report (optionally with the engine's nvprof table)."""
        from repro.pipeline.reporting import format_table

        snap = self.snapshot()
        rows = [[k, (f"{v:.4f}" if isinstance(v, float) else str(v))]
                for k, v in snap.items() if k != "batch_size_histogram"]
        hist = snap["batch_size_histogram"]
        rows.append(["batch_size_histogram",
                     " ".join(f"{s}:{n}" for s, n in hist.items()) or "-"])
        text = format_table(["metric", "value"], rows,
                            title="Serving metrics")
        if nvprof_rows:
            keys = list(nvprof_rows[0])
            text += "\n" + format_table(
                keys, [[r[k] for k in keys] for r in nvprof_rows],
                title="Engine nvprof counters")
        return text
