"""Per-request serving metrics: queue depth, batching, stage latencies.

The batcher records three stages for every served batch:

* **queue wait** — wall time between a request's submission and the start
  of its batch's inference (includes the deliberate coalescing wait);
* **inference wall time** — host-side time spent inside the engine call;
* **simulated GPU time** — the engine's :class:`ProfileLog` delta for the
  batch, i.e. the deformable kernel milliseconds the GPU model charged.

Everything is thread-safe; ``snapshot()`` returns plain numbers so the CLI
and benches can print or assert without touching internals.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, List, Optional

import numpy as np


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class ServingMetrics:
    """Thread-safe counters for one :class:`~repro.serve.RequestBatcher`."""

    def __init__(self):
        self._lock = threading.Lock()
        self.queue_depth = 0
        self.peak_queue_depth = 0
        self.requests_submitted = 0
        self.requests_completed = 0
        self.batch_sizes: Counter = Counter()
        self.queue_wait_s: List[float] = []
        self.infer_wall_s: List[float] = []
        self.sim_ms_per_batch: List[float] = []

    # ------------------------------------------------------------------
    # recording hooks (called by the batcher)
    # ------------------------------------------------------------------
    def record_submit(self) -> None:
        with self._lock:
            self.requests_submitted += 1
            self.queue_depth += 1
            self.peak_queue_depth = max(self.peak_queue_depth,
                                        self.queue_depth)

    def record_batch(self, size: int, queue_waits_s: List[float],
                     infer_wall_s: float, sim_ms: float) -> None:
        with self._lock:
            self.requests_completed += size
            self.queue_depth -= size
            self.batch_sizes[size] += 1
            self.queue_wait_s.extend(queue_waits_s)
            self.infer_wall_s.append(infer_wall_s)
            self.sim_ms_per_batch.append(sim_ms)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def num_batches(self) -> int:
        with self._lock:
            return sum(self.batch_sizes.values())

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            total = sum(s * n for s, n in self.batch_sizes.items())
            count = sum(self.batch_sizes.values())
        return total / count if count else 0.0

    @property
    def sim_ms_per_image(self) -> float:
        """Simulated deformable milliseconds per served image."""
        with self._lock:
            done = self.requests_completed
            sim = sum(self.sim_ms_per_batch)
        return sim / done if done else 0.0

    def batch_size_histogram(self) -> Dict[int, int]:
        with self._lock:
            return dict(sorted(self.batch_sizes.items()))

    def snapshot(self) -> dict:
        """A flat, JSON-friendly view of everything recorded so far."""
        with self._lock:
            waits = list(self.queue_wait_s)
            infer = list(self.infer_wall_s)
            sim = list(self.sim_ms_per_batch)
            hist = dict(sorted(self.batch_sizes.items()))
            submitted = self.requests_submitted
            completed = self.requests_completed
            depth = self.queue_depth
            peak = self.peak_queue_depth
        batches = sum(hist.values())
        return {
            "requests_submitted": submitted,
            "requests_completed": completed,
            "queue_depth": depth,
            "peak_queue_depth": peak,
            "batches": batches,
            "batch_size_histogram": hist,
            "mean_batch_size": (completed / batches) if batches else 0.0,
            "queue_wait_ms_mean": 1e3 * float(np.mean(waits)) if waits else 0.0,
            "queue_wait_ms_p95": 1e3 * _percentile(waits, 95),
            "infer_wall_ms_mean": (1e3 * float(np.mean(infer))
                                   if infer else 0.0),
            "sim_ms_total": float(sum(sim)),
            "sim_ms_per_image": (float(sum(sim)) / completed
                                 if completed else 0.0),
        }

    def summary(self, nvprof_rows: Optional[List[dict]] = None) -> str:
        """Human-readable report (optionally with the engine's nvprof table)."""
        from repro.pipeline.reporting import format_table

        snap = self.snapshot()
        rows = [[k, (f"{v:.4f}" if isinstance(v, float) else str(v))]
                for k, v in snap.items() if k != "batch_size_histogram"]
        hist = snap["batch_size_histogram"]
        rows.append(["batch_size_histogram",
                     " ".join(f"{s}:{n}" for s, n in hist.items()) or "-"])
        text = format_table(["metric", "value"], rows,
                            title="Serving metrics")
        if nvprof_rows:
            keys = list(nvprof_rows[0])
            text += "\n" + format_table(
                keys, [[r[k] for k in keys] for r in nvprof_rows],
                title="Engine nvprof counters")
        return text
