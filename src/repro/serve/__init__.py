"""Batched serving layer over :class:`~repro.pipeline.engine.DefconEngine`.

The deployment stack of the reproduction: a persistent tile store
(:mod:`repro.autotune.store`) warms the engine with offline-tuned tiles,
the :class:`RequestBatcher` coalesces single-image requests into batched
engine calls, and :class:`ServingMetrics` makes queueing, batching and
per-stage latency observable on a shared
:class:`~repro.obs.registry.MetricsRegistry` with bounded memory.  See
``docs/serving.md`` and ``docs/observability.md``.
"""

from repro.serve.batcher import RequestBatcher
from repro.serve.metrics import ServingMetrics

__all__ = ["RequestBatcher", "ServingMetrics"]
