"""Batched serving layer over :class:`~repro.pipeline.engine.DefconEngine`.

The deployment stack of the reproduction: a persistent tile store
(:mod:`repro.autotune.store`) warms the engine with offline-tuned tiles,
the engine's :class:`~repro.kernels.plancache.PlanCache` memoises the
texture perf model so steady-state repeated geometries skip trace
generation and cache simulation (hit/miss counters appear as
``plan_cache_lookups`` on the shared registry), the
:class:`RequestBatcher` coalesces single-image requests into batched
engine calls, and :class:`ServingMetrics` makes queueing, batching and
per-stage latency observable on a shared
:class:`~repro.obs.registry.MetricsRegistry` with bounded memory.  See
``docs/serving.md``, ``docs/performance.md`` and
``docs/observability.md``.
"""

from repro.serve.batcher import BatcherClosedError, RequestBatcher
from repro.serve.metrics import ServingMetrics

__all__ = ["BatcherClosedError", "RequestBatcher", "ServingMetrics"]
