"""MAC / FLOP accounting for deformable layers (paper Eq. 9 and Fig. 10).

Separates the three cost components the paper reasons about:

* offset-head MACs (regular vs lightweight — Eq. 9),
* main-convolution MACs (identical for regular conv and DCN),
* interpolation FLOPs (4 multiplies + 3 adds per tap in software; ~0 when
  the texture unit interpolates — the ≈4× MFLOP drop in Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeformMacBreakdown:
    """Per-inference cost of one deformable layer."""

    offset_macs: int
    main_macs: int
    interp_flops: int

    @property
    def total_macs(self) -> int:
        return self.offset_macs + self.main_macs

    @property
    def total_flops(self) -> int:
        # 1 MAC = 2 FLOPs, plus the explicit interpolation arithmetic.
        return 2 * self.total_macs + self.interp_flops


def regular_offset_macs(c_in: int, out_h: int, out_w: int, k: int,
                        deformable_groups: int = 1) -> int:
    """MACs of the regular 3×3 offset conv: ``L · 9 · C · 2·dg·k²``."""
    return out_h * out_w * 9 * c_in * 2 * deformable_groups * k * k


def lightweight_offset_macs(c_in: int, out_h: int, out_w: int, k: int,
                            deformable_groups: int = 1) -> int:
    """MACs of depthwise 3×3 + pointwise 1×1: ``L·9·C + L·C·2·dg·k²``."""
    l = out_h * out_w
    return l * 9 * c_in + l * c_in * 2 * deformable_groups * k * k


def main_conv_macs(c_in: int, c_out: int, out_h: int, out_w: int, k: int) -> int:
    return out_h * out_w * c_out * c_in * k * k


def software_interp_flops(c_in: int, out_h: int, out_w: int, k: int,
                          boundary_fraction: float = 0.0) -> int:
    """FLOPs of software bilinear interpolation: 7 per tap per channel.

    ``boundary_fraction`` discounts taps whose four neighbours are all out
    of bounds (the paper notes the MFLOP ratio is "not exactly four" because
    boundary pixels are substituted as zero and not computed).
    """
    taps = out_h * out_w * k * k * c_in
    return int(7 * taps * (1.0 - boundary_fraction))


def eq9_reduction(k: int = 3) -> float:
    """Closed-form Eq. 9 MAC reduction of the lightweight head.

    ``1 − (9·C·L + C·L·2k²) / (9·C·L·2k²)`` — independent of C, H, W.
    """
    return 1.0 - (9 + 2 * k * k) / (9 * 2 * k * k)


def breakdown(c_in: int, c_out: int, out_h: int, out_w: int, k: int = 3,
              lightweight: bool = False, texture_interp: bool = False,
              deformable_groups: int = 1,
              boundary_fraction: float = 0.0) -> DeformMacBreakdown:
    """Full cost breakdown for one configuration of the deformable layer."""
    if lightweight:
        off = lightweight_offset_macs(c_in, out_h, out_w, k, deformable_groups)
    else:
        off = regular_offset_macs(c_in, out_h, out_w, k, deformable_groups)
    interp = 0 if texture_interp else software_interp_flops(
        c_in, out_h, out_w, k, boundary_fraction)
    return DeformMacBreakdown(
        offset_macs=off,
        main_macs=main_conv_macs(c_in, c_out, out_h, out_w, k),
        interp_flops=interp,
    )
