"""Deformable convolution — forward and backward (paper Eq. 2 + 3).

The operator is lowered exactly the way the GPU kernels in
:mod:`repro.kernels` (and mmcv/torchvision CUDA kernels) do it:

1. *deformable im2col*: for every output pixel and kernel tap, sample the
   input at ``p0 + p_k + Δp_k`` with bilinear interpolation (zero out of
   bounds), producing a column matrix;
2. a GEMM of the columns with the flattened filter.

The backward pass produces gradients w.r.t. the input (bilinear scatter),
the offsets (analytic derivative of the interpolation weights) and the
filter — all fully vectorised.  Offset layout follows torchvision:
``offset[:, 2*(g*K + k)]`` is Δy and ``offset[:, 2*(g*K + k) + 1]`` is Δx
for deformable group ``g`` and tap ``k``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor import Tensor, backward_op
from repro.nn.im2col import conv_output_size


def _base_positions(h: int, w: int, kh: int, kw: int, stride: int,
                    padding: int, dilation: int
                    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Undeformed sampling positions ``p0 + p_k`` relative to the input.

    Returns float32 arrays of shape (K, OH*OW) — may be negative or exceed
    the image (the padding band), which the bilinear sampler zero-fills.
    """
    out_h = conv_output_size(h, kh, stride, padding, dilation)
    out_w = conv_output_size(w, kw, stride, padding, dilation)
    k_r = np.repeat(np.arange(kh) * dilation, kw).astype(np.float32)
    k_c = np.tile(np.arange(kw) * dilation, kh).astype(np.float32)
    o_r = (stride * np.repeat(np.arange(out_h), out_w) - padding).astype(np.float32)
    o_c = (stride * np.tile(np.arange(out_w), out_h) - padding).astype(np.float32)
    base_y = k_r[:, None] + o_r[None, :]
    base_x = k_c[:, None] + o_c[None, :]
    return base_y, base_x, out_h, out_w


def sampling_positions(offset: np.ndarray, in_hw: Tuple[int, int],
                       kernel_size: int, stride: int, padding: int,
                       dilation: int, deformable_groups: int
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Absolute fractional sampling positions for every tap.

    Returns ``(py, px)`` of shape (N, dg, K, OH*OW).  This is the access
    pattern handed to the GPU simulator's memory model — the irregularity
    the paper's texture optimisation targets comes from exactly these
    arrays.
    """
    n = offset.shape[0]
    k = kernel_size * kernel_size
    h, w = in_hw
    base_y, base_x, out_h, out_w = _base_positions(
        h, w, kernel_size, kernel_size, stride, padding, dilation)
    off = offset.reshape(n, deformable_groups, k, 2, out_h * out_w)
    py = base_y[None, None] + off[:, :, :, 0]
    px = base_x[None, None] + off[:, :, :, 1]
    return py.astype(np.float32), px.astype(np.float32)


def _corners(py: np.ndarray, px: np.ndarray):
    y0 = np.floor(py).astype(np.int64)
    x0 = np.floor(px).astype(np.int64)
    wy = py - y0
    wx = px - x0
    return y0, x0, wy, wx


def _gather_corners(x5: np.ndarray, y0, x0, wy, wx, h: int, w: int):
    """Gather the four corner values for every (n, g, c, k, l) sample.

    ``x5``: (N, dg, cpg, H*W) flattened input; index arrays have shape
    (N, dg, KL).  Returns corner values of shape (N, dg, cpg, KL) each plus
    the per-corner validity masks.
    """
    def gather(yi, xi):
        valid = (yi >= 0) & (yi < h) & (xi >= 0) & (xi < w)
        idx = np.clip(yi, 0, h - 1) * w + np.clip(xi, 0, w - 1)
        vals = np.take_along_axis(x5, idx[:, :, None, :], axis=-1)
        return vals * valid[:, :, None, :], valid, idx

    v00, m00, i00 = gather(y0, x0)
    v01, m01, i01 = gather(y0, x0 + 1)
    v10, m10, i10 = gather(y0 + 1, x0)
    v11, m11, i11 = gather(y0 + 1, x0 + 1)
    return (v00, v01, v10, v11), (m00, m01, m10, m11), (i00, i01, i10, i11)


def deform_im2col_arrays(x: np.ndarray, offset: np.ndarray, kernel_size: int,
                         stride: int, padding: int, dilation: int,
                         deformable_groups: int,
                         mask: Optional[np.ndarray] = None):
    """Raw-array deformable im2col; returns columns plus saved intermediates.

    ``x``: (N, C, H, W); ``offset``: (N, 2*dg*K, OH, OW);
    ``mask`` (modulation, DCNv2): (N, dg*K, OH, OW) or None.
    Columns come back as (N, C*K, L) ready for the filter GEMM.
    """
    n, c, h, w = x.shape
    dg = deformable_groups
    if c % dg:
        raise ValueError(f"channels {c} not divisible by deformable_groups {dg}")
    cpg = c // dg
    k = kernel_size * kernel_size
    py, px = sampling_positions(offset, (h, w), kernel_size, stride, padding,
                                dilation, dg)
    kl = py.shape[-1] * k
    py2 = py.reshape(n, dg, kl)
    px2 = px.reshape(n, dg, kl)
    y0, x0, wy, wx = _corners(py2, px2)
    x5 = x.reshape(n, dg, cpg, h * w)
    (v00, v01, v10, v11), masks, idxs = _gather_corners(x5, y0, x0, wy, wx, h, w)
    wy_b = wy[:, :, None, :]
    wx_b = wx[:, :, None, :]
    vals = ((1 - wy_b) * (1 - wx_b) * v00 + (1 - wy_b) * wx_b * v01
            + wy_b * (1 - wx_b) * v10 + wy_b * wx_b * v11)
    if mask is not None:
        m = mask.reshape(n, dg, 1, kl)
        raw_vals = vals
        vals = vals * m
    else:
        raw_vals = None
    l = kl // k
    # (N, dg, cpg, K, L) -> (N, C, K, L) -> (N, C*K, L)
    cols = vals.reshape(n, dg, cpg, k, l).reshape(n, c, k, l).reshape(n, c * k, l)
    saved = dict(y0=y0, x0=x0, wy=wy, wx=wx, corners=(v00, v01, v10, v11),
                 masks=masks, idxs=idxs, raw_vals=raw_vals, k=k, l=l,
                 cpg=cpg, dg=dg, hw=(h, w))
    return cols, saved


def deform_conv2d(x: Tensor, offset: Tensor, weight: Tensor,
                  bias: Optional[Tensor] = None, stride: int = 1,
                  padding: int = 0, dilation: int = 1,
                  deformable_groups: int = 1,
                  mask: Optional[Tensor] = None) -> Tensor:
    """Differentiable deformable convolution (Eq. 2).

    ``x``: (N, C_in, H, W); ``offset``: (N, 2*dg*K, OH, OW);
    ``weight``: (C_out, C_in, kh, kw); ``mask``: optional DCNv2 modulation
    (N, dg*K, OH, OW), typically passed through a sigmoid by the caller.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if kh != kw:
        raise ValueError("only square kernels are supported")
    if c_in_w != c_in:
        raise ValueError(f"weight expects {c_in_w} input channels, x has {c_in}")
    dg = deformable_groups
    k = kh * kw
    out_h = conv_output_size(h, kh, stride, padding, dilation)
    out_w = conv_output_size(w, kw, stride, padding, dilation)
    if offset.shape != (n, 2 * dg * k, out_h, out_w):
        raise ValueError(
            f"offset shape {offset.shape} != expected "
            f"{(n, 2 * dg * k, out_h, out_w)}"
        )
    mask_data = mask.data if mask is not None else None
    cols, saved = deform_im2col_arrays(
        x.data, offset.data, kh, stride, padding, dilation, dg, mask_data)
    l = out_h * out_w
    w2 = weight.data.reshape(c_out, c_in * k)
    out = np.einsum("ok,nkl->nol", w2, cols, optimize=True)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, offset, weight]
    if bias is not None:
        parents.append(bias)
    if mask is not None:
        parents.append(mask)

    def grad_fn(g):
        g2 = g.reshape(n, c_out, l)
        grad_w = np.einsum("nol,nkl->ok", g2, cols, optimize=True).reshape(
            weight.shape)
        grad_cols = np.einsum("ok,nol->nkl", w2, g2, optimize=True)
        cpg = saved["cpg"]
        kl = k * l
        # (N, C*K, L) -> (N, dg, cpg, KL)
        gc = grad_cols.reshape(n, dg, cpg, k, l).reshape(n, dg, cpg, kl)
        v00, v01, v10, v11 = saved["corners"]
        wy = saved["wy"][:, :, None, :]
        wx = saved["wx"][:, :, None, :]
        if mask is not None:
            m = mask_data.reshape(n, dg, 1, kl)
            grad_mask = (gc * (saved["raw_vals"])).sum(axis=2)  # (N, dg, KL)
            gc_eff = gc * m
        else:
            grad_mask = None
            gc_eff = gc

        # --- grad wrt offsets ------------------------------------------
        d_py = (1 - wx) * (v10 - v00) + wx * (v11 - v01)
        d_px = (1 - wy) * (v01 - v00) + wy * (v11 - v10)
        if mask is not None:
            # corners are raw values; modulation scales the derivative
            g_py = (gc * d_py).sum(axis=2) * mask_data.reshape(n, dg, kl)
            g_px = (gc * d_px).sum(axis=2) * mask_data.reshape(n, dg, kl)
        else:
            g_py = (gc_eff * d_py).sum(axis=2)
            g_px = (gc_eff * d_px).sum(axis=2)
        grad_off = np.empty((n, dg, k, 2, l), dtype=np.float32)
        grad_off[:, :, :, 0] = g_py.reshape(n, dg, k, l)
        grad_off[:, :, :, 1] = g_px.reshape(n, dg, k, l)
        grad_off = grad_off.reshape(offset.shape)

        # --- grad wrt input: bilinear scatter --------------------------
        hw = saved["hw"][0] * saved["hw"][1]
        weights4 = ((1 - wy) * (1 - wx), (1 - wy) * wx,
                    wy * (1 - wx), wy * wx)
        # global flat index base for (n, g, c): ((n*dg+g)*cpg+c)*HW
        base = (np.arange(n * dg * cpg) * hw).reshape(n, dg, cpg, 1)
        grad_x_flat = np.zeros(n * dg * cpg * hw, dtype=np.float64)
        for corner_w, valid, idx in zip(weights4, saved["masks"], saved["idxs"]):
            contrib = gc_eff * corner_w * valid[:, :, None, :]
            flat_idx = (base + idx[:, :, None, :]).ravel()
            grad_x_flat += np.bincount(flat_idx, weights=contrib.ravel(),
                                       minlength=grad_x_flat.size)
        grad_x = grad_x_flat.reshape(x.shape).astype(np.float32)

        grads = [grad_x, grad_off, grad_w]
        if bias is not None:
            grads.append(g.sum(axis=(0, 2, 3)))
        if mask is not None:
            grads.append(grad_mask.reshape(mask.shape))
        return grads

    return backward_op(out, tuple(parents), grad_fn, "deform_conv2d")
