"""Offset post-processing policies (paper Section III-A-c and Table V).

Three policies act on the raw offsets predicted by the offset head before
they reach the deformable kernel:

* **bounded** — clamp offsets so the receptive field stays within a
  ``P``-neighbourhood (paper Fig. 5 selects P = 7).  Hardware-friendly:
  bounded displacement preserves spatial locality of the input accesses.
* **rounded** — snap offsets to integers so bilinear interpolation can be
  skipped entirely (the FPGA trick of [28], [29]); the paper's Table V shows
  this costs ~1 mAP, which our ablation bench reproduces in shape.
* **regularized** — no hard clamp at inference, but a training-time penalty
  pushes offsets inside the bound (Table V row 2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import Tensor, backward_op

#: Paper Fig. 5: bounds above 7 give negligible accuracy gains, so 7 is the
#: recommended deformation bound for 3x3 deformable kernels.
DEFAULT_BOUND = 7.0


def bound_offsets(offset: Tensor, p: float, symmetric: bool = True) -> Tensor:
    """Clamp offsets to the deformation bound.

    The paper writes the restriction as ``[0, P]`` in terms of the offset
    *magnitude* allowed by the hardware accelerator; since offsets are
    signed displacements, the default clamps each component to ``[-P, P]``
    (``symmetric=True``).  ``symmetric=False`` gives the literal ``[0, P]``
    variant for comparison.
    """
    if p <= 0:
        raise ValueError(f"bound P must be positive, got {p}")
    lo = -p if symmetric else 0.0
    return offset.clamp(lo, p)


def round_offsets(offset: Tensor) -> Tensor:
    """Round offsets to the nearest integer with a straight-through gradient.

    Rounding removes the fractional part so no interpolation is needed, but
    is non-differentiable; the straight-through estimator (identity
    gradient) is what lets the Table V "Round" configuration still train.
    """
    out = np.rint(offset.data).astype(np.float32)
    return backward_op(out, (offset,), lambda g: (g,), "round_offsets")


def offset_regularization(offset: Tensor, p: float = DEFAULT_BOUND) -> Tensor:
    """Penalty for offsets escaping the bound: ``mean(relu(|o| - P)^2)``.

    Added to the task loss when training the "Regularization" row of
    Table V — a soft alternative to the hard clamp.
    """
    excess = (offset.abs() - p).relu()
    return (excess * excess).mean()


class OffsetPolicy:
    """Bundles the bounded/rounded choices into one configurable transform."""

    def __init__(self, bound: Optional[float] = None, rounded: bool = False,
                 symmetric: bool = True):
        if bound is not None and bound <= 0:
            raise ValueError("bound must be positive or None")
        self.bound = bound
        self.rounded = rounded
        self.symmetric = symmetric

    def __call__(self, offset: Tensor) -> Tensor:
        if self.bound is not None:
            offset = bound_offsets(offset, self.bound, self.symmetric)
        if self.rounded:
            offset = round_offsets(offset)
        return offset

    def __repr__(self) -> str:
        return (f"OffsetPolicy(bound={self.bound}, rounded={self.rounded}, "
                f"symmetric={self.symmetric})")
