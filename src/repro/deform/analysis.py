"""Analysis utilities for learned deformations.

The paper reasons about deformations qualitatively (Fig. 4's receptive
fields, the bounded-deformation discussion); these helpers make the same
quantities measurable on a trained model:

* per-layer offset statistics (spread, maximum reach, bound saturation);
* the effective receptive-field extent a deformable kernel achieves;
* a per-pixel deformation-magnitude map (renderable as ASCII art).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.deform.layers import DeformConv2d
from repro.nn import Module


@dataclass(frozen=True)
class OffsetStats:
    """Summary of one layer's predicted offsets (pixels)."""

    mean_magnitude: float
    std: float
    max_magnitude: float
    #: fraction of offset components sitting at the clamp bound
    saturation: float
    #: maximum sampling reach: base kernel radius + max offset
    effective_radius: float

    def row(self) -> Dict[str, float]:
        return {
            "mean|Δp|": round(self.mean_magnitude, 3),
            "std": round(self.std, 3),
            "max|Δp|": round(self.max_magnitude, 3),
            "saturation%": round(100 * self.saturation, 2),
            "eff_radius": round(self.effective_radius, 2),
        }


def offset_stats(offsets: np.ndarray, kernel_size: int = 3,
                 dilation: int = 1,
                 bound: Optional[float] = None) -> OffsetStats:
    """Statistics of an offset tensor (N, 2·dg·k², OH, OW)."""
    off = np.asarray(offsets, dtype=np.float64)
    dy = off[:, 0::2]
    dx = off[:, 1::2]
    mag = np.sqrt(dy**2 + dx**2)
    if bound is not None and bound > 0:
        at_bound = (np.abs(off) >= bound - 1e-4).mean()
    else:
        at_bound = 0.0
    base_radius = dilation * (kernel_size - 1) / 2.0
    return OffsetStats(
        mean_magnitude=float(mag.mean()),
        std=float(off.std()),
        max_magnitude=float(mag.max()),
        saturation=float(at_bound),
        effective_radius=float(base_radius + mag.max()),
    )


def model_offset_report(model: Module) -> Dict[str, OffsetStats]:
    """Offset stats for every DeformConv2d that has run a forward pass.

    Call after one inference (the layers cache ``last_offsets``).
    """
    report = {}
    for name, mod in model.named_modules():
        if isinstance(mod, DeformConv2d) and mod.last_offsets is not None:
            report[name] = offset_stats(
                mod.last_offsets.data, kernel_size=mod.kernel_size,
                dilation=mod.dilation, bound=mod.policy.bound)
    return report


def deformation_magnitude_map(offsets: np.ndarray) -> np.ndarray:
    """Per-output-pixel mean sampling displacement (OH, OW), batch-averaged."""
    off = np.asarray(offsets, dtype=np.float64)
    dy = off[:, 0::2]
    dx = off[:, 1::2]
    return np.sqrt(dy**2 + dx**2).mean(axis=(0, 1))


def ascii_heatmap(grid: np.ndarray, width: int = 32,
                  palette: str = " .:-=+*#%@") -> str:
    """Render a 2-D non-negative map as ASCII (row-subsampled to ``width``)."""
    grid = np.asarray(grid, dtype=np.float64)
    h, w = grid.shape
    step = max(1, w // width)
    small = grid[::step, ::step]
    peak = small.max()
    if peak <= 0:
        return "\n".join("".join(palette[0] for _ in row) for row in small)
    idx = np.minimum((small / peak * (len(palette) - 1)).astype(int),
                     len(palette) - 1)
    return "\n".join("".join(palette[i] for i in row) for row in idx)
