"""Software bilinear interpolation — paper Eq. (3).

This module is the *reference* ("PyTorch-style") interpolation path: the
four-neighbour gather with out-of-bounds values taken as zero, exactly as
described in Section II-A.  The GPU texture unit's fixed-point counterpart
lives in :mod:`repro.gpusim.texture`; tests assert the two agree to
fixed-point tolerance.

All functions are vectorised over arbitrary leading batch dimensions of the
coordinate arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def bilinear_kernel_1d(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """The 1-D interpolation kernel ``g(p, q) = max(0, 1 - |p - q|)``."""
    return np.maximum(0.0, 1.0 - np.abs(p - q))


def corner_weights(py: np.ndarray, px: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                              np.ndarray, np.ndarray]:
    """Integer corners and fractional weights for bilinear sampling.

    Returns ``(y0, x0, wy, wx, y1, x1)`` where ``(y0, x0)`` is the top-left
    integer neighbour and ``(wy, wx)`` are the fractional parts, so the four
    corner weights are::

        (1-wy)(1-wx)  (1-wy)wx
        wy(1-wx)      wy*wx
    """
    y0 = np.floor(py)
    x0 = np.floor(px)
    wy = (py - y0).astype(py.dtype)
    wx = (px - x0).astype(px.dtype)
    y0 = y0.astype(np.int64)
    x0 = x0.astype(np.int64)
    return y0, x0, wy, wx, y0 + 1, x0 + 1


def gather_zero_pad(img: np.ndarray, y: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gather ``img[..., y, x]`` treating out-of-bounds as zero.

    ``img`` has shape (..., H, W); ``y``/``x`` broadcast against the leading
    dims of ``img`` and index its last two axes elementwise.
    """
    h, w = img.shape[-2:]
    valid = (y >= 0) & (y < h) & (x >= 0) & (x < w)
    yc = np.clip(y, 0, h - 1)
    xc = np.clip(x, 0, w - 1)
    flat = img.reshape(*img.shape[:-2], h * w)
    idx = yc * w + xc
    lead = np.broadcast_shapes(flat.shape[:-1], idx.shape[:-1])
    vals = np.take_along_axis(
        np.broadcast_to(flat, (*lead, h * w)),
        np.broadcast_to(idx, (*lead, idx.shape[-1])),
        axis=-1,
    )
    return vals * valid


def bilinear_sample(img: np.ndarray, py: np.ndarray, px: np.ndarray) -> np.ndarray:
    """Sample ``img`` at fractional positions with zero padding (Eq. 3).

    ``img``: (..., H, W); ``py``/``px``: (..., L) sharing img's leading dims.
    Returns values of shape (..., L).
    """
    y0, x0, wy, wx, y1, x1 = corner_weights(py, px)
    v00 = gather_zero_pad(img, y0, x0)
    v01 = gather_zero_pad(img, y0, x1)
    v10 = gather_zero_pad(img, y1, x0)
    v11 = gather_zero_pad(img, y1, x1)
    return ((1 - wy) * (1 - wx) * v00 + (1 - wy) * wx * v01
            + wy * (1 - wx) * v10 + wy * wx * v11)


def bilinear_sample_reference(img: np.ndarray, py: float, px: float) -> float:
    """Scalar closed-form of Eq. (3): sum over *all* integer q of G·x(q).

    Quadratically slow; exists purely as a test oracle for
    :func:`bilinear_sample`.
    """
    h, w = img.shape
    total = 0.0
    for qy in range(h):
        gy = max(0.0, 1.0 - abs(py - qy))
        if gy == 0.0:
            continue
        for qx in range(w):
            gx = max(0.0, 1.0 - abs(px - qx))
            if gx:
                total += gy * gx * float(img[qy, qx])
    return total


def bilinear_gradients(img: np.ndarray, py: np.ndarray, px: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Partial derivatives of the sampled value w.r.t. (py, px).

    Piecewise-linear in each coordinate, so the derivative is the weighted
    difference of corner values.  Matches the analytic gradient used by the
    deformable-conv backward pass.
    """
    y0, x0, wy, wx, y1, x1 = corner_weights(py, px)
    v00 = gather_zero_pad(img, y0, x0)
    v01 = gather_zero_pad(img, y0, x1)
    v10 = gather_zero_pad(img, y1, x0)
    v11 = gather_zero_pad(img, y1, x1)
    d_py = (1 - wx) * (v10 - v00) + wx * (v11 - v01)
    d_px = (1 - wy) * (v01 - v00) + wy * (v11 - v10)
    return d_py, d_px
