"""Offset-prediction heads: regular conv vs lightweight depthwise (Eq. 9).

The offset head is step ① of the deformable computation (paper Fig. 1):
an extra convolution over the input activations producing ``2·dg·k²``
offset channels.  DEFCON replaces the regular 3×3 head with a depthwise
3×3 + BN + ReLU followed by a 1×1 projection (no BN/ReLU after the 1×1 —
its outputs are the raw fractional offsets), cutting MACs by 83.3 % for
k = 3 (Eq. 9).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import (BatchNorm2d, Conv2d, DepthwiseConv2d, Module,
                      PointwiseConv2d, ReLU)
from repro.nn import init
from repro.nn.module import Parameter


def offset_channels(kernel_size: int, deformable_groups: int = 1) -> int:
    """Number of offset channels: dg × k × k × 2 (x and y per tap)."""
    return 2 * deformable_groups * kernel_size * kernel_size


class RegularOffsetHead(Module):
    """The baseline offset conv: a full 3×3 convolution (YOLACT++ style).

    Zero-initialised so the deformable layer starts as a regular conv.
    """

    def __init__(self, in_channels: int, kernel_size: int = 3, stride: int = 1,
                 deformable_groups: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        out = offset_channels(kernel_size, deformable_groups)
        self.conv = Conv2d(in_channels, out, 3, stride=stride, padding=1,
                           bias=True, rng=rng)
        self.conv.weight = Parameter(init.zeros(self.conv.weight.shape))
        self.in_channels = in_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.deformable_groups = deformable_groups

    def forward(self, x):
        return self.conv(x)

    def macs(self, h: int, w: int) -> int:
        return self.conv.macs(h, w)


class LightweightOffsetHead(Module):
    """Depthwise 3×3 (+BN+ReLU) → pointwise 1×1 offset head (Eq. 9).

    MACs: ``H·W·9·C + H·W·C·2k²`` vs the regular head's ``H·W·9·C·2k²``
    (per output pixel) — an 83.3 % reduction at k = 3.
    """

    def __init__(self, in_channels: int, kernel_size: int = 3, stride: int = 1,
                 deformable_groups: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        out = offset_channels(kernel_size, deformable_groups)
        self.depthwise = DepthwiseConv2d(in_channels, 3, stride=stride,
                                         padding=1, bias=False, rng=rng)
        self.bn = BatchNorm2d(in_channels)
        self.relu = ReLU()
        self.pointwise = PointwiseConv2d(in_channels, out, bias=True, rng=rng)
        # Zero-init the projection so offsets start at zero (regular conv).
        self.pointwise.weight = Parameter(init.zeros(self.pointwise.weight.shape))
        self.in_channels = in_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.deformable_groups = deformable_groups

    def forward(self, x):
        return self.pointwise(self.relu(self.bn(self.depthwise(x))))

    def macs(self, h: int, w: int) -> int:
        return self.depthwise.macs(h, w) + self.pointwise.macs(
            *self.depthwise.output_shape(h, w)[1:])


def mac_reduction(in_channels: int, h: int, w: int, kernel_size: int = 3,
                  rng: Optional[np.random.Generator] = None) -> float:
    """Measured MAC reduction of the lightweight head — should equal Eq. 9.

    For k = 3 the closed form is
    ``1 - (9·C + C·2k²) / (9·C·2k²) = 1 - (9 + 18) / 162 = 83.33 %``.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    regular = RegularOffsetHead(in_channels, kernel_size, rng=rng)
    light = LightweightOffsetHead(in_channels, kernel_size, rng=rng)
    return 1.0 - light.macs(h, w) / regular.macs(h, w)
