"""Deformable convolution: the paper's core operator and its DEFCON knobs.

Public surface:

* :func:`deform_conv2d` — the differentiable operator (Eq. 2 + 3);
* :class:`DeformConv2d` — layer with lightweight / bounded / rounded /
  modulated options (Fig. 4);
* offset policies and the Eq. 9 MAC accounting.
"""

from repro.deform.bilinear import (bilinear_gradients, bilinear_kernel_1d,
                                   bilinear_sample, bilinear_sample_reference)
from repro.deform.deform_conv import (deform_conv2d, deform_im2col_arrays,
                                      sampling_positions)
from repro.deform.layers import DeformConv2d
from repro.deform.lightweight import (LightweightOffsetHead, RegularOffsetHead,
                                      mac_reduction, offset_channels)
from repro.deform.offsets import (DEFAULT_BOUND, OffsetPolicy, bound_offsets,
                                  offset_regularization, round_offsets)
from repro.deform.macs import DeformMacBreakdown, breakdown, eq9_reduction
from repro.deform.analysis import (OffsetStats, ascii_heatmap,
                                   deformation_magnitude_map,
                                   model_offset_report, offset_stats)

__all__ = [
    "bilinear_sample", "bilinear_sample_reference", "bilinear_gradients",
    "bilinear_kernel_1d",
    "deform_conv2d", "deform_im2col_arrays", "sampling_positions",
    "DeformConv2d",
    "LightweightOffsetHead", "RegularOffsetHead", "offset_channels",
    "mac_reduction",
    "OffsetPolicy", "bound_offsets", "round_offsets",
    "offset_regularization", "DEFAULT_BOUND",
    "DeformMacBreakdown", "breakdown", "eq9_reduction",
    "OffsetStats", "offset_stats", "model_offset_report",
    "deformation_magnitude_map", "ascii_heatmap",
]
