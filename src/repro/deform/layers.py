"""The :class:`DeformConv2d` layer — paper Fig. 4 (a)/(b) as one module.

Combines the pieces of the DEFCON optimisation paradigm:

* offset head: regular 3×3 conv (Fig. 4a) or lightweight depthwise+1×1
  (Fig. 4b, "Light" in Table III);
* offset policy: bounded deformation / rounded offsets (Fig. 4b, Table V);
* the deformable convolution itself (Eq. 2), optionally DCNv2-modulated.

The layer records its last predicted offsets (``last_offsets``) so that the
training loop can add the regularisation penalty of Table V and so the GPU
simulator can replay the true data-dependent access pattern.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import Conv2d, Module
from repro.nn import init
from repro.nn.im2col import conv_output_size
from repro.nn.module import Parameter
from repro.deform.deform_conv import deform_conv2d
from repro.deform.lightweight import (LightweightOffsetHead, RegularOffsetHead,
                                      offset_channels)
from repro.deform.offsets import OffsetPolicy


class DeformConv2d(Module):
    """Deformable convolution layer with DEFCON's optimisation knobs.

    Parameters
    ----------
    lightweight:
        Use the depthwise+pointwise offset head (83.3 % fewer offset MACs).
    bound:
        Deformation bound P (None = unbounded, paper's ∞ column in Fig. 5).
    rounded:
        Round offsets to integers (ablation only — hurts accuracy).
    modulated:
        DCNv2-style per-tap modulation mask (sigmoid-gated).
    """

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int = 3, stride: int = 1, padding: int = 1,
                 dilation: int = 1, deformable_groups: int = 1,
                 bias: bool = True, lightweight: bool = False,
                 bound: Optional[float] = None, rounded: bool = False,
                 modulated: bool = False, offset_grad_scale: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.deformable_groups = deformable_groups
        self.lightweight = lightweight
        self.modulated = modulated
        #: offsets learn slower than features (Dai et al.'s 0.1 lr-mult)
        self.offset_grad_scale = offset_grad_scale
        self.policy = OffsetPolicy(bound=bound, rounded=rounded)

        head_cls = LightweightOffsetHead if lightweight else RegularOffsetHead
        self.offset_head = head_cls(in_channels, kernel_size, stride=stride,
                                    deformable_groups=deformable_groups,
                                    rng=rng)
        if modulated:
            k2 = kernel_size * kernel_size
            self.mask_head = Conv2d(in_channels, deformable_groups * k2, 3,
                                    stride=stride, padding=1, rng=rng)
            self.mask_head.weight = Parameter(
                init.zeros(self.mask_head.weight.shape))
        else:
            self.mask_head = None

        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(rng, shape))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.last_offsets = None  # Tensor set on every forward
        #: set by :class:`repro.pipeline.engine.DefconEngine` to execute
        #: this layer through a simulated GPU kernel backend at inference
        self.texture_runtime = None
        #: dotted module path within the owning model (e.g.
        #: ``backbone.stages.1.0.conv2``), stamped by the engine so kernel
        #: launches attribute to this layer in ProfileLog.by_layer()
        self.layer_name = ""

    def forward(self, x):
        raw = self.offset_head(x)
        if self.offset_grad_scale != 1.0:
            from repro.tensor.tensor import grad_scale

            raw = grad_scale(raw, self.offset_grad_scale)
        offsets = self.policy(raw)
        self.last_offsets = offsets
        mask = None
        if self.mask_head is not None:
            # 2*sigmoid keeps the expected modulation at 1 (DCNv2 init trick).
            mask = self.mask_head(x).sigmoid() * 2.0
        if self.texture_runtime is not None:
            from repro.tensor import is_grad_enabled

            if not is_grad_enabled():
                if mask is not None:
                    raise NotImplementedError(
                        "modulated DCN has no texture-kernel backend")
                return self.texture_runtime.execute(self, x, offsets)
        return deform_conv2d(x, offsets, self.weight, self.bias,
                             stride=self.stride, padding=self.padding,
                             dilation=self.dilation,
                             deformable_groups=self.deformable_groups,
                             mask=mask)

    # ------------------------------------------------------------------
    def output_shape(self, h: int, w: int) -> tuple:
        return (
            self.out_channels,
            conv_output_size(h, self.kernel_size, self.stride, self.padding,
                             self.dilation),
            conv_output_size(w, self.kernel_size, self.stride, self.padding,
                             self.dilation),
        )

    def macs(self, h: int, w: int) -> int:
        """Total MACs: offset head + main deformable conv (+ mask head)."""
        _, oh, ow = self.output_shape(h, w)
        main = self.out_channels * oh * ow * self.in_channels * self.kernel_size**2
        total = main + self.offset_head.macs(h, w)
        if self.mask_head is not None:
            total += self.mask_head.macs(h, w)
        return total

    def __repr__(self) -> str:
        bits = [f"{self.in_channels}, {self.out_channels}",
                f"k={self.kernel_size}", f"s={self.stride}"]
        if self.lightweight:
            bits.append("light")
        if self.policy.bound is not None:
            bits.append(f"bound={self.policy.bound}")
        if self.policy.rounded:
            bits.append("rounded")
        if self.modulated:
            bits.append("modulated")
        return f"DeformConv2d({', '.join(bits)})"
