"""Differential oracles and the derived tolerance model.

Each backend in :mod:`repro.kernels` has an **independently implemented**
float64 oracle here that follows the same numerics *specification*:

* ``pytorch``  — software bilinear at fp32 sampling positions (the
  reference kernel blends in float64 because of NumPy promotion; the
  oracle does too, so the comparison bound is a float64 ULP bound);
* ``tex2d``    — CUDA texture-unit filtering: coordinates shifted by 0.5,
  blend fractions rounded to 1.8 fixed point *with the backend's exact
  fp32 rounding decisions*, border addressing returning zero;
* ``tex2dpp``  — tex2D plus fp16 quantisation of the offsets and of the
  fetch coordinates.

The oracle deliberately shares **no gather / blend / GEMM code** with the
backends (different index construction, different reduction path), so any
disagreement beyond floating-point reordering is a real bug.  The only
shared decisions are the spec constants (0.5 shift, 8 fraction bits) and
the fp32 coordinate arithmetic, replicated op-for-op so that rounding
*ties* resolve identically — without that, a tie flip would shift a blend
weight by a full 2⁻⁸ quantum and no ULP-scale comparison could work.

Tolerance model (docs/conformance.md derives these):

``ulp_tolerance``
    Backend vs its own oracle.  The backend evaluates the same real-valued
    expression in fp32 (fp64 for the reference path): per output element
    the classic dot-product error bound gives
    ``|err| ≤ (R + 16)·ε·(Σ|w|·|col| + |bias|)`` where ``R = C·K`` is the
    reduction depth, ε the element-type epsilon, and the +16 covers the
    per-tap blend arithmetic.  ``Σ|w|·|col|`` uses the oracle's *absolute*
    corner accumulations, which dominate every intermediate magnitude.
``fixed_point_tolerance``
    tex2D vs the fp32 reference.  Hardware filtering perturbs each blend
    fraction by at most δ_q = 2⁻⁹ (round-to-nearest in 1.8 fixed point)
    plus the fp32 ±0.5 coordinate round-trip slack ε_c; bilinear values
    are 2A-Lipschitz per coordinate axis (A = max|x| over the deformable
    group), so each column entry moves by ≤ 4A·(δ_q + ε_c) and the output
    by the |w|-weighted sum of that.
``fp16_pair_tolerance``
    tex2D++ vs tex2D.  fp16 quantisation moves each *effective* fetch
    coordinate by a measurable amount Δ (the oracle computes the actual
    deltas, not a worst case); each column entry moves by
    ≤ 2A·(Δy + Δx) plus an 8A·δ_q re-quantisation envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.kernels.config import LayerConfig

#: 1.8 fixed-point quantum (spec constant, kept independent of
#: repro.gpusim.texture so fault injection there cannot blind the oracle).
FRACTION_BITS = 8
#: Round-to-nearest quantisation error bound of a 1.8 fixed-point fraction.
DELTA_Q = 2.0 ** -(FRACTION_BITS + 1)

EPS32 = float(np.finfo(np.float32).eps)
EPS64 = float(np.finfo(np.float64).eps)

ORACLE_BACKENDS = ("pytorch", "tex2d", "tex2dpp")


# ----------------------------------------------------------------------
# coordinate pipeline (fp32 decisions replicated op-for-op)
# ----------------------------------------------------------------------
def base_positions(cfg: LayerConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Undeformed integer tap positions, shape (K, L) — independent
    construction (meshgrid) from the kernels' repeat/tile one."""
    oy, ox = np.meshgrid(np.arange(cfg.out_height), np.arange(cfg.out_width),
                         indexing="ij")
    ky, kx = np.meshgrid(np.arange(cfg.kernel_size),
                         np.arange(cfg.kernel_size), indexing="ij")
    by = (ky.reshape(-1, 1) * cfg.dilation
          + oy.reshape(1, -1) * cfg.stride - cfg.padding)
    bx = (kx.reshape(-1, 1) * cfg.dilation
          + ox.reshape(1, -1) * cfg.stride - cfg.padding)
    return by, bx


def sample_positions32(offset: np.ndarray, cfg: LayerConfig,
                       fp16_offsets: bool = False
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """fp32 sampling positions (N, dg, K, L): base + offset, one fp32 add.

    The offset layout is re-derived from the spec (offset channel
    ``2·(g·K + k)`` is Δy, ``+1`` is Δx), not borrowed from the kernels.
    """
    n = offset.shape[0]
    k, dg = cfg.taps, cfg.deformable_groups
    off = np.asarray(offset, dtype=np.float32)
    if fp16_offsets:
        off = off.astype(np.float16).astype(np.float32)
    off5 = off.reshape(n, dg, k, 2, cfg.out_pixels)
    by, bx = base_positions(cfg)
    py = by.astype(np.float32)[None, None] + off5[:, :, :, 0]
    px = bx.astype(np.float32)[None, None] + off5[:, :, :, 1]
    return py, px


def _texture_fraction32(pos32: np.ndarray, fp16_coords: bool
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Replicate the texture unit's coordinate maths in fp32.

    Returns ``(cell, alpha32, eff32)``: the floored cell index, the 1.8
    fixed-point blend fraction (still fp32) and the effective coordinate
    the hardware actually sampled (for delta-based tolerances).
    """
    half = np.float32(0.5)
    y = pos32 + half
    if fp16_coords:
        y = y.astype(np.float16).astype(np.float32)
    yb = y - half
    cell = np.floor(yb)
    frac = yb - cell
    alpha = np.round(frac * np.float32(1 << FRACTION_BITS)) / np.float32(
        1 << FRACTION_BITS)
    return cell.astype(np.int64), alpha, yb


def tex_effective_coords(offset: np.ndarray, cfg: LayerConfig,
                         fp16: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Effective (row, col) coordinates the texture path samples at."""
    py, px = sample_positions32(offset, cfg, fp16_offsets=fp16)
    _, _, yb = _texture_fraction32(py, fp16)
    _, _, xb = _texture_fraction32(px, fp16)
    return yb, xb


# ----------------------------------------------------------------------
# oracle evaluation
# ----------------------------------------------------------------------
@dataclass
class OracleRun:
    """Float64 spec evaluation of one backend on one case."""

    backend: str
    output: np.ndarray       # (N, O, OH, OW) float64
    abs_cols: np.ndarray     # (N, C·K, L) float64 — Σ_corner w·|texel|
    group_maxabs: np.ndarray  # (N, dg) max|x| per deformable group
    py: np.ndarray           # effective fp32 row positions (N, dg, K, L)
    px: np.ndarray           # effective fp32 col positions (N, dg, K, L)


def _gather_blend(x: np.ndarray, cell_y: np.ndarray, cell_x: np.ndarray,
                  alpha: np.ndarray, beta: np.ndarray, cfg: LayerConfig
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Float64 border-addressed bilinear blend.

    ``cell_*``: (N, dg, K, L) int64; ``alpha``/``beta``: float64 in [0, 1].
    Returns ``(cols, abs_cols)`` of shape (N, C·K, L).
    """
    n, c = x.shape[0], cfg.in_channels
    h, w = cfg.height, cfg.width
    dg = cfg.deformable_groups
    cpg = c // dg
    k, l = cfg.taps, cfg.out_pixels
    xg = x.astype(np.float64).reshape(n, dg, cpg, h * w)
    cols = np.zeros((n, dg, cpg, k * l), dtype=np.float64)
    abs_cols = np.zeros_like(cols)
    wy = (1.0 - alpha, alpha)
    wx = (1.0 - beta, beta)
    for dy in (0, 1):
        for dx in (0, 1):
            ry = cell_y + dy
            rx = cell_x + dx
            valid = (ry >= 0) & (ry < h) & (rx >= 0) & (rx < w)
            flat = (np.clip(ry, 0, h - 1) * w
                    + np.clip(rx, 0, w - 1)).reshape(n, dg, k * l)
            weight = (wy[dy] * wx[dx]).reshape(n, dg, k * l)
            gathered = np.take_along_axis(xg, flat[:, :, None, :], axis=-1)
            contrib = (weight * valid.reshape(n, dg, k * l))[:, :, None, :]
            cols += contrib * gathered
            abs_cols += contrib * np.abs(gathered)
    # (N, dg, cpg, K·L) -> (N, C·K, L) with (channel, tap) ordering
    cols = cols.reshape(n, dg, cpg, k, l).reshape(n, c * k, l)
    abs_cols = abs_cols.reshape(n, dg, cpg, k, l).reshape(n, c * k, l)
    return cols, abs_cols


def oracle_run(x: np.ndarray, offset: np.ndarray, weight: np.ndarray,
               bias: Optional[np.ndarray], cfg: LayerConfig,
               backend: str) -> OracleRun:
    """Evaluate one backend's numerics spec in float64."""
    if backend not in ORACLE_BACKENDS:
        raise ValueError(f"no oracle for backend {backend!r}")
    n, c = x.shape[0], cfg.in_channels
    dg = cfg.deformable_groups
    fp16 = backend == "tex2dpp"
    py, px = sample_positions32(offset, cfg, fp16_offsets=fp16)

    if backend == "pytorch":
        cell_y = np.floor(py).astype(np.int64)
        cell_x = np.floor(px).astype(np.int64)
        alpha = py.astype(np.float64) - cell_y
        beta = px.astype(np.float64) - cell_x
        eff_y, eff_x = py, px
    else:
        cell_y, alpha32, eff_y = _texture_fraction32(py, fp16)
        cell_x, beta32, eff_x = _texture_fraction32(px, fp16)
        alpha = alpha32.astype(np.float64)
        beta = beta32.astype(np.float64)

    cols, abs_cols = _gather_blend(x, cell_y, cell_x, alpha, beta, cfg)
    w2 = weight.reshape(cfg.out_channels, c * cfg.taps).astype(np.float64)
    out = np.matmul(w2, cols)                      # (N, O, L)
    if bias is not None:
        out = out + bias.astype(np.float64)[None, :, None]
    out = out.reshape(n, cfg.out_channels, cfg.out_height, cfg.out_width)
    group_maxabs = np.abs(x).reshape(n, dg, -1).max(axis=-1) \
        if x.size else np.zeros((n, dg))
    return OracleRun(backend=backend, output=out, abs_cols=abs_cols,
                     group_maxabs=group_maxabs, py=eff_y, px=eff_x)


# ----------------------------------------------------------------------
# tolerance model
# ----------------------------------------------------------------------
#: Per-tap fp32 blend arithmetic ops folded into the accumulation bound.
_BLEND_OPS = 16
#: Absolute floor guarding denormal-scale comparisons.
_ABS_FLOOR32 = 1e-12
_ABS_FLOOR64 = 1e-20


def _coord_slack(cfg: LayerConfig) -> float:
    """fp32 slack of the ±0.5 coordinate round trip at map magnitude."""
    return 4.0 * EPS32 * (max(cfg.height, cfg.width) + 2.0)


def _reshape_out(tol_nol: np.ndarray, cfg: LayerConfig) -> np.ndarray:
    return tol_nol.reshape(tol_nol.shape[0], cfg.out_channels,
                           cfg.out_height, cfg.out_width)


def ulp_tolerance(weight: np.ndarray, bias: Optional[np.ndarray],
                  oracle: OracleRun, cfg: LayerConfig,
                  eps: float = EPS32) -> np.ndarray:
    """Accumulation-error bound of the backend vs its own oracle."""
    w2 = np.abs(weight.reshape(cfg.out_channels, -1)).astype(np.float64)
    reduction = w2.shape[1]
    mag = np.matmul(w2, oracle.abs_cols)
    if bias is not None:
        mag = mag + np.abs(bias).astype(np.float64)[None, :, None]
    floor = _ABS_FLOOR32 if eps >= EPS32 else _ABS_FLOOR64
    return _reshape_out((reduction + _BLEND_OPS) * eps * mag + floor, cfg)


def _group_weight_l1(weight: np.ndarray, cfg: LayerConfig) -> np.ndarray:
    """‖w‖₁ per (out_channel, deformable_group): (O, dg)."""
    dg = cfg.deformable_groups
    cpg = cfg.in_channels // dg
    w = np.abs(weight.astype(np.float64)).reshape(
        cfg.out_channels, dg, cpg * cfg.taps)
    return w.sum(axis=-1)


def fixed_point_tolerance(weight: np.ndarray, bias: Optional[np.ndarray],
                          cfg: LayerConfig, ref: OracleRun,
                          tex: OracleRun) -> np.ndarray:
    """Bound for tex2D output vs the fp32 software reference.

    Per column entry: both fractions move by ≤ δ_q + ε_c and bilinear is
    2A-Lipschitz per axis ⇒ ≤ 4A·(δ_q + ε_c); the fp32/fp64 accumulation
    slack of both sides is added on top.
    """
    tap = 4.0 * (DELTA_Q + _coord_slack(cfg)) * tex.group_maxabs  # (N, dg)
    w_l1 = _group_weight_l1(weight, cfg)                          # (O, dg)
    core = np.einsum("og,ng->no", w_l1, tap)                      # (N, O)
    core = np.broadcast_to(core[:, :, None],
                           (tap.shape[0], cfg.out_channels, cfg.out_pixels))
    return (_reshape_out(np.ascontiguousarray(core), cfg)
            + ulp_tolerance(weight, bias, tex, cfg, EPS32)
            + ulp_tolerance(weight, bias, ref, cfg, EPS64))


def pairwise_coord_tolerance(weight: np.ndarray, bias: Optional[np.ndarray],
                             cfg: LayerConfig, a: OracleRun, b: OracleRun,
                             extra_shift: Tuple[float, float] = (0.0, 0.0)
                             ) -> np.ndarray:
    """Bound for two texture runs whose effective coordinates differ.

    Used for tex2D++ vs tex2D (fp16 coordinate quantisation) and for the
    translated tex2D++ pair of the translation-equivariance invariant
    (``extra_shift`` subtracts the deliberate integer translation before
    measuring the residual coordinate deltas).
    """
    dy = np.abs(a.py.astype(np.float64) - b.py - extra_shift[0])
    dx = np.abs(a.px.astype(np.float64) - b.px - extra_shift[1])
    amax = np.maximum(a.group_maxabs, b.group_maxabs)  # (N, dg)
    # per-tap bound: 2A·(Δy + Δx) + 8A·δ_q + 4A·ε_c  — shape (N, dg, K, L)
    tap = (2.0 * (dy + dx) + 8.0 * DELTA_Q + 4.0 * _coord_slack(cfg)
           ) * amax[:, :, None, None]
    n = tap.shape[0]
    cpg = cfg.in_channels // cfg.deformable_groups
    tap_ck = np.broadcast_to(
        tap[:, :, None, :, :],
        (n, cfg.deformable_groups, cpg, cfg.taps, cfg.out_pixels)
    ).reshape(n, cfg.in_channels * cfg.taps, cfg.out_pixels)
    w2 = np.abs(weight.reshape(cfg.out_channels, -1)).astype(np.float64)
    core = np.einsum("ok,nkl->nol", w2, tap_ck)
    return (_reshape_out(core, cfg)
            + ulp_tolerance(weight, bias, a, cfg, EPS32)
            + ulp_tolerance(weight, bias, b, cfg, EPS32))
