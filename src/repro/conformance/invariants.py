"""Metamorphic invariants of the deformable operator.

Each invariant transforms a case's inputs in a way with a *known* effect
on the output and checks every backend honours it.  Two tiers:

* **bitwise** — transformations engineered so that no floating-point
  operation can round differently (integer-valued positions, fractions on
  the 1/128 grid, identical reduction order).  Any bit of disagreement is
  a bug.
* **bounded** — transformations that legitimately reorder fp32 arithmetic
  (in-channel permutations, fp16 coordinate re-quantisation under
  translation); checked against the derived bounds of
  :mod:`repro.conformance.oracle`.

Catalogue: zero-offset ≡ regular conv · integer offsets ≡ gather ·
translation equivariance · offset-clamp lattice stability · batch /
out-channel / in-channel permutation stability.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.conformance.oracle import (EPS32, oracle_run, sample_positions32,
                                      pairwise_coord_tolerance,
                                      ulp_tolerance)
from repro.conformance.report import (CheckResult, compare_exact,
                                      compare_within, skipped)
from repro.gpusim.device import DeviceSpec
from repro.kernels.config import LayerConfig
from repro.kernels.dispatch import run_deform_op

TEX_BACKENDS = ("tex2d", "tex2dpp")
ALL_BACKENDS = ("pytorch",) + TEX_BACKENDS


#: Sentinel distinguishing "use the case's bias" from an explicit None.
_UNSET = object()


def _run(backend: str, arrays: Dict[str, np.ndarray], cfg: LayerConfig,
         spec: DeviceSpec, tile: Tuple[int, int], offset=None, x=None,
         weight=None, bias=_UNSET, plan_cache=None) -> np.ndarray:
    """One backend execution returning the functional output."""
    res = run_deform_op(
        backend,
        arrays["x"] if x is None else x,
        arrays["offset"] if offset is None else offset,
        arrays["weight"] if weight is None else weight,
        arrays["bias"] if bias is _UNSET else bias,
        cfg, spec, tile=tile, compute_output=True, plan_cache=plan_cache)
    return res.output


# ----------------------------------------------------------------------
# expected-value helpers (independent integer-gather implementations)
# ----------------------------------------------------------------------
def _integer_gather_cols(x: np.ndarray, iy: np.ndarray, ix: np.ndarray,
                         cfg: LayerConfig) -> np.ndarray:
    """Zero-filled gather of x at integer positions → (N, C·K, L) fp32.

    ``iy``/``ix``: (N, dg, K, L) integer sampling positions.
    """
    n, c = x.shape[0], cfg.in_channels
    h, w = cfg.height, cfg.width
    dg = cfg.deformable_groups
    cpg = c // dg
    k, l = cfg.taps, cfg.out_pixels
    valid = (iy >= 0) & (iy < h) & (ix >= 0) & (ix < w)
    flat = (np.clip(iy, 0, h - 1) * w + np.clip(ix, 0, w - 1)
            ).reshape(n, dg, k * l)
    xg = x.reshape(n, dg, cpg, h * w)
    vals = np.take_along_axis(xg, flat[:, :, None, :], axis=-1)
    vals = vals * valid.reshape(n, dg, 1, k * l)
    return vals.reshape(n, dg, cpg, k, l).reshape(n, c * k, l
                                                  ).astype(np.float32)


def _gemm_like_backend(cols: np.ndarray, weight: np.ndarray,
                       bias: Optional[np.ndarray], cfg: LayerConfig
                       ) -> np.ndarray:
    """The backends' exact GEMM+bias epilogue (same einsum, same order)."""
    n = cols.shape[0]
    w2 = weight.reshape(cfg.out_channels, -1)
    out = np.einsum("ok,nkl->nol", w2, cols, optimize=True)
    out = out.reshape(n, cfg.out_channels, cfg.out_height, cfg.out_width)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    return out


def _expected_gather_outputs(arrays, cfg: LayerConfig, offset: np.ndarray
                             ) -> Dict[str, np.ndarray]:
    """Expected outputs when every sampling position is integral.

    The reference kernel blends in float64 (NumPy promotion), the texture
    kernels in float32 — the expected value replicates each element type
    so the comparison can be bitwise.
    """
    py, px = sample_positions32(offset, cfg)
    iy = py.astype(np.int64)
    ix = px.astype(np.int64)
    if not (np.array_equal(iy, py) and np.array_equal(ix, px)):
        raise ValueError("gather invariant needs integral positions")
    cols32 = _integer_gather_cols(arrays["x"], iy, ix, cfg)
    tex_out = _gemm_like_backend(cols32, arrays["weight"], arrays["bias"],
                                 cfg)
    ref_out = _gemm_like_backend(cols32.astype(np.float64),
                                 arrays["weight"], arrays["bias"], cfg)
    return {"pytorch": ref_out, "tex2d": tex_out, "tex2dpp": tex_out}


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
def check_zero_offset(arrays, cfg, spec, tile, plan_cache=None
                      ) -> List[CheckResult]:
    """Zero offsets ⇒ the operator IS a regular convolution (bitwise)."""
    zero = np.zeros(cfg.offset_shape(), dtype=np.float32)
    expected = _expected_gather_outputs(arrays, cfg, zero)
    return [
        compare_exact(f"inv.zero_offset.{bk}",
                      _run(bk, arrays, cfg, spec, tile, offset=zero,
                           plan_cache=plan_cache),
                      expected[bk], detail="vs independent im2col conv")
        for bk in ALL_BACKENDS
    ]


def check_integer_offsets(arrays, cfg, spec, tile, plan_cache=None
                          ) -> List[CheckResult]:
    """Integer offsets ⇒ a shifted zero-filled gather (bitwise)."""
    off = np.rint(np.clip(arrays["offset"], -64.0, 64.0)).astype(np.float32)
    expected = _expected_gather_outputs(arrays, cfg, off)
    return [
        compare_exact(f"inv.integer_offsets.{bk}",
                      _run(bk, arrays, cfg, spec, tile, offset=off,
                           plan_cache=plan_cache),
                      expected[bk], detail="vs independent integer gather")
        for bk in ALL_BACKENDS
    ]


def _translation_setup(case, cfg: LayerConfig):
    """Build the (shifted input, shifted offsets) pair for equivariance.

    Offsets are snapped to the 1/128 grid and clamped so every bilinear
    corner of both runs is strictly in bounds; returns None when the
    geometry leaves no interior room.
    """
    dy = 1 + case.seed % 2
    dx = 1 + (case.seed >> 1) % 2
    h, w = cfg.height, cfg.width
    lim_y = h - 2.0 - dy - 1.0 / 64.0
    lim_x = w - 2.0 - dx - 1.0 / 64.0
    if lim_y < 1.0 / 64.0 or lim_x < 1.0 / 64.0:
        return None
    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=(0x7A15, case.seed)))
    big = rng.normal(size=(cfg.batch, cfg.in_channels, h + dy, w + dx)
                     ).astype(np.float32)
    x_base = np.ascontiguousarray(big[:, :, :h, :w])
    x_shift = np.ascontiguousarray(big[:, :, dy:, dx:])

    raw = rng.normal(0.0, 2.0, size=cfg.offset_shape()).astype(np.float64)
    n, k = cfg.batch, cfg.taps
    o5 = raw.reshape(n, cfg.deformable_groups, k, 2, cfg.out_pixels)
    from repro.conformance.oracle import base_positions
    by, bx = base_positions(cfg)
    pos_y = np.clip(by[None, None] + o5[:, :, :, 0], 1.0 / 64.0, lim_y)
    pos_x = np.clip(bx[None, None] + o5[:, :, :, 1], 1.0 / 64.0, lim_x)
    o5[:, :, :, 0] = np.round((pos_y - by[None, None]) * 128.0) / 128.0
    o5[:, :, :, 1] = np.round((pos_x - bx[None, None]) * 128.0) / 128.0
    off = raw.astype(np.float32)
    off_shifted = o5.copy()
    off_shifted[:, :, :, 0] += dy
    off_shifted[:, :, :, 1] += dx
    off_shifted = off_shifted.reshape(cfg.offset_shape()).astype(np.float32)
    return x_base, x_shift, off, off_shifted, (dy, dx)


def check_translation(case, arrays, cfg, spec, tile, plan_cache=None
                      ) -> List[CheckResult]:
    """Shifting the input ≡ adding the shift to every offset.

    Bitwise for the fp32-coordinate backends; tex2D++ re-quantises the
    (different-magnitude) coordinates in fp16, so it is checked against
    the measured-coordinate-delta bound instead.
    """
    setup = _translation_setup(case, cfg)
    if setup is None:
        return [skipped("inv.translation", "no interior room at this "
                        f"geometry ({cfg.height}x{cfg.width})")]
    x_base, x_shift, off, off_shifted, (dy, dx) = setup
    results = []
    for bk in ("pytorch", "tex2d"):
        a = _run(bk, arrays, cfg, spec, tile, x=x_shift, offset=off,
                 plan_cache=plan_cache)
        b = _run(bk, arrays, cfg, spec, tile, x=x_base, offset=off_shifted,
                 plan_cache=plan_cache)
        results.append(compare_exact(
            f"inv.translation.{bk}", a, b,
            detail=f"shift=({dy},{dx})"))
    a = _run("tex2dpp", arrays, cfg, spec, tile, x=x_shift, offset=off,
             plan_cache=plan_cache)
    b = _run("tex2dpp", arrays, cfg, spec, tile, x=x_base,
             offset=off_shifted, plan_cache=plan_cache)
    ora = oracle_run(x_shift, off, arrays["weight"], arrays["bias"], cfg,
                     "tex2dpp")
    orb = oracle_run(x_base, off_shifted, arrays["weight"], arrays["bias"],
                     cfg, "tex2dpp")
    tol = pairwise_coord_tolerance(arrays["weight"], arrays["bias"], cfg,
                                   orb, ora, extra_shift=(dy, dx))
    results.append(compare_within(
        "inv.translation.tex2dpp", a, b, tol,
        detail=f"fp16 coords, shift=({dy},{dx})"))
    return results


def check_clamp(arrays, cfg, spec, tile, plan_cache=None
                ) -> List[CheckResult]:
    """Offset-clamp lattice stability and monotonicity.

    * clip(clip(off, P), Q) == clip(off, min(P, Q)) exactly;
    * re-clamping offsets already inside [-P, P] changes no output bit
      (catches hidden state keyed on array identity, e.g. cache bugs);
    * tightening the clamp never increases the out-of-bounds tap count.
    """
    off = arrays["offset"]
    p_bound, q_bound = 4.0, 1.5
    composed = np.clip(np.clip(off, -p_bound, p_bound), -q_bound, q_bound)
    direct = np.clip(off, -min(p_bound, q_bound), min(p_bound, q_bound))
    results = [compare_exact("inv.clamp.lattice", composed, direct,
                             detail="clip∘clip == clip(min)")]

    off_in = np.clip(off, -p_bound, p_bound)
    reclamped = np.clip(off_in, -p_bound, p_bound)
    for bk in ALL_BACKENDS:
        out1 = _run(bk, arrays, cfg, spec, tile, offset=off_in,
                    plan_cache=plan_cache)
        out2 = _run(bk, arrays, cfg, spec, tile, offset=reclamped,
                    plan_cache=plan_cache)
        results.append(compare_exact(
            f"inv.clamp.noop.{bk}", out2, out1,
            detail="re-clamp inside bound is a no-op"))

    # Monotonicity only holds for taps whose *undeformed* position is in
    # bounds (a large offset can rescue an out-of-bounds base tap, and a
    # tighter clamp undoes the rescue) — so count over those taps only.
    from repro.conformance.oracle import base_positions
    by, bx = base_positions(cfg)
    base_ok = ((by >= 0) & (by <= cfg.height - 1)
               & (bx >= 0) & (bx <= cfg.width - 1))[None, None]

    def oob_taps(offsets: np.ndarray) -> int:
        py, px = sample_positions32(offsets, cfg)
        oob = ((py < 0) | (py > cfg.height - 1)
               | (px < 0) | (px > cfg.width - 1))
        return int((oob & base_ok).sum())

    loose, tight = oob_taps(off_in), oob_taps(direct)
    results.append(CheckResult(
        "inv.clamp.monotone_oob", passed=tight <= loose,
        max_err=float(tight), tolerance=float(loose),
        detail=f"out-of-bounds taps (in-bounds base): clamp {q_bound} → "
               f"{tight}, clamp {p_bound} → {loose}"))
    return results


def check_permutations(arrays, cfg, spec, tile, seed: int = 0,
                       plan_cache=None) -> List[CheckResult]:
    """Batch / out-channel / in-channel permutations commute with the
    operator within 2× the accumulation bound.

    None of these are bitwise: the GEMM's block structure (BLAS micro-
    kernels, einsum path) legitimately changes with row/column ordering,
    so elements near block boundaries re-round at ULP scale even when the
    mathematical value is unchanged.  The 2× ULP envelope covers both
    sides of each comparison."""
    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=(0x9E21, seed)))
    results: List[CheckResult] = []
    base_out, tols = {}, {}
    for bk in ALL_BACKENDS:
        base_out[bk] = _run(bk, arrays, cfg, spec, tile,
                            plan_cache=plan_cache)
        ora = oracle_run(arrays["x"], arrays["offset"], arrays["weight"],
                         arrays["bias"], cfg, bk)
        eps = EPS32 if bk != "pytorch" else np.finfo(np.float64).eps
        tols[bk] = 2.0 * ulp_tolerance(arrays["weight"], arrays["bias"],
                                       ora, cfg, eps)

    if cfg.batch >= 2:
        perm = rng.permutation(cfg.batch)
        for bk in ALL_BACKENDS:
            got = _run(bk, arrays, cfg, spec, tile,
                       x=np.ascontiguousarray(arrays["x"][perm]),
                       offset=np.ascontiguousarray(arrays["offset"][perm]),
                       plan_cache=plan_cache)
            results.append(compare_within(
                f"inv.perm_batch.{bk}", got, base_out[bk][perm],
                tols[bk][perm], detail="GEMM blocking reorders; 2× ULP"))
    else:
        results.append(skipped("inv.perm_batch", "batch == 1"))

    if cfg.out_channels >= 2:
        perm = rng.permutation(cfg.out_channels)
        w_p = np.ascontiguousarray(arrays["weight"][perm])
        b_p = (np.ascontiguousarray(arrays["bias"][perm])
               if arrays["bias"] is not None else None)
        for bk in ALL_BACKENDS:
            got = _run(bk, arrays, cfg, spec, tile, weight=w_p, bias=b_p,
                       plan_cache=plan_cache)
            results.append(compare_within(
                f"inv.perm_out_channels.{bk}", got, base_out[bk][:, perm],
                tols[bk][:, perm],
                detail="GEMM blocking reorders; 2× ULP"))
    else:
        results.append(skipped("inv.perm_out_channels", "out_channels == 1"))

    cpg = cfg.in_channels // cfg.deformable_groups
    if cpg >= 2:
        block = rng.permutation(cpg)
        perm = np.concatenate([g * cpg + block
                               for g in range(cfg.deformable_groups)])
        x_p = np.ascontiguousarray(arrays["x"][:, perm])
        w_p = np.ascontiguousarray(arrays["weight"][:, perm])
        for bk in ALL_BACKENDS:
            got = _run(bk, arrays, cfg, spec, tile, x=x_p, weight=w_p,
                       plan_cache=plan_cache)
            results.append(compare_within(
                f"inv.perm_in_channels.{bk}", got, base_out[bk], tols[bk],
                detail="reduction order changes; 2× ULP bound"))
    else:
        results.append(skipped("inv.perm_in_channels",
                               "one channel per group"))
    return results
