"""Cross-backend conformance subsystem.

Differential oracles, metamorphic invariants and a shrinking fuzzer for
the deformable-conv kernels — see ``docs/conformance.md`` and the
``repro conformance`` CLI command.
"""

from repro.conformance.cases import (CASE_SCHEMA_VERSION, CORNER_GEOMETRIES,
                                     OFFSET_REGIMES, CaseGenerator,
                                     ConformanceCase, make_offsets)
from repro.conformance.inject import FAULTS, inject_fault
from repro.conformance.oracle import (ORACLE_BACKENDS, OracleRun,
                                      fixed_point_tolerance, oracle_run,
                                      pairwise_coord_tolerance,
                                      ulp_tolerance)
from repro.conformance.report import (CaseReport, CheckResult, SuiteReport,
                                      compare_exact, compare_within)
from repro.conformance.runner import (ConformanceRunner, load_repro,
                                      write_repro)
from repro.conformance.shrink import shrink_case

__all__ = [
    "CASE_SCHEMA_VERSION", "CORNER_GEOMETRIES", "OFFSET_REGIMES",
    "CaseGenerator", "ConformanceCase", "make_offsets",
    "FAULTS", "inject_fault",
    "ORACLE_BACKENDS", "OracleRun", "fixed_point_tolerance", "oracle_run",
    "pairwise_coord_tolerance", "ulp_tolerance",
    "CaseReport", "CheckResult", "SuiteReport", "compare_exact",
    "compare_within",
    "ConformanceRunner", "load_repro", "write_repro", "shrink_case",
]
