"""Conformance runner: differential + metamorphic checks over cases.

``ConformanceRunner.run_case`` executes one :class:`ConformanceCase`
through the full check catalogue:

=============================  =========================================
``oracle.<backend>``           backend output vs its independent float64
                               oracle, within the derived ULP bound
``pair.tex2d_vs_reference``    hardware-filtered vs software bilinear,
                               within the 1.8 fixed-point envelope
``pair.tex2dpp_vs_tex2d``      fp16 coordinate path vs fp32, within the
                               measured-coordinate-delta envelope
``plancache.bit_identical.*``  cached (cold + warm) runs reproduce the
                               uncached outputs and perf counters bit
                               for bit
``plancache.delta_keyed_*``    a delta-keyed (streaming) cache hit — the
                               session-anchor reuse path — reproduces the
                               cold-miss outputs bit for bit and the
                               anchor's perf counters exactly
``shard.bit_identical.*``      row-band and channel-group shard splits,
                               stitched back, reproduce the unsharded
                               output bit for bit (cold + warm shard
                               plan cache)
``stats.output_independent.*`` ``compute_output=False`` yields the same
                               perf counters as a full run
``inv.*``                      metamorphic invariants — see
                               :mod:`repro.conformance.invariants`
=============================  =========================================

``run_suite`` adds greedy shrinking of failures and serialises each
minimal failing case to a replayable JSON artifact under
``results/conformance/``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import traceback
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.conformance import invariants
from repro.conformance.cases import CASE_SCHEMA_VERSION, ConformanceCase
from repro.conformance.oracle import (EPS32, EPS64, ORACLE_BACKENDS,
                                      fixed_point_tolerance, oracle_run,
                                      pairwise_coord_tolerance,
                                      ulp_tolerance)
from repro.conformance.report import (CaseReport, CheckResult, SuiteReport,
                                      compare_within)
from repro.conformance.shrink import shrink_case
from repro.gpusim.device import DeviceSpec
from repro.gpusim.profiler import KernelStats
from repro.kernels.dispatch import run_deform_op
from repro.kernels.plancache import PlanCache

#: Numeric KernelStats fields compared bit-for-bit by the cache checks.
STATS_FIELDS = tuple(f.name for f in dataclasses.fields(KernelStats)
                     if f.name not in ("name", "layer", "geometry"))

TEX_BACKENDS = ("tex2d", "tex2dpp")


def _stats_rows(kernels: Sequence[KernelStats]) -> List[List[float]]:
    return [[getattr(k, f) for f in STATS_FIELDS] for k in kernels]


class ConformanceRunner:
    """Executes the conformance check catalogue against a device spec."""

    def __init__(self, spec: DeviceSpec,
                 plan_cache_entries: int = 128):
        self.spec = spec
        # Shared across cases/checks: keys include offsets digest,
        # geometry and the fp16 flag, and the cache only memoises perf
        # stats (never outputs), so sharing is sound and makes the many
        # repeated zero/integer-offset runs cheap.
        self.plan_cache = (PlanCache(max_entries=plan_cache_entries)
                          if plan_cache_entries else None)

    # ------------------------------------------------------------------
    def run_case(self, case: ConformanceCase) -> CaseReport:
        cfg = case.layer_config()
        arrays = case.materialize()
        tile = case.tile
        groups = [
            ("oracle", lambda: self._differential(arrays, cfg, tile)),
            ("plancache", lambda: self._plan_cache_checks(
                arrays, cfg, tile)),
            ("plancache.delta", lambda: self._delta_keyed_checks(
                arrays, cfg, tile)),
            ("shard", lambda: self._shard_checks(arrays, cfg, tile)),
            ("inv.zero_offset", lambda: invariants.check_zero_offset(
                arrays, cfg, self.spec, tile, plan_cache=self.plan_cache)),
            ("inv.integer_offsets",
             lambda: invariants.check_integer_offsets(
                 arrays, cfg, self.spec, tile,
                 plan_cache=self.plan_cache)),
            ("inv.translation", lambda: invariants.check_translation(
                case, arrays, cfg, self.spec, tile,
                plan_cache=self.plan_cache)),
            ("inv.clamp", lambda: invariants.check_clamp(
                arrays, cfg, self.spec, tile, plan_cache=self.plan_cache)),
            ("inv.perm", lambda: invariants.check_permutations(
                arrays, cfg, self.spec, tile, seed=case.seed,
                plan_cache=self.plan_cache)),
        ]
        results: List[CheckResult] = []
        for label, thunk in groups:
            try:
                results.extend(thunk())
            except Exception:
                results.append(CheckResult(
                    f"{label}.exception", False,
                    detail=traceback.format_exc(limit=4).strip()
                    .splitlines()[-1]))
        return CaseReport(case=case, results=results)

    # ------------------------------------------------------------------
    def _differential(self, arrays, cfg, tile) -> List[CheckResult]:
        """Backend-vs-oracle and backend-pair differential checks."""
        x, off = arrays["x"], arrays["offset"]
        w, b = arrays["weight"], arrays["bias"]
        outs: Dict[str, np.ndarray] = {}
        oracles = {}
        results = []
        for bk in ORACLE_BACKENDS:
            outs[bk] = run_deform_op(
                bk, x, off, w, b, cfg, self.spec, tile=tile,
                plan_cache=self.plan_cache).output
            oracles[bk] = oracle_run(x, off, w, b, cfg, bk)
            eps = EPS64 if bk == "pytorch" else EPS32
            results.append(compare_within(
                f"oracle.{bk}", outs[bk], oracles[bk].output,
                ulp_tolerance(w, b, oracles[bk], cfg, eps),
                detail="backend vs independent float64 oracle"))
        results.append(compare_within(
            "pair.tex2d_vs_reference", outs["tex2d"], outs["pytorch"],
            fixed_point_tolerance(w, b, cfg, oracles["pytorch"],
                                  oracles["tex2d"]),
            detail="1.8 fixed-point filtering envelope"))
        results.append(compare_within(
            "pair.tex2dpp_vs_tex2d", outs["tex2dpp"], outs["tex2d"],
            pairwise_coord_tolerance(w, b, cfg, oracles["tex2dpp"],
                                     oracles["tex2d"]),
            detail="fp16 coordinate quantisation envelope"))
        return results

    # ------------------------------------------------------------------
    def _plan_cache_checks(self, arrays, cfg, tile) -> List[CheckResult]:
        """Plan-cache transparency: outputs AND perf counters must be
        bit-identical across uncached / cold-cache / warm-cache runs."""
        x, off = arrays["x"], arrays["offset"]
        w, b = arrays["weight"], arrays["bias"]
        results = []
        for bk in TEX_BACKENDS:
            base = run_deform_op(bk, x, off, w, b, cfg, self.spec,
                                 tile=tile, plan_cache=None)
            pc = PlanCache(max_entries=8)
            cold = run_deform_op(bk, x, off, w, b, cfg, self.spec,
                                 tile=tile, plan_cache=pc)
            warm = run_deform_op(bk, x, off, w, b, cfg, self.spec,
                                 tile=tile, plan_cache=pc)
            same_out = (np.array_equal(cold.output, base.output)
                        and np.array_equal(warm.output, base.output))
            rows = _stats_rows(base.kernels)
            same_stats = (_stats_rows(cold.kernels) == rows
                          and _stats_rows(warm.kernels) == rows)
            detail = ""
            if not same_out:
                detail = "cached output differs from uncached"
            elif not same_stats:
                detail = "cached perf counters differ from uncached"
            results.append(CheckResult(
                f"plancache.bit_identical.{bk}",
                passed=same_out and same_stats, detail=detail))

            noout = run_deform_op(bk, x, off, w, b, cfg, self.spec,
                                  tile=tile, compute_output=False,
                                  plan_cache=None)
            results.append(CheckResult(
                f"stats.output_independent.{bk}",
                passed=_stats_rows(noout.kernels) == rows,
                detail="" if _stats_rows(noout.kernels) == rows else
                "compute_output=False changes perf counters"))

            # Fused execution is an implementation strategy, not a model
            # change: both the compile call (fused-cold) and the
            # steady-state replay (fused-warm) must reproduce the
            # uncached eager run bit for bit — outputs and counters.
            fused_cold = run_deform_op(bk, x, off, w, b, cfg, self.spec,
                                       tile=tile, plan_cache=pc,
                                       execution="fused")
            fused_warm = run_deform_op(bk, x, off, w, b, cfg, self.spec,
                                       tile=tile, plan_cache=pc,
                                       execution="fused")
            fused_out = (np.array_equal(fused_cold.output, base.output)
                         and np.array_equal(fused_warm.output, base.output))
            fused_stats = (_stats_rows(fused_cold.kernels) == rows
                           and _stats_rows(fused_warm.kernels) == rows)
            detail = ""
            if not fused_out:
                detail = "fused output differs from eager"
            elif not fused_stats:
                detail = "fused perf counters differ from eager"
            results.append(CheckResult(
                f"plancache.fused_bit_identical.{bk}",
                passed=fused_out and fused_stats, detail=detail))
        return results

    # ------------------------------------------------------------------
    def _delta_keyed_checks(self, arrays, cfg, tile) -> List[CheckResult]:
        """Delta-keyed streaming lookups must be functionally exact.

        An anchor frame is cached under a session, then a perturbed
        "next frame" within the delta bound is served through the
        anchor-reuse path (both eager and fused).  The exactness
        guarantee (docs/streaming.md): delta-hit outputs are
        bit-identical to a cold-miss run of the perturbed offsets —
        blend weights are recomputed per frame — while the perf counters
        are exactly the anchor's memoised simulation (the documented
        temporal-coherence approximation).
        """
        x, off0 = arrays["x"], arrays["offset"]
        w, b = arrays["weight"], arrays["bias"]
        # deterministic small perturbation, comfortably inside the bound
        # even after tex2D++'s fp16 offset quantisation
        rng = np.random.default_rng(20260807)
        off1 = (off0 + rng.uniform(-0.2, 0.2, size=off0.shape)
                .astype(np.float32)).astype(np.float32)
        results = []
        for bk in TEX_BACKENDS:
            pc = PlanCache(max_entries=8, delta_bound=0.3)
            anchor = run_deform_op(bk, x, off0, w, b, cfg, self.spec,
                                   tile=tile, plan_cache=pc,
                                   session="conformance")
            base1 = run_deform_op(bk, x, off1, w, b, cfg, self.spec,
                                  tile=tile, plan_cache=None)
            delta = run_deform_op(bk, x, off1, w, b, cfg, self.spec,
                                  tile=tile, plan_cache=pc,
                                  session="conformance")
            fused_delta = run_deform_op(bk, x, off1, w, b, cfg, self.spec,
                                        tile=tile, plan_cache=pc,
                                        execution="fused",
                                        session="conformance")
            hit = pc.stats.delta_hits >= 1
            same_out = (np.array_equal(delta.output, base1.output)
                        and np.array_equal(fused_delta.output,
                                           base1.output))
            anchor_rows = _stats_rows(anchor.kernels)
            same_stats = (_stats_rows(delta.kernels) == anchor_rows
                          and _stats_rows(fused_delta.kernels)
                          == anchor_rows)
            detail = ""
            if not hit:
                detail = ("delta probe never hit "
                          f"(rejects={pc.stats.delta_rejects})")
            elif not same_out:
                detail = "delta-hit output differs from cold-miss run"
            elif not same_stats:
                detail = "delta-hit perf counters differ from the anchor"
            results.append(CheckResult(
                f"plancache.delta_keyed_bit_identical.{bk}",
                passed=hit and same_out and same_stats, detail=detail))
        return results

    # ------------------------------------------------------------------
    def _shard_checks(self, arrays, cfg, tile) -> List[CheckResult]:
        """Sharded execution transparency: a layer split into row bands or
        channel groups, stitched back (:func:`stitch_columns`), must
        reproduce the unsharded output bit for bit — on a cold shard plan
        cache and again on a warm one."""
        from repro.kernels.shards import (enumerate_shards, run_shard,
                                          stitch_columns)

        x, off = arrays["x"], arrays["offset"]
        w, b = arrays["weight"], arrays["bias"]
        results = []
        for bk in TEX_BACKENDS:
            base = run_deform_op(bk, x, off, w, b, cfg, self.spec,
                                 tile=tile, plan_cache=None).output
            fp16 = bk == "tex2dpp"
            for kind in ("rows", "channels"):
                total = (cfg.out_height if kind == "rows"
                         else cfg.in_channels // cfg.deformable_groups)
                if total < 2 or cfg.in_channels % cfg.deformable_groups:
                    results.append(CheckResult(
                        f"shard.bit_identical.{bk}.{kind}", True,
                        detail="layer not splittable — vacuous"))
                    continue
                pc = PlanCache(max_entries=8)
                ok, detail = True, ""
                for run in ("cold", "warm"):
                    shards = [s for s in enumerate_shards(cfg, kind, (2, 1))
                              if s is not None]
                    rs = [run_shard(x, off, cfg, self.spec, s, tile=tile,
                                    fp16_offsets=fp16, plan_cache=pc)
                          for s in shards]
                    out = stitch_columns(rs, w, b, cfg, self.spec).output
                    if not np.array_equal(out, base):
                        ok, detail = False, (f"{run}-cache stitched output "
                                             f"differs from unsharded")
                        break
                results.append(CheckResult(
                    f"shard.bit_identical.{bk}.{kind}", passed=ok,
                    detail=detail))
        return results

    # ------------------------------------------------------------------
    def run_suite(self, cases: Sequence[ConformanceCase],
                  shrink: bool = True, out_dir: Optional[str] = None,
                  progress: Optional[Callable[[int, int, CaseReport],
                                              None]] = None
                  ) -> SuiteReport:
        """Run every case; shrink + serialise failures as repro JSONs."""
        suite = SuiteReport()
        for i, case in enumerate(cases):
            report = self.run_case(case)
            suite.reports.append(report)
            if progress is not None:
                progress(i, len(cases), report)
            if report.passed or out_dir is None:
                continue
            minimal, mreport = (shrink_case(case, report, self)
                                if shrink else (case, report))
            suite.artifacts.append(
                write_repro(minimal, mreport, out_dir))
        return suite


# ----------------------------------------------------------------------
# repro artifacts
# ----------------------------------------------------------------------
def write_repro(case: ConformanceCase, report: CaseReport,
                out_dir: str) -> str:
    """Serialise a failing case to ``<out_dir>/<case_id>.json``."""
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "schema": CASE_SCHEMA_VERSION,
        "case": case.to_payload(),
        "failures": [
            {"name": r.name, "max_err": r.max_err,
             "tolerance": r.tolerance, "detail": r.detail}
            for r in report.failures],
    }
    path = os.path.join(out_dir, f"{case.case_id()}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    return path


def load_repro(path: str) -> ConformanceCase:
    """Load a repro JSON back into a replayable case."""
    with open(path) as fh:
        payload = json.load(fh)
    schema = payload.get("schema", 0)
    if schema > CASE_SCHEMA_VERSION:
        raise ValueError(
            f"repro {path} uses schema {schema}; this build understands "
            f"<= {CASE_SCHEMA_VERSION}")
    return ConformanceCase.from_payload(payload["case"])
