"""Conformance check results, per-case reports and the suite summary."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class CheckResult:
    """Outcome of one conformance check on one case."""

    name: str
    passed: bool
    max_err: float = 0.0
    tolerance: float = 0.0
    skipped: bool = False
    detail: str = ""

    @property
    def margin(self) -> float:
        """err / tol — how close a passing check came to its bound."""
        if self.tolerance <= 0:
            return 0.0 if self.max_err == 0 else float("inf")
        return self.max_err / self.tolerance


def compare_within(name: str, got: np.ndarray, want: np.ndarray,
                   tol: np.ndarray, detail: str = "") -> CheckResult:
    """Elementwise |got − want| ≤ tol check."""
    if got.shape != want.shape:
        return CheckResult(name, False,
                           detail=f"shape {got.shape} != {want.shape}")
    err = np.abs(np.asarray(got, dtype=np.float64)
                 - np.asarray(want, dtype=np.float64))
    tol = np.broadcast_to(np.asarray(tol, dtype=np.float64), err.shape)
    bad = err > tol
    if not bad.any():
        # Report the tightest err/tol pair so `margin` is meaningful.
        ratio = np.where(tol > 0, err / np.where(tol > 0, tol, 1.0), 0.0)
        worst = int(np.argmax(ratio))
        return CheckResult(name, True, max_err=float(err.ravel()[worst]),
                           tolerance=float(tol.ravel()[worst]),
                           detail=detail)
    worst = int(np.argmax(np.where(bad, err - tol, -np.inf)))
    idx = np.unravel_index(worst, err.shape)
    return CheckResult(
        name, False, max_err=float(err[idx]), tolerance=float(tol[idx]),
        detail=(f"{int(bad.sum())}/{err.size} elements out of bound; "
                f"worst at {tuple(int(i) for i in idx)}" +
                (f" ({detail})" if detail else "")))


def compare_exact(name: str, got: np.ndarray, want: np.ndarray,
                  detail: str = "") -> CheckResult:
    """Bitwise equality check (the exactness tier)."""
    if got.shape != want.shape:
        return CheckResult(name, False,
                           detail=f"shape {got.shape} != {want.shape}")
    if np.array_equal(got, want):
        return CheckResult(name, True, detail=detail)
    err = np.abs(np.asarray(got, dtype=np.float64)
                 - np.asarray(want, dtype=np.float64))
    mism = int((np.asarray(got) != np.asarray(want)).sum())
    return CheckResult(
        name, False, max_err=float(err.max()), tolerance=0.0,
        detail=f"{mism}/{got.size} elements differ bitwise" +
               (f" ({detail})" if detail else ""))


def skipped(name: str, why: str) -> CheckResult:
    return CheckResult(name, True, skipped=True, detail=f"skipped: {why}")


@dataclass
class CaseReport:
    """All check outcomes for one case."""

    case: "ConformanceCase"  # noqa: F821 — avoids a circular import
    results: List[CheckResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.passed]

    @property
    def passed(self) -> bool:
        return not self.failures


@dataclass
class SuiteReport:
    """Aggregate over a conformance run."""

    reports: List[CaseReport] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def num_cases(self) -> int:
        return len(self.reports)

    @property
    def failed_reports(self) -> List[CaseReport]:
        return [r for r in self.reports if not r.passed]

    @property
    def passed(self) -> bool:
        return not self.failed_reports

    def check_rows(self) -> List[List]:
        """Per-check summary rows: name, runs, passes, fails, skips,
        worst err/tol margin across passing runs."""
        stats: Dict[str, dict] = {}
        for report in self.reports:
            for r in report.results:
                s = stats.setdefault(r.name, dict(
                    runs=0, passed=0, failed=0, skipped=0, margin=0.0))
                s["runs"] += 1
                if r.skipped:
                    s["skipped"] += 1
                elif r.passed:
                    s["passed"] += 1
                    s["margin"] = max(s["margin"], r.margin)
                else:
                    s["failed"] += 1
        return [[name, s["runs"], s["passed"], s["failed"], s["skipped"],
                 round(s["margin"], 4)]
                for name, s in sorted(stats.items())]

    def bind_registry(self, registry) -> None:
        """Publish pass/fail counters onto a MetricsRegistry."""
        cases = registry.counter(
            "conformance_cases", help="conformance cases by result")
        checks = registry.counter(
            "conformance_checks", help="conformance checks by name/result")
        for report in self.reports:
            cases.inc(result="pass" if report.passed else "fail")
            for r in report.results:
                result = ("skip" if r.skipped
                          else "pass" if r.passed else "fail")
                checks.inc(check=r.name, result=result)
