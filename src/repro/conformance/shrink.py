"""Greedy shrinking of failing conformance cases.

Given a failing case, repeatedly try smaller variants — halved spatial
extent, dropped batch/channels/groups, simplified kernel geometry, then
ddmin-style zeroing of offset entries — keeping a variant whenever it
still reproduces (one of) the *original* failing checks.  The result is a
minimal case whose JSON artifact a human can actually stare at.

The shrinker never imports the runner (the runner imports us); any object
with a ``run_case(case) -> CaseReport`` method works.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set, Tuple

import numpy as np

from repro.conformance.cases import ConformanceCase
from repro.conformance.report import CaseReport

#: Evaluation budget per shrink — each evaluation reruns the full check
#: catalogue on a (shrinking) case, so this bounds shrink wall time.
DEFAULT_MAX_EVALS = 80


def _geometry_candidates(case: ConformanceCase
                         ) -> Iterator[ConformanceCase]:
    """Smaller variants, most aggressive first."""
    if case.height > 1:
        yield case.with_overrides(height=(case.height + 1) // 2)
    if case.width > 1:
        yield case.with_overrides(width=(case.width + 1) // 2)
    if case.batch > 1:
        yield case.with_overrides(batch=1)
    if case.deformable_groups > 1:
        yield case.with_overrides(deformable_groups=1)
    cpg = case.in_channels // case.deformable_groups
    if cpg > 1:
        yield case.with_overrides(
            in_channels=case.deformable_groups * ((cpg + 1) // 2))
    if case.out_channels > 1:
        yield case.with_overrides(
            out_channels=(case.out_channels + 1) // 2)
    if case.kernel_size == 5:
        yield case.with_overrides(kernel_size=3, padding=1)
    if case.kernel_size == 3:
        yield case.with_overrides(kernel_size=1, padding=0)
    if case.stride > 1:
        yield case.with_overrides(stride=1)
    if case.dilation > 1:
        yield case.with_overrides(dilation=1)
    if case.padding > 1:
        yield case.with_overrides(padding=1)
    if case.height > 1:
        yield case.with_overrides(height=case.height - 1)
    if case.width > 1:
        yield case.with_overrides(width=case.width - 1)
    if case.with_bias:
        yield case.with_overrides(with_bias=False)


def shrink_case(case: ConformanceCase, report: CaseReport, runner,
                max_evals: int = DEFAULT_MAX_EVALS
                ) -> Tuple[ConformanceCase, CaseReport]:
    """Minimise ``case`` while one of its failing checks keeps failing."""
    fail_names: Set[str] = {r.name for r in report.failures}
    evals = 0

    def reproduces(cand: ConformanceCase) -> Optional[CaseReport]:
        nonlocal evals
        if evals >= max_evals or not cand.is_valid():
            return None
        evals += 1
        rep = runner.run_case(cand)
        if any(r.name in fail_names for r in rep.failures):
            return rep
        return None

    best, best_report = case, report
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in _geometry_candidates(best):
            rep = reproduces(cand)
            if rep is not None:
                best, best_report = cand, rep
                improved = True
                break

    best, best_report = _zero_offsets(best, best_report, reproduces)
    return best, best_report


def _zero_offsets(case: ConformanceCase, report: CaseReport, reproduces
                  ) -> Tuple[ConformanceCase, CaseReport]:
    """ddmin-style pass zeroing offset chunks that don't matter.

    Serialises the surviving offsets explicitly into the case so the
    repro JSON replays the exact values, not the regime."""
    off = np.array(case.materialize()["offset"], copy=True)
    if not np.any(off):
        return case, report
    best, best_report = case, report
    chunks = 2
    while chunks <= min(64, off.size):
        flat = off.ravel()
        edges = np.linspace(0, flat.size, chunks + 1, dtype=int)
        for lo, hi in zip(edges[:-1], edges[1:]):
            if lo == hi or not np.any(flat[lo:hi]):
                continue
            trial = flat.copy()
            trial[lo:hi] = 0.0
            cand = case.with_overrides()
            cand.offsets = trial.reshape(off.shape)
            rep = reproduces(cand)
            if rep is not None:
                flat = trial
                off = trial.reshape(off.shape)
                best, best_report = cand, rep
        chunks *= 2
    return best, best_report
