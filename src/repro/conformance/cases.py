"""Conformance cases: adversarial layer geometries × offset regimes.

A :class:`ConformanceCase` is one fully-determined execution of the
deformable operator — layer geometry, CTA tile, RNG seed and an *offset
regime* (how the sampling offsets are synthesised).  Everything a case
needs is reproducible from its fields, so a case serialises to a small
JSON payload that ``repro conformance replay`` can re-run bit-for-bit on
any machine.

The :class:`CaseGenerator` enumerates the adversarial corners of the
geometry space first (1×1 maps, stride/dilation/padding extremes, grouped
channels, degenerate batches, non-square planes) crossed with every offset
regime, then fills the remaining budget with seeded random draws.  The
regimes target the numerically interesting parts of the texture path:

``zero``
    All offsets zero — the operator must degenerate to a regular conv.
``integer``
    Integer-valued offsets — sampling fractions are exactly zero, so the
    operator must degenerate to a (shifted) gather.
``grid``
    Offsets on the 1/128 sub-texel grid, exactly representable in fp16
    and in 1.8 fixed point — the bitwise-friendly regime translation
    equivariance builds on.
``boundary``
    Offsets that land sampling positions exactly on texel 0 / H−1 and
    half a texel beyond — the border-addressing edge.
``outside``
    Offsets larger than the feature map — every bilinear corner is
    out of bounds and must contribute exactly zero.
``subtexel``
    Fractions a hair's breadth around the 1.8 fixed-point rounding ties
    (k/256 ± 2⁻¹²) — the fp16/fixed-point stress regime.
``clamped``
    Gaussian offsets clipped hard at the deformation bound P, so many
    entries sit exactly on ±P (paper Section III-A-c).
``gaussian``
    Smooth continuous offsets, the realistic trained-DCN regime.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.config import LayerConfig
from repro.kernels.tex2d import DEFAULT_TILE

#: Payload schema version for repro JSON artifacts.
CASE_SCHEMA_VERSION = 1

OFFSET_REGIMES = ("zero", "integer", "grid", "boundary", "outside",
                  "subtexel", "clamped", "gaussian")

#: Hand-picked adversarial geometries (kwargs over LayerConfig defaults).
CORNER_GEOMETRIES: Tuple[dict, ...] = (
    dict(in_channels=4, out_channels=4, height=1, width=1),
    dict(in_channels=2, out_channels=3, height=1, width=17),
    dict(in_channels=2, out_channels=2, height=13, width=3, stride=2),
    dict(in_channels=8, out_channels=4, height=9, width=9, stride=3,
         padding=0),
    dict(in_channels=6, out_channels=6, height=11, width=11, dilation=3,
         padding=3),
    dict(in_channels=8, out_channels=8, height=10, width=14,
         deformable_groups=4),
    dict(in_channels=4, out_channels=2, height=12, width=12,
         deformable_groups=2, stride=2, dilation=2, padding=2),
    dict(in_channels=3, out_channels=5, height=8, width=8, kernel_size=1,
         padding=0),
    dict(in_channels=2, out_channels=2, height=9, width=7, kernel_size=5,
         padding=2, batch=2),
    dict(in_channels=4, out_channels=4, height=6, width=6, batch=3),
)

#: CTA tiles the generator cycles through (all legal for every preset).
TILE_POOL: Tuple[Tuple[int, int], ...] = (
    DEFAULT_TILE, (1, 1), (1, 32), (32, 1), (8, 8), (4, 16),
)


@dataclass
class ConformanceCase:
    """One replayable conformance execution of the deformable operator."""

    in_channels: int
    out_channels: int
    height: int
    width: int
    kernel_size: int = 3
    stride: int = 1
    padding: int = 1
    dilation: int = 1
    deformable_groups: int = 1
    batch: int = 1
    tile: Tuple[int, int] = DEFAULT_TILE
    offset_regime: str = "gaussian"
    seed: int = 0
    with_bias: bool = True
    #: explicit offset override (set by the shrinker); regenerated from
    #: the regime when None
    offsets: Optional[np.ndarray] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def layer_config(self) -> LayerConfig:
        return LayerConfig(
            self.in_channels, self.out_channels, self.height, self.width,
            kernel_size=self.kernel_size, stride=self.stride,
            padding=self.padding, dilation=self.dilation,
            deformable_groups=self.deformable_groups, batch=self.batch)

    def is_valid(self) -> bool:
        cfg = self.layer_config()
        return (cfg.out_height >= 1 and cfg.out_width >= 1
                and self.in_channels % self.deformable_groups == 0
                and self.in_channels >= self.deformable_groups
                and min(self.tile) >= 1
                and self.offset_regime in OFFSET_REGIMES)

    def case_id(self) -> str:
        """Short stable content id (geometry + regime + seed + offsets)."""
        h = hashlib.blake2b(digest_size=6)
        h.update(json.dumps(self._geometry_payload(), sort_keys=True
                            ).encode())
        if self.offsets is not None:
            h.update(np.ascontiguousarray(self.offsets).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    def materialize(self) -> Dict[str, Optional[np.ndarray]]:
        """Deterministic input/weight/bias/offset arrays for this case."""
        cfg = self.layer_config()
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=(0xDEFC0, self.seed)))
        x = rng.normal(size=cfg.input_shape()).astype(np.float32)
        scale = 1.0 / np.sqrt(max(1, cfg.in_channels * cfg.taps))
        w = (rng.normal(size=cfg.weight_shape()) * scale).astype(np.float32)
        b = (rng.normal(size=(cfg.out_channels,)).astype(np.float32)
             if self.with_bias else None)
        off = (np.asarray(self.offsets, dtype=np.float32)
               if self.offsets is not None
               else make_offsets(cfg, self.offset_regime, self.seed))
        if off.shape != cfg.offset_shape():
            raise ValueError(
                f"offsets {off.shape} != geometry {cfg.offset_shape()}")
        return {"x": x, "offset": off, "weight": w, "bias": b}

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def _geometry_payload(self) -> dict:
        return {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "height": self.height, "width": self.width,
            "kernel_size": self.kernel_size, "stride": self.stride,
            "padding": self.padding, "dilation": self.dilation,
            "deformable_groups": self.deformable_groups,
            "batch": self.batch, "tile": list(self.tile),
            "offset_regime": self.offset_regime, "seed": self.seed,
            "with_bias": self.with_bias,
        }

    def to_payload(self) -> dict:
        payload = self._geometry_payload()
        if self.offsets is not None:
            off = np.asarray(self.offsets, dtype=np.float32)
            payload["offsets"] = {"shape": list(off.shape),
                                  "values": off.ravel().tolist()}
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ConformanceCase":
        data = dict(payload)
        off_data = data.pop("offsets", None)
        data["tile"] = tuple(data.get("tile", DEFAULT_TILE))
        case = cls(**data)
        if off_data is not None:
            case.offsets = np.asarray(
                off_data["values"], dtype=np.float32).reshape(
                    off_data["shape"])
        if not case.is_valid():
            raise ValueError(f"invalid case payload: {payload}")
        return case

    def with_overrides(self, **kwargs) -> "ConformanceCase":
        """Copy with fields replaced (offsets drop unless passed in)."""
        base = {**self._geometry_payload(), "tile": self.tile}
        base.update(kwargs)
        return ConformanceCase(**base)


# ----------------------------------------------------------------------
# offset regimes
# ----------------------------------------------------------------------
def _regime_rng(cfg: LayerConfig, seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(
        entropy=(0x0FF5E7, seed, cfg.height, cfg.width, cfg.taps)))


def make_offsets(cfg: LayerConfig, regime: str, seed: int) -> np.ndarray:
    """Synthesise one regime's offset tensor for a geometry (seeded)."""
    rng = _regime_rng(cfg, seed)
    shape = cfg.offset_shape()
    reach = float(max(cfg.height, cfg.width))
    if regime == "zero":
        return np.zeros(shape, dtype=np.float32)
    if regime == "integer":
        return np.rint(rng.normal(0.0, 2.0, size=shape)).astype(np.float32)
    if regime == "grid":
        raw = rng.uniform(-4.0, 4.0, size=shape)
        return (np.round(raw * 128.0) / 128.0).astype(np.float32)
    if regime == "boundary":
        # Aim sampling rows/cols at {-1, -0.5, 0, H-1, H-0.5, H}: the
        # targets are absolute positions, so subtract a plausible base.
        targets_y = np.array([-1.0, -0.5, 0.0, cfg.height - 1.0,
                              cfg.height - 0.5, float(cfg.height)])
        targets_x = np.array([-1.0, -0.5, 0.0, cfg.width - 1.0,
                              cfg.width - 0.5, float(cfg.width)])
        off = np.empty(shape, dtype=np.float32)
        k = cfg.taps
        picks_y = rng.integers(0, targets_y.size,
                               size=(shape[0], cfg.deformable_groups, k,
                                     shape[2], shape[3]))
        picks_x = rng.integers(0, targets_x.size, size=picks_y.shape)
        base = rng.integers(0, max(1, min(cfg.height, cfg.width)),
                            size=picks_y.shape)
        o5 = off.reshape(shape[0], cfg.deformable_groups, k, 2,
                         shape[2], shape[3])
        o5[:, :, :, 0] = targets_y[picks_y] - base
        o5[:, :, :, 1] = targets_x[picks_x] - base
        return off
    if regime == "outside":
        sign = rng.choice([-1.0, 1.0], size=shape)
        mag = rng.uniform(2.0 * reach + 4.0, 4.0 * reach + 8.0, size=shape)
        return (sign * mag).astype(np.float32)
    if regime == "subtexel":
        whole = np.rint(rng.normal(0.0, 2.0, size=shape))
        quantum = rng.integers(0, 256, size=shape) / 256.0
        nudge = rng.choice([-1.0, 1.0], size=shape) * 2.0 ** -12
        return (whole + quantum + 2.0 ** -9 + nudge).astype(np.float32)
    if regime == "clamped":
        return np.clip(rng.normal(0.0, 4.0, size=shape), -4.0, 4.0
                       ).astype(np.float32)
    if regime == "gaussian":
        return rng.normal(0.0, 2.5, size=shape).astype(np.float32)
    raise ValueError(
        f"unknown offset regime {regime!r}; choose from {OFFSET_REGIMES}")


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
class CaseGenerator:
    """Seeded, deterministic conformance-case stream.

    The first ``len(CORNER_GEOMETRIES) × len(OFFSET_REGIMES)`` cases walk
    the hand-picked adversarial corners crossed with every regime; the
    rest are random draws over bounded geometry ranges.  Identical seeds
    yield identical case lists (tests assert this).
    """

    def __init__(self, seed: int = 0, max_hw: int = 20,
                 max_channels: int = 12, max_batch: int = 2):
        self.seed = seed
        self.max_hw = max_hw
        self.max_channels = max_channels
        self.max_batch = max_batch

    def generate(self, n: int) -> List[ConformanceCase]:
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=(0xCA5E, self.seed)))
        cases: List[ConformanceCase] = []
        idx = 0
        for geo in CORNER_GEOMETRIES:
            for regime in OFFSET_REGIMES:
                if len(cases) >= n:
                    return cases
                case = ConformanceCase(
                    **geo, offset_regime=regime,
                    tile=TILE_POOL[idx % len(TILE_POOL)],
                    seed=self.seed * 100003 + idx)
                idx += 1
                if case.is_valid():
                    cases.append(case)
        while len(cases) < n:
            case = self._random_case(rng, idx)
            idx += 1
            if case.is_valid():
                cases.append(case)
        return cases

    def _random_case(self, rng: np.random.Generator,
                     idx: int) -> ConformanceCase:
        dg = int(rng.choice([1, 1, 2, 4]))
        cpg = int(rng.integers(1, max(2, self.max_channels // dg) + 1))
        kernel = int(rng.choice([1, 3, 3, 3, 5]))
        return ConformanceCase(
            in_channels=dg * cpg,
            out_channels=int(rng.integers(1, self.max_channels + 1)),
            height=int(rng.integers(1, self.max_hw + 1)),
            width=int(rng.integers(1, self.max_hw + 1)),
            kernel_size=kernel,
            stride=int(rng.choice([1, 1, 2, 3])),
            padding=int(rng.choice([0, 1, kernel // 2, kernel - 1])),
            dilation=int(rng.choice([1, 1, 2, 3])),
            deformable_groups=dg,
            batch=int(rng.integers(1, self.max_batch + 1)),
            tile=TILE_POOL[int(rng.integers(0, len(TILE_POOL)))],
            offset_regime=OFFSET_REGIMES[int(rng.integers(
                0, len(OFFSET_REGIMES)))],
            seed=self.seed * 100003 + idx,
            with_bias=bool(rng.integers(0, 2)))
