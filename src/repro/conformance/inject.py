"""Deliberate kernel-bug injection for validating the conformance suite.

A conformance harness that has never caught a bug proves nothing, so the
suite ships with injectable faults — small, realistic kernel defects the
differential oracle must catch (and the shrinker must minimise).  The
oracle is immune by construction: it carries its own copies of the spec
constants and quantisation code, so patching the simulator cannot blind
it.

``flip-bilinear``
    Replaces the texture unit's 1.8 fixed-point fraction with its
    complement (``frac → 1 − frac``), i.e. swaps the two bilinear blend
    weights on each axis — the classic transposed-lerp bug.
``drop-quantization``
    Skips the 1.8 fixed-point rounding entirely, blending with full fp32
    fractions.  Catches tolerance models that are secretly two-sided.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import repro.gpusim.texture as texture

FAULTS = ("flip-bilinear", "drop-quantization")


@contextlib.contextmanager
def inject_fault(name: str) -> Iterator[None]:
    """Context manager installing one named kernel fault."""
    if name not in FAULTS:
        raise ValueError(f"unknown fault {name!r}; choose from {FAULTS}")
    orig = texture.quantize_fraction
    if name == "flip-bilinear":
        def patched(frac):
            return orig(1.0 - frac)
    else:  # drop-quantization
        def patched(frac):
            return frac
    texture.quantize_fraction = patched
    try:
        yield
    finally:
        texture.quantize_fraction = orig
