"""repro — a from-scratch reproduction of DEFCON (IPPS 2024).

DEFCON: Deformable Convolutions Leveraging Interval Search and GPU Texture
Hardware (Jayaweera, Li, Wang, Ren, Kaeli).

Subpackages
-----------
``repro.tensor``   reverse-mode autograd engine over NumPy
``repro.nn``       NN layers, optimizers, schedulers
``repro.deform``   deformable convolution (fwd+bwd), offset policies, Eq. 9
``repro.gpusim``   GPU substrate: texture units, coalescing, caches, latency
``repro.kernels``  the pytorch / tex2D / tex2D++ deformable kernel backends
``repro.nas``      gradient-based interval search (Algorithm 1)
``repro.autotune`` Bayesian tile-size autotuning (Fig. 8)
``repro.models``   ResNet backbones with DCN sites, FPN, YOLACT-style heads
``repro.data``     deformable-shapes dataset + COCO-style mAP
``repro.pipeline`` end-to-end experiments, latency model, reporting

Quick start
-----------
>>> from repro.deform import DeformConv2d
>>> from repro.tensor import Tensor
>>> import numpy as np
>>> layer = DeformConv2d(8, 16, lightweight=True, bound=7.0)
>>> y = layer(Tensor(np.random.default_rng(0).normal(size=(1, 8, 16, 16))))
>>> y.shape
(1, 16, 16, 16)
"""

__version__ = "1.0.0"

__all__ = ["tensor", "nn", "deform", "gpusim", "kernels", "nas", "autotune",
           "models", "data", "pipeline", "__version__"]
