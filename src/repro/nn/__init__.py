"""Neural-network layer library on top of :mod:`repro.tensor`.

Provides exactly the building blocks DEFCON's models and search need:
convolutions (regular / depthwise / pointwise), batch & group norm, pooling,
containers, SGD/Adam with LR schedules, and the functional ops in
:mod:`repro.nn.functional`.
"""

from repro.nn.module import Module, Parameter
from repro.nn.conv import Conv2d, DepthwiseConv2d, PointwiseConv2d
from repro.nn.norm import BatchNorm2d, GroupNorm
from repro.nn.activation import ReLU, Sigmoid, Tanh, Identity
from repro.nn.linear import Linear
from repro.nn.container import Sequential, ModuleList
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.scheduler import MultiStepLR, CosineLR

__all__ = [
    "Module", "Parameter",
    "Conv2d", "DepthwiseConv2d", "PointwiseConv2d",
    "BatchNorm2d", "GroupNorm",
    "ReLU", "Sigmoid", "Tanh", "Identity",
    "Linear",
    "Sequential", "ModuleList",
    "SGD", "Adam", "Optimizer",
    "MultiStepLR", "CosineLR",
]
