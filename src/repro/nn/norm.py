"""Normalisation layers."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel.

    The paper applies BN + ReLU after the depthwise half of the lightweight
    offset head but *not* after the 1×1 (its outputs are the raw fractional
    offsets) — see Section III-A-b.
    """

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels, dtype=np.float32))
        self.beta = Parameter(np.zeros(channels, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(channels, dtype=np.float32))
        self.register_buffer("running_var", np.ones(channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        c = self.channels
        if x.shape[1] != c:
            raise ValueError(f"BatchNorm2d expected {c} channels, got {x.shape[1]}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self._update_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mean.data.reshape(c),
            )
            self._update_buffer(
                "running_var",
                (1 - m) * self.running_var + m * var.data.reshape(c),
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, c, 1, 1))
            var = Tensor(self.running_var.reshape(1, c, 1, 1))
        x_hat = (x - mean) / (var + self.eps) ** 0.5
        return x_hat * self.gamma.reshape(1, c, 1, 1) + self.beta.reshape(1, c, 1, 1)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.channels})"


class GroupNorm(Module):
    """Group normalisation — batch-size independent alternative used in heads."""

    def __init__(self, num_groups: int, channels: int, eps: float = 1e-5):
        super().__init__()
        if channels % num_groups != 0:
            raise ValueError("channels must be divisible by num_groups")
        self.num_groups = num_groups
        self.channels = channels
        self.eps = eps
        self.gamma = Parameter(np.ones(channels, dtype=np.float32))
        self.beta = Parameter(np.zeros(channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        g = self.num_groups
        xg = x.reshape(n, g, c // g, h, w)
        mean = xg.mean(axis=(2, 3, 4), keepdims=True)
        var = xg.var(axis=(2, 3, 4), keepdims=True)
        xg = (xg - mean) / (var + self.eps) ** 0.5
        out = xg.reshape(n, c, h, w)
        return out * self.gamma.reshape(1, c, 1, 1) + self.beta.reshape(1, c, 1, 1)

    def __repr__(self) -> str:
        return f"GroupNorm({self.num_groups}, {self.channels})"
