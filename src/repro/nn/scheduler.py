"""Learning-rate schedules."""

from __future__ import annotations

from typing import Sequence

from repro.nn.optim import Optimizer


class LRScheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def step(self) -> None:
        self.step_count += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class MultiStepLR(LRScheduler):
    """Decay the LR by ``gamma`` at each milestone, floored at ``min_lr``.

    With ``gamma=0.1`` and a 1e-6 floor this is the paper's training recipe
    (initial 1e-2, ×0.1 at selected iterations, saturating at 1e-6).
    """

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int],
                 gamma: float = 0.1, min_lr: float = 1e-6):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma
        self.min_lr = min_lr

    def get_lr(self) -> float:
        decays = sum(1 for m in self.milestones if self.step_count >= m)
        return max(self.base_lr * self.gamma**decays, self.min_lr)


class CosineLR(LRScheduler):
    """Cosine annealing over ``total_steps`` — used for NAS fine-tuning."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 min_lr: float = 1e-6):
        super().__init__(optimizer)
        self.total_steps = max(1, total_steps)
        self.min_lr = min_lr

    def get_lr(self) -> float:
        import math

        t = min(self.step_count, self.total_steps) / self.total_steps
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1 + math.cos(math.pi * t)
        )
