"""Differentiable functional ops built on the autograd engine.

Convolutions are implemented as autograd *primitives* (custom backward via
:func:`repro.tensor.backward_op`) using the im2col lowering — this is both
much faster than composing them from indexing ops and mirrors how the GPU
kernels in :mod:`repro.kernels` are organised (gather → GEMM).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import Tensor, backward_op
from repro.nn.im2col import col2im, conv_output_size, im2col


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0, dilation: int = 1,
           groups: int = 1) -> Tensor:
    """2-D convolution (paper Eq. 1).

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in/groups, kh, kw);
    ``bias``: (C_out,) or None.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c_in != c_in_g * groups:
        raise ValueError(
            f"conv2d channel mismatch: x has {c_in}, weight expects "
            f"{c_in_g}*{groups}"
        )
    out_h = conv_output_size(h, kh, stride, padding, dilation)
    out_w = conv_output_size(w, kw, stride, padding, dilation)

    cols = im2col(x.data, kh, kw, stride, padding, dilation)  # (N, C*K, L)
    l = out_h * out_w
    if groups == 1:
        w2 = weight.data.reshape(c_out, c_in_g * kh * kw)
        out = np.einsum("ok,nkl->nol", w2, cols, optimize=True)
    else:
        cols_g = cols.reshape(n, groups, c_in_g * kh * kw, l)
        w_g = weight.data.reshape(groups, c_out // groups, c_in_g * kh * kw)
        out = np.einsum("gok,ngkl->ngol", w_g, cols_g, optimize=True)
        out = out.reshape(n, c_out, l)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def grad_fn(g):
        g2 = g.reshape(n, c_out, l)
        if groups == 1:
            w2_ = weight.data.reshape(c_out, c_in_g * kh * kw)
            grad_cols = np.einsum("ok,nol->nkl", w2_, g2, optimize=True)
            grad_w = np.einsum("nol,nkl->ok", g2, cols, optimize=True).reshape(
                weight.shape
            )
        else:
            g_g = g2.reshape(n, groups, c_out // groups, l)
            cols_g_ = cols.reshape(n, groups, c_in_g * kh * kw, l)
            w_g_ = weight.data.reshape(groups, c_out // groups, c_in_g * kh * kw)
            grad_cols = np.einsum("gok,ngol->ngkl", w_g_, g_g, optimize=True)
            grad_cols = grad_cols.reshape(n, c_in * kh * kw, l)
            grad_w = np.einsum("ngol,ngkl->gok", g_g, cols_g_, optimize=True)
            grad_w = grad_w.reshape(weight.shape)
        grad_x = col2im(grad_cols, x.shape, kh, kw, stride, padding, dilation)
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(g.sum(axis=(0, 2, 3)))
        return grads

    return backward_op(out, parents, grad_fn, "conv2d")


def depthwise_conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
                     stride: int = 1, padding: int = 0) -> Tensor:
    """Depth-wise convolution — the lightweight offset operator of Eq. 9.

    ``weight``: (C, 1, kh, kw).  Equivalent to ``conv2d(..., groups=C)``.
    """
    return conv2d(x, weight, bias, stride=stride, padding=padding,
                  groups=x.shape[1])


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``; x: (..., in), weight: (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.log_softmax(axis=axis)


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling via im2col + max primitive."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    cols = im2col(x.data, kernel, kernel, stride, 0)  # (N, C*K*K, L)
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
    out = out.reshape(n, c, out_h, out_w)

    def grad_fn(g):
        g2 = g.reshape(n, c, 1, out_h * out_w)
        grad_cols = np.zeros((n, c, kernel * kernel, out_h * out_w), dtype=g.dtype)
        np.put_along_axis(grad_cols, argmax[:, :, None, :], g2, axis=2)
        grad_cols = grad_cols.reshape(n, c * kernel * kernel, out_h * out_w)
        return (col2im(grad_cols, x.shape, kernel, kernel, stride, 0),)

    return backward_op(out, (x,), grad_fn, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    cols = im2col(x.data, kernel, kernel, stride, 0)
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)
    scale = 1.0 / (kernel * kernel)

    def grad_fn(g):
        g2 = np.broadcast_to(
            g.reshape(n, c, 1, out_h * out_w) * scale,
            (n, c, kernel * kernel, out_h * out_w),
        ).reshape(n, c * kernel * kernel, out_h * out_w)
        return (col2im(np.ascontiguousarray(g2), x.shape, kernel, kernel, stride, 0),)

    return backward_op(out, (x,), grad_fn, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dims, keeping (N, C)."""
    return x.mean(axis=(2, 3))


def interpolate_nearest2x(x: Tensor) -> Tensor:
    """Nearest-neighbour 2× upsampling (used by the FPN top-down path)."""
    n, c, h, w = x.shape
    out = np.repeat(np.repeat(x.data, 2, axis=2), 2, axis=3)

    def grad_fn(g):
        g4 = g.reshape(n, c, h, 2, w, 2)
        return (g4.sum(axis=(3, 5)),)

    return backward_op(out, (x,), grad_fn, "up2x")


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy; ``labels`` are integer class indices (N,)."""
    labels = np.asarray(labels)
    log_p = logits.log_softmax(axis=-1)
    n = log_p.shape[0]
    picked = log_p[np.arange(n), labels]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable BCE on raw logits (used for mask losses)."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float32))
    x = logits
    # max(x,0) - x*t + log(1 + exp(-|x|))
    relu_x = x.relu()
    loss = relu_x - x * targets_t + ((-x.abs()).exp() + 1.0).log()
    return loss.mean()


def smooth_l1(pred: Tensor, target: np.ndarray, beta: float = 1.0) -> Tensor:
    """Huber / smooth-L1 loss used by detection box regression."""
    target_t = Tensor(np.asarray(target, dtype=np.float32))
    diff = (pred - target_t).abs()
    quad = (diff * diff) * (0.5 / beta)
    lin = diff - 0.5 * beta
    mask = diff.data < beta
    out = quad.data * mask + lin.data * (~mask)

    def grad_fn(g):
        d = pred.data - target_t.data
        grad = np.where(np.abs(d) < beta, d / beta, np.sign(d))
        return (g * grad, None)

    combined = backward_op(out, (pred, target_t), grad_fn, "smooth_l1")
    return combined.mean()
