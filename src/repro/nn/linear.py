"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine layer ``y = x W^T + b``; weight shape (out_features, in_features)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform(rng, (out_features, in_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x):
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"
