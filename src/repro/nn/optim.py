"""Optimizers.

The paper trains with SGD, momentum 0.9, initial LR 1e-2 decayed by 10× at
selected iterations down to 1e-6 (Section IV-A); :class:`SGD` plus
:class:`repro.nn.scheduler.MultiStepLR` reproduces that recipe.  Adam is
provided for the NAS architecture parameters, the common choice for
DARTS-style bi-level searches.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameter tensors."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.9, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Momentum-SGD update (optionally Nesterov, with weight decay)."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = g + self.momentum * v if self.nesterov else v
            p.data = p.data - self.lr * g


class Adam(Optimizer):
    """Adam — used for architecture parameters in the interval search."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Bias-corrected Adam update."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
