"""im2col / col2im utilities shared by convolution and deformable kernels.

These are the standard lowering used by GPU convolution libraries: a window
gather turns convolution into one large GEMM.  Both directions are fully
vectorised; ``col2im`` uses ``np.add.at`` scatter-accumulation which is exact
for overlapping windows.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int,
                     dilation: int = 1) -> int:
    """Output spatial extent of a convolution along one axis."""
    effective = dilation * (kernel - 1) + 1
    return (size + 2 * padding - effective) // stride + 1


def sample_grid(h: int, w: int, kh: int, kw: int, stride: int, padding: int,
                dilation: int = 1) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Integer sampling coordinates of every kernel tap at every output pixel.

    Returns ``(rows, cols, out_h, out_w)`` where ``rows``/``cols`` have shape
    ``(kh*kw, out_h*out_w)`` and index into the *padded* input.
    """
    out_h = conv_output_size(h, kh, stride, padding, dilation)
    out_w = conv_output_size(w, kw, stride, padding, dilation)
    k_r = np.repeat(np.arange(kh) * dilation, kw)
    k_c = np.tile(np.arange(kw) * dilation, kh)
    o_r = stride * np.repeat(np.arange(out_h), out_w)
    o_c = stride * np.tile(np.arange(out_w), out_h)
    rows = k_r[:, None] + o_r[None, :]
    cols = k_c[:, None] + o_c[None, :]
    return rows, cols, out_h, out_w


def im2col(x: np.ndarray, kh: int, kw: int, stride: int = 1, padding: int = 0,
           dilation: int = 1) -> np.ndarray:
    """Lower ``x`` of shape (N, C, H, W) to columns (N, C*kh*kw, out_h*out_w)."""
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    rows, cols, out_h, out_w = sample_grid(h, w, kh, kw, stride, padding, dilation)
    # Gather: (N, C, kh*kw, out_h*out_w)
    patches = x[:, :, rows, cols]
    return patches.reshape(n, c * kh * kw, out_h * out_w)


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int, kw: int,
           stride: int = 1, padding: int = 0, dilation: int = 1) -> np.ndarray:
    """Adjoint of :func:`im2col` — scatter-add columns back to an image.

    ``cols`` has shape (N, C*kh*kw, out_h*out_w); returns (N, C, H, W).
    """
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    rows, cols_idx, out_h, out_w = sample_grid(h, w, kh, kw, stride, padding, dilation)
    x_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    patches = cols.reshape(n, c, kh * kw, out_h * out_w)
    np.add.at(x_padded, (slice(None), slice(None), rows, cols_idx), patches)
    if padding:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded
