"""Convolution layers (regular, depthwise, pointwise)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.im2col import conv_output_size
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """Standard 2-D convolution layer.

    This is the paper's "regular conv2d" — the operator interval search
    chooses between this and :class:`repro.deform.DeformConv2d` at every
    candidate 3×3 site.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, dilation: int = 1,
                 groups: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_channels % groups != 0 or out_channels % groups != 0:
            raise ValueError("channels must be divisible by groups")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(rng, shape))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x):
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, dilation=self.dilation,
                        groups=self.groups)

    def output_shape(self, h: int, w: int) -> tuple:
        return (
            self.out_channels,
            conv_output_size(h, self.kernel_size, self.stride, self.padding,
                             self.dilation),
            conv_output_size(w, self.kernel_size, self.stride, self.padding,
                             self.dilation),
        )

    def macs(self, h: int, w: int) -> int:
        """Multiply-accumulate count for an (h, w) input — Eq. 9 accounting."""
        _, oh, ow = self.output_shape(h, w)
        per_output = (self.in_channels // self.groups) * self.kernel_size ** 2
        return self.out_channels * oh * ow * per_output

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding}"
                + (f", g={self.groups}" if self.groups != 1 else "") + ")")


class DepthwiseConv2d(Conv2d):
    """Depth-wise 3×3 convolution — first half of the lightweight offset head."""

    def __init__(self, channels: int, kernel_size: int = 3, stride: int = 1,
                 padding: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(channels, channels, kernel_size, stride=stride,
                         padding=padding, groups=channels, bias=bias, rng=rng)

    def __repr__(self) -> str:
        return (f"DepthwiseConv2d({self.in_channels}, k={self.kernel_size}, "
                f"s={self.stride})")


class PointwiseConv2d(Conv2d):
    """1×1 convolution — second half of the lightweight offset head (Eq. 9)."""

    def __init__(self, in_channels: int, out_channels: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(in_channels, out_channels, 1, bias=bias, rng=rng)

    def __repr__(self) -> str:
        return f"PointwiseConv2d({self.in_channels}, {self.out_channels})"
