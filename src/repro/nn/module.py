"""Module base class: parameter registration, train/eval mode, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A Tensor that is a trainable leaf (``requires_grad=True``)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all NN layers.

    Mirrors the torch API surface the rest of the codebase relies on:
    attribute assignment auto-registers parameters and submodules,
    ``parameters()`` / ``named_parameters()`` iterate recursively, and
    ``train()`` / ``eval()`` toggle mode flags (BatchNorm cares).
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Non-trainable state saved in ``state_dict`` (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the layer's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (dotted_name, parameter) for this module and children."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter tensor, recursively."""
        for _, p in self.named_parameters():
            yield p

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield (dotted_name, module) for this module and all descendants."""
        yield prefix.rstrip("."), self
        for name, mod in self._modules.items():
            yield from mod.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        for _, m in self.named_modules():
            yield m

    def children(self) -> Iterator["Module"]:
        """Iterate over direct child modules."""
        return iter(self._modules.values())

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (BatchNorm switches statistics)."""
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode (running BN statistics, no sampling)."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Copy all parameters and buffers into a flat name→array dict."""
        state: Dict[str, np.ndarray] = {}
        for name, p in self._parameters.items():
            state[f"{prefix}{name}"] = p.data.copy()
        for name, b in self._buffers.items():
            state[f"{prefix}{name}"] = np.array(b, copy=True)
        for mod_name, mod in self._modules.items():
            state.update(mod.state_dict(prefix=f"{prefix}{mod_name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        """Load parameters/buffers saved by :meth:`state_dict` (strict)."""
        for name, p in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            if state[key].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: "
                    f"{state[key].shape} vs {p.data.shape}"
                )
            p.data = state[key].astype(p.data.dtype).copy()
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key in state:
                self._update_buffer(name, np.array(state[key], copy=True))
        for mod_name, mod in self._modules.items():
            mod.load_state_dict(state, prefix=f"{prefix}{mod_name}.")

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, mod in self._modules.items():
            mod_repr = repr(mod).replace("\n", "\n  ")
            lines.append(f"  ({name}): {mod_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else self.__class__.__name__ + "()"
