"""Module containers."""

from __future__ import annotations

from typing import Iterable

from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, mod in enumerate(modules):
            setattr(self, str(i), mod)
        self._length = len(modules)

    def forward(self, x):
        """Apply the contained modules in registration order."""
        for i in range(self._length):
            x = self._modules[str(i)](x)
        return x

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, idx: int) -> Module:
        if idx < 0:
            idx += self._length
        return self._modules[str(idx)]

    def __iter__(self):
        return (self._modules[str(i)] for i in range(self._length))


class ModuleList(Module):
    """List of modules (registered so their parameters are visible)."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._length = 0
        for mod in modules:
            self.append(mod)

    def append(self, mod: Module) -> "ModuleList":
        """Register one more module at the end of the list."""
        setattr(self, str(self._length), mod)
        self._length += 1
        return self

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, idx: int) -> Module:
        if idx < 0:
            idx += self._length
        return self._modules[str(idx)]

    def __iter__(self):
        return (self._modules[str(i)] for i in range(self._length))

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; index into it instead")
