"""Activation layers as Modules (for use inside Sequential containers)."""

from __future__ import annotations

from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x):
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    def forward(self, x):
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x):
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Identity(Module):
    def forward(self, x):
        return x

    def __repr__(self) -> str:
        return "Identity()"
