"""Weight initialisation schemes (Kaiming/Xavier) with an explicit RNG.

Every initialiser takes a ``numpy.random.Generator`` so that experiments are
reproducible end to end — no global RNG state anywhere in the library.
"""

from __future__ import annotations

import numpy as np


def _fan_in_out(shape) -> tuple:
    if len(shape) == 2:  # linear: (out, in)
        fan_in, fan_out = shape[1], shape[0]
    elif len(shape) == 4:  # conv: (out, in/groups, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(rng: np.random.Generator, shape, gain: float = np.sqrt(2.0)
                   ) -> np.ndarray:
    """He-normal init, appropriate after ReLU layers."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(rng: np.random.Generator, shape, gain: float = np.sqrt(2.0)
                    ) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(rng: np.random.Generator, shape) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    """Zero init — used for offset-predicting convs so a DCN starts as a
    regular convolution (standard practice from Dai et al., kept by DEFCON)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
