"""Memoised perf-model plans for the texture backends (the "plan cache").

Every :func:`~repro.kernels.tex2d.run_tex2d` call used to re-derive the
same expensive analytic state: rebuild the texture fetch trace from the
sampling positions and re-run :class:`~repro.gpusim.cache.TextureCacheModel`
from scratch — even when the offsets, geometry and tile were identical to
the previous step, which is exactly the steady state of serving and of
repeated benchmark iterations.

The :class:`PlanCache` memoises that state at two levels:

* a **trace entry** per (offset digest, geometry, device, sample plan,
  fp16) — the floored fetch positions plus the tile-independent
  texel→line mapping (:class:`~repro.gpusim.cache.TexelLineTrace`),
  computed once per distinct offset tensor;
* **per-tile stats** inside each entry — the simulated
  :class:`~repro.gpusim.cache.TextureCacheStats` for every CTA tile ever
  requested against that trace.  New tiles are served by the one-pass
  re-tiled simulation (one cheap regrouping, no trace rebuild), so a
  tuner sweep over K tiles costs one trace plus K regroupings instead of
  K full simulations.

Returned stats are **bit-identical** to an uncached simulation — the
re-tiled path replays the exact accounting of ``simulate()`` — so the
cache is a pure wall-time optimisation with no modelling drift (tests
assert this property over random offsets, geometries and tiles).

**Delta-keyed streaming mode** (``delta_bound`` + a ``session=``
argument on lookups): consecutive video frames produce offset tensors
whose digests never repeat but whose values barely move.  With a bound
configured, an exact-digest miss probes the session's *anchor* — the
entry built for the stream's last exactly-keyed frame — and when the
quantised offset delta stays within the bound the anchor's memoised
trace/tile simulation and preallocated fused buffers are reused instead
of rebuilding everything.  Functional outputs stay **bit-identical** to
a cold miss: the fixed-point blend weights and corner indices are always
recomputed from the *current* frame's positions (only the buffers are
recycled); the per-tile perf simulation is served from the anchor, which
is the documented temporal-coherence approximation.  See
``docs/streaming.md``.

Observability: bind a :class:`~repro.obs.registry.MetricsRegistry` to get
``plan_cache_lookups{result=hit|miss}``, ``plan_cache_trace_builds``,
``plan_cache_evictions`` and ``plan_cache_delta_hits`` /
``plan_cache_delta_rejects`` counters (``repro serve --metrics-out``
surfaces them), and a :class:`~repro.obs.tracer.SpanTracer` to see
``plancache.build_trace`` / ``plancache.retile`` spans on the wall
timeline.  See ``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.gpusim.cache import (TexelLineTrace, TextureCacheModel,
                                TextureCacheStats)
from repro.gpusim.device import DeviceSpec
from repro.gpusim.trace import SamplePlan, cta_ids_for_tile, sample_trace_ctas
from repro.kernels.config import LayerConfig
from repro.kernels.fused import FusedPlan, build_fused_plan, tap_tables
from repro.kernels.shards import (ShardGatherPlan, ShardSpec,
                                  build_shard_gather_plan)

#: Default bound on distinct (offsets, geometry) trace entries kept live.
DEFAULT_MAX_ENTRIES = 64


def offsets_digest(offset: np.ndarray) -> str:
    """Content digest of an offset tensor (dtype + shape + bytes).

    blake2b over the raw buffer — fast (GB/s) relative to even one cache
    simulation, and collision-safe for cache-keying purposes.
    """
    arr = np.ascontiguousarray(offset)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class _TraceEntry:
    """Cached per-(offsets, geometry) trace state + per-tile stats.

    One entry owns everything memoised for one (offset digest, geometry,
    device, fp16) key: the fetch trace, the per-tile cache stats, *and*
    the fused execution plans — one LRU lifetime, one digest key, so a
    fused plan can never outlive (or lag behind) the trace it belongs to.
    """

    y0: np.ndarray                     # (k·l,) floored fetch rows
    x0: np.ndarray                     # (k·l,) floored fetch cols
    lines: Optional[TexelLineTrace]    # None when the trace needs sampling
    k: int
    l: int
    out_h: int
    out_w: int
    #: (tile, concurrent_layers) → (stats, trace scale)
    stats: Dict[Tuple[Tuple[int, int], int],
                Tuple[TextureCacheStats, float]] = field(default_factory=dict)
    #: (in_channels, out_channels) → compiled fused execution plan
    fused: Dict[Tuple[int, int], FusedPlan] = field(default_factory=dict)
    #: (shard descriptor, in_channels) → compiled shard gather plan
    shards: Dict[tuple, ShardGatherPlan] = field(default_factory=dict)


@dataclass
class _SessionAnchor:
    """Per-(session, geometry) delta-keying state.

    ``key`` points at the trace entry built for the stream's last
    exactly-keyed frame; ``offset`` is a private copy of that frame's
    (quantised, for tex2D++) offsets, the reference the per-frame delta
    is measured against.  ``plans`` are the session-owned
    :class:`FusedPlan` objects whose preallocated buffers are reused
    across the stream — their tap tables are *retargeted* to the current
    frame on every delta hit, so outputs never inherit stale weights.
    """

    key: tuple
    offset: np.ndarray
    plans: Dict[Tuple[int, int], FusedPlan] = field(default_factory=dict)


class PlanCacheStats:
    """Hit/miss/build counters of one :class:`PlanCache` (thread-safe)."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.trace_builds = 0
        self.fused_builds = 0
        self.shard_builds = 0
        self.evictions = 0
        self.delta_hits = 0
        self.delta_rejects = 0
        self._lock = threading.Lock()
        self._lookup_counter = None
        self._build_counter = None
        self._fused_counter = None
        self._shard_counter = None
        self._eviction_counter = None
        self._delta_hit_counter = None
        self._delta_reject_counter = None
        self._build_window = None

    @property
    def bound(self) -> bool:
        """Whether the counters already publish to some registry."""
        with self._lock:
            return self._lookup_counter is not None

    def bind_registry(self, registry) -> "PlanCacheStats":
        """Mirror counters onto a MetricsRegistry, re-publishing history."""
        with self._lock:
            self._lookup_counter = registry.counter(
                "plan_cache_lookups",
                help="perf-model plan cache lookups by result (hit/miss)")
            self._build_counter = registry.counter(
                "plan_cache_trace_builds",
                help="fetch traces built by the plan cache (one per "
                     "distinct offsets+geometry)")
            self._fused_counter = registry.counter(
                "plan_cache_fused_builds",
                help="fused execution plans compiled by the plan cache")
            self._shard_counter = registry.counter(
                "plan_cache_shard_builds",
                help="shard gather plans compiled by the plan cache "
                     "(one per distinct offsets+geometry+shard)")
            self._eviction_counter = registry.counter(
                "plan_cache_evictions",
                help="trace entries dropped at the LRU bound (a high rate "
                     "under streaming means max_entries is too small for "
                     "the live session count)")
            self._delta_hit_counter = registry.counter(
                "plan_cache_delta_hits",
                help="exact-digest misses served from a session anchor "
                     "(trace/tile simulation and fused buffers reused; "
                     "blend weights recomputed for the current frame)")
            self._delta_reject_counter = registry.counter(
                "plan_cache_delta_rejects",
                help="session-anchor probes whose quantised offset delta "
                     "exceeded the bound (full rebuild + re-anchor)")
            self._build_window = registry.windowed_histogram(
                "plan_cache_build_ms",
                help="wall ms spent compiling plans (trace/fused), "
                     "windowed on the wall clock — a build spike in a "
                     "serving window means new offset digests arrived")
            for result, n in (("hit", self.hits), ("miss", self.misses)):
                if n:
                    self._lookup_counter.inc(n, result=result)
            if self.trace_builds:
                self._build_counter.inc(self.trace_builds)
            if self.fused_builds:
                self._fused_counter.inc(self.fused_builds)
            if self.shard_builds:
                self._shard_counter.inc(self.shard_builds)
            if self.evictions:
                self._eviction_counter.inc(self.evictions)
            if self.delta_hits:
                self._delta_hit_counter.inc(self.delta_hits)
            if self.delta_rejects:
                self._delta_reject_counter.inc(self.delta_rejects)
        return self

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1
            counter = self._lookup_counter
        if counter is not None:
            counter.inc(result="hit")

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1
            counter = self._lookup_counter
        if counter is not None:
            counter.inc(result="miss")

    def record_trace_build(self) -> None:
        with self._lock:
            self.trace_builds += 1
            counter = self._build_counter
        if counter is not None:
            counter.inc()

    def record_fused_build(self) -> None:
        with self._lock:
            self.fused_builds += 1
            counter = self._fused_counter
        if counter is not None:
            counter.inc()

    def record_shard_build(self) -> None:
        with self._lock:
            self.shard_builds += 1
            counter = self._shard_counter
        if counter is not None:
            counter.inc()

    def record_eviction(self) -> None:
        with self._lock:
            self.evictions += 1
            counter = self._eviction_counter
        if counter is not None:
            counter.inc()

    def record_delta_hit(self) -> None:
        with self._lock:
            self.delta_hits += 1
            counter = self._delta_hit_counter
        if counter is not None:
            counter.inc()

    def record_delta_reject(self) -> None:
        with self._lock:
            self.delta_rejects += 1
            counter = self._delta_reject_counter
        if counter is not None:
            counter.inc()

    def record_build_ms(self, kind: str, duration_ms: float) -> None:
        """Windowed build-duration sample (``kind`` = trace|fused)."""
        with self._lock:
            window = self._build_window
        if window is not None:
            window.observe(float(duration_ms), kind=kind)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return 100.0 * self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"PlanCacheStats(hits={self.hits}, misses={self.misses}, "
                f"trace_builds={self.trace_builds}, "
                f"fused_builds={self.fused_builds}, "
                f"shard_builds={self.shard_builds}, "
                f"evictions={self.evictions}, "
                f"delta_hits={self.delta_hits}, "
                f"delta_rejects={self.delta_rejects})")


class PlanCache:
    """LRU-bounded memo of texture perf-model state.

    Parameters
    ----------
    max_entries:
        Distinct (offset digest, geometry, plan, fp16) trace entries kept
        live; least-recently-used entries are evicted beyond this (each
        eviction counts on ``stats.evictions``).  Each entry additionally
        holds one stats record per tile requested against it (the legal
        tile space is small, so this inner dict is naturally bounded).
    delta_bound:
        Enables the delta-keyed streaming mode: on an exact-digest miss
        with a ``session=`` supplied, the session's anchor entry is
        reused whenever ``max|offset - anchor_offset|`` (measured on the
        offsets as passed — already fp16-quantised for tex2D++) stays
        within this bound.  ``None`` (default) keeps lookups exact-only.
    registry / tracer:
        Optional observability hooks — see the module docstring.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 registry=None, tracer=None,
                 delta_bound: Optional[float] = None):
        if max_entries < 1:
            raise ValueError("plan cache needs max_entries >= 1")
        if delta_bound is not None and delta_bound <= 0:
            raise ValueError("delta_bound must be > 0 (or None for "
                             "exact-only keying)")
        self.max_entries = max_entries
        self.delta_bound = delta_bound
        self.stats = PlanCacheStats()
        self.tracer = tracer
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, _TraceEntry]" = OrderedDict()
        #: per-key in-flight build guards — concurrent misses on the same
        #: key coalesce onto one build instead of racing ``_build_entry``
        self._building: Dict[tuple, threading.Event] = {}
        #: (session, offset shape, geometry...) → _SessionAnchor
        self._anchors: Dict[tuple, _SessionAnchor] = {}
        if registry is not None:
            self.stats.bind_registry(registry)

    def bind_registry(self, registry) -> "PlanCache":
        self.stats.bind_registry(registry)
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._anchors.clear()

    @property
    def session_count(self) -> int:
        """Live (session, geometry) anchors held by the cache."""
        with self._lock:
            return len(self._anchors)

    def end_session(self, session: str) -> int:
        """Drop every anchor (and its session-owned fused buffers) of one
        stream — the fleet calls this when a stream's last frame resolves,
        so per-session state never outlives the session.  Returns how many
        anchors were dropped.  The anchor's *trace entry* stays in the LRU
        (it may be the exact-keyed entry of another lookup) and ages out
        normally."""
        akeys = []
        with self._lock:
            akeys = [k for k in self._anchors if k[0] == session]
            for k in akeys:
                del self._anchors[k]
        return len(akeys)

    @staticmethod
    def _trace_key(digest: str, cfg: LayerConfig, spec: DeviceSpec,
                   fp16: bool, plan: SamplePlan) -> tuple:
        # Everything the trace + line mapping depends on.  Cache-geometry
        # fields of the spec are keyed explicitly so two specs sharing a
        # name but differing in cache shape cannot alias.
        return (digest, cfg.height, cfg.width, cfg.kernel_size, cfg.stride,
                cfg.padding, cfg.dilation, bool(fp16), spec.name,
                spec.tex_cache_kb_per_sm, spec.tex_cache_line_bytes,
                tuple(spec.tex_line_tile), plan)

    # ------------------------------------------------------------------
    def tex_stats(self, offset: np.ndarray, cfg: LayerConfig,
                  spec: DeviceSpec, tile: Tuple[int, int], fp16: bool,
                  plan: Optional[SamplePlan], concurrent_layers: int,
                  positions: Callable[[], Tuple[np.ndarray, np.ndarray]],
                  session: Optional[str] = None
                  ) -> Tuple[TextureCacheStats, float]:
        """Memoised equivalent of trace-build + ``simulate`` for one call.

        ``positions`` lazily supplies the representative ``(py, px)``
        arrays of shape (K, L) — it is only invoked when the trace entry
        has to be built, so steady-state hits never touch the sampling
        positions at all.  Returns ``(stats, trace_scale)`` exactly as the
        uncached path would produce them.

        With ``session`` set and :attr:`delta_bound` configured, an
        exact-digest miss whose offsets stay within the bound of the
        session's anchor is served from the anchor's memoised simulation
        (a *delta hit* — the temporal-coherence approximation; the
        positions callable is never invoked).
        """
        plan = plan or SamplePlan()
        tile = (int(tile[0]), int(tile[1]))
        key = self._trace_key(offsets_digest(offset), cfg, spec, fp16, plan)
        stats_key = (tile, int(concurrent_layers))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                cached = entry.stats.get(stats_key)
                if cached is not None:
                    self.stats.record_hit()
                    if session is not None and self.delta_bound is not None:
                        self._set_anchor(session, key, offset)
                    return cached
        # Delta-keying only applies on an exact-digest miss; a known
        # digest with an unseen (tile, concurrency) combination is a
        # plain miss that simulates against its own trace.
        if entry is None and session is not None \
                and self.delta_bound is not None:
            anchored = self._probe_anchor(session, key, offset)
            if anchored is not None:
                result = self._anchored_tile(anchored, cfg, spec, tile,
                                             plan, stats_key,
                                             int(concurrent_layers))
                self.stats.record_delta_hit()
                return result
        self.stats.record_miss()
        entry = self._acquire_entry(key, cfg, spec, plan, positions)
        result = self._simulate_tile(entry, cfg, spec, tile, plan,
                                     int(concurrent_layers))
        with self._lock:
            entry.stats.setdefault(stats_key, result)
            if session is not None and self.delta_bound is not None:
                self._set_anchor(session, key, offset)
        return result

    # -- delta-keyed streaming mode ------------------------------------
    def _anchor_key(self, session: str, key: tuple,
                    offset: np.ndarray) -> tuple:
        # One anchor per (session, offset shape, geometry/device/plan):
        # the digest (key[0]) is deliberately dropped — that is the whole
        # point — and the offset shape keeps a session that alternates
        # batch sizes from aliasing anchors with mismatched tensors.
        return (session, tuple(offset.shape)) + key[1:]

    def _set_anchor(self, session: str, key: tuple,
                    offset: np.ndarray) -> None:
        """(Re-)anchor a session at an exactly-keyed entry (lock held).

        Both exact misses (after the build) and exact hits re-anchor:
        whichever frame the session last resolved *exactly* is the
        reference its next delta is measured against."""
        akey = self._anchor_key(session, key, offset)
        old = self._anchors.get(akey)
        self._anchors[akey] = _SessionAnchor(
            key=key, offset=np.array(offset, dtype=np.float32, copy=True),
            plans=old.plans if old is not None else {})

    def _probe_anchor(self, session: str, key: tuple, offset: np.ndarray
                      ) -> Optional[Tuple[_SessionAnchor, _TraceEntry]]:
        """The delta probe: (anchor, its live entry) iff within bound.

        Returns None — and counts a reject when an anchor actually lost —
        on: no anchor yet, anchor entry already evicted (the stream must
        re-anchor), or quantised delta over the bound.
        """
        akey = self._anchor_key(session, key, offset)
        with self._lock:
            anchor = self._anchors.get(akey)
            if anchor is None:
                return None
            entry = self._entries.get(anchor.key)
            if entry is None:
                # evicted under multi-stream cache pressure — drop the
                # anchor (its fused buffers went with the LRU lifetime
                # story) and rebuild exactly
                del self._anchors[akey]
                return None
            if offset.shape != anchor.offset.shape:
                return None
            delta = float(np.max(np.abs(offset - anchor.offset))) \
                if offset.size else 0.0
            if delta > self.delta_bound:
                self.stats.record_delta_reject()
                return None
            self._entries.move_to_end(anchor.key)
            return anchor, entry

    def _anchored_tile(self, anchored, cfg, spec, tile, plan, stats_key,
                       concurrent_layers):
        """Per-tile stats through the anchor's trace (new tiles simulate
        against the anchor's fetch trace — still no trace rebuild)."""
        _, entry = anchored
        with self._lock:
            cached = entry.stats.get(stats_key)
        if cached is not None:
            return cached
        result = self._simulate_tile(entry, cfg, spec, tile, plan,
                                     concurrent_layers)
        with self._lock:
            return entry.stats.setdefault(stats_key, result)

    # ------------------------------------------------------------------
    def fused_plan(self, offset: np.ndarray, cfg: LayerConfig,
                   spec: DeviceSpec, fp16: bool,
                   plan: Optional[SamplePlan],
                   positions: Callable[[], Tuple[np.ndarray, np.ndarray]],
                   session: Optional[str] = None) -> FusedPlan:
        """Get-or-compile the fused execution plan for one call.

        ``positions`` lazily supplies the **full** (N, dg, K, L)
        sampling-position arrays (post fp16 quantisation for tex2D++) —
        only invoked on a compile.  The plan hangs off the same trace
        entry as the memoised stats (one digest key, one LRU lifetime),
        keyed inside it by (in_channels, out_channels); compiles coalesce
        under the same in-flight guard as trace builds.

        With ``session`` + :attr:`delta_bound`, an exact miss within the
        bound of the session's anchor is served by *retargeting* the
        session-owned plan: the tap tables (corner indices + 1.8
        fixed-point blend weights) are recomputed from the **current**
        frame's positions — so execution stays bit-identical to a cold
        compile — while the preallocated gather/column/output buffers are
        reused across the stream.
        """
        plan = plan or SamplePlan()
        key = self._trace_key(offsets_digest(offset), cfg, spec, fp16, plan)
        fkey = (cfg.in_channels, cfg.out_channels)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                fused = entry.fused.get(fkey)
                if fused is not None:
                    self.stats.record_hit()
                    if session is not None and self.delta_bound is not None:
                        self._set_anchor(session, key, offset)
                    return fused
        # Delta-keying only applies on an exact-digest miss — a known
        # digest compiles its own plan on the shared entry.
        if entry is None and session is not None \
                and self.delta_bound is not None:
            anchored = self._probe_anchor(session, key, offset)
            if anchored is not None:
                return self._retarget_fused(anchored[0], cfg, spec, fp16,
                                            positions, fkey)
        guard = (key, "fused", fkey)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    fused = entry.fused.get(fkey)
                    if fused is not None:
                        self.stats.record_hit()
                        if session is not None \
                                and self.delta_bound is not None:
                            self._set_anchor(session, key, offset)
                        return fused
                event = self._building.get(guard)
                if event is None:
                    event = threading.Event()
                    self._building[guard] = event
                    break
            event.wait()
        try:
            self.stats.record_miss()
            entry = self._acquire_entry(
                key, cfg, spec, plan,
                lambda: tuple(p[0, 0] for p in positions()))
            fused = self._build_fused(cfg, spec, fp16, positions)
            with self._lock:
                fused = entry.fused.setdefault(fkey, fused)
                if session is not None and self.delta_bound is not None:
                    self._set_anchor(session, key, offset)
        finally:
            with self._lock:
                self._building.pop(guard, None)
            event.set()
        return fused

    def _retarget_fused(self, anchor: _SessionAnchor, cfg: LayerConfig,
                        spec: DeviceSpec, fp16: bool, positions,
                        fkey: Tuple[int, int]) -> FusedPlan:
        """Serve a fused delta hit from the session-owned plan.

        The first delta hit of a stream allocates the session's plan (one
        buffer allocation amortised over the whole stream); every later
        hit only rebuilds the cheap elementwise tap tables and swaps them
        in under the plan's execution lock.
        """
        t0 = time.perf_counter()
        py, px = positions()
        idx, wts = tap_tables(py, px, cfg.height, cfg.width, fp16)
        fused = anchor.plans.get(fkey)
        if fused is None:
            fused = FusedPlan(cfg, fp16, idx, wts)
            with self._lock:
                fused = anchor.plans.setdefault(fkey, fused)
        else:
            fused.retarget(idx, wts)
        self.stats.record_delta_hit()
        self.stats.record_build_ms("retarget",
                                   (time.perf_counter() - t0) * 1e3)
        return fused

    # ------------------------------------------------------------------
    def shard_plan(self, offset: np.ndarray, cfg: LayerConfig,
                   spec: DeviceSpec, fp16: bool,
                   plan: Optional[SamplePlan], shard: ShardSpec,
                   positions: Callable[[], Tuple[np.ndarray, np.ndarray]]
                   ) -> ShardGatherPlan:
        """Get-or-compile the gather plan for one shard of one layer.

        Keyed off the **full-layer** trace entry (full-offset digest +
        geometry), with the shard descriptor — kind, index/count and the
        concrete [lo, hi) range — inside the entry key, so a row band
        and a channel slice of the same layer, or two different bands,
        can never collide with each other or with the whole-layer fused
        plan.  Same LRU lifetime and in-flight build coalescing as
        :meth:`fused_plan`.
        """
        plan = plan or SamplePlan()
        key = self._trace_key(offsets_digest(offset), cfg, spec, fp16, plan)
        skey = (shard.descriptor(), cfg.in_channels)
        guard = (key, "shard", skey)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    gplan = entry.shards.get(skey)
                    if gplan is not None:
                        self.stats.record_hit()
                        return gplan
                event = self._building.get(guard)
                if event is None:
                    event = threading.Event()
                    self._building[guard] = event
                    break
            event.wait()
        try:
            self.stats.record_miss()
            entry = self._acquire_entry(
                key, cfg, spec, plan,
                lambda: tuple(p[0, 0] for p in positions()))
            gplan = self._build_shard(cfg, fp16, shard, positions)
            with self._lock:
                gplan = entry.shards.setdefault(skey, gplan)
        finally:
            with self._lock:
                self._building.pop(guard, None)
            event.set()
        return gplan

    def _build_shard(self, cfg: LayerConfig, fp16: bool, shard: ShardSpec,
                     positions) -> ShardGatherPlan:
        self.stats.record_shard_build()
        t0 = time.perf_counter()
        try:
            if self.tracer is not None:
                with self.tracer.span("plancache.build_shard",
                                      cat="plancache",
                                      geometry=cfg.label(),
                                      shard=shard.label()):
                    return build_shard_gather_plan(cfg, fp16, shard,
                                                   positions)
            return build_shard_gather_plan(cfg, fp16, shard, positions)
        finally:
            self.stats.record_build_ms(
                "shard", (time.perf_counter() - t0) * 1e3)

    def _build_fused(self, cfg: LayerConfig, spec: DeviceSpec, fp16: bool,
                     positions) -> FusedPlan:
        self.stats.record_fused_build()
        t0 = time.perf_counter()
        try:
            if self.tracer is not None:
                with self.tracer.span("plancache.build_fused",
                                      cat="plancache",
                                      geometry=cfg.label()):
                    return build_fused_plan(cfg, spec, fp16, positions)
            return build_fused_plan(cfg, spec, fp16, positions)
        finally:
            self.stats.record_build_ms(
                "fused", (time.perf_counter() - t0) * 1e3)

    # ------------------------------------------------------------------
    def _acquire_entry(self, key: tuple, cfg: LayerConfig, spec: DeviceSpec,
                       plan: SamplePlan,
                       positions: Callable[[], Tuple[np.ndarray, np.ndarray]]
                       ) -> _TraceEntry:
        """Get-or-build the trace entry for ``key``, coalescing misses.

        Concurrent misses on the same key used to race ``_build_entry``
        and double-count ``trace_builds`` (one build discarded by
        ``setdefault``); now the first thread builds under a per-key
        in-flight event and the rest wait, so the build — and its
        observability counter — happens exactly once per distinct key.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    return entry
                event = self._building.get(key)
                if event is None:
                    event = threading.Event()
                    self._building[key] = event
                    break
            # Another thread is building this key — wait, then re-check
            # (looping guards against builder failure or instant
            # eviction, in which case we become the builder).
            event.wait()
        try:
            entry = self._build_entry(cfg, spec, plan, positions)
            with self._lock:
                entry = self._entries.setdefault(key, entry)
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    # eviction used to be silent; under many concurrent
                    # streams it is the signal that max_entries is too
                    # small for the live anchor set
                    self.stats.record_eviction()
        finally:
            with self._lock:
                self._building.pop(key, None)
            event.set()
        return entry

    # ------------------------------------------------------------------
    def _build_entry(self, cfg: LayerConfig, spec: DeviceSpec,
                     plan: SamplePlan,
                     positions: Callable[[], Tuple[np.ndarray, np.ndarray]]
                     ) -> _TraceEntry:
        """Build the tile-independent trace state (the expensive half)."""
        t0 = time.perf_counter()
        try:
            if self.tracer is not None:
                with self.tracer.span("plancache.build_trace",
                                      cat="plancache",
                                      geometry=cfg.label()):
                    return self._build_entry_inner(cfg, spec, plan,
                                                   positions)
            return self._build_entry_inner(cfg, spec, plan, positions)
        finally:
            self.stats.record_build_ms(
                "trace", (time.perf_counter() - t0) * 1e3)

    def _build_entry_inner(self, cfg, spec, plan, positions) -> _TraceEntry:
        self.stats.record_trace_build()
        py, px = positions()
        k, l = py.shape
        y0 = np.floor(py).ravel().astype(np.int64)
        x0 = np.floor(px).ravel().astype(np.int64)
        lines = None
        if y0.size <= plan.max_fetches:
            # Within the sampling budget the trace is exact, so the
            # texel→line mapping is tile-independent and precomputable.
            # (Beyond it, whole-CTA sampling depends on the tile and each
            # tile replays the sampling step instead.)
            pixel = np.broadcast_to(np.arange(l), (k, l)).ravel()
            model = TextureCacheModel(spec)
            lines = model.precompute(y0, x0, pixel, cfg.height, cfg.width)
        return _TraceEntry(y0=y0, x0=x0, lines=lines, k=k, l=l,
                           out_h=cfg.out_height, out_w=cfg.out_width)

    def _simulate_tile(self, entry: _TraceEntry, cfg: LayerConfig,
                       spec: DeviceSpec, tile: Tuple[int, int],
                       plan: SamplePlan, concurrent_layers: int
                       ) -> Tuple[TextureCacheStats, float]:
        """Simulate one CTA tiling against a cached trace entry."""
        if self.tracer is not None:
            with self.tracer.span("plancache.retile", cat="plancache",
                                  geometry=cfg.label(),
                                  tile=f"{tile[0]}x{tile[1]}"):
                return self._simulate_tile_inner(entry, cfg, spec, tile,
                                                 plan, concurrent_layers)
        return self._simulate_tile_inner(entry, cfg, spec, tile, plan,
                                         concurrent_layers)

    def _simulate_tile_inner(self, entry, cfg, spec, tile, plan,
                             concurrent_layers):
        model = TextureCacheModel(spec, concurrent_layers=concurrent_layers)
        cta_of_pixel = cta_ids_for_tile(entry.out_h, entry.out_w, tile)
        if entry.lines is not None:
            return model.simulate_retiled(entry.lines, cta_of_pixel), 1.0
        # Sampled trace: CTA sampling depends on the tile, so replay it
        # exactly as texture_fetch_trace would (bit-identical fallback).
        cta = np.broadcast_to(cta_of_pixel,
                              (entry.k, entry.l)).ravel()
        y0, x0, cta, scale = sample_trace_ctas(entry.y0, entry.x0, cta,
                                               entry.k * entry.l, plan)
        stats = model.simulate(y0, x0, cta, cfg.height, cfg.width)
        return stats, scale
