"""Tile-size search space for the tex2D kernels (paper Fig. 8).

The CTA tile (ty, tx) trades off three effects the simulator models:

* **occupancy** — ty·tx threads per block; tiny tiles cannot hide latency;
* **texture-cache locality** — a tile's fetch footprint (tile + deformation
  halo) must fit the per-SM cache share, or re-accesses thrash;
* **wave quantisation** — the CTA count must fill the SMs evenly.

``enumerate_tiles`` generates the legal space; the Bayesian tuner in
:mod:`repro.autotune` searches it offline, as the paper does with ytopt.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from repro.gpusim.device import DeviceSpec
from repro.kernels.config import LayerConfig

#: Power-of-two candidate extents, as GPU kernels are usually written.
CANDIDATE_EXTENTS = (2, 4, 8, 16, 32, 64)

#: Canonical tile-cache key: the geometry fields the tile choice depends on.
TileKey = Tuple[int, int, int, int]


def tile_key(cfg: LayerConfig) -> TileKey:
    """Canonical tile-cache key for one layer geometry.

    Both the offline tuner (inserting tiles) and the runtime (looking them
    up) must derive keys through this one function — deriving them
    independently is exactly how tuned tiles get silently dropped.  Batch is
    deliberately excluded: the tile partitions the output *plane*, and batch
    only scales the grid's z extent.
    """
    return (cfg.in_channels, cfg.height, cfg.width, cfg.stride)


def nearest_tile_key(key: TileKey,
                     candidates: Iterable[TileKey]) -> Optional[TileKey]:
    """The tuned key geometrically closest to ``key``, or None.

    Only keys with the same channel count and stride qualify (those change
    the kernel's arithmetic, not just its extent); among them the smallest
    log-space spatial distance wins, so a resized input maps to the tile
    tuned for the most similar feature-map footprint.
    """
    c, h, w, s = key
    same = [k for k in candidates if k[0] == c and k[3] == s]
    if not same:
        return None
    return min(same, key=lambda k: (abs(math.log(k[1] / h))
                                    + abs(math.log(k[2] / w))))


def enumerate_tiles(cfg: LayerConfig, spec: DeviceSpec,
                    extents: Tuple[int, ...] = CANDIDATE_EXTENTS
                    ) -> List[Tuple[int, int]]:
    """All (ty, tx) tiles that launch legally for this layer and device."""
    tiles = []
    for ty in extents:
        for tx in extents:
            threads = ty * tx
            if threads < spec.warp_size:
                continue  # sub-warp blocks waste the SIMD width
            if threads > spec.max_threads_per_block:
                continue
            if ty > cfg.out_height * 2 or tx > cfg.out_width * 2:
                continue  # grossly oversized for the layer
            tiles.append((ty, tx))
    if not tiles:
        raise ValueError(f"no legal tiles for {cfg.label()} on {spec.name}")
    return tiles


def heuristic_tile(cfg: LayerConfig, spec: DeviceSpec) -> Tuple[int, int]:
    """A sensible default (what a hand-tuned kernel would pick): the largest
    square power-of-two tile that keeps 256 threads/block and covers the
    output plane reasonably."""
    best = (16, 16)
    for ty in (16, 8, 4):
        if ty <= cfg.out_height:
            for tx in (16, 8, 4):
                if tx <= cfg.out_width and ty * tx >= 64:
                    return (ty, tx)
    return best


def deformation_halo(kernel_size: int, bound: float = 7.0) -> int:
    """Input rows/cols a deformable tap can reach beyond its output extent.

    A bounded offset moves each tap at most ``int(bound)`` texels, the
    kernel footprint adds ``kernel_size // 2``, and bilinear filtering
    touches one more texel.  This is the *one* halo formula shared by the
    tile tuner's working-set estimate (:func:`tile_footprint_bytes`) and
    the fleet shard planner's halo-exchange traffic model
    (:mod:`repro.fleet.shard`) — deriving it twice is exactly how tuner
    and scheduler numerics drift apart.
    """
    return int(bound) + kernel_size // 2 + 1


def tile_footprint_bytes(cfg: LayerConfig, tile: Tuple[int, int],
                         bound: float = 7.0, dtype_bytes: int = 4) -> int:
    """Texture working set of one CTA for one layer: tile + deformation halo."""
    ty, tx = tile
    halo = deformation_halo(cfg.kernel_size, bound)
    span_y = ty * cfg.stride + 2 * halo
    span_x = tx * cfg.stride + 2 * halo
    return span_y * span_x * dtype_bytes
