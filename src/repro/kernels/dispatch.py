"""Backend dispatch and convenience runners for the deformable operator."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.trace import SamplePlan
from repro.kernels.config import LayerConfig, OpResult, synth_offsets
from repro.kernels.reference import run_reference
from repro.kernels.tex2d import DEFAULT_TILE, run_tex2d, run_tex2dpp

BACKENDS = ("pytorch", "tex2d", "tex2dpp")


def run_deform_op(backend: str, x: np.ndarray, offset: np.ndarray,
                  weight: np.ndarray, bias: Optional[np.ndarray],
                  cfg: LayerConfig, spec: DeviceSpec,
                  tile: Tuple[int, int] = DEFAULT_TILE,
                  plan: Optional[SamplePlan] = None,
                  compute_output: bool = True,
                  layer: str = "",
                  plan_cache=None,
                  execution: str = "eager",
                  session: Optional[str] = None) -> OpResult:
    """Run one deformable conv through the selected backend.

    ``layer`` attributes the launched kernels to a model layer (a dotted
    module name): every :class:`~repro.gpusim.profiler.KernelStats` in the
    result is stamped with it, plus the geometry label, so per-layer
    profiling (``ProfileLog.by_layer``) works downstream.

    ``plan_cache`` (a :class:`~repro.kernels.plancache.PlanCache`) lets
    the texture backends reuse the fetch trace and cache simulation for
    repeated (offsets, geometry, tile) combinations; the reference
    backend ignores it.

    ``execution="fused"`` routes the texture backends through their
    compiled :class:`~repro.kernels.fused.FusedPlan` hot path (requires
    ``plan_cache``); outputs and stats stay bit-identical to eager.  The
    pytorch reference backend has no fused variant and ignores the flag.
    """
    if backend == "pytorch":
        res = run_reference(x, offset, weight, bias, cfg, spec, plan=plan,
                            compute_output=compute_output)
    elif backend == "tex2d":
        res = run_tex2d(x, offset, weight, bias, cfg, spec, tile=tile,
                        plan=plan, compute_output=compute_output,
                        plan_cache=plan_cache, execution=execution,
                        session=session)
    elif backend == "tex2dpp":
        res = run_tex2dpp(x, offset, weight, bias, cfg, spec, tile=tile,
                          plan=plan, compute_output=compute_output,
                          plan_cache=plan_cache, execution=execution,
                          session=session)
    else:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}")
    for k in res.kernels:
        if layer:
            k.layer = layer
        if not k.geometry:
            k.geometry = cfg.label()
    return res


def run_layer_all_backends(cfg: LayerConfig, spec: DeviceSpec,
                           tile: Tuple[int, int] = DEFAULT_TILE,
                           offset_sigma: float = 2.0,
                           bound: Optional[float] = None, seed: int = 0,
                           compute_output: bool = False,
                           plan: Optional[SamplePlan] = None,
                           plan_cache=None) -> Dict[str, OpResult]:
    """Run one layer shape through all three backends with shared data.

    This is the workhorse of the Table II / Table IV / Fig. 7 benches:
    identical input, weights and (synthesised) offsets per backend, so the
    latency differences are purely the execution strategy.

    ``plan_cache`` is forwarded to the texture backends so repeated sweeps
    over the same layer reuse the fetch trace and cache simulation; both
    outputs and perf counters are bit-identical to an uncached run (the
    conformance suite and tests/test_determinism.py assert this).
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=cfg.input_shape()).astype(np.float32)
    w = (rng.normal(size=cfg.weight_shape()) / np.sqrt(cfg.in_channels * 9)
         ).astype(np.float32)
    b = rng.normal(size=(cfg.out_channels,)).astype(np.float32)
    off = synth_offsets(cfg, sigma=offset_sigma, bound=bound, seed=seed)
    return {
        backend: run_deform_op(backend, x, off, w, b, cfg, spec, tile=tile,
                               plan=plan, compute_output=compute_output,
                               plan_cache=plan_cache)
        for backend in BACKENDS
    }
