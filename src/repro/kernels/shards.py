"""Band/channel-slice execution of one deformable layer (fleet sharding).

The fleet's intra-request parallelism (:mod:`repro.fleet.shard`) splits a
deformable layer across workers either **spatially** — contiguous bands
of output rows, each worker fetching its band plus the offset-dependent
deformation halo — or by **channel groups** — a contiguous slice of the
per-group input channels, every worker covering the full output plane.

The decomposition point is the im2col column matrix.  The texture
backends lower a deformable layer as *gather/blend → columns → one
einsum GEMM* (:func:`~repro.kernels.tex2d.run_tex2d`).  The gather and
blend are purely elementwise, so a shard that computes a **slice of the
column matrix** produces bits equal to the same slice of the full
matrix; the coordinator stitches the slices back into one (N, C·K, L)
buffer and runs the *same full-shape einsum* as the unsharded path.
Bit-identical output for every split is therefore a property of the
construction, not a tolerance — the conformance suite pins it.

(The tempting alternative — each shard running its own partial GEMM over
sliced weights or columns — is **not** bit-identical: BLAS picks
different reduction orders for small shapes, and summing partial
products reorders the accumulation.  Slice the columns, never the GEMM.)

Each shard's gather is compiled into a :class:`ShardGatherPlan` via the
same :func:`~repro.kernels.fused.tap_tables` step as the fused full-layer
plan, memoised on the layer's :class:`~repro.kernels.plancache.PlanCache`
trace entry (one digest key, one LRU lifetime).  Per-shard KernelStats
reuse the plan-cache texture simulation: a row band simulates its sliced
fetch trace; a channel slice *shares the full-layer trace entry* and
scales the counters by its channel fraction.

Traffic accounting for the interconnect model is computed here from the
actual tap footprint: a row band's input bytes span exactly the input
rows its (floored, bilinear-widened) taps touch — the realised version
of the :func:`~repro.kernels.tiling.deformation_halo` planning bound.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import (KernelCost, LaunchConfig, estimate_time_ms,
                                 gemm_cost)
from repro.gpusim.memory import strided_stats
from repro.gpusim.profiler import KernelStats
from repro.gpusim.trace import SamplePlan
from repro.kernels.config import LayerConfig, OpResult
from repro.kernels.fused import tap_tables
from repro.kernels.reference import COORD_FLOPS
from repro.kernels.tex2d import DEFAULT_TILE

#: Shard kinds the planner may emit.
SHARD_KINDS = ("rows", "channels")


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of one deformable layer.

    ``kind="rows"``: output rows ``[lo, hi)`` of the layer — a contiguous
    band of the output plane (column-matrix slice along L).
    ``kind="channels"``: per-deformable-group input channels ``[lo, hi)``
    out of ``in_channels // deformable_groups`` — the same channel range
    in every group (column-matrix slice along C·K rows).
    """

    kind: str
    index: int
    count: int
    lo: int
    hi: int

    def __post_init__(self):
        if self.kind not in SHARD_KINDS:
            raise ValueError(f"unknown shard kind {self.kind!r}; "
                             f"choose from {SHARD_KINDS}")
        if not 0 <= self.lo < self.hi:
            raise ValueError(f"empty or inverted shard range "
                             f"[{self.lo}, {self.hi})")

    def descriptor(self) -> Tuple:
        """Hashable identity used in plan-cache and cost-model memo keys."""
        return (self.kind, self.index, self.count, self.lo, self.hi)

    def label(self) -> str:
        return f"{self.kind}[{self.lo}:{self.hi}]"


def band_bounds(total: int, weights: Sequence[float]) -> List[Tuple[int, int]]:
    """Partition ``range(total)`` into contiguous bands ∝ ``weights``.

    Cumulative rounding, so the bands exactly cover ``[0, total)`` with no
    gaps or overlap for any weight vector; a band may come out empty when
    its weight share rounds below one unit (callers skip those).
    """
    if total < 1 or not weights:
        raise ValueError("need total >= 1 and at least one weight")
    wsum = float(sum(weights))
    if wsum <= 0:
        raise ValueError("weights must sum to > 0")
    edges = [0]
    acc = 0.0
    for w in weights[:-1]:
        acc += float(w)
        edges.append(max(edges[-1], min(total, round(total * acc / wsum))))
    edges.append(total)
    return [(edges[i], edges[i + 1]) for i in range(len(weights))]


def enumerate_shards(cfg: LayerConfig, kind: str,
                     weights: Sequence[float]) -> List[Optional[ShardSpec]]:
    """The per-layer shard list for one plan, one entry per participant.

    ``weights`` are the participants' relative compute shares (the
    planner weights by predicted speed so the fast device takes the
    bigger band).  An entry is ``None`` where the participant's share
    rounded to an empty band — that participant simply sits this layer
    out.  The non-None shards always tile the layer exactly.
    """
    total = (cfg.out_height if kind == "rows"
             else cfg.in_channels // cfg.deformable_groups)
    count = len(weights)
    shards: List[Optional[ShardSpec]] = []
    for i, (lo, hi) in enumerate(band_bounds(total, weights)):
        shards.append(ShardSpec(kind, i, count, lo, hi) if hi > lo else None)
    return shards


class ShardGatherPlan:
    """One compiled gather for one (offsets, geometry, shard) triple.

    The shard-sized sibling of :class:`~repro.kernels.fused.FusedPlan`:
    tap tables from :func:`~repro.kernels.fused.tap_tables` (on the
    position slice for a row band, the full positions for a channel
    slice) plus preallocated gather buffers.  :meth:`execute` replays the
    fused gather/blend verbatim on the slice, so the produced columns
    are bitwise the corresponding slice of the full column matrix.
    """

    def __init__(self, cfg: LayerConfig, shard: ShardSpec, fp16: bool,
                 idx: np.ndarray, wts: np.ndarray):
        n, dg = cfg.batch, cfg.deformable_groups
        cpg = cfg.in_channels // dg
        k = cfg.taps
        self.cfg = cfg
        self.shard = shard
        self.fp16 = bool(fp16)
        self.n, self.dg, self.cpg = n, dg, cpg
        self.hw = cfg.height * cfg.width
        if shard.kind == "rows":
            self.c0, self.c1 = 0, cpg
            self.l0 = shard.lo * cfg.out_width
            self.l1 = shard.hi * cfg.out_width
        else:
            if shard.hi > cpg:
                raise ValueError(f"channel shard {shard.label()} exceeds "
                                 f"channels-per-group {cpg}")
            self.c0, self.c1 = shard.lo, shard.hi
            self.l0, self.l1 = 0, cfg.out_pixels
        self.csel = self.c1 - self.c0
        self.lsel = self.l1 - self.l0
        self.s = k * self.lsel
        #: (4, n·dg, S) flat corner texel indices / (4, n·dg, 1, S) weights
        self.idx = idx
        self.wts = wts
        #: destination rows of the full column matrix (channel shards)
        if shard.kind == "channels":
            self.dest_rows = np.concatenate([
                np.arange((g * cpg + self.c0) * k, (g * cpg + self.c1) * k)
                for g in range(dg)])
        else:
            self.dest_rows = None
        self.cols = np.empty((n, dg * self.csel * k, self.lsel),
                             dtype=np.float32)
        self._cols_bg = self.cols.reshape(n * dg, self.csel, self.s)
        self.corner = np.empty((self.csel, self.s), dtype=np.float32)
        self._lock = threading.Lock()

    @property
    def nbytes(self) -> int:
        return (self.idx.nbytes + self.wts.nbytes + self.cols.nbytes
                + self.corner.nbytes)

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Gather/blend this shard's column slice from the full input.

        The buffer is reused across calls — callers must consume (stitch)
        it before executing the same plan again.  Execution is against
        the *full* input feature map: border addressing is resolved in
        the tap tables against full-image extents, so a physically
        cropped input would change semantics; the interconnect model
        charges only the halo rows actually touched (``in_bytes`` of
        :class:`ShardResult`), not what this simulation holds in memory.
        """
        cfg = self.cfg
        if x.shape != cfg.input_shape():
            raise ValueError(f"shard plan compiled for input "
                             f"{cfg.input_shape()}, got {x.shape}")
        xf = np.ascontiguousarray(x, dtype=np.float32).reshape(
            self.n * self.dg, self.cpg, self.hw)
        with self._lock:
            cols, corner = self._cols_bg, self.corner
            for b in range(self.n * self.dg):
                xb, acc = xf[b, self.c0:self.c1], cols[b]
                np.take(xb, self.idx[0, b], axis=1, out=acc, mode="clip")
                acc *= self.wts[0, b]
                for q in (1, 2, 3):
                    np.take(xb, self.idx[q, b], axis=1, out=corner,
                            mode="clip")
                    np.multiply(corner, self.wts[q, b], out=corner)
                    acc += corner
            return self.cols


def build_shard_gather_plan(
        cfg: LayerConfig, fp16: bool, shard: ShardSpec,
        positions: Callable[[], Tuple[np.ndarray, np.ndarray]]
        ) -> ShardGatherPlan:
    """Compile a :class:`ShardGatherPlan` from the full sampling positions.

    A row band slices the position arrays along L before building its
    tables; a channel slice keeps the full positions (all channels of a
    group share them).  Both go through the shared
    :func:`~repro.kernels.fused.tap_tables` step, so the tables are
    bitwise slices of the full-layer tables.
    """
    if cfg.in_channels % cfg.deformable_groups:
        raise ValueError(f"in_channels {cfg.in_channels} not divisible by "
                         f"deformable_groups {cfg.deformable_groups}")
    py, px = positions()
    if shard.kind == "rows":
        if shard.hi > cfg.out_height:
            raise ValueError(f"row shard {shard.label()} exceeds "
                             f"out_height {cfg.out_height}")
        l0, l1 = shard.lo * cfg.out_width, shard.hi * cfg.out_width
        py, px = py[..., l0:l1], px[..., l0:l1]
    idx, wts = tap_tables(py, px, cfg.height, cfg.width, fp16)
    return ShardGatherPlan(cfg, shard, fp16, idx, wts)


@dataclass
class ShardResult:
    """One executed shard: its column slice plus traffic/perf accounting.

    ``cols`` aliases the gather plan's reusable buffer — stitch it before
    the plan runs again.

    The *timing* model prices the distributed realisation of the split:
    each shard runs sampling plus **its own slice of the GEMM** on its
    device (``sample`` + ``gemm``) and ships its output — a band of the
    output plane for a row shard, a full-size partial product for a
    channel shard — so ``out_bytes`` is activation-sized, not
    column-sized.  The *functional* path still stitches column slices
    and contracts once at the coordinator
    (:func:`stitch_columns`), which is what keeps every split
    bit-identical; simulated time comes from KernelStats, never from
    how the simulator itself computes the numbers.

    ``in_bytes`` is the scatter traffic (input slice + offset slice);
    for row bands it counts only the input rows the taps actually touch
    (band + realised halo).
    """

    shard: ShardSpec
    cols: np.ndarray
    dest_rows: Optional[np.ndarray]
    l0: int
    l1: int
    sample: KernelStats
    gemm: KernelStats
    in_bytes: float
    out_bytes: float
    halo_rows: int


def run_shard(x: np.ndarray, offset: np.ndarray, cfg: LayerConfig,
              spec: DeviceSpec, shard: ShardSpec,
              tile: Tuple[int, int] = DEFAULT_TILE,
              fp16_offsets: bool = False,
              plan: Optional[SamplePlan] = None,
              plan_cache: Optional["PlanCache"] = None) -> ShardResult:
    """Execute one shard of a deformable layer on one (simulated) device.

    The functional half gathers the shard's column slice through a
    (plan-cache-memoised) :class:`ShardGatherPlan`; the performance half
    mirrors :func:`~repro.kernels.tex2d.run_tex2d`'s sampling kernel with
    the launch grid, offset stream and counters restricted to the shard.
    A channel slice reuses the full-layer plan-cache trace entry and
    scales counters by its channel fraction; a row band simulates its own
    sliced trace (top-aligned against the full CTA grid — a deterministic
    approximation the planner and executor share).
    """
    plan = plan or SamplePlan()
    ty, tx = tile
    if ty <= 0 or tx <= 0 or ty * tx > spec.max_threads_per_block:
        raise ValueError(f"tile {tile} invalid for {spec.name}")
    n, c, k = cfg.batch, cfg.in_channels, cfg.taps
    dg, cpg = cfg.deformable_groups, cfg.in_channels // cfg.deformable_groups
    h, w = cfg.height, cfg.width

    off = offset
    if fp16_offsets:
        off = offset.astype(np.float16).astype(np.float32)

    _pos: list = []

    def positions() -> Tuple[np.ndarray, np.ndarray]:
        if not _pos:
            from repro.deform.deform_conv import sampling_positions
            _pos.append(sampling_positions(
                off, (h, w), cfg.kernel_size, cfg.stride,
                cfg.padding, cfg.dilation, dg))
        return _pos[0]

    # ------------------------------------------------------------------
    # functional: the shard's slice of the column matrix
    # ------------------------------------------------------------------
    if plan_cache is not None:
        gplan = plan_cache.shard_plan(off, cfg, spec, fp16_offsets, plan,
                                      shard, positions)
    else:
        gplan = build_shard_gather_plan(cfg, fp16_offsets, shard, positions)
    cols = gplan.execute(x)

    csel, lsel = gplan.csel, gplan.lsel
    band_h = shard.hi - shard.lo if shard.kind == "rows" else cfg.out_height
    offset_bytes = 2 if fp16_offsets else 4

    # ------------------------------------------------------------------
    # performance: the sampling kernel restricted to the shard
    # ------------------------------------------------------------------
    concurrent_layers = min(cpg, 4)
    if shard.kind == "rows":
        # The band's own offsets rows → a distinct trace entry keyed by
        # the sliced digest (shape is part of the digest, so it can never
        # alias the full-layer entry).
        sub_off = np.ascontiguousarray(off[:, :, shard.lo:shard.hi, :])
        l0 = shard.lo * cfg.out_width

        def rep() -> Tuple[np.ndarray, np.ndarray]:
            py, px = positions()
            return (py[0, 0][:, l0:l0 + lsel], px[0, 0][:, l0:l0 + lsel])
    else:
        # All channels of a group share the trace — reuse (and warm) the
        # full-layer entry, scaling counters by the channel fraction.
        sub_off = off

        def rep() -> Tuple[np.ndarray, np.ndarray]:
            py, px = positions()
            return (py[0, 0], px[0, 0])

    if plan_cache is not None:
        tex_stats, scale = plan_cache.tex_stats(
            sub_off, cfg, spec, tile, fp16_offsets, plan,
            concurrent_layers, rep)
    else:
        from repro.gpusim.cache import TextureCacheModel
        from repro.gpusim.trace import texture_fetch_trace
        py_r, px_r = rep()
        y0, x0, cta, scale = texture_fetch_trace(py_r, px_r, cfg.out_width,
                                                 tile, plan)
        cache = TextureCacheModel(spec, concurrent_layers=concurrent_layers)
        tex_stats = cache.simulate(y0, x0, cta, h, w)
    tex_stats = tex_stats.scaled(scale * n * dg * csel)

    channel_blocks = max(1, -(-csel // spec.offset_channel_block))
    offs = strided_stats(n * 2 * k * lsel * dg, offset_bytes, spec)
    offs_traffic = offs.bytes_transferred * channel_blocks
    col_bytes = float(n * dg * csel * k * lsel * 4)

    coord_flops = float(n * dg * csel * k * lsel * COORD_FLOPS)
    tiles = -(-band_h // ty) * -(-cfg.out_width // tx)
    launch = LaunchConfig(grid=max(1, tiles * n * dg * channel_blocks),
                          block=ty * tx)
    sample_cost = KernelCost(
        flops=coord_flops,
        dram_bytes=tex_stats.miss_bytes + offs_traffic,
        tex_fetches=float(tex_stats.requests),
        tex_rate_divisor=float(spec.tex_fp32_rate_divisor),
        cta_prologue_cycles=500.0,
        compute_efficiency=0.35,
    )
    name = ("deformable_tex2dpp_shard" if fp16_offsets
            else "deformable_tex2d_shard")
    sample_stats = KernelStats(
        name=name,
        duration_ms=estimate_time_ms(sample_cost, launch, spec),
        flop_count_sp=coord_flops,
        gld_requests=offs.requests,
        gld_transactions=offs.transactions,
        gld_bytes_requested=offs.bytes_requested,
        tex_cache_requests=tex_stats.requests,
        tex_texel_reads=tex_stats.texel_reads,
        tex_cache_hits=tex_stats.hits,
        dram_read_bytes=tex_stats.miss_bytes + offs_traffic,
        dram_write_bytes=col_bytes,
    )

    # ------------------------------------------------------------------
    # the shard's slice of the GEMM, on this shard's device
    # ------------------------------------------------------------------
    if shard.kind == "rows":
        gemm = gemm_cost(cfg.out_channels, n * lsel, c * k)
        out_bytes = float(n * cfg.out_channels * lsel * 4)
    else:
        # partial product over this slice's reduction rows; the output is
        # full-size and summed at the stitch
        gemm = gemm_cost(cfg.out_channels, n * cfg.out_pixels,
                         dg * csel * k)
        out_bytes = float(n * cfg.out_channels * cfg.out_pixels * 4)
    gemm_launch = LaunchConfig(
        grid=max(1, -(-(cfg.out_channels * n * lsel) // (128 * 64))),
        block=256)
    gemm_loads = strided_stats(max(1, int(gemm.dram_bytes // 4)), 4, spec)
    gemm_stats = KernelStats(
        name="implicit_gemm_shard",
        duration_ms=estimate_time_ms(gemm, gemm_launch, spec),
        flop_count_sp=gemm.flops,
        gld_requests=gemm_loads.requests,
        gld_transactions=gemm_loads.transactions,
        gld_bytes_requested=gemm.dram_bytes,
        dram_read_bytes=gemm.dram_bytes,
        dram_write_bytes=out_bytes,
    )

    # ------------------------------------------------------------------
    # interconnect traffic from the actual tap footprint
    # ------------------------------------------------------------------
    off_slice_bytes = float(n * dg * 2 * k * band_h * cfg.out_width
                            * offset_bytes)
    if shard.kind == "rows":
        py, _ = positions()
        band = py[..., gplan.l0:gplan.l1]
        lo_in = int(max(0, np.floor(band.min())))
        hi_in = int(min(h - 1, np.floor(band.max()) + 1)) + 1
        rows_in = max(1, hi_in - lo_in)
        halo_rows = max(0, rows_in - band_h * cfg.stride)
        in_bytes = float(n * c * rows_in * w * 4) + off_slice_bytes
    else:
        halo_rows = 0
        in_bytes = float(n * dg * csel * h * w * 4) + off_slice_bytes

    return ShardResult(shard=shard, cols=cols, dest_rows=gplan.dest_rows,
                       l0=gplan.l0, l1=gplan.l1, sample=sample_stats,
                       gemm=gemm_stats, in_bytes=in_bytes,
                       out_bytes=out_bytes, halo_rows=halo_rows)


def stitch_columns(results: Sequence[ShardResult], weight: np.ndarray,
                   bias: Optional[np.ndarray], cfg: LayerConfig,
                   spec: DeviceSpec) -> OpResult:
    """Reassemble shard column slices into the bit-identical output.

    The coordinator-side half of a sharded layer, functionally: write
    every column slice into one (N, C·K, L) buffer and contract it with
    the *same* full-shape einsum expression — and therefore the same
    reduction order, and the same bits — as the unsharded forward.

    The returned kernel prices what the coordinator of the distributed
    realisation actually runs: a memory-bound **stitch pass** over the
    gathered shard outputs (a concat of output bands for a row split, a
    reduction of partial products for a channel split).  The GEMM time
    itself lives on the shards (:attr:`ShardResult.gemm`), because each
    shard contracts its own slice on its own device.
    """
    n, c, k, l = cfg.batch, cfg.in_channels, cfg.taps, cfg.out_pixels
    cols = np.empty((n, c * k, l), dtype=np.float32)
    covered = 0
    for r in results:
        if r.dest_rows is not None:
            cols[:, r.dest_rows, :] = r.cols
            covered += r.cols.shape[1] * (r.l1 - r.l0)
        else:
            cols[:, :, r.l0:r.l1] = r.cols
            covered += c * k * (r.l1 - r.l0)
    if covered != c * k * l:
        raise ValueError(f"shards cover {covered} of {c * k * l} column "
                         f"elements — the planner emitted a non-tiling "
                         f"split")
    w2 = weight.reshape(cfg.out_channels, c * k)
    out = np.einsum("ok,nkl->nol", w2, cols, optimize=True)
    output = out.reshape(n, cfg.out_channels, cfg.out_height, cfg.out_width)
    if bias is not None:
        output = output + bias.reshape(1, -1, 1, 1)

    out_bytes = float(n * cfg.out_channels * l * 4)
    gathered = float(sum(r.out_bytes for r in results))
    stitch_cost = KernelCost(flops=float(n * cfg.out_channels * l),
                             dram_bytes=gathered + out_bytes)
    stitch_launch = LaunchConfig(
        grid=max(1, -(-(cfg.out_channels * n * l) // (256 * 64))),
        block=256)
    stitch_loads = strided_stats(max(1, int(gathered // 4)), 4, spec)
    stitch_stats = KernelStats(
        name="shard_stitch",
        duration_ms=estimate_time_ms(stitch_cost, stitch_launch, spec),
        flop_count_sp=stitch_cost.flops,
        gld_requests=stitch_loads.requests,
        gld_transactions=stitch_loads.transactions,
        gld_bytes_requested=gathered,
        dram_read_bytes=gathered,
        dram_write_bytes=out_bytes,
    )
    return OpResult(output=output, kernels=[stitch_stats])
