"""Texture-hardware bilinear upsampling — the paper's future-work extension.

The conclusion of the paper: "In future work, we expect to use our approach
to improve other DNN operators by leveraging texture hardware."  Bilinear
upsampling (the FPN top-down path, decoder heads, YOLACT's prototype
upsample) is the most natural candidate: its sampling grid is *regular*,
so the texture unit's hardware interpolation replaces the software lerp
exactly as it does for deformable sampling — without even needing an
offset stream.

Two backends, same contract as the deformable kernels:

* ``run_upsample_reference`` — software bilinear (4 gathered loads + 7
  FLOPs per output pixel);
* ``run_upsample_tex2d``     — one hardware-filtered texture fetch per
  output pixel.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.deform.bilinear import bilinear_sample
from repro.gpusim.cache import TextureCacheModel
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelCost, LaunchConfig, estimate_time_ms
from repro.gpusim.memory import strided_stats
from repro.gpusim.profiler import KernelStats
from repro.gpusim.texture import LayeredTexture2D, TextureDescriptor
from repro.kernels.config import OpResult


def _sample_grid(h: int, w: int, scale: int) -> Tuple[np.ndarray, np.ndarray]:
    """Align-corners=False bilinear source coordinates for ×scale output."""
    oh, ow = h * scale, w * scale
    ys = (np.arange(oh, dtype=np.float32) + 0.5) / scale - 0.5
    xs = (np.arange(ow, dtype=np.float32) + 0.5) / scale - 0.5
    py = np.repeat(ys, ow)
    px = np.tile(xs, oh)
    return py, px


def run_upsample_reference(x: np.ndarray, scale: int, spec: DeviceSpec,
                           compute_output: bool = True) -> OpResult:
    """Software bilinear ×scale upsampling of an (N, C, H, W) map."""
    n, c, h, w = x.shape
    py, px = _sample_grid(h, w, scale)
    output = None
    if compute_output:
        vals = bilinear_sample(x.reshape(n * c, 1, h, w),
                               py[None, None], px[None, None])
        output = vals.reshape(n, c, h * scale, w * scale)

    out_px = h * w * scale * scale
    # Regular grid: reads are well coalesced; 4 corner loads per output.
    loads = strided_stats(n * c * out_px * 4, 4, spec)
    flops = float(n * c * out_px * 7)
    launch = LaunchConfig(grid=max(1, -(-(n * c * out_px) // 256)),
                          block=256)
    cost = KernelCost(flops=flops,
                      dram_bytes=loads.bytes_transferred
                      + n * c * out_px * 4,
                      compute_efficiency=0.35)
    stats = KernelStats(
        name="upsample_bilinear_sw",
        duration_ms=estimate_time_ms(cost, launch, spec),
        flop_count_sp=flops,
        gld_requests=loads.requests,
        gld_transactions=loads.transactions,
        gld_bytes_requested=loads.bytes_requested,
        dram_read_bytes=loads.bytes_transferred,
        dram_write_bytes=float(n * c * out_px * 4),
    )
    return OpResult(output=output, kernels=[stats])


def run_upsample_tex2d(x: np.ndarray, scale: int, spec: DeviceSpec,
                       tile: Tuple[int, int] = (16, 16),
                       compute_output: bool = True) -> OpResult:
    """Texture-hardware ×scale upsampling: one filtered fetch per output."""
    n, c, h, w = x.shape
    py, px = _sample_grid(h, w, scale)
    output = None
    if compute_output:
        tex = LayeredTexture2D.from_feature_map(
            x, desc=TextureDescriptor(address_mode="clamp"), spec=spec)
        layers = np.repeat(np.arange(n * c), py.size)
        vals = tex.fetch_at_pixel_coords(
            layers, np.tile(py, n * c), np.tile(px, n * c))
        output = vals.reshape(n, c, h * scale, w * scale)

    oh, ow = h * scale, w * scale
    out_px = oh * ow
    ty, tx = tile
    cache = TextureCacheModel(spec, concurrent_layers=min(c, 4))
    oy = np.repeat(np.arange(oh), ow) // ty
    ox = np.tile(np.arange(ow), oh) // tx
    cta = oy * (-(-ow // tx)) + ox
    tex_stats = cache.simulate(np.floor(py).astype(np.int64),
                               np.floor(px).astype(np.int64), cta, h, w)
    tex_stats = tex_stats.scaled(n * c)
    tiles = -(-oh // ty) * -(-ow // tx)
    launch = LaunchConfig(grid=max(1, tiles * n * c), block=ty * tx)
    cost = KernelCost(
        flops=float(n * c * out_px * 2),   # coordinate arithmetic only
        dram_bytes=tex_stats.miss_bytes + n * c * out_px * 4,
        tex_fetches=float(tex_stats.requests),
        tex_rate_divisor=float(spec.tex_fp32_rate_divisor),
        cta_prologue_cycles=300.0,
        compute_efficiency=0.35,
    )
    stats = KernelStats(
        name="upsample_bilinear_tex2d",
        duration_ms=estimate_time_ms(cost, launch, spec),
        flop_count_sp=cost.flops,
        tex_cache_requests=tex_stats.requests,
        tex_texel_reads=tex_stats.texel_reads,
        tex_cache_hits=tex_stats.hits,
        dram_read_bytes=tex_stats.miss_bytes,
        dram_write_bytes=float(n * c * out_px * 4),
    )
    return OpResult(output=output, kernels=[stats])
