"""Layer configuration and result types shared by all kernel backends."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.gpusim.profiler import KernelStats
from repro.nn.im2col import conv_output_size


@dataclass(frozen=True)
class LayerConfig:
    """One deformable-conv layer instance, as in the paper's Table II rows."""

    in_channels: int
    out_channels: int
    height: int
    width: int
    kernel_size: int = 3
    stride: int = 1
    padding: int = 1
    dilation: int = 1
    deformable_groups: int = 1
    batch: int = 1

    @property
    def out_height(self) -> int:
        return conv_output_size(self.height, self.kernel_size, self.stride,
                                self.padding, self.dilation)

    @property
    def out_width(self) -> int:
        return conv_output_size(self.width, self.kernel_size, self.stride,
                                self.padding, self.dilation)

    @property
    def taps(self) -> int:
        return self.kernel_size * self.kernel_size

    @property
    def out_pixels(self) -> int:
        return self.out_height * self.out_width

    @property
    def offset_channels(self) -> int:
        return 2 * self.deformable_groups * self.taps

    def offset_shape(self) -> Tuple[int, int, int, int]:
        return (self.batch, self.offset_channels, self.out_height,
                self.out_width)

    def input_shape(self) -> Tuple[int, int, int, int]:
        return (self.batch, self.in_channels, self.height, self.width)

    def weight_shape(self) -> Tuple[int, int, int, int]:
        return (self.out_channels, self.in_channels, self.kernel_size,
                self.kernel_size)

    def label(self) -> str:
        return (f"{self.in_channels}x{self.out_channels}x"
                f"{self.height}x{self.width}")


#: The six layer shapes of the paper's Table II / Table IV — the deformable
#: 3×3 convs of a YOLACT++ ResNet-101 backbone at 550×550 input.
TABLE2_LAYERS = (
    LayerConfig(128, 128, 138, 138),
    LayerConfig(128, 128, 69, 69),
    LayerConfig(256, 256, 69, 69),
    LayerConfig(256, 256, 35, 35),
    LayerConfig(512, 512, 35, 35),
    LayerConfig(512, 512, 18, 18),
)


@dataclass
class OpResult:
    """Output + per-kernel stats of one deformable-op execution."""

    output: Optional[np.ndarray]
    kernels: List[KernelStats] = field(default_factory=list)

    @property
    def latency_ms(self) -> float:
        return sum(k.duration_ms for k in self.kernels)

    @property
    def sample_kernel(self) -> KernelStats:
        """The gather/interpolate kernel (the one Fig. 10 profiles)."""
        return self.kernels[0]

    def merged_stats(self) -> KernelStats:
        total = KernelStats(name="total")
        for k in self.kernels:
            total = total.merged(k)
        total.name = "total"
        return total


def synth_offsets(cfg: LayerConfig, sigma: float = 2.0,
                  bound: Optional[float] = None, seed: int = 0,
                  correlation: float = 4.0) -> np.ndarray:
    """Synthetic learned offsets with realistic magnitude *and smoothness*.

    Trained DCN offsets are zero-mean with σ of a couple of pixels and are
    spatially smooth (they are produced by a convolution over smooth
    features) — i.i.d. noise would be an adversarial, unrealistic access
    pattern.  ``correlation`` is the spatial correlation length in pixels;
    ``bound`` applies the bounded-deformation clamp of Section III-A-c.
    """
    from scipy.ndimage import gaussian_filter

    rng = np.random.default_rng(seed)
    off = rng.normal(0.0, 1.0, size=cfg.offset_shape()).astype(np.float32)
    if correlation > 0:
        off = gaussian_filter(off, sigma=(0, 0, correlation, correlation),
                              mode="nearest")
    std = off.std()
    if std > 0:
        off *= sigma / std
    if bound is not None:
        off = np.clip(off, -bound, bound)
    return off.astype(np.float32)
