"""tex2D / tex2D++ deformable kernels — hardware bilinear via layered textures.

The DEFCON inference path (paper Section III-B):

* the input feature map is staged into a **2-D layered texture** (one layer
  per channel, batch folded into the layer index);
* CTAs tile the output plane; every thread issues one ``tex2DLayered``
  fetch per tap — the texture unit performs the bilinear blend in hardware
  (1.8 fixed-point weights) so the kernel's own FLOPs drop to coordinate
  arithmetic (~4× fewer — Fig. 10);
* out-of-bounds taps are handled by border addressing (zero), removing the
  branch divergence of the software kernel;
* the only global-memory traffic is the perfectly coalesced offset stream —
  GLD efficiency is 100 % by construction (Fig. 10);
* **tex2D++** stores the offsets in fp16: the texture unit only keeps 8
  fractional bits, so no accuracy is lost while the offset-load bandwidth
  halves (the paper's "reduced-bit bilinear interpolation").

The functional output uses the fixed-point filtering model of
:mod:`repro.gpusim.texture`, so tex2D's small numerical deviation from the
fp32 reference is faithfully reproduced (and bounded by tests).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.deform.deform_conv import sampling_positions
from repro.gpusim.cache import TextureCacheModel
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import (KernelCost, LaunchConfig, estimate_time_ms,
                                 gemm_cost)
from repro.gpusim.memory import strided_stats
from repro.gpusim.profiler import KernelStats
from repro.gpusim.texture import LayeredTexture2D, TextureDescriptor
from repro.gpusim.trace import SamplePlan, texture_fetch_trace
from repro.kernels.config import LayerConfig, OpResult
from repro.kernels.fused import validate_execution
from repro.kernels.reference import COORD_FLOPS

#: Default CTA tile (output pixels per block) — overridden by the autotuner.
DEFAULT_TILE = (16, 16)


def run_tex2d(x: np.ndarray, offset: np.ndarray, weight: np.ndarray,
              bias: Optional[np.ndarray], cfg: LayerConfig, spec: DeviceSpec,
              tile: Tuple[int, int] = DEFAULT_TILE, fp16_offsets: bool = False,
              plan: Optional[SamplePlan] = None,
              compute_output: bool = True,
              plan_cache: Optional["PlanCache"] = None,
              execution: str = "eager",
              session: Optional[str] = None) -> OpResult:
    """Execute the texture-hardware deformable conv (tex2D / tex2D++).

    ``fp16_offsets=True`` selects the tex2D++ variant.  ``plan_cache``
    (a :class:`~repro.kernels.plancache.PlanCache`) memoises the fetch
    trace and cache simulation across calls with identical offsets,
    geometry and tile — the returned kernel stats are bit-identical to
    the uncached path.

    ``execution="fused"`` (requires a plan cache) runs the functional
    forward through a compiled :class:`~repro.kernels.fused.FusedPlan`
    memoised on the same plan-cache entry: precomputed tap coordinates
    and fixed-point blend weights, preallocated buffers, one gather →
    blend → GEMM pass.  Outputs and kernel stats are bit-identical to
    eager execution (see docs/performance.md).

    ``session`` names the video stream this call belongs to; on a plan
    cache with a ``delta_bound`` it unlocks delta-keyed lookups — an
    exact-digest miss within the bound of the session's anchor reuses the
    anchor's trace simulation and fused buffers while the blend weights
    are recomputed for this frame, so functional outputs stay
    bit-identical to a cold miss (see docs/streaming.md).
    """
    plan = plan or SamplePlan()
    validate_execution(execution, plan_cache)
    ty, tx = tile
    if ty <= 0 or tx <= 0 or ty * tx > spec.max_threads_per_block:
        raise ValueError(f"tile {tile} invalid for {spec.name}")
    n, c, k, l = cfg.batch, cfg.in_channels, cfg.taps, cfg.out_pixels
    dg, cpg = cfg.deformable_groups, cfg.in_channels // cfg.deformable_groups

    off = offset
    if fp16_offsets:
        off = offset.astype(np.float16).astype(np.float32)

    # Sampling positions are needed by the functional path always, but by
    # the performance model only on a plan-cache miss — compute lazily so
    # steady-state stats-only calls skip them entirely.
    _pos: list = []

    def positions() -> Tuple[np.ndarray, np.ndarray]:
        if not _pos:
            _pos.append(sampling_positions(
                off, (cfg.height, cfg.width), cfg.kernel_size, cfg.stride,
                cfg.padding, cfg.dilation, dg))
        return _pos[0]

    # ------------------------------------------------------------------
    # functional result through the texture unit
    # ------------------------------------------------------------------
    output = None
    if compute_output and execution == "fused":
        fplan = plan_cache.fused_plan(off, cfg, spec, fp16_offsets, plan,
                                      positions, session=session)
        output = fplan.execute(x, weight, bias)
    elif compute_output:
        py, px = positions()
        desc = TextureDescriptor(address_mode="border", filter_mode="linear",
                                 fp16_coords=fp16_offsets)
        tex = LayeredTexture2D.from_feature_map(x, desc=desc, spec=spec)
        # layer index of (n, g, cpg_idx): n*C + g*cpg + c_idx
        layer = (np.arange(n)[:, None, None] * c
                 + np.arange(dg)[None, :, None] * cpg
                 + np.arange(cpg)[None, None, :])  # (N, dg, cpg)
        kl = k * py.shape[-1]
        py_f = py.reshape(n, dg, 1, kl)
        px_f = px.reshape(n, dg, 1, kl)
        vals = tex.fetch_at_pixel_coords(layer[..., None], py_f, px_f)
        cols = vals.reshape(n, dg, cpg, k, l).reshape(n, c * k, l)
        w2 = weight.reshape(cfg.out_channels, c * k)
        out = np.einsum("ok,nkl->nol", w2, cols, optimize=True)
        output = out.reshape(n, cfg.out_channels, cfg.out_height,
                             cfg.out_width)
        if bias is not None:
            output = output + bias.reshape(1, -1, 1, 1)

    # ------------------------------------------------------------------
    # performance model: kernel 1 — tex2d sampling
    # ------------------------------------------------------------------
    concurrent_layers = min(cpg, 4)
    if plan_cache is not None:
        # Key on the *quantised* offsets (``off``) — the functional path
        # samples through them, so two fp32 offset tensors that quantise
        # to the same fp16 values must share one cache entry and one
        # trace build (they are the same tex2D++ launch).
        tex_stats, scale = plan_cache.tex_stats(
            off, cfg, spec, tile, fp16_offsets, plan, concurrent_layers,
            lambda: (positions()[0][0, 0], positions()[1][0, 0]),
            session=session)
    else:
        py, px = positions()
        y0, x0, cta, scale = texture_fetch_trace(py[0, 0], px[0, 0],
                                                 cfg.out_width, tile, plan)
        cache = TextureCacheModel(spec, concurrent_layers=concurrent_layers)
        tex_stats = cache.simulate(y0, x0, cta, cfg.height, cfg.width)
    # One representative (batch, group, channel); all channels share the
    # trace, so counters scale by n·dg·cpg (cache behaviour per layer is
    # identical — each layer's lines are distinct but isomorphic).
    tex_stats = tex_stats.scaled(scale * n * dg * cpg)

    # Channel blocks are spread across the grid's z dimension so channel
    # count contributes parallelism, not per-CTA serialisation.
    channel_blocks = max(1, -(-cpg // spec.offset_channel_block))

    # Offsets are re-read once per channel block a CTA processes; fp16
    # storage (tex2D++) halves this stream — the paper's bandwidth saving.
    # The re-read count is the *ceil* block count, matching the launch
    # grid: a partial trailing block still issues a full offset read.
    offset_bytes = 2 if fp16_offsets else 4
    offs = strided_stats(n * 2 * k * l * dg, offset_bytes, spec)
    offs_traffic = offs.bytes_transferred * channel_blocks
    col_bytes = float(n * c * k * l * 4)

    coord_flops = float(n * c * k * l * COORD_FLOPS)
    tiles = -(-cfg.out_height // ty) * -(-cfg.out_width // tx)
    launch = LaunchConfig(grid=max(1, tiles * n * dg * channel_blocks),
                          block=ty * tx)
    sample_cost = KernelCost(
        flops=coord_flops,
        dram_bytes=tex_stats.miss_bytes + offs_traffic,
        tex_fetches=float(tex_stats.requests),
        tex_rate_divisor=float(spec.tex_fp32_rate_divisor),
        cta_prologue_cycles=500.0,
        compute_efficiency=0.35,
    )
    name = "deformable_tex2dpp" if fp16_offsets else "deformable_tex2d"
    sample_stats = KernelStats(
        name=name,
        duration_ms=estimate_time_ms(sample_cost, launch, spec),
        flop_count_sp=coord_flops,
        gld_requests=offs.requests,
        gld_transactions=offs.transactions,
        gld_bytes_requested=offs.bytes_requested,
        tex_cache_requests=tex_stats.requests,
        tex_texel_reads=tex_stats.texel_reads,
        tex_cache_hits=tex_stats.hits,
        dram_read_bytes=tex_stats.miss_bytes + offs_traffic,
        dram_write_bytes=col_bytes,
    )

    # ------------------------------------------------------------------
    # kernel 2 — implicit GEMM (identical to the reference backend)
    # ------------------------------------------------------------------
    gemm = gemm_cost(cfg.out_channels, n * l, c * k)
    gemm_launch = LaunchConfig(
        grid=max(1, -(-(cfg.out_channels * n * l) // (128 * 64))), block=256)
    gemm_loads = strided_stats(int(gemm.dram_bytes // 4), 4, spec)
    gemm_stats = KernelStats(
        name="implicit_gemm",
        duration_ms=estimate_time_ms(gemm, gemm_launch, spec),
        flop_count_sp=gemm.flops,
        gld_requests=gemm_loads.requests,
        gld_transactions=gemm_loads.transactions,
        gld_bytes_requested=gemm.dram_bytes,
        dram_read_bytes=gemm.dram_bytes,
    )
    return OpResult(output=output, kernels=[sample_stats, gemm_stats])


def run_tex2dpp(x: np.ndarray, offset: np.ndarray, weight: np.ndarray,
                bias: Optional[np.ndarray], cfg: LayerConfig,
                spec: DeviceSpec, tile: Tuple[int, int] = DEFAULT_TILE,
                plan: Optional[SamplePlan] = None,
                compute_output: bool = True,
                plan_cache: Optional["PlanCache"] = None,
                execution: str = "eager",
                session: Optional[str] = None) -> OpResult:
    """The tex2D++ variant: fp16 offsets, half the offset bandwidth."""
    return run_tex2d(x, offset, weight, bias, cfg, spec, tile=tile,
                     fp16_offsets=True, plan=plan,
                     compute_output=compute_output, plan_cache=plan_cache,
                     execution=execution, session=session)
