"""Deformable-convolution kernel backends over the GPU simulator.

Three backends mirror the paper's comparison:

* ``pytorch`` — software bilinear interpolation, global-memory gathers
  (:func:`run_reference`);
* ``tex2d`` — layered-texture fetches with hardware bilinear filtering
  (:func:`run_tex2d`);
* ``tex2dpp`` — tex2D plus fp16 offset storage (:func:`run_tex2dpp`).

Each run returns the functional output and nvprof-style per-kernel stats.
"""

from repro.kernels.config import (LayerConfig, OpResult, TABLE2_LAYERS,
                                  synth_offsets)
from repro.kernels.dispatch import BACKENDS, run_deform_op, run_layer_all_backends
from repro.kernels.fused import (EXECUTION_MODES, FusedPlan, build_fused_plan,
                                 validate_execution)
from repro.kernels.plancache import PlanCache, PlanCacheStats, offsets_digest
from repro.kernels.reference import run_reference
from repro.kernels.tex2d import DEFAULT_TILE, run_tex2d, run_tex2dpp
from repro.kernels.tiling import (CANDIDATE_EXTENTS, enumerate_tiles,
                                  heuristic_tile, tile_footprint_bytes)
from repro.kernels.upsample import run_upsample_reference, run_upsample_tex2d

__all__ = [
    "LayerConfig", "OpResult", "TABLE2_LAYERS", "synth_offsets",
    "BACKENDS", "run_deform_op", "run_layer_all_backends",
    "EXECUTION_MODES", "FusedPlan", "build_fused_plan", "validate_execution",
    "PlanCache", "PlanCacheStats", "offsets_digest",
    "run_reference", "run_tex2d", "run_tex2dpp", "DEFAULT_TILE",
    "enumerate_tiles", "heuristic_tile", "tile_footprint_bytes",
    "CANDIDATE_EXTENTS",
    "run_upsample_reference", "run_upsample_tex2d",
]
