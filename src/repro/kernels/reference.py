"""The baseline ("PyTorch") deformable-conv kernel — software bilinear.

Models mmcv/torchvision's two-kernel CUDA lowering:

1. ``deformable_im2col``: one thread per (channel, output pixel); each
   thread walks the K taps, loads the offsets, performs a *software*
   bilinear interpolation (four scattered global loads + 4 muls + 3 adds)
   and writes a column entry.  Irregular offsets wreck coalescing here —
   this kernel is what Fig. 10's low GLD efficiency belongs to.
2. an implicit GEMM of the columns with the filter (cuBLAS-grade).

The functional output is the exact fp32 software-interpolation result.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.deform.deform_conv import deform_im2col_arrays, sampling_positions
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import (KernelCost, LaunchConfig, estimate_time_ms,
                                 gemm_cost)
from repro.gpusim.memory import strided_stats
from repro.gpusim.profiler import KernelStats
from repro.gpusim.trace import SamplePlan, deform_input_coalescing
from repro.kernels.config import LayerConfig, OpResult

#: FLOPs per tap for software bilinear: 4 mul + 3 add (paper Section II-B).
SOFTWARE_INTERP_FLOPS = 7
#: FLOPs per tap to form the fractional coordinates (offset add, floor/frac).
COORD_FLOPS = 2


def run_reference(x: np.ndarray, offset: np.ndarray, weight: np.ndarray,
                  bias: Optional[np.ndarray], cfg: LayerConfig,
                  spec: DeviceSpec, plan: Optional[SamplePlan] = None,
                  compute_output: bool = True) -> OpResult:
    """Execute the baseline deformable conv; returns output + kernel stats."""
    plan = plan or SamplePlan()
    n, c, k, l = cfg.batch, cfg.in_channels, cfg.taps, cfg.out_pixels
    cpg = c // cfg.deformable_groups

    # ------------------------------------------------------------------
    # functional result (exact software bilinear + GEMM)
    # ------------------------------------------------------------------
    output = None
    if compute_output:
        cols, _ = deform_im2col_arrays(
            x, offset, cfg.kernel_size, cfg.stride, cfg.padding,
            cfg.dilation, cfg.deformable_groups)
        w2 = weight.reshape(cfg.out_channels, c * k)
        out = np.einsum("ok,nkl->nol", w2, cols, optimize=True)
        output = out.reshape(n, cfg.out_channels, cfg.out_height,
                             cfg.out_width)
        if bias is not None:
            output = output + bias.reshape(1, -1, 1, 1)

    # ------------------------------------------------------------------
    # performance model: kernel 1 — deformable_im2col
    # ------------------------------------------------------------------
    py, px = sampling_positions(offset, (cfg.height, cfg.width),
                                cfg.kernel_size, cfg.stride, cfg.padding,
                                cfg.dilation, cfg.deformable_groups)
    # One representative deformable group; groups have iid patterns so the
    # counters scale linearly in dg (and in batch).
    gather = deform_input_coalescing(py[0, 0], px[0, 0], cfg.height,
                                     cfg.width, channels=cpg, dtype_bytes=4,
                                     spec=spec, plan=plan)
    gather = gather.scaled(cfg.deformable_groups * n)

    # Offset loads: 2K values per output pixel per group.  Every channel's
    # thread re-reads the same offsets; the L2 absorbs the re-reads down to
    # roughly one pass per channel block.
    offs = strided_stats(n * 2 * k * l * cfg.deformable_groups, 4, spec)
    offs_l2 = offs.bytes_transferred * (cpg / spec.offset_channel_block)
    # Column stores: C·K·L floats (write traffic; no gld counters).
    col_bytes = float(n * c * k * l * 4)

    # Traffic split: all gathered sectors cross the L2 crossbar (at its
    # bandwidth, derated by the scattered-access penalty); the DRAM only
    # sees the compulsory input footprint times a bounded tap-reuse factor.
    input_footprint = float(n * c * cfg.height * cfg.width * 4)
    gather_l2 = gather.bytes_transferred / max(spec.scattered_penalty, 1e-6)
    gather_dram = min(gather.bytes_transferred,
                      input_footprint * spec.gather_dram_reuse)

    interp_flops = n * c * k * l * (SOFTWARE_INTERP_FLOPS + COORD_FLOPS)
    threads = n * c * l  # one thread per (channel, output pixel)
    launch = LaunchConfig(grid=max(1, -(-threads // 256)), block=256)
    sample_cost = KernelCost(
        flops=float(interp_flops),
        dram_bytes=gather_dram + offs.bytes_transferred,
        l2_bytes=gather_l2 + offs_l2,
        cta_prologue_cycles=300.0,
        compute_efficiency=0.25,  # scalar gather/interpolate code
    )
    # The stock framework path pays ATen dispatch + auxiliary launches the
    # fused DEFCON kernels avoid (dominant for small layers on Jetson).
    framework_ms = (spec.framework_extra_launches
                    * spec.kernel_launch_overhead_us / 1e3)
    sample_stats = KernelStats(
        name="deformable_im2col",
        duration_ms=estimate_time_ms(sample_cost, launch, spec) + framework_ms,
        flop_count_sp=float(interp_flops),
        gld_requests=gather.requests + offs.requests,
        gld_transactions=gather.transactions + offs.transactions,
        gld_bytes_requested=gather.bytes_requested + offs.bytes_requested,
        dram_read_bytes=gather.bytes_transferred + offs.bytes_transferred,
        dram_write_bytes=col_bytes,
    )

    # ------------------------------------------------------------------
    # kernel 2 — implicit GEMM (identical across backends)
    # ------------------------------------------------------------------
    gemm = gemm_cost(cfg.out_channels, n * l, c * k)
    gemm_launch = LaunchConfig(
        grid=max(1, -(-(cfg.out_channels * n * l) // (128 * 64))), block=256)
    gemm_stats = KernelStats(
        name="implicit_gemm",
        duration_ms=estimate_time_ms(gemm, gemm_launch, spec),
        flop_count_sp=gemm.flops,
        gld_requests=strided_stats(int(gemm.dram_bytes // 4), 4, spec).requests,
        gld_transactions=strided_stats(int(gemm.dram_bytes // 4), 4,
                                       spec).transactions,
        gld_bytes_requested=gemm.dram_bytes,
        dram_read_bytes=gemm.dram_bytes,
    )
    return OpResult(output=output, kernels=[sample_stats, gemm_stats])
