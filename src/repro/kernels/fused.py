"""Fused lazy-execution plans for the texture hot path.

The eager functional path of :func:`~repro.kernels.tex2d.run_tex2d`
re-derives everything per call: sampling positions, a freshly staged
:class:`~repro.gpusim.texture.LayeredTexture2D`, four fancy-indexed
corner gathers with address-mode resolution, a column reshape, and an
einsum GEMM — each step allocating new temporaries, even when the plan
cache already proves the offsets and geometry are identical to the
previous step (the steady state of serving).

A :class:`FusedPlan` compiles the offset-dependent half of that work
once per (offset digest, geometry, device, fp16) plan-cache entry:

* **flattened tap coordinates** — the four bilinear corner texel indices
  per tap, address mode already resolved to flat ``iy * W + jx`` form;
* **fixed-point blend weights** — the 1.8 fixed-point corner weights
  with the out-of-bounds (border) mask folded in, via the same
  :func:`~repro.gpusim.texture.linear_filter_taps` helper the eager
  fetch uses, so the numerics cannot drift;
* **preallocated buffers** — a per-corner gather buffer, the im2col
  column buffer, and the GEMM output buffer, reused across calls.

:meth:`FusedPlan.execute` then runs offset-quantise → gather → blend →
GEMM as one preplanned pass writing into those buffers: four
``np.take`` gathers blended in place into the column buffer and a
single einsum contraction (the *same* ``"ok,nkl->nol"`` expression as
the eager path, so the contraction order — and therefore every output
bit — is identical).  The conformance suite's plan-cache-transparency
check and ``tests/test_fused.py`` pin bit-identical outputs and
KernelStats against eager execution.

Plans hang off the :class:`~repro.kernels.plancache.PlanCache` trace
entry for their offsets, sharing one LRU lifetime and one digest key
with the memoised fetch trace; eviction drops the buffers and the next
call rebuilds cleanly.  Execution is serialised per plan (the buffers
are shared mutable state), so one plan may be driven from the serving
worker thread and the caller's thread concurrently.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.texture import linear_filter_taps
from repro.kernels.config import LayerConfig

#: Execution modes understood by the texture backends.
EXECUTION_MODES = ("eager", "fused")


def validate_execution(execution: str, plan_cache) -> None:
    """Reject unknown modes and fused execution without a plan cache."""
    if execution not in EXECUTION_MODES:
        raise ValueError(f"unknown execution mode {execution!r}; "
                         f"choose from {EXECUTION_MODES}")
    if execution == "fused" and plan_cache is None:
        raise ValueError("fused execution requires a plan_cache — the "
                         "FusedPlan lives on the PlanCache trace entry "
                         "(see docs/performance.md)")


class FusedPlan:
    """One compiled tex2D/tex2D++ forward for a fixed (offsets, geometry).

    Built from the full sampling-position arrays by
    :func:`build_fused_plan`; executed against per-call ``(x, weight,
    bias)`` tensors by :meth:`execute`.  All offset-dependent work —
    coordinate quantisation, address-mode resolution, fixed-point blend
    weights — happened at build time; execute only gathers, blends and
    contracts.
    """

    def __init__(self, cfg: LayerConfig, fp16: bool,
                 idx: np.ndarray, wts: np.ndarray):
        n, dg = cfg.batch, cfg.deformable_groups
        c, k, l = cfg.in_channels, cfg.taps, cfg.out_pixels
        self.cfg = cfg
        self.fp16 = bool(fp16)
        self.n, self.dg, self.cpg = n, dg, c // dg
        self.kl = k * l
        self.hw = cfg.height * cfg.width
        #: (4, n·dg, K·L) flat corner texel indices into one layer
        self.idx = idx
        #: (4, n·dg, 1, K·L) blend weights, border mask folded in
        self.wts = wts
        # Preallocated execution buffers, reused across calls.  ``cols``
        # is the im2col column matrix the GEMM consumes; viewed per
        # (batch, group) for the blend.  ``corner`` stages one corner's
        # gathered texels; ``out`` receives the einsum contraction.
        self.cols = np.empty((n, c * k, l), dtype=np.float32)
        self._cols_bg = self.cols.reshape(n * dg, self.cpg, self.kl)
        self.corner = np.empty((self.cpg, self.kl), dtype=np.float32)
        self.out = np.empty((n, cfg.out_channels, l), dtype=np.float32)
        #: buffers are shared mutable state — one execution at a time
        self._lock = threading.Lock()

    @property
    def nbytes(self) -> int:
        """Resident bytes of the precomputed state + reusable buffers."""
        return (self.idx.nbytes + self.wts.nbytes + self.cols.nbytes
                + self.corner.nbytes + self.out.nbytes)

    def retarget(self, idx: np.ndarray, wts: np.ndarray) -> "FusedPlan":
        """Swap in freshly computed tap tables, keeping the buffers.

        The delta-keyed streaming path of the plan cache recomputes the
        corner indices and fixed-point blend weights for every frame (the
        exactness guarantee) but reuses this plan's preallocated
        gather/column/output buffers across the stream.  Taken under the
        execution lock, so an in-flight :meth:`execute` never sees a
        half-swapped table pair.
        """
        if idx.shape != self.idx.shape or wts.shape != self.wts.shape:
            raise ValueError(
                f"retarget tables {idx.shape}/{wts.shape} do not match the "
                f"compiled plan {self.idx.shape}/{self.wts.shape} — the "
                f"session anchor should have pinned the geometry")
        with self._lock:
            self.idx = idx
            self.wts = wts
        return self

    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray, weight: np.ndarray,
                bias: Optional[np.ndarray]) -> np.ndarray:
        """Run the fused forward; returns a fresh (N, OC, OH, OW) array.

        Bit-identical to the eager texture path: the gather/blend
        replays :meth:`LayeredTexture2D.fetch`'s corner accumulation
        order and the contraction is the same einsum expression.
        """
        cfg = self.cfg
        if x.shape != cfg.input_shape():
            raise ValueError(f"fused plan compiled for input "
                             f"{cfg.input_shape()}, got {x.shape}")
        xf = np.ascontiguousarray(x, dtype=np.float32).reshape(
            self.n * self.dg, self.cpg, self.hw)
        w2 = weight.reshape(cfg.out_channels, cfg.in_channels * cfg.taps)
        with self._lock:
            cols, corner = self._cols_bg, self.corner
            for b in range(self.n * self.dg):
                xb, acc = xf[b], cols[b]
                # corner 0 lands straight in the column buffer; corners
                # 1-3 stage through ``corner`` and accumulate — the same
                # ((t0 + t1) + t2) + t3 order as the eager fetch.
                np.take(xb, self.idx[0, b], axis=1, out=acc, mode="clip")
                acc *= self.wts[0, b]
                for q in (1, 2, 3):
                    np.take(xb, self.idx[q, b], axis=1, out=corner,
                            mode="clip")
                    np.multiply(corner, self.wts[q, b], out=corner)
                    acc += corner
            np.einsum("ok,nkl->nol", w2, self.cols, optimize=True,
                      out=self.out)
            out4 = self.out.reshape(self.n, cfg.out_channels,
                                    cfg.out_height, cfg.out_width)
            if bias is not None:
                return out4 + bias.reshape(1, -1, 1, 1)
            return out4.copy()


def build_fused_plan(cfg: LayerConfig, spec: DeviceSpec, fp16: bool,
                     positions: Callable[[], Tuple[np.ndarray, np.ndarray]]
                     ) -> FusedPlan:
    """Compile a :class:`FusedPlan` from the full sampling positions.

    ``positions`` supplies the (N, dg, K, L) fractional sampling
    positions (already fp16-quantised offsets for tex2D++).  The corner
    indices and weights reproduce the eager path exactly: pixel → texture
    coordinate shift, fp16 coordinate quantisation, then
    :func:`~repro.gpusim.texture.linear_filter_taps`.
    """
    n, dg = cfg.batch, cfg.deformable_groups
    h, w = cfg.height, cfg.width
    if cfg.in_channels % dg:
        raise ValueError(f"in_channels {cfg.in_channels} not divisible by "
                         f"deformable_groups {dg}")
    max_h, max_w, max_layers = spec.max_texture_extent
    if h > max_h or w > max_w or n * cfg.in_channels > max_layers:
        raise ValueError(
            f"texture extent {(n * cfg.in_channels, h, w)} exceeds device "
            f"limit {spec.max_texture_extent} — partition the mini-batch "
            f"(paper Section III-B)")
    py, px = positions()
    idx, wts = tap_tables(py, px, h, w, fp16)
    return FusedPlan(cfg, fp16, idx, wts)


def tap_tables(py: np.ndarray, px: np.ndarray, h: int, w: int,
               fp16: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Corner index/weight tables for arbitrary (N, dg, ...) positions.

    The one compilation step shared by :func:`build_fused_plan` (full
    layer) and the per-shard gather plans of
    :mod:`repro.kernels.shards` (a row-band or channel slice of the same
    positions): pixel coords → texture coords (+0.5), the tex2D++ fp16
    coordinate quantisation, then
    :func:`~repro.gpusim.texture.linear_filter_taps` — exactly
    ``fetch_at_pixel_coords`` + ``fetch``.  Because every operation is
    elementwise, tables built from a *slice* of the positions are
    bitwise equal to the same slice of the full tables, which is what
    makes stitched shard outputs bit-identical to the unsharded forward.

    Returns ``idx`` of shape (4, N·dg, S) — flat corner texel indices —
    and ``wts`` of shape (4, N·dg, 1, S), the fixed-point blend weights
    with the border mask folded in, where S flattens every trailing
    position axis.
    """
    n, dg = py.shape[0], py.shape[1]
    s = int(np.prod(py.shape[2:], dtype=np.int64))
    y = (py.reshape(n, dg, 1, s) + 0.5).astype(np.float32)
    x = (px.reshape(n, dg, 1, s) + 0.5).astype(np.float32)
    if fp16:
        y = y.astype(np.float16).astype(np.float32)
        x = x.astype(np.float16).astype(np.float32)
    taps = linear_filter_taps(y, x, h, w, "border", False)
    idx = np.stack([(iy * w + jx).reshape(n * dg, s)
                    for iy, jx, _ in taps])
    wts = np.stack([wq.astype(np.float32, copy=False).reshape(
        n * dg, 1, s) for _, _, wq in taps])
    return idx, wts
