"""Fault-injection harness for the fleet (crash, latency spike, wedge).

Faults are *scripted* against the simulated clock, so every fault run is
reproducible: a :class:`FaultSpec` names a worker, a kind and an active
``[start_ms, end_ms)`` window on the scheduler's clock.

* ``crash``   — the worker's primary engine raises
  :class:`WorkerCrashed` on every call inside the window (drives the
  circuit breaker, retry-with-rerouting and graceful degradation);
* ``latency`` — the worker's simulated batch latency is multiplied by
  ``factor`` inside the window (a slow worker; cost-model routing steers
  new work away as its backlog stretches);
* ``wedge``   — the worker hangs: the engine call raises
  :class:`WorkerWedged`, and the scheduler charges the worker its
  ``wedge_timeout_ms`` of simulated time before failing the batch over
  to the retry path (a hung worker costs detection time, not forever).

Faults apply to the worker's **primary** engine only — the reference
pytorch fallback models the known-good path a degraded worker retreats
to, which is exactly the recovery story the scheduler is exercising.

:class:`FaultyEngine` is the injection point: a transparent proxy
installed between the worker's batcher and its engine, so engine
failures flow through the *real* serving failure path
(batcher futures + :class:`~repro.serve.metrics.ServingMetrics`).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence


class WorkerCrashed(RuntimeError):
    """Injected crash of a fleet worker's engine."""


class WorkerWedged(RuntimeError):
    """Injected hang of a fleet worker (detected via wedge timeout)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: ``kind`` on ``worker`` during ``[start, end)``."""

    worker: str
    kind: str                       # "crash" | "latency" | "wedge"
    start_ms: float = 0.0
    end_ms: float = math.inf
    factor: float = 4.0             # latency multiplier (kind="latency")

    KINDS = ("crash", "latency", "wedge")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {self.KINDS}")
        if self.end_ms <= self.start_ms:
            raise ValueError("fault window must satisfy start_ms < end_ms")
        if self.kind == "latency" and self.factor <= 1.0:
            raise ValueError("latency fault factor must be > 1")

    def active(self, now_ms: float) -> bool:
        return self.start_ms <= now_ms < self.end_ms


_FAULT_RE = re.compile(
    r"^(?P<worker>[^=]+)=(?P<kind>crash|latency|wedge)"
    r"(?::(?P<start>[0-9.]+)-(?P<end>[0-9.]+|inf))?"
    r"(?::x(?P<factor>[0-9.]+))?$")


def parse_fault(text: str) -> FaultSpec:
    """Parse ``WORKER=KIND[:START-END][:xFACTOR]`` (times in sim ms).

    Examples: ``w1-rtx-2080ti=crash``, ``w0-jetson=latency:0-50:x8``,
    ``w1=wedge:10-inf``.
    """
    m = _FAULT_RE.match(text.strip())
    if m is None:
        raise ValueError(
            f"cannot parse fault {text!r}; expected "
            "WORKER=KIND[:START-END][:xFACTOR] with KIND in "
            f"{FaultSpec.KINDS}")
    kwargs = dict(worker=m.group("worker"), kind=m.group("kind"))
    if m.group("start") is not None:
        kwargs["start_ms"] = float(m.group("start"))
        kwargs["end_ms"] = float(m.group("end"))
    if m.group("factor") is not None:
        kwargs["factor"] = float(m.group("factor"))
    return FaultSpec(**kwargs)


class FaultInjector:
    """Evaluates the scripted faults against a worker + sim time."""

    def __init__(self, faults: Sequence[FaultSpec] = (), registry=None):
        self.faults: List[FaultSpec] = list(faults)
        self._counter = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> "FaultInjector":
        self._counter = registry.counter(
            "fleet_faults_injected",
            help="fault activations by worker and kind")
        return self

    def _active(self, worker: str, now_ms: float,
                kind: str) -> Iterable[FaultSpec]:
        return (f for f in self.faults
                if f.worker == worker and f.kind == kind
                and f.active(now_ms))

    def _count(self, worker: str, kind: str) -> None:
        if self._counter is not None:
            self._counter.inc(worker=worker, kind=kind)

    def crash_active(self, worker: str, now_ms: float) -> bool:
        return next(iter(self._active(worker, now_ms, "crash")), None) \
            is not None

    def wedge_active(self, worker: str, now_ms: float) -> bool:
        return next(iter(self._active(worker, now_ms, "wedge")), None) \
            is not None

    def latency_factor(self, worker: str, now_ms: float) -> float:
        factor = 1.0
        for f in self._active(worker, now_ms, "latency"):
            factor *= f.factor
        if factor != 1.0:
            self._count(worker, "latency")
        return factor

    def check(self, worker: str, now_ms: float) -> None:
        """Raise the active crash/wedge fault for ``worker``, if any."""
        if self.wedge_active(worker, now_ms):
            self._count(worker, "wedge")
            raise WorkerWedged(f"worker {worker} wedged (injected)")
        if self.crash_active(worker, now_ms):
            self._count(worker, "crash")
            raise WorkerCrashed(f"worker {worker} crashed (injected)")


class FaultyEngine:
    """Transparent engine proxy consulting the injector on every call.

    Sits between a worker's :class:`~repro.serve.RequestBatcher` and its
    primary engine, so injected failures exercise the genuine batcher
    failure path (futures + metrics) rather than a side channel.
    """

    def __init__(self, engine, injector: FaultInjector, worker: str,
                 clock: Callable[[], float]):
        self.engine = engine
        self.injector = injector
        self.worker = worker
        self._clock = clock

    @property
    def log(self):
        return getattr(self.engine, "log", None)

    def classify(self, images):
        self.injector.check(self.worker, self._clock())
        return self.engine.classify(images)

    def detect(self, images, **kwargs):
        self.injector.check(self.worker, self._clock())
        return self.engine.detect(images, **kwargs)
