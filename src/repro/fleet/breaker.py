"""Per-worker circuit breaker (closed → open → half-open → closed).

The classic pattern, on the fleet's simulated clock:

* **closed** — the worker's primary engine serves normally; ``K``
  *consecutive* batch failures trip the breaker;
* **open** — the primary engine is quarantined.  A worker with a
  reference-backend fallback keeps serving in degraded mode; one without
  becomes unroutable.  After ``cooldown_ms`` of simulated time the next
  dequeue runs as a half-open probe;
* **half-open** — exactly one probe batch runs on the primary engine:
  success closes the breaker (worker restored), failure re-opens it and
  restarts the cooldown.

Every transition is appended to :attr:`CircuitBreaker.transitions`
(timestamped, so tests can assert the exact state machine walk) and
mirrored to a ``fleet_breaker_transitions{worker=,to=}`` counter plus a
``fleet_breaker_open{worker=}`` gauge when a registry is bound.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker for one worker's primary engine."""

    def __init__(self, name: str = "", failure_threshold: int = 3,
                 cooldown_ms: float = 50.0, registry=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ms < 0:
            raise ValueError("cooldown_ms must be >= 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms: Optional[float] = None
        #: (sim_ms, from_state, to_state) history of every transition
        self.transitions: List[Tuple[float, str, str]] = []
        self._counter = None
        self._gauge = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> "CircuitBreaker":
        self._counter = registry.counter(
            "fleet_breaker_transitions",
            help="breaker state transitions by worker and target state")
        self._gauge = registry.gauge(
            "fleet_breaker_open",
            help="1 while a worker's breaker is open or half-open")
        self._gauge.set(0.0 if self.state == CLOSED else 1.0,
                        worker=self.name)
        return self

    # ------------------------------------------------------------------
    def _transition(self, now_ms: float, to_state: str) -> None:
        if to_state == self.state:
            return
        self.transitions.append((now_ms, self.state, to_state))
        self.state = to_state
        if self._counter is not None:
            self._counter.inc(worker=self.name, to=to_state)
        if self._gauge is not None:
            self._gauge.set(0.0 if to_state == CLOSED else 1.0,
                            worker=self.name)

    # ------------------------------------------------------------------
    # outcomes
    # ------------------------------------------------------------------
    def record_success(self, now_ms: float) -> None:
        self.consecutive_failures = 0
        if self.state in (HALF_OPEN, OPEN):
            self.opened_at_ms = None
            self._transition(now_ms, CLOSED)

    def record_failure(self, now_ms: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # failed probe: back to open, cooldown restarts
            self.opened_at_ms = now_ms
            self._transition(now_ms, OPEN)
        elif (self.state == CLOSED
              and self.consecutive_failures >= self.failure_threshold):
            self.opened_at_ms = now_ms
            self._transition(now_ms, OPEN)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def probe_due(self, now_ms: float) -> bool:
        """True when the cooldown has elapsed and a half-open probe may run."""
        return (self.state == OPEN and self.opened_at_ms is not None
                and now_ms >= self.opened_at_ms + self.cooldown_ms)

    def begin_probe(self, now_ms: float) -> None:
        """Enter half-open for the probe batch about to run."""
        if self.state != OPEN:
            raise RuntimeError(
                f"begin_probe() in state {self.state!r}; only an open "
                "breaker can probe")
        self._transition(now_ms, HALF_OPEN)

    @property
    def closed(self) -> bool:
        return self.state == CLOSED

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, state={self.state}, "
                f"failures={self.consecutive_failures}/"
                f"{self.failure_threshold})")
