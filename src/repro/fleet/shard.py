"""Intra-request parallelism: shard planner, interconnect, executor.

Three pieces turn the fleet's workers into a sharded execution substrate:

* :class:`Interconnect` — the simulated fabric between (simulated)
  devices: a :class:`LinkSpec` (latency + bandwidth) per DeviceSpec
  pair, with deterministic defaults derived from the device presets.
  Every byte a sharded plan moves — input slices with their deformation
  halo, offset slices, shipped output bands / partial products,
  pipeline activations — is charged through it; transfers between
  co-located shards (same worker) are free.

* :class:`ShardPlanner` — prices the plan space for one request:
  single-worker plans, row-band and channel-group splits (2..N workers,
  bands weighted by each device's predicted sampling speed), and
  pipeline partitions of the backbone's deformable sites for batched
  requests.  Pricing reuses the workers' own
  :class:`~repro.fleet.router.EngineCostModel` shard descriptors, so
  the ECT framework and the shard planner speak one latency model.
  The serialisation structure mirrors execution: the coordinator
  scatters shard inputs one link at a time, shards compute in parallel
  on their own device timelines, the coordinator gathers and stitches.

* :class:`ShardContext` — the serve-time executor.  Installed on the
  coordinator engine's :class:`~repro.pipeline.engine.TextureRuntime`
  for the duration of one batch, it intercepts each deformable layer,
  runs one :func:`~repro.kernels.shards.run_shard` per participant
  (against that participant's device spec, tuned tile and plan cache),
  stitches the column slices with
  :func:`~repro.kernels.shards.stitch_columns` — bit-identical to the
  unsharded forward by construction — and finally replays the
  scatter/compute/gather timeline against the interconnect to produce
  the batch's simulated duration and every participant's new
  ``busy_until_ms``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpusim.device import DeviceSpec
from repro.kernels.shards import (SHARD_KINDS, ShardSpec, band_bounds,
                                  enumerate_shards, run_shard,
                                  stitch_columns)
from repro.kernels.tiling import deformation_halo
from repro.tensor import Tensor

#: backends whose layers the shard executor can split
_TEXTURE_BACKENDS = ("tex2d", "tex2dpp")

#: denominator for the rational band fractions carried in descriptors —
#: highly divisible so common speed ratios stay exact
_FRACTION_DEN = 720


# ----------------------------------------------------------------------
# interconnect
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkSpec:
    """One direction-symmetric link between two devices."""

    latency_ms: float
    bandwidth_gbps: float           # GB/s, i.e. bytes/ms = gbps * 1e6

    def transfer_ms(self, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return self.latency_ms + float(nbytes) / (self.bandwidth_gbps * 1e6)


#: fallback for device pairs without an explicit link (PCIe 3.0 x16-ish)
DEFAULT_LINK = LinkSpec(latency_ms=0.02, bandwidth_gbps=12.0)


class Interconnect:
    """Per-DeviceSpec-pair links; symmetric, keyed by sorted name pair."""

    def __init__(self, links: Optional[Dict[Tuple[str, str], LinkSpec]] = None,
                 default: LinkSpec = DEFAULT_LINK):
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self.default = default
        for (a, b), link in (links or {}).items():
            self._links[self._key(a, b)] = link

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def link(self, a: str, b: str) -> LinkSpec:
        return self._links.get(self._key(a, b), self.default)

    def transfer_ms(self, nbytes: float, a: str, b: str) -> float:
        """Milliseconds to move ``nbytes`` from device ``a`` to ``b``.

        Callers are responsible for skipping transfers between shards on
        the *same worker*; two distinct workers of the same device model
        still pay their (a, a) link.
        """
        return self.link(a, b).transfer_ms(nbytes)

    def rows(self, names: Optional[Sequence[str]] = None) -> List[dict]:
        """Link table for the CLI devices view (sorted, deduplicated)."""
        pairs = set()
        if names:
            ordered = sorted(set(names))
            for i, a in enumerate(ordered):
                for b in ordered[i:]:
                    pairs.add(self._key(a, b))
        pairs.update(self._links)
        out = []
        for a, b in sorted(pairs):
            link = self.link(a, b)
            out.append({"pair": f"{a}<->{b}",
                        "latency_ms": link.latency_ms,
                        "bandwidth_gbps": link.bandwidth_gbps,
                        "explicit": self._key(a, b) in self._links})
        return out

    def __repr__(self) -> str:
        return (f"Interconnect({len(self._links)} explicit links, "
                f"default={self.default})")


def default_interconnect(specs: Sequence[DeviceSpec]) -> Interconnect:
    """Deterministic links derived from the device presets.

    The default fabric is NVLink/NVSwitch-class: link bandwidth is half
    the *slower* endpoint's DRAM bandwidth — a fast fabric still cannot
    outrun either endpoint's memory system — and latency is a few
    microseconds, growing slightly for mixed pairs (switch hop between
    unlike devices).
    """
    links: Dict[Tuple[str, str], LinkSpec] = {}
    ordered = sorted({s.name: s for s in specs}.values(), key=lambda s: s.name)
    for i, a in enumerate(ordered):
        for b in ordered[i:]:
            bw = round(min(a.dram_bandwidth_gbps,
                           b.dram_bandwidth_gbps) / 2.0, 3)
            latency = 0.002 if a.name == b.name else 0.003
            links[(a.name, b.name)] = LinkSpec(latency_ms=latency,
                                               bandwidth_gbps=max(1.0, bw))
    return Interconnect(links)


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardAssignment:
    """One participant's role in a plan.

    ``fraction`` is the rational share descriptor the cost model was
    priced with: ``(num, den)`` of the band for rows/channels plans, the
    ``(lo, hi)`` site range for pipeline stages.
    """

    worker: str
    device: str
    weight: float
    fraction: Tuple[int, int]


@dataclass(frozen=True)
class ShardPlan:
    """One priced way to serve a request (single, split or pipeline)."""

    kind: str                       # "single" | "rows" | "channels" | "pipeline"
    coordinator: str
    assignments: Tuple[ShardAssignment, ...]
    predicted_ms: float
    breakdown: Tuple[Tuple[str, float], ...] = ()

    @property
    def label(self) -> str:
        if self.kind == "single":
            return f"single[{self.coordinator}]"
        names = "+".join(a.worker for a in self.assignments)
        return f"{self.kind}x{len(self.assignments)}[{names}]"

    @property
    def workers(self) -> Tuple[str, ...]:
        if self.kind == "single":
            return (self.coordinator,)
        return tuple(a.worker for a in self.assignments)


def _fractions(weights: Sequence[float]) -> List[Tuple[int, int]]:
    """Rational band shares ∝ weights over the common denominator."""
    nums = [hi - lo for lo, hi in band_bounds(_FRACTION_DEN, weights)]
    for i, v in enumerate(nums):
        if v == 0:
            j = max(range(len(nums)), key=lambda q: nums[q])
            nums[j] -= 1
            nums[i] = 1
    return [(v, _FRACTION_DEN) for v in nums]


def _stage_bounds(costs: Sequence[float], k: int) -> List[Tuple[int, int]]:
    """Partition sites into ``k`` contiguous non-empty stages ∝ cost."""
    s = len(costs)
    prefix = [0.0]
    for c in costs:
        prefix.append(prefix[-1] + float(c))
    total = prefix[-1] or 1.0
    edges = [0]
    for j in range(1, k):
        target = total * j / k
        i = edges[-1] + 1
        while i < s and prefix[i] < target:
            i += 1
        edges.append(min(max(i, edges[-1] + 1), s - (k - j)))
    edges.append(s)
    return [(edges[i], edges[i + 1]) for i in range(k)]


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
class ShardPlanner:
    """Price and pick sharded execution plans against live timelines.

    ``mode`` selects the serve-time policy:

    * ``"cost"`` — resolve to whichever plan (including the unsharded
      single) the interconnect-aware cost model predicts cheapest;
    * ``"always"`` — the fixed always-max-split baseline: the widest
      split available, regardless of predicted cost.
    """

    def __init__(self, interconnect: Interconnect, mode: str = "cost",
                 kinds: Sequence[str] = SHARD_KINDS, pipeline: bool = True,
                 bound: float = 7.0):
        if mode not in ("cost", "always"):
            raise ValueError(f"unknown shard mode {mode!r}; "
                             f"choose 'cost' or 'always'")
        for kind in kinds:
            if kind not in SHARD_KINDS:
                raise ValueError(f"unknown shard kind {kind!r}")
        self.interconnect = interconnect
        self.mode = mode
        self.kinds = tuple(kinds)
        self.pipeline = pipeline
        self.bound = bound

    # -- eligibility ---------------------------------------------------
    @staticmethod
    def _eligible(workers) -> List:
        elig = [w for w in workers
                if getattr(w, "shardable", False) and w.spec is not None]
        return sorted(elig, key=lambda w: w.name)

    @staticmethod
    def _by_speed(workers, shape) -> List:
        return sorted(workers,
                      key=lambda w: (w.predict_ms(shape, 1), w.name))

    # -- traffic model -------------------------------------------------
    def _in_bytes(self, cfg, kind: str, frac: float, offb: int) -> float:
        n, c, k = cfg.batch, cfg.in_channels, cfg.taps
        dg = cfg.deformable_groups
        if kind == "rows":
            band_h = frac * cfg.out_height
            halo = deformation_halo(cfg.kernel_size, self.bound)
            rows_in = min(float(cfg.height), band_h * cfg.stride + 2 * halo)
            off_bytes = n * dg * 2 * k * band_h * cfg.out_width * offb
            return n * c * rows_in * cfg.width * 4 + off_bytes
        csel = frac * (c // dg)
        off_bytes = n * dg * 2 * k * cfg.out_pixels * offb
        return n * dg * csel * cfg.height * cfg.width * 4 + off_bytes

    @staticmethod
    def _out_bytes(cfg, kind: str, frac: float) -> float:
        # a row shard ships its output band; a channel shard ships a
        # full-size partial product the stitch reduces
        out = cfg.batch * cfg.out_channels * cfg.out_pixels * 4.0
        return frac * out if kind == "rows" else out

    # -- pricing -------------------------------------------------------
    def _price_split(self, kind: str, parts, shape, batch: int,
                     now: float, avail) -> Optional[ShardPlan]:
        coord = parts[0]
        cfgs = coord.site_configs(shape, batch)
        if not cfgs:
            return None
        splits = {}
        for p in parts:
            ms = p.site_split_ms(shape, batch)
            if ms is None or len(ms) != len(cfgs):
                return None
            splits[p.name] = ms
        weights = [1.0 / max(1e-9, sum(s + g for s, g in splits[p.name]))
                   for p in parts]
        fracs = _fractions(weights)
        nums = tuple(num for num, _ in fracs)
        # exact per-shard pricing: each participant runs the shard the
        # executor's band_bounds rounding would hand it
        shard_ms = {}
        for j, p in enumerate(parts):
            sms = p.shard_site_ms(shape, batch, kind, nums, j)
            if sms is None or len(sms) != len(cfgs):
                return None
            shard_ms[p.name] = sms
        offb = 2 if coord.backend == "tex2dpp" else 4
        ic = self.interconnect
        a = {p.name: avail(p) for p in parts}
        t = now
        for i, cfg in enumerate(cfgs):
            cursor = t
            done = {}
            gathered = 0.0
            for p, (num, den) in zip(parts, fracs):
                frac = num / float(den)
                if p is not coord:
                    cursor += ic.transfer_ms(
                        self._in_bytes(cfg, kind, frac, offb),
                        coord.spec.name, p.spec.name)
                s_ms, g_ms = shard_ms[p.name][i]
                done[p.name] = max(cursor, a[p.name]) + s_ms + g_ms
            g = cursor
            for p, (num, den) in zip(parts, fracs):
                g = max(g, done[p.name])
                out = self._out_bytes(cfg, kind, num / float(den))
                gathered += out
                if p is not coord:
                    g += ic.transfer_ms(out, p.spec.name, coord.spec.name)
                a[p.name] = done[p.name]
            # memory-bound stitch pass at the coordinator: read every
            # shard's shipped output, write the assembled plane
            out_total = cfg.batch * cfg.out_channels * cfg.out_pixels * 4.0
            t = g + (gathered + out_total) / (
                coord.spec.effective_dram_gbps * 1e6)
            a[coord.name] = t
        assignments = tuple(
            ShardAssignment(worker=p.name, device=p.spec.name,
                            weight=float(w), fraction=frac)
            for p, w, frac in zip(parts, weights, fracs))
        return ShardPlan(kind=kind, coordinator=coord.name,
                         assignments=assignments, predicted_ms=t - now)

    def _price_pipeline(self, parts, shape, batch: int, now: float,
                        avail) -> Optional[ShardPlan]:
        coord = parts[0]
        cfgs = coord.site_configs(shape, batch)
        k = min(len(parts), len(cfgs))
        if batch < 2 or k < 2:
            return None
        parts = parts[:k]
        site_full = [s + g for s, g in coord.site_split_ms(shape, batch)]
        stages = _stage_bounds(site_full, k)
        ic = self.interconnect
        micro = []
        for i, ((lo, hi), p) in enumerate(zip(stages, parts)):
            stage_ms = p.predict_shard_ms(shape, batch, ("stage", lo, hi))
            if stage_ms is None:
                return None
            m = stage_ms / batch
            nxt = parts[i + 1] if i + 1 < k else coord
            if nxt is not p:
                boundary = cfgs[hi - 1]
                act = boundary.out_channels * boundary.out_pixels * 4.0
                m += ic.transfer_ms(act, p.spec.name, nxt.spec.name)
            micro.append(m)
        wait = max(0.0, max(avail(p) for p in parts) - now)
        predicted = wait + sum(micro) + (batch - 1) * max(micro)
        assignments = tuple(
            ShardAssignment(worker=p.name, device=p.spec.name,
                            weight=float(hi - lo), fraction=(lo, hi))
            for (lo, hi), p in zip(stages, parts))
        return ShardPlan(kind="pipeline", coordinator=coord.name,
                         assignments=assignments, predicted_ms=predicted)

    # -- plan spaces ---------------------------------------------------
    def plan_space(self, workers, shape, batch: int, now: float,
                   coordinator=None) -> List[ShardPlan]:
        """Every plan the planner would consider for this request.

        At routing time (``coordinator=None``) availability is each
        worker's full backlog; at serve time the coordinator is pinned
        and available immediately (its batch is starting now), while
        other participants still owe their device backlog *and* their
        queued work — co-opting a busy peer delays that peer's own
        requests, and the pricing must carry that opportunity cost.
        """
        if coordinator is None:
            def avail(w):
                return now + w.backlog_ms(now)
        else:
            def avail(w):
                return now if w is coordinator \
                    else max(now, w.busy_until_ms) + w.queue.pending_ms
        plans: List[ShardPlan] = []
        if coordinator is None:
            for w in workers:
                plans.append(ShardPlan(
                    kind="single", coordinator=w.name, assignments=(),
                    predicted_ms=w.estimated_completion_ms(shape, now)))
        else:
            plans.append(ShardPlan(
                kind="single", coordinator=coordinator.name, assignments=(),
                predicted_ms=coordinator.predict_ms(shape, batch)))
        elig = self._eligible(workers)
        if coordinator is not None:
            if coordinator not in elig:
                return plans
            others = self._by_speed(
                [w for w in elig if w is not coordinator], shape)
            ordered = [coordinator] + others
        else:
            ordered = self._by_speed(elig, shape)
        for k in range(2, len(ordered) + 1):
            parts = ordered[:k]
            for kind in self.kinds:
                plan = self._price_split(kind, parts, shape, batch, now,
                                         avail)
                if plan is not None:
                    plans.append(plan)
            if self.pipeline:
                plan = self._price_pipeline(parts, shape, batch, now, avail)
                if plan is not None:
                    plans.append(plan)
        return plans

    def best_plan(self, workers, shape, batch: int,
                  now: float) -> Optional[ShardPlan]:
        """Routing-time winner over the full plan space (ties by label)."""
        plans = self.plan_space(workers, shape, batch, now)
        if not plans:
            return None
        return min(plans, key=lambda p: (p.predicted_ms, p.label))

    def resolve(self, workers, coordinator, shape, batch: int,
                now: float) -> Optional[ShardPlan]:
        """Serve-time decision for a batch already placed at ``coordinator``.

        Returns the plan to execute — ``kind="single"`` means serve
        unsharded (the scheduler still records the decision) — or None
        when the coordinator cannot participate in sharding at all.
        """
        if not getattr(coordinator, "shardable", False):
            return None
        plans = self.plan_space(workers, shape, batch, now,
                                coordinator=coordinator)
        if not plans:
            return None
        if self.mode == "always":
            splits = [p for p in plans if p.kind in SHARD_KINDS]
            if splits:
                widest = max(len(p.assignments) for p in splits)
                return min((p for p in splits
                            if len(p.assignments) == widest),
                           key=lambda p: (p.predicted_ms, p.label))
        return min(plans, key=lambda p: (p.predicted_ms, p.label))


# ----------------------------------------------------------------------
# serve-time executor
# ----------------------------------------------------------------------
class ShardContext:
    """Execute one batch under a :class:`ShardPlan` and re-simulate time.

    Created by the scheduler per sharded batch, installed on the
    coordinator's engine runtime for the duration of the serve.  The
    functional outputs come from stitched column slices (bit-identical
    to unsharded execution); the temporal outcome comes from
    :meth:`finalize`, which replays the plan's scatter → parallel
    compute → gather → stitch structure against the interconnect and
    the participants' live device timelines.
    """

    def __init__(self, plan: ShardPlan, workers: Dict[str, object],
                 interconnect: Interconnect, now_ms: float, batch: int = 1,
                 tracer=None):
        self.plan = plan
        self.workers = workers
        self.interconnect = interconnect
        self.now_ms = float(now_ms)
        self.batch = max(1, int(batch))
        self.tracer = tracer
        #: per sharded layer: shards served, stitch cost, traffic
        self.records: List[dict] = []
        #: per deformable site (pipeline plans): measured stage pieces
        self.sites: List[dict] = []
        self.applied = False
        self.fallback_layers = 0
        #: serial time of layers that declined sharding (charged on top)
        self.local_ms = 0.0
        self.sim_ms = 0.0
        self.participant_busy: Dict[str, float] = {}
        self.scatter_bytes = 0.0
        self.gather_bytes = 0.0
        self.halo_rows = 0
        self.decision_row: Optional[dict] = None

    # -- installation --------------------------------------------------
    @contextlib.contextmanager
    def install(self, engine):
        """Temporarily intercept the engine's deformable layer execution."""
        runtime = getattr(engine, "_runtime", None)
        if runtime is None:        # test stand-ins without a TextureRuntime
            yield self
            return
        prev = runtime.shard_executor
        runtime.shard_executor = self
        try:
            yield self
        finally:
            runtime.shard_executor = prev

    # -- execution hook (called by TextureRuntime.execute) -------------
    def execute_layer(self, runtime, layer, cfg, x: Tensor,
                      offsets: Tensor) -> Optional[Tensor]:
        if self.plan.kind == "pipeline":
            t0 = float(runtime.log.total_ms)
            out = runtime.execute_direct(layer, cfg, x, offsets)
            self.sites.append({
                "layer": getattr(layer, "layer_name", ""),
                "ms": float(runtime.log.total_ms) - t0,
                "act_bytes": float(cfg.out_channels * cfg.out_pixels * 4)})
            self.applied = True
            return out
        if runtime.backend not in _TEXTURE_BACKENDS:
            return None
        kind = self.plan.kind
        # the plan's integer band weights — the same numbers the planner
        # priced with, so bounds round identically here and there
        weights = [a.fraction[0] for a in self.plan.assignments]
        total = (cfg.out_height if kind == "rows"
                 else cfg.in_channels // max(1, cfg.deformable_groups))
        if total < 2 or cfg.in_channels % cfg.deformable_groups:
            self.fallback_layers += 1
            return self._run_local(runtime, layer, cfg, x, offsets)
        shards = enumerate_shards(cfg, kind, weights)
        live = [(a, s) for a, s in zip(self.plan.assignments, shards)
                if s is not None]
        if len(live) < 2:
            self.fallback_layers += 1
            return self._run_local(runtime, layer, cfg, x, offsets)

        fp16 = runtime.backend == "tex2dpp"
        xd = x.data
        od = offsets.data
        layer_name = getattr(layer, "layer_name", "")
        results = []
        shard_rows = []
        for a, sspec in zip(self.plan.assignments, shards):
            if sspec is None:
                continue
            w = self.workers[a.worker]
            eng = w.engine
            res = run_shard(xd, od, cfg, eng.spec, sspec,
                            tile=eng.lookup_tile(cfg),
                            fp16_offsets=fp16,
                            plan_cache=eng.plan_cache)
            res.sample.layer = layer_name
            res.sample.geometry = cfg.label()
            eng.log.add(res.sample)
            res.gemm.layer = layer_name
            res.gemm.geometry = cfg.label()
            eng.log.add(res.gemm)
            results.append(res)
            shard_rows.append({
                "worker": a.worker, "device": eng.spec.name,
                "shard": sspec.label(),
                "sample_ms": res.sample.duration_ms,
                "compute_ms": (res.sample.duration_ms
                               + res.gemm.duration_ms),
                "in_bytes": res.in_bytes, "out_bytes": res.out_bytes,
                "halo_rows": res.halo_rows})
        bias = layer.bias.data if layer.bias is not None else None
        stitched = stitch_columns(results, layer.weight.data, bias, cfg,
                                  runtime.spec)
        gemm = stitched.kernels[0]
        gemm.layer = layer_name
        gemm.geometry = cfg.label()
        runtime.log.add(gemm)
        self.records.append({"layer": layer_name, "geometry": cfg.label(),
                             "stitch_ms": gemm.duration_ms,
                             "shards": shard_rows})
        if self.tracer is not None:
            self.tracer.instant(
                "fleet.shard_layer", cat="fleet", layer=layer_name,
                plan=self.plan.label,
                shards=[r["shard"] for r in shard_rows])
        self.applied = True
        return Tensor(stitched.output.astype("float32"))

    def _run_local(self, runtime, layer, cfg, x, offsets) -> Tensor:
        """Unsplittable layer: run on the coordinator, charge serially."""
        t0 = float(runtime.log.total_ms)
        out = runtime.execute_direct(layer, cfg, x, offsets)
        self.local_ms += float(runtime.log.total_ms) - t0
        return out

    # -- timeline replay ----------------------------------------------
    def finalize(self) -> float:
        """Simulated batch duration + participant timeline updates."""
        if self.plan.kind == "pipeline":
            return self._finalize_pipeline()
        coord = self.plan.coordinator
        coord_dev = self.workers[coord].spec.name
        ic = self.interconnect
        a: Dict[str, float] = {}
        for ass in self.plan.assignments:
            w = self.workers[ass.worker]
            a[ass.worker] = (self.now_ms if ass.worker == coord
                             else max(self.now_ms, w.busy_until_ms))
        t = self.now_ms
        for rec in self.records:
            cursor = t
            for s in rec["shards"]:
                if s["worker"] != coord:
                    cursor += ic.transfer_ms(s["in_bytes"], coord_dev,
                                             s["device"])
                    self.scatter_bytes += s["in_bytes"]
                s["done_ms"] = (max(cursor, a[s["worker"]])
                                + s["compute_ms"])
                a[s["worker"]] = s["done_ms"]
                self.halo_rows += int(s.get("halo_rows", 0))
            g = cursor
            for s in rec["shards"]:
                g = max(g, s["done_ms"])
                if s["worker"] != coord:
                    g += ic.transfer_ms(s["out_bytes"], s["device"],
                                        coord_dev)
                    self.gather_bytes += s["out_bytes"]
            t = g + rec["stitch_ms"]
            a[coord] = t
        t += self.local_ms
        self.sim_ms = t - self.now_ms
        self.participant_busy = {name: v for name, v in a.items()
                                 if name != coord}
        return self.sim_ms

    def _finalize_pipeline(self) -> float:
        plan = self.plan
        coord = plan.coordinator
        ic = self.interconnect
        n_sites = len(self.sites)
        b = self.batch
        micro: List[Tuple[str, float]] = []
        for i, ass in enumerate(plan.assignments):
            lo, hi = min(ass.fraction[0], n_sites), min(ass.fraction[1],
                                                        n_sites)
            m = sum(s["ms"] for s in self.sites[lo:hi]) / b
            nxt = (plan.assignments[i + 1].worker
                   if i + 1 < len(plan.assignments) else coord)
            if nxt != ass.worker and hi > lo:
                act = self.sites[hi - 1]["act_bytes"] / b
                nxt_dev = (self.workers[nxt].spec.name if nxt != ass.worker
                           else ass.device)
                m += ic.transfer_ms(act, ass.device, nxt_dev)
                self.gather_bytes += self.sites[hi - 1]["act_bytes"]
            micro.append((ass.worker, m))
        others = [self.workers[ass.worker].busy_until_ms
                  for ass in plan.assignments if ass.worker != coord]
        wait = max(0.0, max(others, default=self.now_ms) - self.now_ms)
        peak = max((m for _, m in micro), default=0.0)
        self.sim_ms = wait + sum(m for _, m in micro) \
            + (b - 1) * peak + self.local_ms
        cursor = self.now_ms + wait
        busy: Dict[str, float] = {}
        for worker, m in micro:
            cursor += m
            busy[worker] = max(busy.get(worker, 0.0),
                               cursor + (b - 1) * m)
        self.participant_busy = {name: v for name, v in busy.items()
                                 if name != coord}
        return self.sim_ms

    # -- observability -------------------------------------------------
    def summary(self) -> dict:
        layers = (len(self.records) if self.plan.kind != "pipeline"
                  else len(self.sites))
        return {"plan": self.plan.label, "kind": self.plan.kind,
                "applied": self.applied, "sharded_layers": layers,
                "fallback_layers": self.fallback_layers,
                "scatter_bytes": self.scatter_bytes,
                "gather_bytes": self.gather_bytes,
                "halo_rows": self.halo_rows}
